"""Section 4 case study: characterise the gyro platform like a datasheet.

Reproduces a compact version of the paper's Table 1 on the simulated
platform: sensitivity, nonlinearity, null voltage, turn-on time, noise
density and bandwidth, and compares the result with the published
SensorDynamics, ADXRS300 and Gyrostar numbers.

The characterisation harness and the baseline models replay the same
scenario-campaign definitions (``repro.scenarios.library``): the rate
table sweep runs as one batched fleet on the platform and the identical
stimulus plan drives the behavioural baseline devices.

Run with:  python examples/gyro_case_study.py
(The full characterisation takes a couple of minutes of wall time.)
"""

from repro.eval import (
    BaselineGyroDevice,
    CharacterizationConfig,
    GyroCharacterization,
    adxrs300_spec,
    characterize_baseline,
    compare_devices,
    murata_gyrostar_spec,
    paper_shape_checks,
    paper_table1_sensordynamics,
)
from repro.platform import GyroPlatform


def main() -> None:
    print("Calibrating the platform on the simulated rate table...")
    platform = GyroPlatform()
    platform.calibrate(settle_s=0.2)

    config = CharacterizationConfig(
        rate_points_dps=(-300.0, -150.0, 0.0, 150.0, 300.0),
        settle_s=0.15,
        noise_duration_s=1.2)
    harness = GyroCharacterization(platform, config)
    measured = harness.characterize(include_noise=True,
                                    include_temperature=False,
                                    bandwidth_method="analytic")

    print("\nPaper Table 1 (published):")
    print(paper_table1_sensordynamics().format_table())
    print("\nMeasured on this reproduction:")
    print(measured.to_datasheet().format_table())

    print("\nComparing against the commercial baselines...")
    adxrs = characterize_baseline(BaselineGyroDevice(adxrs300_spec()),
                                  noise_duration_s=4.0)
    murata = characterize_baseline(BaselineGyroDevice(murata_gyrostar_spec()),
                                   noise_duration_s=4.0)
    report = compare_devices([measured, adxrs, murata])
    print(report.format_table())
    print("\nPaper's qualitative claims:")
    for name, ok in paper_shape_checks(report).items():
        print(f"  {name:<32s}: {'reproduced' if ok else 'NOT reproduced'}")


if __name__ == "__main__":
    main()
