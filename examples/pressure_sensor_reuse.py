"""Platform reuse: deriving a capacitive pressure-sensor interface.

The whole point of the generic platform is that the *same* resource set
conditions other automotive sensors by selecting different analog cells
and reprogramming the digital chain.  This example derives a capacitive
manifold-pressure interface from the same portfolio, shows which gyro-
specific IPs are left off the silicon, and runs a small conditioning
loop (element → PGA → ADC → filtering → calibration) on the generic
front-end blocks.

Run with:  python examples/pressure_sensor_reuse.py
"""

import numpy as np

from repro.afe import AdcConfig, AmplifierConfig, ProgrammableGainAmplifier, SarAdc
from repro.common.analysis import linear_fit
from repro.dsp import IirFilter
from repro.flow import estimate_asic, estimate_fpga_prototype
from repro.platform import GenericSensorPlatform
from repro.sensors import CapacitivePressureSensor


def main() -> None:
    platform_def = GenericSensorPlatform()
    gyro = platform_def.derive("gyro")
    pressure = platform_def.derive("capacitive")

    print("=== Deriving a capacitive pressure interface from the platform ===")
    print(f"gyro instance     : {gyro.digital_gates} gates, "
          f"{gyro.analog_area_mm2:.1f} mm2 analog")
    print(f"pressure instance : {pressure.digital_gates} gates, "
          f"{pressure.analog_area_mm2:.1f} mm2 analog")
    left_out = sorted(b.name for b in platform_def.unused_blocks(pressure))
    print(f"blocks left off the pressure silicon: {', '.join(left_out)}")
    print("FPGA prototype :", estimate_fpga_prototype(pressure).summary())
    print("ASIC estimate  :", estimate_asic(pressure).summary())

    print("\n=== Conditioning loop on the generic front-end blocks ===")
    fs = 10_000.0
    element = CapacitivePressureSensor(sample_rate_hz=fs, seed=3)
    pga = ProgrammableGainAmplifier(
        AmplifierConfig(gain_settings=(1.0, 2.0, 4.0), gain_index=1,
                        bandwidth_hz=None), fs)
    adc = SarAdc(AdcConfig(bits=12, vref=2.5))
    output_filter = IirFilter.butterworth_low_pass(2, 50.0, fs)

    pressures = np.linspace(20.0, 300.0, 8)
    outputs = []
    for pressure_kpa in pressures:
        samples = []
        for _ in range(400):
            v = element.step(pressure_kpa)
            v = pga.step(v)
            samples.append(output_filter.step(adc.sample(v)))
        outputs.append(np.mean(samples[200:]))
    fit = linear_fit(pressures, np.asarray(outputs))
    print(f"conditioned sensitivity : {1000 * fit.slope:.3f} mV/kPa "
          f"(element nominal {1000 * element.ideal_sensitivity() * pga.gain:.3f} mV/kPa)")
    print(f"offset                  : {fit.offset:.3f} V")
    print(f"worst-case residual     : {fit.max_abs_residual * 1000:.2f} mV")


if __name__ == "__main__":
    main()
