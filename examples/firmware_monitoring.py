"""HW/SW integration: 8051 monitoring firmware polling the DSP chain.

Brings the conditioning chain to lock, connects the 8051 subsystem to
the DSP status registers and the analog trim bank (bridge + JTAG), runs
the monitoring firmware on the instruction-set simulator and decodes the
rate frames it streams over the UART — the same monitoring/communication
role the paper assigns to the Oregano 8051 core.

Run with:  python examples/firmware_monitoring.py
"""

from repro.gyro import q114_to_float
from repro.mcu import FRAME_HEADER_LOCKED, McuSubsystem
from repro.platform import GyroPlatform


def main() -> None:
    print("Starting the conditioning chain...")
    platform = GyroPlatform()
    platform.conditioner.config.status_update_interval = 16
    platform.start()
    registers = platform.conditioner.registers
    print(f"  dsp_status   = 0x{registers.read('dsp_status'):04X}")
    print(f"  dsp_rate_out = 0x{registers.read('dsp_rate_out'):04X}")

    print("\nConnecting the 8051 subsystem (bridge + JTAG)...")
    mcu = McuSubsystem()
    mcu.connect_dsp_registers(registers)
    mcu.connect_trim_bank(platform.frontend.trim)
    print(f"  JTAG IDCODE         = 0x{mcu.jtag.read_idcode():08X}")
    print(f"  ADC resolution trim = {mcu.jtag.read_trim_register(0x04)} bits "
          "(read back over the JTAG chain)")

    print("\nRunning the monitoring firmware on the instruction-set simulator...")
    mcu.load_monitor_firmware()
    executed = mcu.run()
    frames = mcu.uart.transmitted_bytes()
    print(f"  executed {executed} instructions, UART stream: {frames.hex(' ')}")

    index = 0
    while index < len(frames):
        if frames[index] == FRAME_HEADER_LOCKED and index + 3 < len(frames):
            raw = frames[index + 1] | (frames[index + 2] << 8)
            word = q114_to_float(raw)
            gain = frames[index + 3] / 64.0
            rate = word * platform.conditioner.sense_chain.scaler.config.full_scale_dps
            print(f"  frame: PLL locked, rate word {word:+.4f} "
                  f"(≈ {rate:+.1f} deg/s), drive gain ≈ {gain:.2f}")
            index += 4
        else:
            print(f"  frame: status byte 0x{frames[index]:02X} (PLL not locked)")
            index += 1


if __name__ == "__main__":
    main()
