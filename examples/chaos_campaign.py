"""Chaos matrix: infrastructure failure injection vs the hardened executor.

Runs one campaign uninjected to fix the baseline, then replays it under
a matrix of deterministic, seeded infrastructure failures — worker
crashes, frozen workers (heartbeat loss), hung stragglers, torn and
corrupted shard result writes, slow publishes, ENOSPC on manifest
writes, and a kill between the result store's fsync and its atomic
rename.  The acceptance bar for every cell:

* the campaign completes with **zero quarantined shards** (the retry
  budget suffices), and
* every lane's metrics and scenario digests are **bit-identical** to
  the uninjected baseline.

Along the way it demonstrates the hardening mechanics: crashed and
frozen workers are rescheduled off missed heartbeats long before the
shard timeout, a hung straggler is superseded by a speculative backup
that is only credited after digest verification, and every attempt's
outcome lands in the batch manifest's shard history.

``--ci`` asserts every cell (exit non-zero on any violation) instead of
just narrating — the CI ``chaos`` job runs that mode against a manifest
root it uploads (heartbeat files included) on failure.

Run with:  python examples/chaos_campaign.py [--root runs/chaos] [--ci]
"""

import argparse
import copy
import json
import os
import shutil
import time

from repro.chaos import (
    ChaosPlan,
    CorruptShardPayload,
    Enospc,
    HeartbeatLoss,
    InjectedCrash,
    KillMidRename,
    SlowWrite,
    TornWrite,
    WorkerCrash,
    WorkerHang,
)
from repro.platform import GyroPlatform
from repro.scenarios import Campaign, CampaignManifest, settled_output_scenario
from repro.store import ResultStore

RATES_DPS = (0.0, 25.0, 50.0)
SHARD_TIMEOUT_S = 120.0

MATRIX = (
    ("worker-crash", ChaosPlan([WorkerCrash(shard=0)])),
    ("heartbeat-loss", ChaosPlan([HeartbeatLoss(shard=1, hang_s=90.0)])),
    ("torn-write", ChaosPlan([TornWrite(shard=2)])),
    ("corrupt-payload", ChaosPlan([CorruptShardPayload(shard=0)])),
    ("slow-write", ChaosPlan([SlowWrite(shard=1, delay_s=1.0)])),
    ("manifest-enospc", ChaosPlan([Enospc(site="manifest.write",
                                          times=2)])),
    ("straggler", ChaosPlan([WorkerHang(shard=2, hang_s=90.0)])),
)


def build_campaign() -> Campaign:
    return Campaign([settled_output_scenario(rate, settle_s=0.01)
                     for rate in RATES_DPS], name="chaos-matrix")


def digests(result):
    return [[outcome.digest() for outcome in lane.outcomes]
            for lane in result.lanes]


def run_cell(campaign, platform, plan, manifest_dir):
    started = time.monotonic()
    result = campaign.run(
        copy.deepcopy(platform), workers=2, shard_size=1,
        manifest_dir=manifest_dir, chaos=plan,
        shard_timeout_s=SHARD_TIMEOUT_S,
        heartbeat_interval_s=0.1, heartbeat_grace=4.0,
        speculation_factor=3.0)
    return result, time.monotonic() - started


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default="runs/chaos",
                        help="directory for manifests and the store")
    parser.add_argument("--ci", action="store_true",
                        help="assert every cell instead of just narrating")
    args = parser.parse_args()
    if os.path.isdir(args.root):
        shutil.rmtree(args.root)
    os.makedirs(args.root)

    print("Starting the platform and fixing the uninjected baseline...")
    platform = GyroPlatform()
    platform.start()
    campaign = build_campaign()
    baseline = campaign.run(copy.deepcopy(platform))
    expected = digests(baseline)

    summary = {}
    for name, plan in MATRIX:
        manifest_dir = os.path.join(args.root, name)
        result, elapsed = run_cell(campaign, platform, plan, manifest_dir)
        identical = digests(result) == expected
        manifest = CampaignManifest.load(manifest_dir)
        attempts = {s.shard_id: s.attempts for s in manifest.shards}
        outcomes = {s.shard_id: [e["outcome"] for e in s.history]
                    for s in manifest.shards}
        print(f"\n[{name}]  {elapsed:.1f} s, "
              f"failed shards: {len(result.failed_shards)}, "
              f"bit-identical: {identical}")
        print(f"  attempts: {attempts}")
        print(f"  history:  {outcomes}")
        summary[name] = {"elapsed_s": round(elapsed, 2),
                         "failed_shards": len(result.failed_shards),
                         "bit_identical": identical,
                         "attempts": attempts}
        if args.ci:
            assert not result.failed_shards, (name, result.failed_shards)
            assert identical, name
            # dead/frozen workers must be rescheduled off heartbeats,
            # nowhere near the 120 s shard timeout
            assert elapsed < SHARD_TIMEOUT_S / 2, (name, elapsed)
            if name == "straggler":
                history = manifest.shards[2].history
                assert any(e["speculative"] and e["outcome"] == "ok"
                           for e in history), history
                assert any(e["outcome"] == "superseded"
                           for e in history), history
            if name == "heartbeat-loss":
                assert "heartbeat-lost" in outcomes[1], outcomes

    print("\n[store-kill-mid-rename]  crash between fsync and rename...")
    store = ResultStore(os.path.join(args.root, "store"))
    try:
        campaign.run(copy.deepcopy(platform), store=store,
                     chaos=ChaosPlan([KillMidRename(times=1)]))
        crashed = False
    except InjectedCrash:
        crashed = True
    healed = campaign.run(copy.deepcopy(platform), store=store)
    store_identical = digests(healed) == expected
    print(f"  crashed: {crashed}, healed bit-identical: {store_identical}, "
          f"entries: {len(store)}, quarantined: {len(store.quarantined())}")
    summary["store-kill-mid-rename"] = {"crashed": crashed,
                                        "bit_identical": store_identical}
    if args.ci:
        assert crashed and store_identical
        assert not store.quarantined()

    print(f"\nSummary: {json.dumps(summary)}")
    if args.ci:
        print("CI assertions all passed.")


if __name__ == "__main__":
    main()
