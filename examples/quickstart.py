"""Quickstart: bring up the gyro conditioning platform and read a yaw rate.

Runs the full mixed-signal co-simulation — MEMS vibrating-ring sensor,
analog front-end and digital conditioning chain — from power-on, then
applies yaw rates and prints the chain's digital and analog outputs.
The rate readings run as one declarative scenario *campaign*: three
settled-output scenarios branching from the calibrated platform, packed
into a single batched fleet.

Run with:  python examples/quickstart.py
"""

from repro.platform import GyroPlatform
from repro.scenarios import Campaign, rate_table_scenarios
from repro.sensors import Environment


def main() -> None:
    platform = GyroPlatform()

    print("Starting the platform (drive-loop lock + amplitude regulation)...")
    start = platform.start()
    print(f"  PLL locked after        : {start.lock_time_s() * 1000:.1f} ms")
    print(f"  turn-on time            : {start.turn_on_time_s * 1000:.1f} ms")
    print(f"  drive frequency         : "
          f"{platform.conditioner.drive_loop.pll.frequency_hz:.1f} Hz")

    print("\nFactory calibration on the simulated rate table "
          "(one 3-lane fleet)...")
    platform.calibrate(settle_s=0.2)

    rates = (0.0, 100.0, -200.0)
    campaign = Campaign(rate_table_scenarios(rates, settle_s=0.2),
                        name="quickstart-readings")
    for rate, lane in zip(rates, campaign.run(platform).lanes):
        metrics = lane.outcomes[0].metrics
        print(f"  applied {rate:+7.1f} deg/s -> measured "
              f"{metrics['rate_output_dps']:+8.2f} deg/s, "
              f"analog output {metrics['rate_output_v']:.3f} V")

    import copy
    twin = copy.deepcopy(platform)
    result = platform.run(Environment.sinusoidal_rate(50.0, 10.0), 0.3)
    print(f"\n10 Hz, ±50 deg/s swing -> output peak-to-peak "
          f"{result.rate_output_dps.max() - result.rate_output_dps.min():.1f} deg/s")

    # the same run on the compiled engine: a kernel generated for this
    # platform's structure (numba-JIT when installed, generated Python
    # otherwise) — bit-identical output, several times faster
    from repro.engine import backend_info
    replay = twin.run(Environment.sinusoidal_rate(50.0, 10.0), 0.3,
                      engine="compiled")
    same = (replay.rate_output_dps == result.rate_output_dps).all()
    print(f"compiled engine ({backend_info()['backend']} backend) replay "
          f"bit-identical: {same}")


if __name__ == "__main__":
    main()
