"""Quickstart: bring up the gyro conditioning platform and read a yaw rate.

Runs the full mixed-signal co-simulation — MEMS vibrating-ring sensor,
analog front-end and digital conditioning chain — from power-on, then
applies a constant yaw rate and prints the chain's digital and analog
outputs.

Run with:  python examples/quickstart.py
"""

from repro.platform import GyroPlatform
from repro.sensors import Environment


def main() -> None:
    platform = GyroPlatform()

    print("Starting the platform (drive-loop lock + amplitude regulation)...")
    start = platform.start()
    print(f"  PLL locked after        : {start.lock_time_s() * 1000:.1f} ms")
    print(f"  turn-on time            : {start.turn_on_time_s * 1000:.1f} ms")
    print(f"  drive frequency         : "
          f"{platform.conditioner.drive_loop.pll.frequency_hz:.1f} Hz")

    print("\nFactory calibration on the simulated rate table...")
    platform.calibrate(settle_s=0.2)

    for rate in (0.0, 100.0, -200.0):
        _, rate_dps, rate_v = platform.measure_settled_output(rate, 25.0,
                                                              duration_s=0.2)
        print(f"  applied {rate:+7.1f} deg/s -> measured {rate_dps:+8.2f} deg/s, "
              f"analog output {rate_v:.3f} V")

    result = platform.run(Environment.sinusoidal_rate(50.0, 10.0), 0.3)
    print(f"\n10 Hz, ±50 deg/s swing -> output peak-to-peak "
          f"{result.rate_output_dps.max() - result.rate_output_dps.min():.1f} deg/s")


if __name__ == "__main__":
    main()
