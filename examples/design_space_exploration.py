"""Platform-based design flow: partitioning, DSE and implementation estimates.

Walks the Fig. 1 flow the way a designer deriving a new sensor interface
would: partition the system functions across analog / hardwired digital
/ software, sweep the programmable parameters to find the Pareto front,
and roll the chosen configuration up to FPGA-prototype and ASIC
estimates (the paper's 200 kgates / 12 mm² figures).

Run with:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.engine import FleetSimulator
from repro.flow import (
    build_gyro_design_flow,
    estimate_asic,
    estimate_fpga_prototype,
    explore,
    gyro_system_functions,
    pareto_front,
    partition,
    recommend,
    sweep,
)
from repro.platform import Domain, GenericSensorPlatform, GyroPlatformConfig


def main() -> None:
    print("=== Analog / digital / software partitioning ===")
    result = partition(gyro_system_functions())
    for domain in (Domain.ANALOG, Domain.DIGITAL_HW, Domain.SOFTWARE):
        names = ", ".join(result.functions_in_domain(domain))
        print(f"  {domain.value:<12s}: {names}")
    print(f"  roll-up: {result.analog_area_mm2:.1f} mm2 analog, "
          f"{result.digital_gates} gates, {result.code_bytes} bytes of firmware")

    print("\n=== Design-space exploration (analytic models) ===")
    front = pareto_front(explore())
    for point in front:
        print("  ", point.summary())
    recommended = recommend()
    print("  recommended:", recommended.summary())

    print("\n=== Full simulation-backed DSE sweep (scenario campaigns) ===")
    # The analytic models score hundreds of points in milliseconds;
    # sweep() then validates the whole Pareto front with the true
    # mixed-signal loop — three rate-table scenarios per point, and
    # points sharing a vectorised-state structure packed into one
    # batched fleet by the campaign runner.  This is where the models
    # get honest: a datapath the noise model likes can still quantise
    # the rate channel to nothing (the Q1.14 order-4 output filter
    # does exactly that, and the sweep reports it).
    for simulated in sweep(max_points=10):
        print("  ", simulated.summary())

    print("\n=== Monte-Carlo fleet: part-to-part turn-on spread ===")
    # the batch axis also amortises Monte Carlo mismatch runs: each lane
    # is a different simulated physical device of the same design
    fleet = FleetSimulator.with_part_variation(
        GyroPlatformConfig(), 4, rng=np.random.default_rng(2026))
    from repro.sensors import Environment
    results = fleet.run(Environment.still(), 0.8, reset=True)
    turn_ons = [r.turn_on_time_s for r in results]
    for lane, t in enumerate(turn_ons):
        label = f"{t * 1000:.1f} ms" if t is not None else "did not start"
        print(f"  device {lane}: turn-on {label}")

    print("\n=== Platform customisation and implementation estimates ===")
    platform_def = GenericSensorPlatform()
    instance = platform_def.derive("gyro")
    print(platform_def.architecture_report(instance))
    print()
    print("FPGA prototype :", estimate_fpga_prototype(instance, clock_mhz=20.0).summary())
    print("ASIC estimate  :", estimate_asic(instance).summary())

    print("\n=== Executing the Fig. 1 design flow ===")
    flow = build_gyro_design_flow({
        "partitioning": lambda ctx: {"digital_gates": result.digital_gates},
        "prototyping": lambda ctx: {
            "fpga_gates": estimate_fpga_prototype(instance).design_gates},
    })
    flow.execute()
    print(flow.report())


if __name__ == "__main__":
    main()
