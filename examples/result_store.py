"""Result store walkthrough: campaigns as durable, self-healing artifacts.

Runs the same characterisation campaign against a content-addressed
:class:`repro.store.ResultStore` three times:

1. **cold** — every lane misses, simulates and is durably stored
   (fsync + atomic rename, checksummed envelope);
2. **warm** — every lane is served from the store with zero fleet
   simulation, bit-identical to the cold run;
3. **healed** — one stored entry is deliberately corrupted (a flipped
   byte) first; the read quarantines it (moved aside, never deleted)
   and the campaign transparently re-simulates just that lane back to a
   bit-identical result.

It closes with the equivalence audit: every cached entry is re-simulated
from its own stored replay config on the reference engine and must match
its recorded checksum bit for bit.

``--ci`` asserts every step (exit non-zero on any violation) instead of
just narrating — the CI ``store`` job runs that mode against a store
directory it uploads on failure.

Run with:  python examples/result_store.py [--store runs/result_store]
           [--ci]
"""

import argparse
import json
import os
import shutil

import numpy as np

from repro.platform import GyroPlatform
from repro.scenarios import Campaign, rate_table_scenarios
from repro.store import ResultStore

RATES_DPS = (-100.0, 0.0, 100.0)


def build_platform() -> GyroPlatform:
    print("Starting and calibrating the platform...")
    platform = GyroPlatform()
    platform.start()
    platform.calibrate(settle_s=0.1)
    return platform


def run_campaign(platform, store):
    campaign = Campaign(rate_table_scenarios(RATES_DPS, settle_s=0.05),
                        name="store-example")
    return campaign.run(platform, store=store)


def outputs(result) -> np.ndarray:
    return np.array([outcome.metrics["rate_output_dps"]
                     for outcome in result.outcomes()])


def corrupt_one_entry(store) -> str:
    key = store.keys()[0]
    path = store.entry_path(key)
    with open(path, "rb") as fh:
        blob = bytearray(fh.read())
    blob[len(blob) // 2] ^= 0x01
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    return key


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default="runs/result_store",
                        help="store directory (default: runs/result_store)")
    parser.add_argument("--ci", action="store_true",
                        help="assert every step (CI mode)")
    parser.add_argument("--fresh", action="store_true",
                        help="delete the store directory first")
    args = parser.parse_args()

    if args.fresh and os.path.isdir(args.store):
        shutil.rmtree(args.store)
    store = ResultStore(args.store)
    platform = build_platform()

    print(f"\nCold run (store: {args.store})...")
    cold = run_campaign(platform, store)
    cold_out = outputs(cold)
    print(f"  stats: {store.stats.as_dict()}")
    print(f"  outputs: {np.array2string(cold_out, precision=3)}")
    if args.ci:
        assert store.stats.puts == len(RATES_DPS), store.stats

    print("\nWarm run (every lane served, zero fleet simulation)...")
    hits_before = store.stats.hits
    warm = run_campaign(platform, store)
    print(f"  stats: {store.stats.as_dict()}")
    warm_hits = store.stats.hits - hits_before
    print(f"  hits: {warm_hits}/{len(RATES_DPS)}, "
          f"bit-identical: {np.array_equal(outputs(warm), cold_out)}")
    if args.ci:
        assert warm_hits == len(RATES_DPS), store.stats
        assert np.array_equal(outputs(warm), cold_out)

    print("\nFlipping one byte in a stored entry...")
    key = corrupt_one_entry(store)
    print(f"  corrupted {key[:16]}...")
    healed = run_campaign(platform, store)
    quarantined = store.quarantined()
    print(f"  quarantined: {[q['reason'] for q in quarantined]}")
    print(f"  re-simulated bit-identical: "
          f"{np.array_equal(outputs(healed), cold_out)}")
    if args.ci:
        assert len(quarantined) == 1 and quarantined[0]["key"] == key
        assert np.array_equal(outputs(healed), cold_out)
        assert store.stats.quarantined == 1

    print("\nEquivalence audit (re-simulate every cached entry)...")
    report = store.audit()
    print(f"  checked {report.checked}, "
          f"verified {len(report.verified_keys)}, ok: {report.ok}")
    if args.ci:
        assert report.ok and report.checked == len(RATES_DPS)

    summary = {"stats": store.stats.as_dict(),
               "entries": len(store),
               "quarantined": [q["reason"] for q in store.quarantined()],
               "audit_checked": report.checked,
               "audit_ok": report.ok}
    print(f"\nSummary: {json.dumps(summary)}")
    if args.ci:
        print("CI assertions all passed.")


if __name__ == "__main__":
    main()
