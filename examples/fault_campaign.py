"""Fault-injection campaign: break every device on purpose, on a grid.

Builds a small population of simulated devices (nominal part plus seeded
part-to-part variations), crosses it with a grid of fault models — AFE
saturation, supply droop, sensor dropout, a stuck ADC and a stuck trim
register — and runs the full device x fault resilience matrix as one
sharded campaign.  Every cell reports the standard resilience metrics
(detection latency, time in saturation, post-fault bias shift and a
survived/failed verdict) and the matrix is written out as a JSON
artifact.

The campaign rides the quarantine semantics of the sharded executor: a
shard that keeps failing is reported in ``failed_shards`` and its cells
show up as ``null`` rows in the artifact instead of sinking the whole
matrix.

After the matrix, the example closes the loop in software: the 8051
subsystem is attached to a latched device's safety registers, the
safe-mode service firmware polls the latch over the bridge and clears it
by kicking the safety watchdog — the detect -> degrade -> recover path
of the paper's "CPU constantly checks the system status" routine.

Run with:  python examples/fault_campaign.py [--devices 3] [--workers 2]
           [--smoke] [--out runs/resilience_matrix.json]
"""

import argparse
import copy
import json

import numpy as np

from repro.faults import (
    AfeSaturation,
    SensorDropout,
    StuckAdcCode,
    StuckRegisterField,
    SupplyDroop,
)
from repro.mcu.subsystem import McuSubsystem
from repro.platform import GyroPlatform, GyroPlatformConfig
from repro.scenarios import Campaign, fault_scenario

METRICS = ("detection_latency_s", "time_in_saturation_s",
           "post_fault_bias_shift_dps", "survived")


def fault_grid(duration_s: float) -> dict:
    """The fault models of the resilience matrix, windowed to fit."""
    start = duration_s / 3.0
    stop = 2.0 * duration_s / 3.0
    return {
        "afe_saturation": AfeSaturation(t_start=start, t_stop=stop),
        "supply_droop": SupplyDroop(t_start=start, t_stop=stop, scale=0.8),
        "sensor_dropout": SensorDropout(t_start=start, t_stop=stop),
        "stuck_adc": StuckAdcCode(t_start=start, t_stop=stop,
                                  channel="secondary", code=200),
        "stuck_trim": StuckRegisterField(t_start=start, t_stop=stop,
                                         register="afe_secondary_gain",
                                         value=0),
    }


def device_fleet(n: int, seed: int) -> list:
    """``n`` started devices: the nominal part plus seeded variations."""
    rng = np.random.default_rng(seed)
    devices = []
    for index in range(n):
        cfg = GyroPlatformConfig()
        if index:
            cfg.sensor = cfg.sensor.with_part_variation(rng)
        platform = GyroPlatform(cfg)
        platform.start()
        devices.append(platform)
    return devices


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=3,
                        help="device population size (default 3)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the sharded executor")
    parser.add_argument("--duration", type=float, default=0.03,
                        help="seconds simulated per matrix cell")
    parser.add_argument("--rate", type=float, default=80.0,
                        help="applied rate during the fault in deg/s")
    parser.add_argument("--manifest-dir", default=None,
                        help="manifest directory for resumable runs")
    parser.add_argument("--out", default="resilience_matrix.json",
                        help="path of the JSON matrix artifact")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny matrix for CI: 2 devices, 2 faults")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    n_devices = 2 if args.smoke else args.devices
    faults = fault_grid(args.duration)
    if args.smoke:
        faults = {k: faults[k] for k in ("afe_saturation", "stuck_adc")}

    print(f"Starting {n_devices} devices...")
    devices = device_fleet(n_devices, args.seed)

    # one lane per (device, fault) cell: each lane gets its own copy of
    # the started device, so faulted cells cannot contaminate each other
    cells = [(d, f) for d in range(n_devices) for f in faults]
    platforms = [copy.deepcopy(devices[d]) for d, _ in cells]
    programs = [fault_scenario(faults[name], rate_dps=args.rate,
                               duration_s=args.duration,
                               name=f"dev{d}:{name}")
                for d, name in cells]

    print(f"Running the {n_devices} x {len(faults)} resilience matrix "
          f"({len(cells)} lanes) on the sharded executor...")
    result = Campaign(programs, name="fault-matrix").run(
        platforms=platforms, executor="sharded", workers=args.workers,
        manifest_dir=args.manifest_dir)

    matrix = []
    for (d, name), lane in zip(cells, result.lanes):
        row = {"device": d, "fault": name}
        if lane is None:
            row["metrics"] = None       # lane lost to a quarantined shard
        else:
            row["metrics"] = {m: lane.outcomes[0].metrics[m]
                              for m in METRICS}
        matrix.append(row)
    artifact = {"devices": n_devices, "faults": sorted(faults),
                "rate_dps": args.rate, "duration_s": args.duration,
                "matrix": matrix, "failed_shards": result.failed_shards}
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2)
    print(f"Matrix written to {args.out}")

    header = f"  {'device':>6s}  {'fault':16s}  {'latency':>9s}  " \
             f"{'sat time':>9s}  {'bias shift':>11s}  verdict"
    print(header)
    for row in matrix:
        if row["metrics"] is None:
            print(f"  {row['device']:6d}  {row['fault']:16s}  "
                  f"{'-- lane lost to a quarantined shard --':>40s}")
            continue
        m = row["metrics"]
        latency = ("    never" if m["detection_latency_s"] is None
                   else f"{1000 * m['detection_latency_s']:7.2f}ms")
        print(f"  {row['device']:6d}  {row['fault']:16s}  {latency:>9s}  "
              f"{1000 * m['time_in_saturation_s']:7.2f}ms  "
              f"{m['post_fault_bias_shift_dps']:+9.4f}dps  "
              f"{'SURVIVED' if m['survived'] else 'FAILED'}")
    if result.failed_shards:
        print(f"\n{len(result.failed_shards)} shard(s) quarantined; re-run "
              "with the same --manifest-dir to fill in the missing cells")

    # -- close the loop in software: firmware services the latch -----------
    latched = next((lane for (_, name), lane in zip(cells, result.lanes)
                    if lane is not None and name == "afe_saturation"
                    and lane.outcomes[0].result.safe_mode), None)
    if latched is not None:
        print("\nAttaching the 8051 to a latched device's safety bank...")
        mcu = McuSubsystem()
        mcu.connect_safety_registers(latched.platform.safety.registers)
        mcu.load_safety_firmware()
        mcu.run()
        rx = mcu.uart.transmitted_bytes()
        print(f"  firmware saw status 0x{rx[0]:02X} (safe mode latched), "
              f"kicked the watchdog, re-read 0x{rx[1]:02X} (cleared)")


if __name__ == "__main__":
    main()
