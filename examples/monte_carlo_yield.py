"""Monte Carlo yield estimation over part-to-part sensor mismatch.

Builds a fleet of simulated devices of the same design — each with its
own pick-off gain, resonance split, offset and noise seeds, drawn the
way a wafer spreads them — calibrates every part on the simulated rate
table and checks it against simple datasheet limits.  The fraction of
parts that pass is the predicted production yield.

Every part is one campaign lane (start-up + rate-table scenarios), so
the whole population runs through ``Campaign.run`` and fans out over
worker processes with the sharded executor: pass ``--workers N`` to use
N processes, and point ``--manifest-dir`` at a directory to make the run
resumable — killing it and re-running with the same directory simulates
only the parts that have not finished.  The per-part metrics are
bit-identical to an in-process run.

Run with:  python examples/monte_carlo_yield.py [--parts 8] [--workers 2]
           [--manifest-dir runs/yield]
"""

import argparse
import copy
import dataclasses

import numpy as np

from repro.platform import GyroPlatform, GyroPlatformConfig
from repro.scenarios import Campaign, rate_table_scenarios, startup_scenario

RATES_DPS = (-200.0, -100.0, 0.0, 100.0, 200.0)

# screening limits for *uncalibrated* parts: the raw offset and the
# sensitivity spread must stay inside what factory calibration can trim,
# and the part has to start within the watchdog budget
MAX_OFFSET_DPS = 25.0
MAX_SENSITIVITY_SPREAD = 0.35     # +/-35 % from the batch median
MAX_TURN_ON_S = 0.8


def part_configs(n: int, seed: int) -> list:
    """Draw ``n`` device configurations with part-to-part mismatch."""
    rng = np.random.default_rng(seed)
    nominal = GyroPlatformConfig()
    configs = []
    for _ in range(n):
        cfg = copy.deepcopy(nominal)
        cfg.sensor = cfg.sensor.with_part_variation(rng)
        if cfg.frontend.seed is not None:
            cfg.frontend.seed = int(rng.integers(0, 2 ** 31 - 1))
        configs.append(cfg)
    return configs


def part_program(settle_s: float) -> list:
    """One part's lane program: power up, then sweep the rate table.

    A part that never leaves start-up is a legitimate yield loss, not a
    simulation error, so the start-up scenario's watchdog is relaxed:
    the lane keeps going and the part fails the turn-on check instead.
    """
    startup = dataclasses.replace(startup_scenario(), require_stop=False)
    return [startup] + list(rate_table_scenarios(RATES_DPS,
                                                 settle_s=settle_s))


def measure_part(lane) -> dict:
    """Rate-table measurements of one part's campaign lane.

    The parts are uncalibrated (that is what the rate table is for), so
    the response is fitted on the raw sense channel, exactly like the
    factory calibration fit.
    """
    startup = lane.outcomes[0]
    sweep = lane.outcomes[1:]
    rates = np.asarray(RATES_DPS)
    channels = np.array([o.metrics["raw_channel"] for o in sweep])
    slope, intercept = np.polyfit(rates, channels, 1)
    return {
        "turn_on_s": startup.metrics["turn_on_time_s"],
        "slope": slope,                 # channel units per deg/s
        "offset_dps": intercept / slope if slope != 0.0 else float("inf"),
    }


def judge_part(measured: dict, median_slope: float) -> bool:
    """Datasheet pass/fail for one measured part."""
    turn_on = measured["turn_on_s"]
    spread = (abs(measured["slope"] / median_slope - 1.0)
              if median_slope != 0.0 else float("inf"))
    return (turn_on is not None and turn_on <= MAX_TURN_ON_S
            and abs(measured["offset_dps"]) <= MAX_OFFSET_DPS
            and spread <= MAX_SENSITIVITY_SPREAD)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parts", type=int, default=8,
                        help="population size (default 8)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: all cores when "
                             "--executor sharded, else in-process)")
    parser.add_argument("--executor", default=None,
                        choices=("local", "sharded"),
                        help="campaign executor (default: sharded when "
                             "--workers is given)")
    parser.add_argument("--manifest-dir", default=None,
                        help="manifest directory for resumable sharded "
                             "runs; reuse it to resume a killed run")
    parser.add_argument("--settle", type=float, default=0.15,
                        help="settle time per rate point in seconds")
    parser.add_argument("--seed", type=int, default=1234)
    args = parser.parse_args()

    print(f"Drawing {args.parts} parts with process spread...")
    configs = part_configs(args.parts, args.seed)
    platforms = [GyroPlatform(cfg) for cfg in configs]
    campaign = Campaign([part_program(args.settle)
                         for _ in range(args.parts)],
                        name="monte-carlo-yield")

    mode = args.executor or ("sharded" if args.workers else "local")
    print(f"Running {args.parts} lane programs on the {mode!r} executor...")
    result = campaign.run(platforms=platforms, executor=args.executor,
                          workers=args.workers,
                          manifest_dir=args.manifest_dir)

    measured = [measure_part(lane) for lane in result.lanes]
    median_slope = float(np.median([m["slope"] for m in measured]))
    passed = 0
    for index, m in enumerate(measured):
        ok = judge_part(m, median_slope)
        passed += ok
        turn_on = m["turn_on_s"]
        turn_on_ms = "   n/a" if turn_on is None else f"{1000 * turn_on:6.1f}"
        print(f"  part {index:3d}: turn-on {turn_on_ms} ms, "
              f"offset {m['offset_dps']:+7.3f} deg/s, "
              f"sensitivity {m['slope'] / median_slope:6.3f} x median  "
              f"-> {'PASS' if ok else 'FAIL'}")
    print(f"\nYield: {passed}/{args.parts} "
          f"({100.0 * passed / args.parts:.1f} %)")


if __name__ == "__main__":
    main()
