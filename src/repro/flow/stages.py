"""The platform-based design flow of Fig. 1.

The flow is a graph of stages — system-level MATLAB model, partitioning,
digital refinement (behavioural → RTL → gate level), analog refinement
(VHDL-AMS → transistor/schematic), software development, mixed-signal
simulation, prototyping (FPGA + discrete AFE) and ASIC integration —
with a verification step validating every refinement against the level
above it.  :class:`DesignFlow` executes the stages in dependency order,
records per-stage results and produces the flow report the benches print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional

from ..common.exceptions import ConfigurationError, SimulationError


class AbstractionLevel(Enum):
    """Abstraction levels traversed by the top-down flow (Fig. 1)."""

    SYSTEM = "system-level (MATLAB)"
    BEHAVIORAL_DIGITAL = "VHDL behavioural"
    RTL = "VHDL RTL"
    GATE = "VHDL gate level"
    ANALOG_SPEC = "VHDL-AMS specification"
    ANALOG_TRANSISTOR = "transistor-level schematic"
    SOFTWARE = "C / assembly software"
    PROTOTYPE = "FPGA + discrete AFE prototype"
    ASIC = "0.35 um CMOS ASIC"


@dataclass
class StageResult:
    """Outcome of one executed stage."""

    name: str
    passed: bool
    details: Dict[str, float] = field(default_factory=dict)
    message: str = ""


@dataclass
class DesignFlowStage:
    """One stage of the flow.

    Attributes:
        name: stage name (unique within the flow).
        level: abstraction level the stage produces.
        depends_on: names of stages that must complete first.
        action: callable executed for the stage; receives the shared
            project context dict and returns a detail dict (or None).
    """

    name: str
    level: AbstractionLevel
    depends_on: List[str] = field(default_factory=list)
    action: Optional[Callable[[Dict], Optional[Dict[str, float]]]] = None

    def run(self, context: Dict) -> StageResult:
        """Execute the stage action."""
        try:
            details = self.action(context) if self.action else {}
            return StageResult(self.name, True, details or {})
        except Exception as error:  # noqa: BLE001 - report, don't crash the flow
            return StageResult(self.name, False, {}, message=str(error))


class DesignFlow:
    """Orders and executes design-flow stages."""

    def __init__(self):
        self._stages: Dict[str, DesignFlowStage] = {}
        self.results: Dict[str, StageResult] = {}
        self.context: Dict = {}

    def add_stage(self, stage: DesignFlowStage) -> DesignFlowStage:
        """Add a stage; names must be unique and dependencies must exist."""
        if stage.name in self._stages:
            raise ConfigurationError(f"duplicate stage {stage.name!r}")
        for dep in stage.depends_on:
            if dep not in self._stages:
                raise ConfigurationError(
                    f"stage {stage.name!r} depends on unknown stage {dep!r}")
        self._stages[stage.name] = stage
        return stage

    def stage_names(self) -> List[str]:
        """Stage names in insertion (and execution) order."""
        return list(self._stages)

    def execute(self, stop_on_failure: bool = True) -> List[StageResult]:
        """Run all stages in order; dependencies must pass first."""
        self.results = {}
        ordered: List[StageResult] = []
        for name, stage in self._stages.items():
            blocked = [dep for dep in stage.depends_on
                       if dep not in self.results or not self.results[dep].passed]
            if blocked:
                result = StageResult(name, False,
                                     message=f"blocked by failed stages: {blocked}")
            else:
                result = stage.run(self.context)
            self.results[name] = result
            ordered.append(result)
            if not result.passed and stop_on_failure:
                break
        return ordered

    @property
    def succeeded(self) -> bool:
        """True when every stage has run and passed."""
        return (len(self.results) == len(self._stages)
                and all(r.passed for r in self.results.values()))

    def report(self) -> str:
        """Human-readable flow report (one line per stage)."""
        lines = ["Platform-based design flow report", "=" * 60]
        for name, stage in self._stages.items():
            result = self.results.get(name)
            if result is None:
                status = "not run"
            else:
                status = "PASS" if result.passed else f"FAIL ({result.message})"
            lines.append(f"{name:<28s} [{stage.level.value:<28s}] {status}")
            if result and result.details:
                for key, value in result.details.items():
                    lines.append(f"    {key} = {value}")
        return "\n".join(lines)


def build_gyro_design_flow(project_actions: Optional[Dict[str, Callable]] = None
                           ) -> DesignFlow:
    """Build the Fig. 1 flow for the gyro project.

    Args:
        project_actions: optional mapping from stage name to the action
            callable to execute; stages without an action are recorded as
            completed documentation steps.
    """
    actions = project_actions or {}
    flow = DesignFlow()
    definition = [
        ("system_model", AbstractionLevel.SYSTEM, []),
        ("partitioning", AbstractionLevel.SYSTEM, ["system_model"]),
        ("vhdl_behavioral", AbstractionLevel.BEHAVIORAL_DIGITAL, ["partitioning"]),
        ("vhdl_rtl", AbstractionLevel.RTL, ["vhdl_behavioral"]),
        ("gate_level", AbstractionLevel.GATE, ["vhdl_rtl"]),
        ("vhdl_ams_model", AbstractionLevel.ANALOG_SPEC, ["partitioning"]),
        ("analog_schematic", AbstractionLevel.ANALOG_TRANSISTOR, ["vhdl_ams_model"]),
        ("software", AbstractionLevel.SOFTWARE, ["vhdl_behavioral"]),
        ("mixed_simulation", AbstractionLevel.SYSTEM,
         ["vhdl_rtl", "analog_schematic", "software"]),
        ("prototyping", AbstractionLevel.PROTOTYPE, ["mixed_simulation"]),
        ("asic_integration", AbstractionLevel.ASIC, ["prototyping"]),
    ]
    for name, level, deps in definition:
        flow.add_stage(DesignFlowStage(name, level, deps, actions.get(name)))
    return flow
