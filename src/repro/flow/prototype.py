"""Implementation estimators: FPGA prototype and ASIC integration.

Section 4.3 reports the implementation figures of the case study: "the
digital part of roughly 200 Kgates complexity has been implemented in a
Xilinx X2S600E running a 20 MHz clock frequency" and the analog front
end occupies "a 12 mm² custom chip implemented in a 0.35 µm CMOS
technology".  The estimators roll the IP-portfolio metadata of a derived
platform instance up to those figures and check prototype feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.exceptions import ConfigurationError
from ..platform.generic import PlatformInstance
from ..platform.ip_portfolio import Domain


@dataclass
class FpgaDevice:
    """Capacity model of the prototyping FPGA.

    The Spartan-IIE 600 (X2S600E) used by the paper is marketed as a
    600 k-system-gate device; a realistic fraction of that is usable for
    synthesised logic.
    """

    name: str = "Xilinx X2S600E"
    system_gates: int = 600_000
    usable_fraction: float = 0.55
    max_clock_mhz: float = 50.0

    def usable_gates(self) -> int:
        """Gate capacity usable by synthesised logic."""
        return int(self.system_gates * self.usable_fraction)


@dataclass
class FpgaPrototypeReport:
    """Result of mapping the digital section onto the prototyping FPGA."""

    device: str
    design_gates: int
    utilization: float
    clock_mhz: float
    timing_met: bool
    fits: bool

    def summary(self) -> str:
        status = "OK" if (self.fits and self.timing_met) else "FAIL"
        return (f"{self.device}: {self.design_gates} gates, "
                f"{100 * self.utilization:.0f}% utilisation, "
                f"{self.clock_mhz:.0f} MHz [{status}]")


def estimate_fpga_prototype(instance: PlatformInstance,
                            device: Optional[FpgaDevice] = None,
                            clock_mhz: float = 20.0) -> FpgaPrototypeReport:
    """Map a platform instance's digital section onto the prototyping FPGA."""
    if clock_mhz <= 0:
        raise ConfigurationError("clock frequency must be > 0")
    device = device or FpgaDevice()
    design_gates = sum(b.gates for b in instance.blocks_in_domain(Domain.DIGITAL_HW))
    utilization = design_gates / device.usable_gates()
    return FpgaPrototypeReport(
        device=device.name,
        design_gates=design_gates,
        utilization=utilization,
        clock_mhz=clock_mhz,
        timing_met=clock_mhz <= device.max_clock_mhz,
        fits=utilization <= 1.0,
    )


@dataclass
class AsicProcess:
    """0.35 µm mixed-signal CMOS process assumptions."""

    name: str = "0.35 um CMOS"
    gate_density_kgates_per_mm2: float = 18.0
    routing_overhead: float = 1.25
    pad_ring_mm2: float = 2.0


@dataclass
class AsicEstimateReport:
    """Area/power roll-up of the single-chip integration."""

    process: str
    analog_area_mm2: float
    digital_gates: int
    digital_area_mm2: float
    total_die_mm2: float
    power_mw: float

    def summary(self) -> str:
        return (f"{self.process}: analog {self.analog_area_mm2:.1f} mm2 + "
                f"digital {self.digital_area_mm2:.1f} mm2 "
                f"({self.digital_gates} gates) + pads = "
                f"{self.total_die_mm2:.1f} mm2, {self.power_mw:.1f} mW")


def estimate_asic(instance: PlatformInstance,
                  process: Optional[AsicProcess] = None) -> AsicEstimateReport:
    """Estimate the single-chip (analog + digital) ASIC integration."""
    process = process or AsicProcess()
    analog_area = instance.analog_area_mm2
    digital_gates = sum(b.gates for b in instance.blocks_in_domain(Domain.DIGITAL_HW))
    digital_area = (digital_gates / 1000.0 / process.gate_density_kgates_per_mm2
                    * process.routing_overhead)
    total = analog_area + digital_area + process.pad_ring_mm2
    return AsicEstimateReport(
        process=process.name,
        analog_area_mm2=analog_area,
        digital_gates=digital_gates,
        digital_area_mm2=digital_area,
        total_die_mm2=total,
        power_mw=instance.power_mw,
    )
