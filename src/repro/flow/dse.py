"""Design-space exploration over the platform's programmable parameters.

"Through simulations, design iterations and functional blocks
refinements a project space exploration can be performed."  The explorer
sweeps the front-end / DSP parameters that the platform leaves
programmable (ADC resolution, DSP word length, output-filter order and
bandwidth) and scores each point with fast analytic models of the two
costs that matter at this stage — rate-noise floor and digital size —
so the designer can pick a point on the Pareto front before committing
to the expensive mixed-signal simulation.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common.exceptions import ConfigurationError


@dataclass(frozen=True)
class DesignPoint:
    """One combination of programmable parameters."""

    adc_bits: int
    dsp_word_length: int
    output_filter_order: int
    output_bandwidth_hz: float


@dataclass
class EvaluatedPoint:
    """A design point with its estimated performance and cost."""

    point: DesignPoint
    noise_density_dps_rthz: float
    digital_gates: int
    analog_area_mm2: float
    score: float

    def summary(self) -> str:
        p = self.point
        return (f"ADC {p.adc_bits} b, DSP {p.dsp_word_length} b, "
                f"filter order {p.output_filter_order} @ {p.output_bandwidth_hz:.0f} Hz: "
                f"noise {self.noise_density_dps_rthz:.3f} deg/s/rtHz, "
                f"{self.digital_gates} gates, score {self.score:.3f}")


@dataclass
class DseConfig:
    """Sweep ranges and scoring weights.

    The noise model combines the mechanical (Brownian) noise floor with
    the ADC and DSP quantisation noise referred to rate; the cost model
    scales the filter/datapath gate counts with word length and order.
    """

    adc_bits: Sequence[int] = (8, 10, 12, 14)
    dsp_word_lengths: Sequence[int] = (12, 16, 20, 24)
    filter_orders: Sequence[int] = (2, 4, 6)
    bandwidths_hz: Sequence[float] = (25.0, 50.0, 75.0)
    mechanical_noise_dps_rthz: float = 0.05
    full_scale_dps: float = 300.0
    sample_rate_hz: float = 120_000.0
    noise_weight: float = 10.0
    gate_weight: float = 1e-5
    area_weight: float = 0.2
    max_noise_dps_rthz: float = 0.13

    def __post_init__(self) -> None:
        if not self.adc_bits or not self.dsp_word_lengths:
            raise ConfigurationError("sweep ranges cannot be empty")


def _estimate_noise(point: DesignPoint, cfg: DseConfig) -> float:
    """Analytic rate-noise estimate for a design point."""
    # ADC quantisation noise referred to rate: the full-scale rate maps to
    # roughly 1/8 of the converter range through the secondary channel gain.
    adc_lsb_rate = cfg.full_scale_dps * 8.0 / (2 ** point.adc_bits)
    adc_density = adc_lsb_rate / np.sqrt(12.0) / np.sqrt(cfg.sample_rate_hz / 2.0)
    dsp_lsb_rate = cfg.full_scale_dps * 2.0 / (2 ** point.dsp_word_length)
    dsp_density = dsp_lsb_rate / np.sqrt(12.0) / np.sqrt(cfg.sample_rate_hz / 2.0)
    # aliasing penalty for low filter orders: wideband noise folds into the
    # output band when the roll-off is shallow
    alias_penalty = 1.0 + 0.5 / point.output_filter_order
    return float(np.sqrt(cfg.mechanical_noise_dps_rthz ** 2
                         + (adc_density * alias_penalty) ** 2
                         + dsp_density ** 2))


def _estimate_gates(point: DesignPoint) -> int:
    """Analytic digital-size estimate for a design point."""
    datapath = 2200 * point.dsp_word_length          # PLL + AGC + demod datapath
    filters = 900 * point.output_filter_order * point.dsp_word_length // 4
    control = 30_000                                  # fixed control/monitor logic
    return int(datapath + filters + control)


def _estimate_analog_area(point: DesignPoint) -> float:
    """Analog area estimate: the SAR ADC grows with resolution."""
    return 2.5 + 0.18 * max(0, point.adc_bits - 8)


def evaluate_point(point: DesignPoint, config: Optional[DseConfig] = None
                   ) -> EvaluatedPoint:
    """Evaluate one design point with the analytic models."""
    cfg = config or DseConfig()
    noise = _estimate_noise(point, cfg)
    gates = _estimate_gates(point)
    area = _estimate_analog_area(point)
    score = (cfg.noise_weight * noise + cfg.gate_weight * gates
             + cfg.area_weight * area)
    return EvaluatedPoint(point, noise, gates, area, score)


def explore(config: Optional[DseConfig] = None) -> List[EvaluatedPoint]:
    """Evaluate the full sweep and return points sorted by score."""
    cfg = config or DseConfig()
    points = [DesignPoint(a, w, o, b)
              for a, w, o, b in itertools.product(cfg.adc_bits, cfg.dsp_word_lengths,
                                                  cfg.filter_orders, cfg.bandwidths_hz)]
    evaluated = [evaluate_point(p, cfg) for p in points]
    return sorted(evaluated, key=lambda e: e.score)


def pareto_front(evaluated: Sequence[EvaluatedPoint]) -> List[EvaluatedPoint]:
    """Noise-vs-gates Pareto-optimal subset of the evaluated points."""
    front: List[EvaluatedPoint] = []
    for candidate in evaluated:
        dominated = any(
            other.noise_density_dps_rthz <= candidate.noise_density_dps_rthz
            and other.digital_gates <= candidate.digital_gates
            and (other.noise_density_dps_rthz < candidate.noise_density_dps_rthz
                 or other.digital_gates < candidate.digital_gates)
            for other in evaluated)
        if not dominated:
            front.append(candidate)
    return sorted(front, key=lambda e: e.noise_density_dps_rthz)


def recommend(config: Optional[DseConfig] = None) -> EvaluatedPoint:
    """Best-scoring point that meets the Table 1 noise requirement."""
    cfg = config or DseConfig()
    candidates = [e for e in explore(cfg)
                  if e.noise_density_dps_rthz <= cfg.max_noise_dps_rthz]
    if not candidates:
        raise ConfigurationError("no design point satisfies the noise requirement")
    return candidates[0]


# ---------------------------------------------------------------------------
# Simulation-backed validation (batched co-simulation engine)
# ---------------------------------------------------------------------------

@dataclass
class SimulatedPoint:
    """A design point validated with the true mixed-signal co-simulation.

    Where :class:`EvaluatedPoint` scores a point with fast analytic
    models, this carries metrics *measured* on simulated traces of the
    fully configured platform: the batched engine runs a still scenario
    (noise floor, zero-rate offset) and ±probe-rate scenarios (scale
    factor) in lockstep, and the rate-referred metrics come from a
    two-point fit of the simulated response — exactly what the rate
    table does to a physical part.

    The measured fields are ``nan`` if start-up did not complete within
    the simulated window or the datapath wiped out the rate signal
    (e.g. a word length too short for the channel scaling).
    """

    analytic: EvaluatedPoint
    measured_noise_dps_rthz: float
    measured_offset_dps: float
    measured_scale_channel_per_dps: float
    turn_on_time_s: Optional[float]

    @property
    def point(self) -> DesignPoint:
        return self.analytic.point

    @property
    def started(self) -> bool:
        """Whether the simulated platform completed start-up."""
        return self.turn_on_time_s is not None

    @property
    def responsive(self) -> bool:
        """Whether the simulated output actually responded to rate."""
        return (self.started
                and not math.isnan(self.measured_scale_channel_per_dps)
                and self.measured_scale_channel_per_dps != 0.0)

    def summary(self) -> str:
        p = self.point
        head = (f"ADC {p.adc_bits} b, DSP {p.dsp_word_length} b, "
                f"filter order {p.output_filter_order} @ "
                f"{p.output_bandwidth_hz:.0f} Hz: ")
        if not self.started:
            return head + "start-up did not complete in the simulated window"
        if not self.responsive:
            return head + ("datapath quantisation wiped out the rate signal "
                           f"(turn-on {self.turn_on_time_s * 1000:.0f} ms)")
        return (head + f"measured noise {self.measured_noise_dps_rthz:.3f} "
                f"deg/s/rtHz (model {self.analytic.noise_density_dps_rthz:.3f}), "
                f"offset {self.measured_offset_dps:+.2f} deg/s, "
                f"turn-on {self.turn_on_time_s * 1000:.0f} ms")


def platform_config_for_point(point: DesignPoint):
    """Map a :class:`DesignPoint` onto a full platform configuration.

    The sweep's programmable parameters land where the silicon exposes
    them: ADC resolution on both SAR channels, the DSP word length as
    the drive/sense fixed-point output format (sign + 1 integer bit,
    the rest fractional, as in the 16-bit prototype datapath), and the
    output filter order/bandwidth on the sense chain.
    """
    import dataclasses

    from ..common.fixedpoint import QFormat
    from ..platform.gyro_platform import GyroPlatformConfig

    if point.dsp_word_length < 8:
        raise ConfigurationError("DSP word length must be >= 8 bits")
    config = GyroPlatformConfig()
    config.frontend.adc = dataclasses.replace(config.frontend.adc,
                                              bits=point.adc_bits)
    fmt = QFormat(int_bits=1, frac_bits=point.dsp_word_length - 2)
    config.conditioner.drive.output_format = fmt
    config.conditioner.sense.output_format = fmt
    config.conditioner.sense.output_filter_order = point.output_filter_order
    config.conditioner.sense.output_bandwidth_hz = point.output_bandwidth_hz
    return config


def _simulated_from_lanes(evaluated: EvaluatedPoint, still, pos, neg,
                          probe_rate_dps: float) -> SimulatedPoint:
    """Reduce the three validation-lane outcomes to a SimulatedPoint."""
    turn_on = still.metrics["turn_on_time_s"]
    nan = float("nan")
    if turn_on is None or not still.metrics["running_at_end"]:
        return SimulatedPoint(evaluated, nan, nan, nan, None)

    # two-point fit of the uncalibrated channel response (the traces are
    # in channel units: the scaler is at its unity factory default)
    zero = still.metrics["tail_mean_dps"]
    span = pos.metrics["tail_mean_dps"] - neg.metrics["tail_mean_dps"]
    channel_per_dps = span / (2.0 * probe_rate_dps)
    if channel_per_dps == 0.0:
        return SimulatedPoint(evaluated, nan, nan, 0.0, turn_on)

    # rate-referred noise density over the output filter's bandwidth
    noise_density = (still.metrics["tail_std_dps"] / abs(channel_per_dps)
                     / float(np.sqrt(evaluated.point.output_bandwidth_hz)))
    offset_dps = zero / channel_per_dps
    return SimulatedPoint(evaluated, noise_density, offset_dps,
                          channel_per_dps, turn_on)


def simulate_point(evaluated: EvaluatedPoint, duration_s: float = 0.7,
                   probe_rate_dps: float = 100.0,
                   settle_fraction: float = 0.6) -> SimulatedPoint:
    """Validate one design point through the campaign runner.

    The three validation scenarios — at rest (noise floor) and at
    ±``probe_rate_dps`` (scale factor) — run as one campaign packed into
    NumPy lockstep on identically configured platforms.  The metrics
    come from the settled tail of the traces, so ``duration_s`` must
    leave room for start-up (~0.5 s) plus a settled window.
    """
    from ..scenarios.campaign import Campaign
    from ..scenarios.library import design_validation_scenarios

    config = platform_config_for_point(evaluated.point)
    scenarios = design_validation_scenarios(probe_rate_dps, duration_s,
                                            settle_fraction)
    result = Campaign(scenarios, engine="batched",
                      name="dse-validation").run(config=config)
    still, pos, neg = [lane.outcomes[0] for lane in result.lanes]
    return _simulated_from_lanes(evaluated, still, pos, neg, probe_rate_dps)


def validate_with_simulation(evaluated: Sequence[EvaluatedPoint],
                             duration_s: float = 0.7,
                             probe_rate_dps: float = 100.0
                             ) -> List[SimulatedPoint]:
    """Run :func:`simulate_point` over a set of candidate points.

    Each point gets its own three-scenario campaign; use :func:`sweep`
    to additionally pack structurally compatible points into shared
    fleets.
    """
    return [simulate_point(e, duration_s=duration_s,
                           probe_rate_dps=probe_rate_dps) for e in evaluated]


def _structure_key(point: DesignPoint) -> Tuple[int, int]:
    """Fleet-compatibility key: what decides the vectorised state shape.

    Per-lane *values* (ADC bits, bandwidths) may differ inside one
    fleet; the fixed-point word length and the filter order are
    structural (see :func:`repro.engine.state.check_fleet_compatible`).
    """
    return (point.dsp_word_length, point.output_filter_order)


def sweep(config: Optional[DseConfig] = None,
          points: Optional[Sequence[EvaluatedPoint]] = None,
          duration_s: float = 0.7, probe_rate_dps: float = 100.0,
          settle_fraction: float = 0.6,
          min_points: int = 8,
          max_points: Optional[int] = None,
          executor: Optional[str] = None,
          workers: Optional[int] = None,
          store=None) -> List[SimulatedPoint]:
    """Full simulation-backed DSE sweep over the Pareto front.

    Explores the analytic design space, takes the noise-vs-gates Pareto
    front (topped up with the next best-scoring points to at least
    ``min_points``) and validates every candidate with the true
    mixed-signal co-simulation.  Candidates sharing a vectorised state
    *structure* (word length, filter order) are packed into one batched
    campaign — three scenarios per point, so ``k`` compatible points run
    as a ``3k``-lane fleet.

    Args:
        config: sweep ranges for the analytic exploration (ignored when
            ``points`` is given).
        points: explicit candidates to validate instead of the front.
        min_points: top up the front to at least this many candidates.
        max_points: cap the number of candidates (lowest noise first),
            for quick looks at large fronts.
        executor: campaign executor for the validation campaigns
            (``"local"`` in-process, ``"sharded"`` across worker
            processes with a resumable manifest); metrics are
            bit-identical either way.
        workers: worker-process count for the sharded executor.
        store: a :class:`repro.store.ResultStore` backing the validation
            campaigns — design points whose configuration and scenarios
            are unchanged since a previous sweep are served from the
            store, so only new or changed candidates re-simulate.

    Returns:
        One :class:`SimulatedPoint` per candidate, in candidate order —
        including the unresponsive ones, so datapaths that quantise the
        rate signal to nothing (the known Q1.14 order-4 failure mode)
        are reported honestly rather than dropped.
    """
    from ..scenarios.campaign import Campaign
    from ..scenarios.library import design_validation_scenarios

    if points is None:
        evaluated = explore(config)
        candidates = pareto_front(evaluated)
        if len(candidates) < min_points:
            chosen = {id(c) for c in candidates}
            extra = [e for e in evaluated if id(e) not in chosen]
            candidates = candidates + extra[:min_points - len(candidates)]
    else:
        candidates = list(points)
    if max_points is not None:
        candidates = candidates[:max_points]
    if not candidates:
        raise ConfigurationError("no design points to sweep")

    groups: Dict[Tuple[int, int], List[int]] = {}
    for index, candidate in enumerate(candidates):
        groups.setdefault(_structure_key(candidate.point), []).append(index)

    simulated: List[Optional[SimulatedPoint]] = [None] * len(candidates)
    for indices in groups.values():
        programs = []
        platforms = []
        for index in indices:
            candidate = candidates[index]
            point_config = platform_config_for_point(candidate.point)
            scenarios = design_validation_scenarios(
                probe_rate_dps, duration_s, settle_fraction)
            programs.extend(scenarios)
            platforms.extend(_platforms_for_config(point_config,
                                                   len(scenarios)))
        campaign = Campaign(programs, engine="batched", name="dse-sweep")
        result = campaign.run(platforms=platforms, executor=executor,
                              workers=workers, store=store)
        for slot, index in enumerate(indices):
            still, pos, neg = [lane.outcomes[0] for lane in
                               result.lanes[3 * slot:3 * slot + 3]]
            simulated[index] = _simulated_from_lanes(
                candidates[index], still, pos, neg, probe_rate_dps)
    return simulated


def _platforms_for_config(config, n: int) -> list:
    """Build ``n`` identically configured platforms for campaign lanes."""
    import copy

    from ..platform.gyro_platform import GyroPlatform
    return [GyroPlatform(copy.deepcopy(config)) for _ in range(n)]
