"""Refinement verification: comparing implementations across abstraction levels.

"The result of a synthesis step is then validated with the previous one
through a verification phase."  In this reproduction the behavioural
(floating-point) and implementation (fixed-point / prototype) models are
both executable, so verification is an equivalence check: run both on
the same stimulus and bound the deviation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from ..common.exceptions import ConfigurationError, VerificationError


@dataclass
class EquivalenceReport:
    """Result of a behavioural-vs-implementation comparison."""

    samples_compared: int
    max_abs_error: float
    rms_error: float
    tolerance: float
    passed: bool

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (f"{self.samples_compared} samples, max |e| = {self.max_abs_error:.3e}, "
                f"rms = {self.rms_error:.3e}, tol = {self.tolerance:.3e} [{status}]")


def compare_traces(reference: np.ndarray, implementation: np.ndarray,
                   tolerance: float, skip_fraction: float = 0.0
                   ) -> EquivalenceReport:
    """Compare an implementation trace against the reference trace.

    Args:
        reference: behavioural (golden) output.
        implementation: refined-model output on the same stimulus.
        tolerance: maximum allowed absolute deviation.
        skip_fraction: initial fraction of the records to ignore
            (start-up transients differ harmlessly between levels).
    """
    reference = np.asarray(reference, dtype=np.float64)
    implementation = np.asarray(implementation, dtype=np.float64)
    if reference.shape != implementation.shape:
        raise ConfigurationError("traces must have the same length")
    if reference.size == 0:
        raise ConfigurationError("traces are empty")
    if not 0.0 <= skip_fraction < 1.0:
        raise ConfigurationError("skip_fraction must be in [0, 1)")
    start = int(reference.size * skip_fraction)
    error = implementation[start:] - reference[start:]
    max_abs = float(np.max(np.abs(error))) if error.size else 0.0
    rms = float(np.sqrt(np.mean(error ** 2))) if error.size else 0.0
    return EquivalenceReport(
        samples_compared=int(error.size),
        max_abs_error=max_abs,
        rms_error=rms,
        tolerance=tolerance,
        passed=max_abs <= tolerance,
    )


def verify_block_refinement(reference_block, refined_block,
                            stimulus: Iterable[float], tolerance: float,
                            skip_fraction: float = 0.0) -> EquivalenceReport:
    """Run two block implementations on the same stimulus and compare.

    Both objects must expose a ``step(x) -> y`` method (the
    :class:`~repro.common.block.Block` protocol).
    """
    stimulus = list(stimulus)
    reference_out = np.array([reference_block.step(float(x)) for x in stimulus])
    refined_out = np.array([refined_block.step(float(x)) for x in stimulus])
    return compare_traces(reference_out, refined_out, tolerance, skip_fraction)


def require_pass(report: EquivalenceReport, what: str = "refinement") -> None:
    """Raise :class:`VerificationError` if the equivalence check failed."""
    if not report.passed:
        raise VerificationError(
            f"{what} verification failed: {report.summary()}")
