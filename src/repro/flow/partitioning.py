"""Analog / hardwired-digital / software partitioning.

The design-space exploration at the MATLAB level "allows a first
partitioning of the system in analog, hardwired and programmable
(software) digital building blocks".  The engine here formalises that
decision: each system *function* lists the implementation candidates it
could be realised with (an analog cell, a digital IP or a firmware
routine, each with its cost and performance metadata), plus constraints
(e.g. "must be hardwired" for sample-rate processing, "must be software"
for field-updatable services).  The engine picks the feasible assignment
with minimum total cost and reports it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.exceptions import PartitioningError
from ..platform.ip_portfolio import Domain


@dataclass(frozen=True)
class ImplementationCandidate:
    """One way of implementing a system function.

    Attributes:
        domain: implementation domain.
        area_mm2: analog area cost.
        gates: digital gate cost.
        power_mw: power cost.
        code_bytes: firmware footprint.
        max_update_rate_hz: fastest rate this implementation can sustain.
        flexibility: 0..1 score for post-silicon updatability.
    """

    domain: Domain
    area_mm2: float = 0.0
    gates: int = 0
    power_mw: float = 0.0
    code_bytes: int = 0
    max_update_rate_hz: float = 1e9
    flexibility: float = 0.0


@dataclass
class SystemFunction:
    """A function of the conditioning system to be mapped onto a domain.

    Attributes:
        name: function name.
        required_rate_hz: update rate the function must sustain.
        candidates: allowed implementations.
        requires_flexibility: needs post-silicon updatability (software).
    """

    name: str
    required_rate_hz: float
    candidates: List[ImplementationCandidate] = field(default_factory=list)
    requires_flexibility: bool = False

    def feasible_candidates(self) -> List[ImplementationCandidate]:
        """Candidates satisfying the rate and flexibility requirements."""
        feasible = [c for c in self.candidates
                    if c.max_update_rate_hz >= self.required_rate_hz]
        if self.requires_flexibility:
            feasible = [c for c in feasible if c.flexibility >= 0.5]
        return feasible


@dataclass
class PartitioningWeights:
    """Relative weights of the cost terms."""

    area_mm2: float = 10.0
    gates: float = 0.0001
    power_mw: float = 1.0
    code_bytes: float = 0.0005


@dataclass
class PartitioningResult:
    """Chosen assignment plus rolled-up cost."""

    assignment: Dict[str, ImplementationCandidate]
    total_cost: float
    analog_area_mm2: float
    digital_gates: int
    power_mw: float
    code_bytes: int

    def domain_of(self, function_name: str) -> Domain:
        """Domain the named function was mapped to."""
        return self.assignment[function_name].domain

    def functions_in_domain(self, domain: Domain) -> List[str]:
        """Names of functions mapped to a domain."""
        return sorted(name for name, cand in self.assignment.items()
                      if cand.domain is domain)


def _cost(candidate: ImplementationCandidate, weights: PartitioningWeights) -> float:
    return (weights.area_mm2 * candidate.area_mm2
            + weights.gates * candidate.gates
            + weights.power_mw * candidate.power_mw
            + weights.code_bytes * candidate.code_bytes)


def partition(functions: Sequence[SystemFunction],
              weights: Optional[PartitioningWeights] = None,
              max_exhaustive: int = 4096) -> PartitioningResult:
    """Choose the minimum-cost feasible implementation for every function.

    The search is exhaustive when the candidate space is small (it is for
    the gyro project) and greedy per-function otherwise.

    Raises:
        PartitioningError: if any function has no feasible candidate.
    """
    weights = weights or PartitioningWeights()
    feasible_lists: List[List[ImplementationCandidate]] = []
    for function in functions:
        feasible = function.feasible_candidates()
        if not feasible:
            raise PartitioningError(
                f"function {function.name!r} has no feasible implementation")
        feasible_lists.append(feasible)

    space = 1
    for feasible in feasible_lists:
        space *= len(feasible)

    best_assignment: Optional[Tuple[ImplementationCandidate, ...]] = None
    best_cost = float("inf")
    if space <= max_exhaustive:
        for combo in itertools.product(*feasible_lists):
            cost = sum(_cost(c, weights) for c in combo)
            if cost < best_cost:
                best_cost = cost
                best_assignment = combo
    else:
        best_assignment = tuple(min(feasible, key=lambda c: _cost(c, weights))
                                for feasible in feasible_lists)
        best_cost = sum(_cost(c, weights) for c in best_assignment)

    assignment = {f.name: c for f, c in zip(functions, best_assignment)}
    return PartitioningResult(
        assignment=assignment,
        total_cost=best_cost,
        analog_area_mm2=sum(c.area_mm2 for c in best_assignment),
        digital_gates=sum(c.gates for c in best_assignment),
        power_mw=sum(c.power_mw for c in best_assignment),
        code_bytes=sum(c.code_bytes for c in best_assignment),
    )


def gyro_system_functions() -> List[SystemFunction]:
    """The gyro conditioning functions and their implementation candidates.

    The candidate costs encode the paper's central argument: analog
    implementations of the signal-processing functions cost area and
    drift with temperature, so everything that can run at the sample rate
    in digital logic should; monitoring/communication functions change
    over the product's life, so they belong in software.
    """
    fast = 120_000.0
    slow = 1_000.0
    return [
        SystemFunction("pickoff_acquisition", fast, [
            ImplementationCandidate(Domain.ANALOG, area_mm2=2.2, power_mw=5.0),
        ]),
        SystemFunction("electrode_drive", fast, [
            ImplementationCandidate(Domain.ANALOG, area_mm2=1.6, power_mw=4.0),
        ]),
        SystemFunction("drive_pll", fast, [
            ImplementationCandidate(Domain.ANALOG, area_mm2=1.8, power_mw=3.0),
            ImplementationCandidate(Domain.DIGITAL_HW, gates=20_000, power_mw=1.7),
            ImplementationCandidate(Domain.SOFTWARE, code_bytes=2_000,
                                    max_update_rate_hz=slow, flexibility=1.0),
        ]),
        SystemFunction("drive_agc", fast, [
            ImplementationCandidate(Domain.ANALOG, area_mm2=1.0, power_mw=2.0),
            ImplementationCandidate(Domain.DIGITAL_HW, gates=7_000, power_mw=0.6),
            ImplementationCandidate(Domain.SOFTWARE, code_bytes=1_000,
                                    max_update_rate_hz=slow, flexibility=1.0),
        ]),
        SystemFunction("rate_demodulation", fast, [
            ImplementationCandidate(Domain.ANALOG, area_mm2=1.5, power_mw=2.5),
            ImplementationCandidate(Domain.DIGITAL_HW, gates=10_000, power_mw=0.8),
        ]),
        SystemFunction("output_filtering", fast, [
            ImplementationCandidate(Domain.ANALOG, area_mm2=2.0, power_mw=1.5),
            ImplementationCandidate(Domain.DIGITAL_HW, gates=14_000, power_mw=1.2),
        ]),
        SystemFunction("temperature_compensation", slow, [
            ImplementationCandidate(Domain.DIGITAL_HW, gates=9_000, power_mw=0.7),
            ImplementationCandidate(Domain.SOFTWARE, code_bytes=1_500,
                                    max_update_rate_hz=slow, flexibility=1.0),
        ]),
        SystemFunction("status_monitoring", 100.0, [
            ImplementationCandidate(Domain.DIGITAL_HW, gates=5_000, power_mw=0.4),
            ImplementationCandidate(Domain.SOFTWARE, code_bytes=2_048,
                                    max_update_rate_hz=slow, flexibility=1.0),
        ], requires_flexibility=True),
        SystemFunction("communication_services", 100.0, [
            ImplementationCandidate(Domain.SOFTWARE, code_bytes=3_072,
                                    max_update_rate_hz=slow, flexibility=1.0),
        ], requires_flexibility=True),
    ]
