"""Platform-based design flow: stages, partitioning, DSE, verification, estimates."""

from .stages import (
    AbstractionLevel,
    DesignFlow,
    DesignFlowStage,
    StageResult,
    build_gyro_design_flow,
)
from .partitioning import (
    ImplementationCandidate,
    PartitioningResult,
    PartitioningWeights,
    SystemFunction,
    gyro_system_functions,
    partition,
)
from .prototype import (
    AsicEstimateReport,
    AsicProcess,
    FpgaDevice,
    FpgaPrototypeReport,
    estimate_asic,
    estimate_fpga_prototype,
)
from .verification import (
    EquivalenceReport,
    compare_traces,
    require_pass,
    verify_block_refinement,
)
from .dse import (
    DesignPoint,
    DseConfig,
    EvaluatedPoint,
    SimulatedPoint,
    evaluate_point,
    explore,
    pareto_front,
    platform_config_for_point,
    recommend,
    simulate_point,
    validate_with_simulation,
)

__all__ = [
    "AbstractionLevel",
    "DesignFlow",
    "DesignFlowStage",
    "StageResult",
    "build_gyro_design_flow",
    "ImplementationCandidate",
    "PartitioningResult",
    "PartitioningWeights",
    "SystemFunction",
    "gyro_system_functions",
    "partition",
    "AsicEstimateReport",
    "AsicProcess",
    "FpgaDevice",
    "FpgaPrototypeReport",
    "estimate_asic",
    "estimate_fpga_prototype",
    "EquivalenceReport",
    "compare_traces",
    "require_pass",
    "verify_block_refinement",
    "DesignPoint",
    "DseConfig",
    "EvaluatedPoint",
    "SimulatedPoint",
    "evaluate_point",
    "explore",
    "pareto_front",
    "platform_config_for_point",
    "recommend",
    "simulate_point",
    "validate_with_simulation",
]
