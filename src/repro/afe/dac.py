"""Digital-to-analog converter model.

The front end drives the sensor electrodes "through couples of DACs for
each loop" and produces the rate output as an analog, ratiometric
voltage.  The model covers quantisation, output clipping, gain/offset
errors with temperature drift and optional glitch-free zero-order-hold
behaviour (the held value is what the mechanical element integrates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..common.exceptions import ConfigurationError
from ..common.units import ROOM_TEMPERATURE_C


@dataclass
class DacConfig:
    """Static configuration of a DAC channel.

    Attributes:
        bits: converter resolution.
        vref: reference voltage; output range is ±vref (bipolar) or
            [0, vref] when ``bipolar`` is False.
        bipolar: True for a ±vref output, False for a unipolar output.
        offset_error_v: output offset at 25 °C.
        gain_error: relative gain error at 25 °C.
        offset_tc_v_per_c: offset drift [V/°C].
        gain_tc_ppm_per_c: gain drift [ppm/°C].
    """

    bits: int = 12
    vref: float = 2.5
    bipolar: bool = True
    offset_error_v: float = 0.0
    gain_error: float = 0.0
    offset_tc_v_per_c: float = 0.0
    gain_tc_ppm_per_c: float = 0.0

    def __post_init__(self) -> None:
        if not 6 <= self.bits <= 16:
            raise ConfigurationError(f"DAC resolution must be 6..16 bits, got {self.bits}")
        if self.vref <= 0:
            raise ConfigurationError("vref must be > 0")


class Dac:
    """Behavioural DAC with zero-order-hold output."""

    def __init__(self, config: DacConfig):
        self.config = config
        self._update_resolution()
        self._held_output = 0.0 if config.bipolar else config.vref / 2.0

    def _update_resolution(self) -> None:
        cfg = self.config
        n_codes = 1 << cfg.bits
        if cfg.bipolar:
            self._lsb = 2.0 * cfg.vref / n_codes
            self._out_min, self._out_max = -cfg.vref, cfg.vref
        else:
            self._lsb = cfg.vref / n_codes
            self._out_min, self._out_max = 0.0, cfg.vref

    @property
    def lsb_volts(self) -> float:
        """Voltage weight of one LSB."""
        return self._lsb

    @property
    def output(self) -> float:
        """Currently held output voltage."""
        return self._held_output

    def set_resolution(self, bits: int) -> None:
        """Reprogram the converter resolution."""
        if not 6 <= bits <= 16:
            raise ConfigurationError(f"DAC resolution must be 6..16 bits, got {bits}")
        self.config.bits = bits
        self._update_resolution()

    def write_normalized(self, value: float,
                         temperature_c: float = ROOM_TEMPERATURE_C) -> float:
        """Update the output from a normalised digital value.

        Args:
            value: digital sample normalised to ±1.0 full scale (bipolar)
                or 0..1 (unipolar).
            temperature_c: die temperature for drift effects.

        Returns:
            The new held analog output voltage.
        """
        cfg = self.config
        lo = -1.0 if cfg.bipolar else 0.0
        clipped = lo if value < lo else (1.0 if value > 1.0 else float(value))
        target = clipped * cfg.vref
        # quantise to the DAC grid
        quantised = round(target / self._lsb) * self._lsb
        dt_c = temperature_c - ROOM_TEMPERATURE_C
        gain = (1.0 + cfg.gain_error) * (1.0 + cfg.gain_tc_ppm_per_c * 1e-6 * dt_c)
        offset = cfg.offset_error_v + cfg.offset_tc_v_per_c * dt_c
        out = quantised * gain + offset
        if out < self._out_min:
            out = self._out_min
        elif out > self._out_max:
            out = self._out_max
        self._held_output = out
        return self._held_output

    def write_voltage(self, voltage: float,
                      temperature_c: float = ROOM_TEMPERATURE_C) -> float:
        """Update the output from a target voltage (convenience wrapper)."""
        cfg = self.config
        if cfg.bipolar:
            return self.write_normalized(voltage / cfg.vref, temperature_c)
        return self.write_normalized(voltage / cfg.vref, temperature_c)

    def reset(self) -> None:
        """Return the output to mid-scale."""
        self._held_output = 0.0 if self.config.bipolar else self.config.vref / 2.0
