"""Analog trim register bank.

"Each analog cell in the front end is digitally controlled, and this
programmability can be of paramount importance for the whole system
functioning."  The trim bank is the register fabric behind that
programmability: a :class:`~repro.common.registers.RegisterFile` whose
registers control PGA gain codes, converter resolutions, offset trims
and output scaling.  Both the 8051 (through the bridge bus) and the JTAG
chain can read and write it, and the paper's "full read-back capability"
requirement is satisfied because every register is readable.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..common.registers import BitField, Register, RegisterFile

#: Default register map of the analog trim bank (16-bit registers).
TRIM_REGISTER_MAP = {
    "afe_primary_gain": 0x00,
    "afe_secondary_gain": 0x02,
    "afe_adc_bits": 0x04,
    "afe_dac_bits": 0x06,
    "afe_primary_offset_trim": 0x08,
    "afe_secondary_offset_trim": 0x0A,
    "afe_output_offset_trim": 0x0C,
    "afe_bandwidth_sel": 0x0E,
    "afe_status": 0x10,
}


def build_trim_bank() -> RegisterFile:
    """Build the analog trim register bank with its default reset values."""
    bank = RegisterFile("analog_trim")
    bank.add(Register("afe_primary_gain", TRIM_REGISTER_MAP["afe_primary_gain"],
                      width=16, reset=1,
                      doc="PGA gain code for the primary pick-off channel"))
    bank.add(Register("afe_secondary_gain", TRIM_REGISTER_MAP["afe_secondary_gain"],
                      width=16, reset=3,
                      doc="PGA gain code for the secondary pick-off channel"))
    bank.add(Register("afe_adc_bits", TRIM_REGISTER_MAP["afe_adc_bits"],
                      width=16, reset=12,
                      doc="SAR ADC resolution in bits (6..16)"))
    bank.add(Register("afe_dac_bits", TRIM_REGISTER_MAP["afe_dac_bits"],
                      width=16, reset=12,
                      doc="Drive/control DAC resolution in bits (6..16)"))
    bank.add(Register("afe_primary_offset_trim",
                      TRIM_REGISTER_MAP["afe_primary_offset_trim"],
                      width=16, reset=0x8000,
                      doc="Primary channel offset trim, 0x8000 = no trim"))
    bank.add(Register("afe_secondary_offset_trim",
                      TRIM_REGISTER_MAP["afe_secondary_offset_trim"],
                      width=16, reset=0x8000,
                      doc="Secondary channel offset trim, 0x8000 = no trim"))
    bank.add(Register("afe_output_offset_trim",
                      TRIM_REGISTER_MAP["afe_output_offset_trim"],
                      width=16, reset=0x8000,
                      doc="Rate-output (null) offset trim, 0x8000 = no trim"))
    bank.add(Register("afe_bandwidth_sel", TRIM_REGISTER_MAP["afe_bandwidth_sel"],
                      width=16, reset=2,
                      doc="Anti-alias bandwidth select code"))
    bank.add(Register("afe_status", TRIM_REGISTER_MAP["afe_status"],
                      width=16, access="ro", reset=0x0001,
                      fields=[BitField("afe_ready", lsb=0, width=1, reset=1,
                                       doc="Analog front-end power-good"),
                              BitField("overload", lsb=1, width=1, reset=0,
                                       doc="Either pick-off channel clipped")],
                      doc="Analog front-end status (read-only)"))
    return bank


def offset_trim_to_volts(code: int, full_scale_v: float = 0.1) -> float:
    """Convert a 16-bit offset-trim code to a trim voltage.

    Code 0x8000 means zero trim; the full 16-bit span covers
    ±``full_scale_v``.
    """
    return (code - 0x8000) / 0x8000 * full_scale_v


def volts_to_offset_trim(volts: float, full_scale_v: float = 0.1) -> int:
    """Inverse of :func:`offset_trim_to_volts` with clamping."""
    code = int(round(volts / full_scale_v * 0x8000)) + 0x8000
    return max(0, min(0xFFFF, code))
