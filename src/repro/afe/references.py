"""Voltage and current references plus supply/clock conditioning.

The front end "provides stable power supply and clock to the digital
section" and contains the voltage/current sources every sensor class
needs (bridge excitation, bias currents, the ratiometric mid-supply that
defines the rate-output null at ~2.5 V in Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.exceptions import ConfigurationError
from ..common.units import ROOM_TEMPERATURE_C


@dataclass
class ReferenceConfig:
    """Configuration of a bandgap-derived reference.

    Attributes:
        nominal: nominal output (volts or amps).
        initial_error: relative error at 25 °C (part-to-part).
        tc_ppm_per_c: temperature coefficient [ppm/°C].
        line_sensitivity: relative change per volt of supply deviation.
    """

    nominal: float
    initial_error: float = 0.0
    tc_ppm_per_c: float = 20.0
    line_sensitivity: float = 1e-4

    def __post_init__(self) -> None:
        if self.nominal <= 0:
            raise ConfigurationError("nominal reference value must be > 0")


class VoltageReference:
    """Bandgap voltage reference with temperature and line sensitivity."""

    def __init__(self, config: ReferenceConfig):
        self.config = config

    def value(self, temperature_c: float = ROOM_TEMPERATURE_C,
              supply_deviation_v: float = 0.0) -> float:
        """Reference output at the given temperature and supply deviation."""
        cfg = self.config
        dt_c = temperature_c - ROOM_TEMPERATURE_C
        return cfg.nominal * (1.0 + cfg.initial_error
                              + cfg.tc_ppm_per_c * 1e-6 * dt_c
                              + cfg.line_sensitivity * supply_deviation_v)


class CurrentReference:
    """Bias-current reference (same behavioural model as the voltage one)."""

    def __init__(self, config: ReferenceConfig):
        self.config = config

    def value(self, temperature_c: float = ROOM_TEMPERATURE_C,
              supply_deviation_v: float = 0.0) -> float:
        """Reference output current at the given conditions."""
        cfg = self.config
        dt_c = temperature_c - ROOM_TEMPERATURE_C
        return cfg.nominal * (1.0 + cfg.initial_error
                              + cfg.tc_ppm_per_c * 1e-6 * dt_c
                              + cfg.line_sensitivity * supply_deviation_v)


@dataclass
class SupplyConfig:
    """5 V automotive supply with regulation for the analog/digital domains.

    Attributes:
        nominal_v: nominal external supply (5.0 V ratiometric systems).
        regulation_error: relative error of the regulated internal rails.
        dropout_v: minimum headroom required by the regulator.
    """

    nominal_v: float = 5.0
    regulation_error: float = 0.002
    dropout_v: float = 0.3

    def __post_init__(self) -> None:
        if self.nominal_v <= 0:
            raise ConfigurationError("supply voltage must be > 0")


class PowerSupply:
    """Supply conditioning block providing the analog and digital rails."""

    def __init__(self, config: SupplyConfig):
        self.config = config

    def analog_rail(self, external_v: float = None) -> float:
        """Regulated analog rail for a given external supply voltage."""
        cfg = self.config
        ext = cfg.nominal_v if external_v is None else external_v
        if ext < cfg.dropout_v:
            raise ConfigurationError("external supply below regulator dropout")
        regulated = min(ext - cfg.dropout_v, cfg.nominal_v)
        return regulated * (1.0 + cfg.regulation_error)

    def midsupply(self, external_v: float = None) -> float:
        """Ratiometric mid-supply used as the rate-output null (≈2.5 V)."""
        cfg = self.config
        ext = cfg.nominal_v if external_v is None else external_v
        return ext / 2.0


@dataclass
class ClockConfig:
    """System clock generator feeding the digital section.

    Attributes:
        frequency_hz: nominal output frequency (20 MHz in the prototype).
        ppm_tolerance: initial frequency tolerance in ppm.
        jitter_rms_s: RMS period jitter.
    """

    frequency_hz: float = 20_000_000.0
    ppm_tolerance: float = 100.0
    jitter_rms_s: float = 50e-12

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError("clock frequency must be > 0")


class ClockGenerator:
    """Clock source; exposes the actual frequency including tolerance."""

    def __init__(self, config: ClockConfig, frequency_error_ppm: float = 0.0):
        self.config = config
        if abs(frequency_error_ppm) > config.ppm_tolerance:
            raise ConfigurationError(
                f"frequency error {frequency_error_ppm} ppm exceeds the "
                f"±{config.ppm_tolerance} ppm tolerance")
        self.frequency_error_ppm = frequency_error_ppm

    @property
    def actual_frequency_hz(self) -> float:
        """Output frequency including the static error."""
        return self.config.frequency_hz * (1.0 + self.frequency_error_ppm * 1e-6)

    def cycles_in(self, duration_s: float) -> int:
        """Number of whole clock cycles in a time interval."""
        if duration_s < 0:
            raise ConfigurationError("duration must be >= 0")
        return int(duration_s * self.actual_frequency_hz)
