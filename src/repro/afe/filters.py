"""Continuous-time (analog) filter models for the front end.

Only "basic filters" live in the analog domain — anti-aliasing ahead of
the SAR ADCs and smoothing after the DACs.  They are modelled as one- or
two-pole low-pass sections discretised at the simulation rate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..common.block import Block
from ..common.exceptions import ConfigurationError


class SinglePoleLowPass(Block):
    """First-order RC low-pass, discretised with the impulse-invariant map."""

    def __init__(self, cutoff_hz: float, sample_rate_hz: float,
                 name: Optional[str] = None):
        super().__init__(name)
        if cutoff_hz <= 0 or sample_rate_hz <= 0:
            raise ConfigurationError("cutoff and sample rate must be > 0")
        if cutoff_hz >= sample_rate_hz / 2.0:
            raise ConfigurationError(
                f"cutoff {cutoff_hz} Hz must be below Nyquist "
                f"({sample_rate_hz / 2.0} Hz)")
        self.cutoff_hz = float(cutoff_hz)
        self.sample_rate_hz = float(sample_rate_hz)
        self._alpha = 1.0 - np.exp(-2.0 * np.pi * cutoff_hz / sample_rate_hz)
        self._state = 0.0

    def step(self, x: float) -> float:
        self._state += self._alpha * (x - self._state)
        return self._state

    def reset(self) -> None:
        self._state = 0.0


class AntiAliasFilter(Block):
    """Two cascaded RC sections used ahead of each SAR ADC."""

    def __init__(self, cutoff_hz: float, sample_rate_hz: float,
                 name: Optional[str] = None):
        super().__init__(name)
        self._first = SinglePoleLowPass(cutoff_hz, sample_rate_hz)
        self._second = SinglePoleLowPass(cutoff_hz, sample_rate_hz)
        self.cutoff_hz = float(cutoff_hz)
        self.sample_rate_hz = float(sample_rate_hz)

    def step(self, x: float) -> float:
        return self._second.step(self._first.step(x))

    def reset(self) -> None:
        self._first.reset()
        self._second.reset()

    def magnitude_at(self, freq_hz: float) -> float:
        """Continuous-time magnitude response of the two-pole section."""
        ratio = freq_hz / self.cutoff_hz
        return 1.0 / (1.0 + ratio ** 2)


class SmoothingFilter(SinglePoleLowPass):
    """Post-DAC reconstruction filter (single pole)."""
