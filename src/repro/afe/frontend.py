"""Assembled analog front-end for the gyro conditioning platform.

The AFE "only absolves functions of driving sensor's electrodes (through
couples of DACs for each loop) and performing signal acquisition (by
means of SAR ADCs, amplifiers and basic filters)"; everything else is
digital.  :class:`GyroAnalogFrontEnd` is exactly that assembly:

* acquisition: charge amplifier → PGA → anti-alias → SAR ADC, one
  channel per pick-off (primary, secondary);
* actuation: one DAC per electrode pair (primary drive, secondary
  control) plus the analog ratiometric rate output;
* housekeeping: references, supply, clock, trim registers.

All programmable parameters are driven from the trim register bank so
that the MCU or JTAG can retune the front end at run time, as the paper
emphasises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..common.exceptions import ConfigurationError
from ..common.registers import RegisterFile
from ..common.units import ROOM_TEMPERATURE_C
from .adc import AdcConfig, SarAdc
from .amplifier import (
    AmplifierConfig,
    ChargeAmplifier,
    ChargeAmplifierConfig,
    ProgrammableGainAmplifier,
)
from .dac import Dac, DacConfig
from .filters import AntiAliasFilter
from .references import (
    ClockConfig,
    ClockGenerator,
    PowerSupply,
    ReferenceConfig,
    SupplyConfig,
    VoltageReference,
)
from .trim import build_trim_bank, offset_trim_to_volts

#: Anti-alias cutoff frequencies selected by the ``afe_bandwidth_sel`` code.
BANDWIDTH_SELECT_HZ = (10_000.0, 20_000.0, 40_000.0, 50_000.0)


@dataclass
class FrontEndConfig:
    """Top-level configuration of the gyro analog front-end.

    Attributes:
        sample_rate_hz: acquisition rate shared by both channels.
        adc: SAR ADC configuration (shared by both channels).
        dac: drive/control DAC configuration.
        primary_amplifier: PGA configuration of the primary channel.
        secondary_amplifier: PGA configuration of the secondary channel.
        charge_amplifier: pick-off charge amplifier configuration.
        reference: bandgap reference configuration.
        supply: supply configuration (5 V ratiometric).
        clock: system clock configuration.
        rate_output_sensitivity_v_per_fs: analog rate-output swing for a
            full-scale digital rate word (the digital chain calibrates the
            word so the net sensitivity is 5 mV/°/s).
        seed: RNG seed for all front-end noise sources.
    """

    sample_rate_hz: float = 120_000.0
    adc: AdcConfig = field(default_factory=lambda: AdcConfig(
        bits=12, vref=2.5, noise_rms_v=150e-6, inl_lsb=0.3,
        offset_error_v=0.5e-3, gain_error=0.002,
        offset_tc_v_per_c=4e-6, gain_tc_ppm_per_c=15.0))
    dac: DacConfig = field(default_factory=lambda: DacConfig(
        bits=12, vref=2.5, bipolar=True, gain_error=0.002,
        offset_error_v=0.5e-3, gain_tc_ppm_per_c=15.0))
    primary_amplifier: AmplifierConfig = field(default_factory=lambda: AmplifierConfig(
        gain_settings=(1.0, 2.0, 4.0, 8.0), gain_index=1,
        noise_density_v_rthz=30e-9, offset_v=0.5e-3, offset_tc_v_per_c=3e-6))
    secondary_amplifier: AmplifierConfig = field(default_factory=lambda: AmplifierConfig(
        gain_settings=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0), gain_index=3,
        noise_density_v_rthz=30e-9, offset_v=0.5e-3, offset_tc_v_per_c=3e-6))
    charge_amplifier: ChargeAmplifierConfig = field(
        default_factory=lambda: ChargeAmplifierConfig(
            transimpedance_gain=1.0, noise_density_v_rthz=50e-9,
            offset_v=0.2e-3, offset_tc_v_per_c=2e-6))
    reference: ReferenceConfig = field(default_factory=lambda: ReferenceConfig(
        nominal=2.5, tc_ppm_per_c=20.0))
    supply: SupplyConfig = field(default_factory=SupplyConfig)
    clock: ClockConfig = field(default_factory=ClockConfig)
    rate_output_sensitivity_v_per_fs: float = 1.5
    seed: Optional[int] = 42

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be > 0")
        if self.rate_output_sensitivity_v_per_fs <= 0:
            raise ConfigurationError("rate output sensitivity must be > 0")


class GyroAnalogFrontEnd:
    """The complete analog front end of the gyro conditioning platform."""

    def __init__(self, config: Optional[FrontEndConfig] = None):
        self.config = config or FrontEndConfig()
        cfg = self.config
        fs = cfg.sample_rate_hz
        seed = cfg.seed

        # acquisition channels
        self.primary_charge_amp = ChargeAmplifier(cfg.charge_amplifier, fs, seed)
        self.secondary_charge_amp = ChargeAmplifier(cfg.charge_amplifier, fs,
                                                    None if seed is None else seed + 1)
        self.primary_pga = ProgrammableGainAmplifier(cfg.primary_amplifier, fs,
                                                     None if seed is None else seed + 2)
        self.secondary_pga = ProgrammableGainAmplifier(cfg.secondary_amplifier, fs,
                                                       None if seed is None else seed + 3)
        self.primary_antialias = AntiAliasFilter(BANDWIDTH_SELECT_HZ[2], fs)
        self.secondary_antialias = AntiAliasFilter(BANDWIDTH_SELECT_HZ[2], fs)
        self.primary_adc = SarAdc(cfg.adc, None if seed is None else seed + 4)
        self.secondary_adc = SarAdc(
            AdcConfig(**{**cfg.adc.__dict__}), None if seed is None else seed + 5)

        # actuation channels
        self.drive_dac = Dac(cfg.dac)
        self.control_dac = Dac(DacConfig(**{**cfg.dac.__dict__}))
        self.rate_output_dac = Dac(DacConfig(
            bits=cfg.dac.bits, vref=cfg.supply.nominal_v, bipolar=False,
            gain_error=cfg.dac.gain_error, gain_tc_ppm_per_c=cfg.dac.gain_tc_ppm_per_c))

        # housekeeping
        self.reference = VoltageReference(cfg.reference)
        self.supply = PowerSupply(cfg.supply)
        self.clock = ClockGenerator(cfg.clock)
        self.trim = build_trim_bank()
        self._offset_trim_primary_v = 0.0
        self._offset_trim_secondary_v = 0.0
        self._offset_trim_output_v = 0.0
        self._overload = False
        self._wire_trim_registers()
        self._apply_all_trims()

    # -- trim register plumbing ----------------------------------------------

    def _wire_trim_registers(self) -> None:
        self.trim.on_write("afe_primary_gain", self._on_primary_gain)
        self.trim.on_write("afe_secondary_gain", self._on_secondary_gain)
        self.trim.on_write("afe_adc_bits", self._on_adc_bits)
        self.trim.on_write("afe_dac_bits", self._on_dac_bits)
        self.trim.on_write("afe_bandwidth_sel", self._on_bandwidth_sel)
        self.trim.on_write("afe_primary_offset_trim", self._on_primary_offset)
        self.trim.on_write("afe_secondary_offset_trim", self._on_secondary_offset)
        self.trim.on_write("afe_output_offset_trim", self._on_output_offset)

    def _apply_all_trims(self) -> None:
        for name in ("afe_primary_gain", "afe_secondary_gain", "afe_adc_bits",
                     "afe_dac_bits", "afe_bandwidth_sel", "afe_primary_offset_trim",
                     "afe_secondary_offset_trim", "afe_output_offset_trim"):
            self.trim.write(name, self.trim.read(name))

    def _on_primary_gain(self, code: int) -> None:
        index = min(code, len(self.primary_pga.config.gain_settings) - 1)
        self.primary_pga.select_gain(index)

    def _on_secondary_gain(self, code: int) -> None:
        index = min(code, len(self.secondary_pga.config.gain_settings) - 1)
        self.secondary_pga.select_gain(index)

    def _on_adc_bits(self, code: int) -> None:
        bits = min(16, max(6, code))
        self.primary_adc.set_resolution(bits)
        self.secondary_adc.set_resolution(bits)

    def _on_dac_bits(self, code: int) -> None:
        bits = min(16, max(6, code))
        self.drive_dac.set_resolution(bits)
        self.control_dac.set_resolution(bits)
        self.rate_output_dac.set_resolution(bits)

    def _on_bandwidth_sel(self, code: int) -> None:
        cutoff = BANDWIDTH_SELECT_HZ[min(code, len(BANDWIDTH_SELECT_HZ) - 1)]
        fs = self.config.sample_rate_hz
        self.primary_antialias = AntiAliasFilter(cutoff, fs)
        self.secondary_antialias = AntiAliasFilter(cutoff, fs)

    def _on_primary_offset(self, code: int) -> None:
        self._offset_trim_primary_v = offset_trim_to_volts(code)

    def _on_secondary_offset(self, code: int) -> None:
        self._offset_trim_secondary_v = offset_trim_to_volts(code)

    def _on_output_offset(self, code: int) -> None:
        self._offset_trim_output_v = offset_trim_to_volts(code)

    # -- signal path ----------------------------------------------------------

    def acquire(self, primary_pickoff_v: float, secondary_pickoff_v: float,
                temperature_c: float = ROOM_TEMPERATURE_C) -> Tuple[float, float]:
        """Acquire both pick-off channels for one sample.

        Returns:
            ``(primary_norm, secondary_norm)`` — normalised (±1 full
            scale) digital samples handed to the DSP block.
        """
        p = self.primary_charge_amp.step(primary_pickoff_v, temperature_c)
        p = self.primary_pga.step(p + self._offset_trim_primary_v, temperature_c)
        p = self.primary_antialias.step(p)
        s = self.secondary_charge_amp.step(secondary_pickoff_v, temperature_c)
        s = self.secondary_pga.step(s + self._offset_trim_secondary_v, temperature_c)
        s = self.secondary_antialias.step(s)
        rail = self.config.adc.vref
        self._overload = abs(p) >= 0.98 * rail or abs(s) >= 0.98 * rail
        self.trim.register("afe_status").hw_write_field("overload", int(self._overload))
        return (self.primary_adc.normalized_sample(p, temperature_c),
                self.secondary_adc.normalized_sample(s, temperature_c))

    def drive(self, drive_norm: float, control_norm: float,
              temperature_c: float = ROOM_TEMPERATURE_C) -> Tuple[float, float]:
        """Update the electrode drive DACs from normalised digital words.

        Returns:
            ``(drive_voltage, control_voltage)`` applied to the sensor.
        """
        drive_v = self.drive_dac.write_normalized(drive_norm, temperature_c)
        control_v = self.control_dac.write_normalized(control_norm, temperature_c)
        return drive_v, control_v

    def rate_output(self, rate_norm: float,
                    temperature_c: float = ROOM_TEMPERATURE_C) -> float:
        """Produce the analog ratiometric rate output.

        ``rate_norm`` is the signed, normalised (±1) digital rate word.
        The output swings around the ratiometric mid-supply (≈2.5 V):
        ``V = Vdd/2 + rate_norm * rate_output_sensitivity + trim``.
        """
        mid = self.supply.midsupply()
        span = self.config.rate_output_sensitivity_v_per_fs
        target = mid + float(np.clip(rate_norm, -1.0, 1.0)) * span \
            + self._offset_trim_output_v
        return self.rate_output_dac.write_normalized(
            target / self.rate_output_dac.config.vref, temperature_c)

    # -- status ---------------------------------------------------------------

    @property
    def overload(self) -> bool:
        """True if either acquisition channel clipped on the last sample."""
        return self._overload

    def reset(self) -> None:
        """Reset the dynamic state of the front end (filters and DACs)."""
        self.primary_pga.reset()
        self.secondary_pga.reset()
        self.primary_antialias.reset()
        self.secondary_antialias.reset()
        self.drive_dac.reset()
        self.control_dac.reset()
        self.rate_output_dac.reset()
        self._overload = False
        self.trim.register("afe_status").hw_write_field("overload", 0)
