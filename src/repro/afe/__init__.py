"""Analog front-end building blocks and the assembled gyro front end."""

from .adc import AdcConfig, SarAdc
from .dac import Dac, DacConfig
from .amplifier import (
    AmplifierConfig,
    ChargeAmplifier,
    ChargeAmplifierConfig,
    ProgrammableGainAmplifier,
)
from .filters import AntiAliasFilter, SinglePoleLowPass, SmoothingFilter
from .references import (
    ClockConfig,
    ClockGenerator,
    CurrentReference,
    PowerSupply,
    ReferenceConfig,
    SupplyConfig,
    VoltageReference,
)
from .trim import (
    TRIM_REGISTER_MAP,
    build_trim_bank,
    offset_trim_to_volts,
    volts_to_offset_trim,
)
from .frontend import BANDWIDTH_SELECT_HZ, FrontEndConfig, GyroAnalogFrontEnd

__all__ = [
    "AdcConfig",
    "SarAdc",
    "Dac",
    "DacConfig",
    "AmplifierConfig",
    "ChargeAmplifier",
    "ChargeAmplifierConfig",
    "ProgrammableGainAmplifier",
    "AntiAliasFilter",
    "SinglePoleLowPass",
    "SmoothingFilter",
    "ClockConfig",
    "ClockGenerator",
    "CurrentReference",
    "PowerSupply",
    "ReferenceConfig",
    "SupplyConfig",
    "VoltageReference",
    "TRIM_REGISTER_MAP",
    "build_trim_bank",
    "offset_trim_to_volts",
    "volts_to_offset_trim",
    "BANDWIDTH_SELECT_HZ",
    "FrontEndConfig",
    "GyroAnalogFrontEnd",
]
