"""Successive-approximation ADC model.

The paper's front end performs "signal acquisition by means of SAR ADCs,
amplifiers and basic filters".  The model captures the effects the
digital chain has to live with: quantisation, input-range clipping,
offset and gain error (with temperature drift), integral nonlinearity
and input-referred noise.  Resolution is programmable, which is one of
the front-end parameters the platform can trim ("number of ADC bits").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..common.exceptions import ConfigurationError
from ..common.noise import BufferedGaussianNoise
from ..common.units import ROOM_TEMPERATURE_C


@dataclass
class AdcConfig:
    """Static configuration of a SAR ADC channel.

    Attributes:
        bits: converter resolution (6..16 supported by the IP portfolio).
        vref: reference voltage; the bipolar input range is ±vref.
        offset_error_v: input-referred offset at 25 °C.
        gain_error: relative gain error at 25 °C (0.001 = 0.1 %).
        inl_lsb: peak integral nonlinearity in LSBs (parabolic bow model).
        noise_rms_v: input-referred RMS noise voltage.
        offset_tc_v_per_c: offset drift [V/°C].
        gain_tc_ppm_per_c: gain drift [ppm/°C].
    """

    bits: int = 12
    vref: float = 2.5
    offset_error_v: float = 0.0
    gain_error: float = 0.0
    inl_lsb: float = 0.0
    noise_rms_v: float = 0.0
    offset_tc_v_per_c: float = 0.0
    gain_tc_ppm_per_c: float = 0.0

    def __post_init__(self) -> None:
        if not 6 <= self.bits <= 16:
            raise ConfigurationError(f"ADC resolution must be 6..16 bits, got {self.bits}")
        if self.vref <= 0:
            raise ConfigurationError("vref must be > 0")
        if self.noise_rms_v < 0:
            raise ConfigurationError("noise must be >= 0")


class SarAdc:
    """Behavioural SAR ADC with bipolar input range ±vref.

    Codes are signed integers in ``[-2**(bits-1), 2**(bits-1) - 1]``.
    """

    def __init__(self, config: AdcConfig, seed: Optional[int] = 0):
        self.config = config
        self._rng = np.random.default_rng(seed)
        self._noise = BufferedGaussianNoise(config.noise_rms_v, seed)
        self._update_resolution()

    def _update_resolution(self) -> None:
        bits = self.config.bits
        self._code_min = -(1 << (bits - 1))
        self._code_max = (1 << (bits - 1)) - 1
        self._lsb = 2.0 * self.config.vref / (1 << bits)

    @property
    def lsb_volts(self) -> float:
        """Voltage weight of one LSB."""
        return self._lsb

    @property
    def full_scale_v(self) -> float:
        """Positive full-scale input voltage."""
        return self.config.vref

    @property
    def code_range(self) -> tuple:
        """(min_code, max_code) of the signed output."""
        return self._code_min, self._code_max

    def set_resolution(self, bits: int) -> None:
        """Reprogram the converter resolution (front-end trim parameter)."""
        if not 6 <= bits <= 16:
            raise ConfigurationError(f"ADC resolution must be 6..16 bits, got {bits}")
        self.config.bits = bits
        self._update_resolution()

    def _apply_errors(self, voltage: float, temperature_c: float) -> float:
        cfg = self.config
        dt_c = temperature_c - ROOM_TEMPERATURE_C
        gain = (1.0 + cfg.gain_error) * (1.0 + cfg.gain_tc_ppm_per_c * 1e-6 * dt_c)
        offset = cfg.offset_error_v + cfg.offset_tc_v_per_c * dt_c
        distorted = voltage * gain + offset
        if cfg.inl_lsb:
            # parabolic INL bow, zero at the range ends, peak at mid-scale
            normalized = distorted / cfg.vref
            normalized = -1.0 if normalized < -1.0 else (1.0 if normalized > 1.0 else normalized)
            distorted += cfg.inl_lsb * self._lsb * (1.0 - normalized ** 2)
        if cfg.noise_rms_v:
            distorted += self._noise.next()
        return distorted

    def convert(self, voltage: float,
                temperature_c: float = ROOM_TEMPERATURE_C) -> int:
        """Convert an input voltage to a signed output code."""
        distorted = self._apply_errors(voltage, temperature_c)
        code = int(math.floor(distorted / self._lsb + 0.5))
        return max(self._code_min, min(self._code_max, code))

    def code_to_voltage(self, code: int) -> float:
        """Ideal voltage corresponding to an output code."""
        return code * self._lsb

    def sample(self, voltage: float,
               temperature_c: float = ROOM_TEMPERATURE_C) -> float:
        """Convert and immediately express the result back in volts.

        This is the convenient form for the sample-domain co-simulation:
        the returned value is the quantised, clipped, error-afflicted
        version of the input.
        """
        return self.code_to_voltage(self.convert(voltage, temperature_c))

    def normalized_sample(self, voltage: float,
                          temperature_c: float = ROOM_TEMPERATURE_C) -> float:
        """Convert and scale to a normalised full-scale of ±1.0.

        The DSP chain works on normalised fixed-point samples, so this is
        the value handed to the digital section.
        """
        return self.sample(voltage, temperature_c) / self.config.vref
