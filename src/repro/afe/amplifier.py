"""Amplifier models: programmable-gain amplifier and charge amplifier.

The front end contains "amplifiers and voltage/current sources, which
are essential building blocks for automotive sensors conditioning", and
"programming main components parameters (such as amplifier gains and
bandwidth ...) through the digital part allows a more accurate
adaptation of the front end circuitry".  Both models therefore expose
register-programmable gain and keep the non-idealities that matter for
the rate output: offset, noise, finite bandwidth and rail clipping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..common.exceptions import ConfigurationError
from ..common.noise import BufferedGaussianNoise
from ..common.units import ROOM_TEMPERATURE_C


@dataclass
class AmplifierConfig:
    """Configuration of a programmable-gain amplifier channel.

    Attributes:
        gain_settings: selectable closed-loop gains (register-indexed).
        gain_index: currently selected gain setting.
        bandwidth_hz: single-pole closed-loop bandwidth; ``None`` = ideal.
        offset_v: input-referred offset at 25 °C.
        offset_tc_v_per_c: offset drift [V/°C].
        noise_density_v_rthz: input-referred white-noise density.
        rail_v: output saturation (±rail_v).
    """

    gain_settings: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
    gain_index: int = 0
    bandwidth_hz: Optional[float] = 200_000.0
    offset_v: float = 0.0
    offset_tc_v_per_c: float = 0.0
    noise_density_v_rthz: float = 0.0
    rail_v: float = 2.5

    def __post_init__(self) -> None:
        if not self.gain_settings:
            raise ConfigurationError("at least one gain setting is required")
        if any(g <= 0 for g in self.gain_settings):
            raise ConfigurationError("gain settings must be > 0")
        if not 0 <= self.gain_index < len(self.gain_settings):
            raise ConfigurationError("gain_index out of range")
        if self.bandwidth_hz is not None and self.bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth must be > 0 or None")
        if self.rail_v <= 0:
            raise ConfigurationError("rail voltage must be > 0")


class ProgrammableGainAmplifier:
    """Sample-domain PGA with selectable gain and a single-pole response."""

    def __init__(self, config: AmplifierConfig, sample_rate_hz: float,
                 seed: Optional[int] = 0):
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be > 0")
        self.config = config
        self.sample_rate_hz = float(sample_rate_hz)
        self._noise_sigma = (config.noise_density_v_rthz
                             * np.sqrt(self.sample_rate_hz / 2.0))
        self._noise = BufferedGaussianNoise(self._noise_sigma, seed)
        self._state = 0.0
        self._update_pole()

    def _update_pole(self) -> None:
        bw = self.config.bandwidth_hz
        if bw is None or bw >= self.sample_rate_hz / 2.0:
            self._alpha = 1.0  # effectively instantaneous
        else:
            self._alpha = 1.0 - np.exp(-2.0 * np.pi * bw / self.sample_rate_hz)

    @property
    def gain(self) -> float:
        """Currently selected gain."""
        return self.config.gain_settings[self.config.gain_index]

    def select_gain(self, index: int) -> float:
        """Select a gain setting by register index and return the new gain."""
        if not 0 <= index < len(self.config.gain_settings):
            raise ConfigurationError(
                f"gain index {index} out of range "
                f"(0..{len(self.config.gain_settings) - 1})")
        self.config.gain_index = index
        return self.gain

    def set_bandwidth(self, bandwidth_hz: Optional[float]) -> None:
        """Reprogram the closed-loop bandwidth."""
        if bandwidth_hz is not None and bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth must be > 0 or None")
        self.config.bandwidth_hz = bandwidth_hz
        self._update_pole()

    def step(self, voltage: float,
             temperature_c: float = ROOM_TEMPERATURE_C) -> float:
        """Amplify one sample."""
        cfg = self.config
        dt_c = temperature_c - ROOM_TEMPERATURE_C
        offset = cfg.offset_v + cfg.offset_tc_v_per_c * dt_c
        noise = self._noise.next()
        ideal = (voltage + offset + noise) * self.gain
        # single-pole low-pass toward the ideal output
        self._state += self._alpha * (ideal - self._state)
        rail = cfg.rail_v
        out = self._state
        return -rail if out < -rail else (rail if out > rail else out)

    def reset(self) -> None:
        """Clear the filter state."""
        self._state = 0.0


@dataclass
class ChargeAmplifierConfig:
    """Configuration of the capacitive pick-off charge amplifier.

    Attributes:
        transimpedance_gain: output volts per input volt of pick-off signal
            (the pick-off capacitance-to-voltage conversion is folded into
            the sensor model, so this is a voltage gain here).
        offset_v: output offset at 25 °C.
        offset_tc_v_per_c: offset drift [V/°C].
        noise_density_v_rthz: output-referred noise density.
        rail_v: output saturation.
    """

    transimpedance_gain: float = 1.0
    offset_v: float = 0.0
    offset_tc_v_per_c: float = 0.0
    noise_density_v_rthz: float = 0.0
    rail_v: float = 2.5

    def __post_init__(self) -> None:
        if self.transimpedance_gain <= 0:
            raise ConfigurationError("gain must be > 0")
        if self.rail_v <= 0:
            raise ConfigurationError("rail voltage must be > 0")


class ChargeAmplifier:
    """Pick-off charge amplifier (capacitance-to-voltage interface)."""

    def __init__(self, config: ChargeAmplifierConfig, sample_rate_hz: float,
                 seed: Optional[int] = 0):
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be > 0")
        self.config = config
        self.sample_rate_hz = float(sample_rate_hz)
        self._noise_sigma = (config.noise_density_v_rthz
                             * np.sqrt(self.sample_rate_hz / 2.0))
        self._noise = BufferedGaussianNoise(self._noise_sigma, seed)

    def step(self, pickoff_voltage: float,
             temperature_c: float = ROOM_TEMPERATURE_C) -> float:
        """Convert one pick-off sample to a buffered voltage."""
        cfg = self.config
        dt_c = temperature_c - ROOM_TEMPERATURE_C
        offset = cfg.offset_v + cfg.offset_tc_v_per_c * dt_c
        noise = self._noise.next()
        out = pickoff_voltage * cfg.transimpedance_gain + offset + noise
        rail = cfg.rail_v
        return -rail if out < -rail else (rail if out > rail else out)
