"""Content-addressed keys for the durable result store.

A store entry holds the complete outcome of one campaign *lane*: the
scenario program it ran, the traces it recorded and the metrics it
extracted.  Its key is a pure function of what determines those bits —

* the lane's **starting state** (the per-lane digest of the campaign's
  :class:`~repro.scenarios.executor.LaneSource`: a pickled platform,
  one platform of a pre-built list, or a configuration);
* the **engine** the campaign resolved (``"reference"``, ``"fused"``,
  ``"batched"`` — equivalence-locked bit-identical, but kept in the key
  so an engine regression can never silently serve another engine's
  traces as its own);
* the **scenario program** (each scenario's
  :meth:`~repro.scenarios.scenario.Scenario.digest`, in program order —
  which already folds in the environment, timing, stop configuration,
  extractor parameters and the order-insensitive fault set).

The *executor* is deliberately **not** part of the key: executors decide
where lanes run, never what they compute (the sharded/local
bit-identity lock), so a store warmed by a sharded campaign serves an
in-process replay and vice versa.  The executor that produced an entry
is recorded in its metadata for provenance.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

#: Version of the on-disk entry schema.  Bump it when the envelope or
#: payload layout changes: entries written under another schema are
#: quarantined on read (treated as misses), never misinterpreted.
STORE_SCHEMA = 1

#: Separator byte that cannot appear in hex digests or engine names.
_SEP = "\x1f"


def lane_key(source_digest: str, engine: str,
             program_digests: Sequence[str]) -> str:
    """The store key of one campaign lane (64-char SHA-256 hex).

    Args:
        source_digest: the lane's entry from
            :meth:`LaneSource.lane_digests` (mode-tagged state digest).
        engine: resolved engine name for the run.
        program_digests: one :meth:`Scenario.digest` per scenario of the
            lane's program, in execution order — order matters here
            (scenario N+1 starts from scenario N's final state), unlike
            the fault set inside one scenario.
    """
    parts = [f"schema={STORE_SCHEMA}", source_digest, engine,
             *program_digests]
    return hashlib.sha256(_SEP.join(parts).encode("utf-8")).hexdigest()


def miss_set_digest(keys: Iterable[str]) -> str:
    """Short digest of a set of lane keys (names miss-set manifest dirs).

    A store-backed campaign reruns only its missing lanes; those
    sub-campaigns get a manifest directory derived from exactly which
    lanes missed, so a crash-resume with the same miss set finds its
    shard files, while a different miss set (some lanes were stored in
    the meantime) gets a fresh, consistent manifest instead of a
    partition mismatch.
    """
    joined = _SEP.join(sorted(keys))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:12]
