"""The durable, content-addressed campaign result store.

One directory holds one store:

.. code-block:: text

    store_dir/
        store.json              # layout marker: {"schema": 1}
        entries/
            ab/abcdef….json     # one verified entry per lane key
        quarantine/
            abcdef….json.payload-checksum-0
                                # damaged entries, moved aside — never
                                # deleted, so nothing is lost to a bug
                                # in the verifier

Every entry is a single JSON *envelope*: schema version, provenance
metadata (campaign, engine, executor, scenario digests), a SHA-256
checksum over the canonical payload bytes, a SHA-256 checksum over the
pickled replay config, the base64 replay config itself (the lane's
scenario program plus its starting :class:`LaneSource` — the ``res.cfg``
round-trip discipline: every stored result carries enough serialized
config to re-derive itself), the payload (the serialised
:class:`~repro.scenarios.campaign.LaneOutcome`) and a whole-envelope
checksum over all of the above, so a flipped byte anywhere in the file —
payload, config or provenance metadata — fails verification.

Writes are durable: temp file in the same directory, ``fsync``, atomic
rename, directory ``fsync``.  A crash at any point leaves either the
previous state or the complete new entry — never a readable-but-wrong
file.  Transient write failures (ENOSPC, EIO) are retried under the
store's :class:`~repro.common.retry.RetryPolicy` before surfacing.
Reads verify everything; any mismatch (checksum, schema version,
truncation, unparseable JSON) quarantines the entry and reports a miss.
Both failure modes are chaos-tested: :mod:`repro.chaos` injects ENOSPC
and kill-mid-rename at the ``store.write`` / ``store.rename`` sites
fired inside the durable-write path.

:meth:`ResultStore.audit` is the runtime defense built on the engine
equivalence locks: it re-simulates a sample of cached entries from their
own replay config on the reference engine and fails loudly
(:class:`~repro.common.exceptions.StoreIntegrityError`) if any stored
payload drifts from the live re-simulation.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import os
import pickle
import random
import time
from typing import Dict, List, Optional, Sequence

from ..chaos.runtime import fire as _chaos_fire
from ..common.exceptions import (
    ConfigurationError,
    StoreError,
    StoreIntegrityError,
)
from ..common.retry import RetryPolicy
from ..platform.result import canonical_bytes, content_digest
from .keys import STORE_SCHEMA

STORE_MARKER = "store.json"
ENTRIES_DIR = "entries"
QUARANTINE_DIR = "quarantine"


@dataclasses.dataclass
class StoreStats:
    """Running counters of one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    quarantined: int = 0
    audited: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class StoreEntry:
    """One verified store entry (metadata + deserialised payload)."""

    key: str
    path: str
    campaign: str
    engine: str
    executor: str
    source_digest: str
    scenarios: List[dict]
    created_unix: float
    payload_sha256: str
    config_sha256: str
    config_b64: str
    payload: dict

    def lane_outcome(self):
        """The stored lane outcome (``platform=None``; see LaneOutcome)."""
        from ..scenarios.campaign import LaneOutcome
        return LaneOutcome.from_dict(self.payload)

    def replay_config(self):
        """Unpickle the stored replay config: ``(program, lane_source)``."""
        return pickle.loads(base64.b64decode(self.config_b64))


@dataclasses.dataclass
class AuditReport:
    """Outcome of one :meth:`ResultStore.audit` pass."""

    checked: int
    verified_keys: List[str]
    quarantined_keys: List[str]

    @property
    def ok(self) -> bool:
        return not self.quarantined_keys


class ResultStore:
    """Content-addressed, integrity-verified campaign result store.

    Args:
        directory: store root; created (with its layout marker) when
            missing.  An existing directory must carry a compatible
            ``store.json`` marker — a different schema version is
            refused rather than misread.
        retry: :class:`~repro.common.retry.RetryPolicy` applied to
            durable writes — transient ``OSError`` failures (ENOSPC
            clearing, EIO) are retried with backoff before surfacing.
            Defaults to three quick attempts.
    """

    def __init__(self, directory: str,
                 retry: Optional[RetryPolicy] = None):
        self.directory = str(directory)
        self.retry = retry or RetryPolicy(max_attempts=3, backoff_s=0.05,
                                          max_backoff_s=1.0)
        self.stats = StoreStats()
        os.makedirs(self.entries_dir, exist_ok=True)
        os.makedirs(self.quarantine_dir, exist_ok=True)
        marker = os.path.join(self.directory, STORE_MARKER)
        if os.path.exists(marker):
            try:
                with open(marker, "r", encoding="utf-8") as fh:
                    schema = json.load(fh).get("schema")
            except (OSError, ValueError) as exc:
                raise StoreError(
                    f"unreadable store marker {marker!r}: {exc}") from exc
            if schema != STORE_SCHEMA:
                raise StoreError(
                    f"store {self.directory!r} uses schema {schema!r}, "
                    f"this code speaks schema {STORE_SCHEMA}")
        else:
            blob = json.dumps({"schema": STORE_SCHEMA}).encode("utf-8")
            self.retry.call(lambda: _durable_write(marker, blob))

    # -- layout -------------------------------------------------------------

    @property
    def entries_dir(self) -> str:
        return os.path.join(self.directory, ENTRIES_DIR)

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.directory, QUARANTINE_DIR)

    def entry_path(self, key: str) -> str:
        return os.path.join(self.entries_dir, key[:2], f"{key}.json")

    def keys(self) -> List[str]:
        """Keys of every entry currently on disk (verified or not)."""
        found = []
        for root, _dirs, files in os.walk(self.entries_dir):
            for name in files:
                if name.endswith(".json"):
                    found.append(name[:-len(".json")])
        return sorted(found)

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.entry_path(key))

    # -- writes -------------------------------------------------------------

    def put(self, key: str, lane, *, config_blob: bytes, campaign: str,
            engine: str, executor: str, source_digest: str) -> str:
        """Durably persist one lane outcome under ``key``.

        Args:
            lane: the :class:`LaneOutcome` to store (its ``to_dict``
                serialisation is the payload; the platform object does
                not travel).
            config_blob: ``pickle.dumps((program, lane_source))``
                captured *before* the lane ran — the replay config the
                equivalence audit re-simulates from.
            campaign, engine, executor, source_digest: provenance
                metadata recorded in the envelope.

        Returns the entry path.  The write is atomic and fsynced: a
        crash mid-put leaves the store exactly as it was.
        """
        payload = lane.to_dict()
        scenarios = [{"name": outcome.name, "digest": outcome.digest()}
                     for outcome in lane.outcomes]
        envelope = {
            "schema": STORE_SCHEMA,
            "key": key,
            "campaign": campaign,
            "engine": engine,
            "executor": executor,
            "source_digest": source_digest,
            "scenarios": scenarios,
            "created_unix": time.time(),
            "config_sha256": content_digest({"pickle": _b64(config_blob)}),
            "config_b64": _b64(config_blob),
            "payload_sha256": content_digest(payload),
            "payload": payload,
        }
        # whole-envelope checksum: covers the provenance metadata the
        # field checksums above do not, so a flipped byte ANYWHERE in
        # the entry quarantines it
        envelope["entry_sha256"] = content_digest(envelope)
        path = self.entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        blob = json.dumps(envelope, indent=1).encode("utf-8")
        self.retry.call(lambda: _durable_write(path, blob))
        self.stats.puts += 1
        return path

    # -- reads --------------------------------------------------------------

    def get(self, key: str):
        """The verified lane outcome stored under ``key``, or ``None``.

        Any integrity failure — unparseable JSON (truncation, flipped
        bytes), schema or key mismatch, payload or config checksum
        mismatch — quarantines the entry and returns ``None``: corrupted
        cache entries degrade to misses, never to wrong results.
        """
        entry = self.load_entry(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry.lane_outcome()

    def load_entry(self, key: str) -> Optional[StoreEntry]:
        """Load and fully verify one envelope (quarantining failures)."""
        path = self.entry_path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            self._quarantine(key, "unreadable")
            return None
        reason = self._verify(key, data)
        if reason is not None:
            self._quarantine(key, reason)
            return None
        return StoreEntry(
            key=key, path=path,
            campaign=data["campaign"], engine=data["engine"],
            executor=data["executor"],
            source_digest=data["source_digest"],
            scenarios=data["scenarios"],
            created_unix=data["created_unix"],
            payload_sha256=data["payload_sha256"],
            config_sha256=data["config_sha256"],
            config_b64=data["config_b64"],
            payload=data["payload"])

    @staticmethod
    def _verify(key: str, data: dict) -> Optional[str]:
        """Reason the envelope fails verification, or None when sound."""
        if not isinstance(data, dict):
            return "malformed"
        if data.get("schema") != STORE_SCHEMA:
            return "schema-version"
        if data.get("key") != key:
            return "key-mismatch"
        for field in ("campaign", "engine", "executor", "source_digest",
                      "scenarios", "created_unix", "config_b64",
                      "config_sha256", "payload_sha256", "payload",
                      "entry_sha256"):
            if field not in data:
                return "malformed"
        if content_digest(data["payload"]) != data["payload_sha256"]:
            return "payload-checksum"
        if (content_digest({"pickle": data["config_b64"]})
                != data["config_sha256"]):
            return "config-checksum"
        body = {k: v for k, v in data.items() if k != "entry_sha256"}
        if content_digest(body) != data["entry_sha256"]:
            return "entry-checksum"
        return None

    # -- quarantine ---------------------------------------------------------

    def _quarantine(self, key: str, reason: str) -> str:
        """Move a damaged entry aside (never delete) and count it."""
        path = self.entry_path(key)
        target = _free_name(
            os.path.join(self.quarantine_dir,
                         f"{os.path.basename(path)}.{reason}"))
        os.replace(path, target)
        self.stats.quarantined += 1
        return target

    def quarantined(self) -> List[dict]:
        """Quarantined files as ``{"file", "key", "reason"}`` records."""
        records = []
        for name in sorted(os.listdir(self.quarantine_dir)):
            stem = name.split(".json.", 1)
            key = stem[0]
            reason = stem[1].rsplit("-", 1)[0] if len(stem) == 2 else "?"
            records.append({"file": os.path.join(self.quarantine_dir, name),
                            "key": key, "reason": reason})
        return records

    # -- the equivalence audit ----------------------------------------------

    def audit(self, sample: Optional[int] = None, seed: int = 0,
              engine: str = "reference") -> AuditReport:
        """Re-simulate stored entries and fail loudly on drift.

        A random ``sample`` of entries (all of them when ``sample`` is
        None) is replayed from each entry's own pickled config — the
        scenario program and the lane's starting state — on ``engine``
        (the reference chain by default).  The fresh payload checksum
        must equal the stored one bit for bit; the engine equivalence
        locks promise exactly that, so any difference means the store,
        the serialisation or an engine has broken, and the audit raises
        :class:`StoreIntegrityError` after quarantining the drifted
        entry.  Entries that fail envelope verification or whose config
        no longer unpickles are quarantined and reported (not drift).

        Returns an :class:`AuditReport`; raises on drift.
        """
        from ..scenarios.campaign import _execute_lanes
        keys = self.keys()
        if sample is not None and sample < len(keys):
            keys = sorted(random.Random(seed).sample(keys, sample))
        verified: List[str] = []
        quarantined: List[str] = []
        drifted: List[str] = []
        for key in keys:
            entry = self.load_entry(key)
            if entry is None:            # quarantined by load_entry
                quarantined.append(key)
                continue
            try:
                program, source = entry.replay_config()
                lanes = source.materialize([0])
                fresh = _execute_lanes([program], lanes, engine)[0]
            except Exception:
                self._quarantine(key, "replay-failed")
                quarantined.append(key)
                self.stats.audited += 1
                continue
            self.stats.audited += 1
            if content_digest(fresh.to_dict()) != entry.payload_sha256:
                self._quarantine(key, "drift")
                drifted.append(key)
            else:
                verified.append(key)
        if drifted:
            raise StoreIntegrityError(
                f"{len(drifted)} stored entr"
                f"{'y' if len(drifted) == 1 else 'ies'} drifted from live "
                f"re-simulation on the {engine!r} engine: "
                f"{', '.join(k[:16] for k in drifted)} — the drifted "
                f"entries were quarantined under {self.quarantine_dir!r}")
        return AuditReport(checked=len(keys), verified_keys=verified,
                           quarantined_keys=quarantined)


def _b64(blob: bytes) -> str:
    return base64.b64encode(blob).decode("ascii")


def _free_name(base: str) -> str:
    """First free ``<base>-N`` filename (quarantine never overwrites)."""
    for n in range(10_000):
        candidate = f"{base}-{n}"
        if not os.path.exists(candidate):
            return candidate
    raise ConfigurationError(f"too many quarantine files for {base!r}")


def _durable_write(path: str, blob: bytes) -> None:
    """Temp file + fsync + atomic rename + directory fsync.

    The rename publishes the entry atomically; the two fsyncs make it
    durable — a crash (or kill) at any instant leaves either no entry or
    the complete, verifiable entry.  The temp name includes the PID so
    concurrent writers never collide; a stray ``.tmp-*`` from a killed
    writer is ignored by every reader.

    Chaos sites: ``store.write`` fires before anything touches disk
    (transient ENOSPC injection lands here) and ``store.rename`` fires
    in the vulnerable window between the fsync and the atomic rename
    (kill-mid-rename injection) — the promise under chaos test is that
    neither can ever leave a readable-but-wrong file.
    """
    _chaos_fire("store.write", path=path)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    _chaos_fire("store.rename", path=path)
    os.replace(tmp, path)
    try:
        dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    except OSError:                       # platform without dir-open
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
