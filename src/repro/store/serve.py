"""Store-backed campaign execution: hits served, misses scheduled.

This is the serving layer of the ROADMAP's "replayable result store":
``Campaign.run(store=...)`` asks the store for every lane first, runs a
sub-campaign over only the missing (or quarantined) lanes on the
requested executor, durably stores the fresh outcomes, and merges
everything back into one :class:`CampaignResult` in original lane order.

Self-healing resume, end to end:

* **crash mid-shard** — the sub-campaign's shard manifest (placed in a
  ``miss-<digest>`` subdirectory of ``manifest_dir``, named after
  exactly which lanes missed) resumes unfinished shards only;
* **crash mid-write** — a half-written entry is impossible (atomic
  rename) and a half-written temp file is invisible to readers;
* **crash mid-merge** — lanes already stored are hits on the next run,
  the rest form a new miss set with its own manifest directory;
* **corrupted entry** — quarantined on read, treated as a miss,
  transparently re-simulated to a bit-identical result.

Because the campaign chunking is packing-invariant and the engines and
executors are equivalence-locked, a lane served from the store is bit
identical to a lane simulated fresh — the merge order never matters.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from typing import List, Optional

from ..common.exceptions import ConfigurationError
from .keys import lane_key, miss_set_digest
from .store import ResultStore


def run_with_store(campaign, source, engine: str, executor_name: str,
                   options, store: ResultStore, fleet=None):
    """Execute a campaign against a result store (see module docstring).

    Called by ``Campaign.run`` after it has resolved the engine, the
    executor and the lane source; returns the merged
    :class:`CampaignResult`.  Lanes served from the store carry
    ``platform=None`` (the store persists traces and metrics, not live
    simulator objects); lanes that simulated fresh keep their platforms.

    ``fleet`` is an optional pool of pre-built warm platforms: instead
    of deep-copying the base platform once per missing lane, each miss
    borrows a fleet lane and rewinds it to the base platform's exact
    state by reloading one shared pickle of the base (a pickle round
    trip preserves platform state bit-for-bit, so the rewound lane is
    indistinguishable from a cold deep copy).  Store keys are untouched
    — a warm run and a cold run key and replay identically.
    """
    from ..scenarios.campaign import Campaign, CampaignResult
    from ..scenarios.executor import LaneSource, get_executor

    if source.mutate:
        raise ConfigurationError(
            "mutate=True advances the caller's platform in place; a store "
            "hit would skip that, so store-backed campaigns must branch "
            "(drop mutate, or drop store)")
    programs = campaign.programs
    n_lanes = len(programs)
    if fleet is not None:
        if source.mode != "platform":
            raise ConfigurationError(
                "fleet= rewinds warm lanes to one base platform's state; "
                "it requires the platform= lane source")
        if executor_name != "local":
            raise ConfigurationError(
                "fleet= reuses in-process platform objects, which cannot "
                "cross the sharded executor's process boundary; use the "
                "local executor (or drop fleet=)")
        fleet = list(fleet)
        if len(fleet) < n_lanes:
            raise ConfigurationError(
                f"fleet of {len(fleet)} warm lanes cannot cover a "
                f"{n_lanes}-lane campaign")
    source_digests = source.lane_digests(n_lanes)
    keys = [lane_key(source_digests[i], engine,
                     [s.digest() for s in programs[i]])
            for i in range(n_lanes)]
    lanes: List[Optional[object]] = [store.get(key) for key in keys]
    missing = [i for i, lane in enumerate(lanes) if lane is None]
    failed_shards: List[dict] = []
    if missing:
        # capture each missing lane's replay config *before* running:
        # in "platforms" mode the local executor advances the supplied
        # platforms in place, and the stored config must be the state
        # the lane STARTED from, or the audit would replay the wrong run
        config_blobs = {
            i: pickle.dumps((programs[i], source.subset([i])),
                            protocol=pickle.HIGHEST_PROTOCOL)
            for i in missing}
        sub_campaign = Campaign([programs[i] for i in missing],
                                name=campaign.name)
        if fleet is not None:
            # one pickle of the base per campaign, shared by every miss:
            # each borrowed warm lane is rewound in place to the base
            # platform's exact starting state
            base_blob = pickle.dumps(source.base,
                                     protocol=pickle.HIGHEST_PROTOCOL)
            warm_lanes = fleet[:len(missing)]
            for lane in warm_lanes:
                fresh = pickle.loads(base_blob)
                lane.__dict__.clear()
                lane.__dict__.update(fresh.__dict__)
            sub_source = LaneSource("platforms", warm_lanes)
        else:
            sub_source = source.subset(missing)
        sub_options = options
        if options.manifest_dir is not None:
            tag = miss_set_digest(keys[i] for i in missing)
            sub_options = dataclasses.replace(
                options,
                manifest_dir=os.path.join(str(options.manifest_dir),
                                          f"miss-{tag}"))
        result = get_executor(executor_name).runner(
            sub_campaign, sub_source, engine, sub_options)
        for position, index in enumerate(missing):
            lane = result.lanes[position]
            if lane is None:         # quarantined shard: stays missing
                continue
            store.put(keys[index], lane,
                      config_blob=config_blobs[index],
                      campaign=campaign.name, engine=engine,
                      executor=executor_name,
                      source_digest=source_digests[index])
            lanes[index] = lane
        # map the sub-campaign's failure report back onto original lanes
        failed_shards = [
            dict(shard,
                 lane_indices=[missing[j] for j in shard["lane_indices"]])
            for shard in result.failed_shards]
    return CampaignResult(lanes, failed_shards=failed_shards)
