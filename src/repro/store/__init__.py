"""Durable result store: campaigns as content-addressed artifacts.

The serving layer for repeated characterisations, sweeps and CI runs: a
:class:`ResultStore` keys every campaign lane on *what determines its
bits* — starting platform state, engine, scenario program digests — and
persists the outcome durably (fsync + atomic rename) with SHA-256
checksums over payload and replay config.  ``Campaign.run(store=...)``
serves hits instantly, simulates only missing or quarantined lanes, and
merges fresh results back bit-identically;
:meth:`ResultStore.audit` re-simulates a sample of cached entries on the
reference engine and fails loudly on drift.

Quick use::

    from repro.store import ResultStore
    store = ResultStore("results/")
    result = campaign.run(platform, store=store)   # cold: simulates + stores
    result = campaign.run(platform, store=store)   # warm: zero simulation
    store.audit(sample=5)                          # spot-check integrity
"""

from ..common.exceptions import StoreError, StoreIntegrityError
from .keys import STORE_SCHEMA, lane_key, miss_set_digest
from .store import (
    AuditReport,
    ResultStore,
    StoreEntry,
    StoreStats,
)

__all__ = [
    "STORE_SCHEMA",
    "AuditReport",
    "ResultStore",
    "StoreEntry",
    "StoreError",
    "StoreIntegrityError",
    "StoreStats",
    "lane_key",
    "miss_set_digest",
]
