"""Graceful degradation: the platform's safe-mode monitor.

The paper's CPU "constantly checks the system status by accessing the
several readable registers spread along the processing chain"; this
module gives it something to check when the analog section misbehaves.
:class:`SafeModeMonitor` watches the front end's overload flag at every
campaign chunk boundary (and after every direct ``run``), latches a
*safe mode* on the rising edge of an overload episode, counts episodes,
and accumulates the time spent saturated.  Its register bank —
``safety_status`` / ``safety_event_count`` / ``safety_watchdog`` — is
bridge-attachable (MOVX window ``0x8200``) so the 8051 firmware can
poll the latch and clear it by kicking the watchdog, closing the
detect → degrade → recover loop in software.

Observation happens at chunk boundaries only, where every engine
exposes identical platform state, so the monitor (and the result fields
it stamps) is bit-identical across the reference, fused and batched
engines and both executors.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.registers import BitField, RegisterFile

#: Bridge-relative base of the safety registers.  Must not collide with
#: the trim bank (0x00..0x10) or the DSP monitor registers
#: (0x100..0x10C): the MCU bus bridge resolves addresses first-match
#: across the attached register files.
SAFETY_REGISTER_BASE = 0x200

SAFETY_REGISTER_MAP = {
    "safety_status": SAFETY_REGISTER_BASE + 0x00,
    "safety_event_count": SAFETY_REGISTER_BASE + 0x02,
    "safety_watchdog": SAFETY_REGISTER_BASE + 0x04,
}


def build_safety_registers() -> RegisterFile:
    """The safe-mode register bank (read by firmware over the bridge)."""
    bank = RegisterFile("safety")
    bank.define(
        "safety_status", SAFETY_REGISTER_MAP["safety_status"], access="ro",
        fields=[BitField("safe_mode", 0, doc="latched overload episode"),
                BitField("overload", 1, doc="live front-end overload flag")],
        doc="safe-mode latch and live overload status")
    bank.define(
        "safety_event_count", SAFETY_REGISTER_MAP["safety_event_count"],
        access="ro", doc="number of overload episodes since reset")
    bank.define(
        "safety_watchdog", SAFETY_REGISTER_MAP["safety_watchdog"],
        fields=[BitField("kick", 0, doc="write 1 to clear the latch")],
        doc="firmware service register: kicking clears safe mode")
    return bank


class SafeModeMonitor:
    """Latches safe mode from the front-end overload flag.

    The latch is *sticky*: one overload episode (a rising edge of the
    overload flag between observations) sets ``safe_mode`` and bumps the
    episode counter exactly once; the flag dropping does not clear the
    latch — only a power cycle (:meth:`reset`) or a firmware watchdog
    kick (:meth:`service`, or a bus write to ``safety_watchdog``) does.
    """

    def __init__(self) -> None:
        self.registers = build_safety_registers()
        self.registers.register("safety_watchdog").on_write(self._on_watchdog)
        self._clear_state()
        self._publish(False)

    def _clear_state(self) -> None:
        self.safe_mode = False
        self.event_count = 0
        self.first_latch_s: Optional[float] = None
        self.overload_time_s = 0.0
        self._prev_overload = False

    # -- observation --------------------------------------------------------

    def observe(self, now_s: float, overload: bool, elapsed_s: float) -> None:
        """Account one observation window ending at ``now_s``.

        ``overload`` is the front-end flag at the window's end (the
        chunk boundary); ``elapsed_s`` is the window length, credited to
        the saturation time when the window ends saturated.
        """
        if overload:
            self.overload_time_s += elapsed_s
            if not self._prev_overload:
                self.event_count += 1
                self.safe_mode = True
                if self.first_latch_s is None:
                    self.first_latch_s = now_s
        self._prev_overload = overload
        self._publish(overload)

    def _publish(self, overload: bool) -> None:
        status = self.registers.register("safety_status")
        status.hw_write_field("safe_mode", int(self.safe_mode))
        status.hw_write_field("overload", int(overload))
        self.registers.register("safety_event_count").hw_write(
            self.event_count & 0xFFFF)

    # -- firmware service ---------------------------------------------------

    def _on_watchdog(self, value: int) -> None:
        if value & 0x1:
            self.safe_mode = False
            status = self.registers.register("safety_status")
            status.hw_write_field("safe_mode", 0)
            # the kick bit is self-clearing
            self.registers.register("safety_watchdog").hw_write(0)

    def service(self) -> None:
        """Clear the safe-mode latch (what a watchdog kick does)."""
        self._on_watchdog(1)

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Power-cycle: clear the latch, counters and registers."""
        self._clear_state()
        self.registers.reset()
        self._publish(False)

    def result_fields(self) -> Dict[str, object]:
        """The monitor snapshot stamped onto ``GyroSimulationResult``."""
        return {
            "safe_mode": self.safe_mode,
            "safe_mode_events": self.event_count,
            "safe_mode_entry_s": self.first_latch_s,
            "overload_time_s": self.overload_time_s,
        }
