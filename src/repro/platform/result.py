"""Simulation result containers for the mixed-signal co-simulation."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..common.exceptions import ConfigurationError, SimulationError


def canonical_bytes(data: dict) -> bytes:
    """Deterministic byte serialisation of a JSON-compatible dict.

    Keys are sorted and separators fixed, so the same logical content
    always produces the same bytes — the foundation of every checksum in
    the result store.  Floats go through ``repr`` (binary64 round-trip),
    and non-finite values keep Python's ``NaN``/``Infinity`` spellings,
    which ``json.loads`` accepts back.
    """
    return json.dumps(data, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def content_digest(data: dict) -> str:
    """SHA-256 hex digest of :func:`canonical_bytes` of ``data``."""
    return hashlib.sha256(canonical_bytes(data)).hexdigest()


@dataclass
class GyroSimulationResult:
    """Recorded traces from a :class:`~repro.platform.gyro_platform.GyroPlatform` run.

    All trace arrays share the same (decimated) time base ``time_s``.

    Attributes:
        time_s: time stamps of the recorded samples.
        sample_rate_hz: rate of the recorded traces (after decimation).
        true_rate_dps: applied (true) yaw rate.
        temperature_c: applied die temperature.
        rate_output_dps: digital rate estimate of the conditioning chain.
        rate_output_v: analog ratiometric rate output (around ~2.5 V).
        amplitude_control: AGC drive-gain trace (Fig. 5 / Fig. 6).
        amplitude_error: AGC amplitude-error trace.
        phase_error: PLL phase-error trace.
        vco_control: PLL frequency-control trace [Hz offset].
        pll_locked: PLL lock flag trace.
        running: start-up-complete flag trace.
        primary_pickoff_norm: normalised primary ADC samples (optional,
            recorded only when waveform recording is enabled).
        drive_word: drive-DAC word trace (optional).
        turn_on_time_s: measured turn-on time, if start-up completed.
        safe_mode: safe-mode latch state at the end of the run (None
            when no safe-mode monitor observed the run).
        safe_mode_events: overload episodes latched during the run.
        safe_mode_entry_s: time the latch first set, or None.
        overload_time_s: accumulated time the front end spent saturated.
    """

    time_s: np.ndarray
    sample_rate_hz: float
    true_rate_dps: np.ndarray
    temperature_c: np.ndarray
    rate_output_dps: np.ndarray
    rate_output_v: np.ndarray
    amplitude_control: np.ndarray
    amplitude_error: np.ndarray
    phase_error: np.ndarray
    vco_control: np.ndarray
    pll_locked: np.ndarray
    running: np.ndarray
    primary_pickoff_norm: Optional[np.ndarray] = None
    drive_word: Optional[np.ndarray] = None
    turn_on_time_s: Optional[float] = None
    safe_mode: Optional[bool] = None
    safe_mode_events: Optional[int] = None
    safe_mode_entry_s: Optional[float] = None
    overload_time_s: Optional[float] = None

    def __post_init__(self) -> None:
        n = self.time_s.size
        for name in ("true_rate_dps", "temperature_c", "rate_output_dps",
                     "rate_output_v", "amplitude_control", "amplitude_error",
                     "phase_error", "vco_control", "pll_locked", "running"):
            arr = getattr(self, name)
            if arr.size != n:
                raise ConfigurationError(
                    f"trace {name!r} has {arr.size} samples, expected {n}")

    @property
    def duration_s(self) -> float:
        """Total recorded duration."""
        if self.time_s.size == 0:
            return 0.0
        return float(self.time_s[-1] - self.time_s[0])

    def settled_slice(self, fraction: float = 0.5) -> slice:
        """Index slice selecting the last ``fraction`` of the record."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must be in (0, 1]")
        start = int(self.time_s.size * (1.0 - fraction))
        return slice(start, self.time_s.size)

    def mean_output_dps(self, fraction: float = 0.5) -> float:
        """Mean digital rate output over the settled tail of the record."""
        return float(np.mean(self.rate_output_dps[self.settled_slice(fraction)]))

    def mean_output_v(self, fraction: float = 0.5) -> float:
        """Mean analog rate output over the settled tail of the record."""
        return float(np.mean(self.rate_output_v[self.settled_slice(fraction)]))

    def lock_time_s(self) -> Optional[float]:
        """Time at which the PLL first reported lock, or None."""
        locked = np.nonzero(self.pll_locked)[0]
        if locked.size == 0:
            return None
        return float(self.time_s[locked[0]])

    def summary(self) -> Dict[str, float]:
        """Key figures of the run (for logging and quick inspection)."""
        return {
            "duration_s": self.duration_s,
            "final_rate_dps": float(self.rate_output_dps[-1]) if self.rate_output_dps.size else float("nan"),
            "final_output_v": float(self.rate_output_v[-1]) if self.rate_output_v.size else float("nan"),
            "locked": bool(self.pll_locked[-1]) if self.pll_locked.size else False,
            "turn_on_time_s": self.turn_on_time_s if self.turn_on_time_s is not None else float("nan"),
        }

    # -- serialisation ------------------------------------------------------

    _FLOAT_TRACES = ("time_s", "true_rate_dps", "temperature_c",
                     "rate_output_dps", "rate_output_v", "amplitude_control",
                     "amplitude_error", "phase_error", "vco_control")
    _BOOL_TRACES = ("pll_locked", "running")
    _SCALARS = ("turn_on_time_s", "safe_mode", "safe_mode_events",
                "safe_mode_entry_s", "overload_time_s")

    def to_dict(self) -> dict:
        """JSON-compatible dict; :meth:`from_dict` restores it exactly.

        Float traces round-trip losslessly: Python floats keep full
        binary64 precision through ``json`` (repr round-trips), and
        :meth:`from_dict` rebuilds the float64/bool arrays.
        """
        out = {"sample_rate_hz": self.sample_rate_hz}
        for name in self._SCALARS:
            out[name] = getattr(self, name)
        for name in self._FLOAT_TRACES + self._BOOL_TRACES:
            out[name] = getattr(self, name).tolist()
        for name in ("primary_pickoff_norm", "drive_word"):
            arr = getattr(self, name)
            out[name] = None if arr is None else arr.tolist()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "GyroSimulationResult":
        """Rebuild a result from :meth:`to_dict` output, bit-exact."""
        kwargs = {"sample_rate_hz": data["sample_rate_hz"]}
        for name in cls._SCALARS:
            kwargs[name] = data.get(name)
        for name in cls._FLOAT_TRACES:
            kwargs[name] = np.asarray(data[name], dtype=np.float64)
        for name in cls._BOOL_TRACES:
            kwargs[name] = np.asarray(data[name], dtype=bool)
        for name in ("primary_pickoff_norm", "drive_word"):
            value = data.get(name)
            kwargs[name] = (None if value is None
                            else np.asarray(value, dtype=np.float64))
        return cls(**kwargs)

    def digest(self) -> str:
        """Stable content digest of the recorded traces and scalars.

        Two results digest identically exactly when :meth:`to_dict`
        produces the same content — i.e. when every trace is bit-equal
        and every scalar matches.  This is what the result store
        checksums and the equivalence audit compare.
        """
        return content_digest(self.to_dict())


def concatenate_results(results: Sequence["GyroSimulationResult"]
                        ) -> "GyroSimulationResult":
    """Concatenate consecutive simulation segments into one result.

    Consecutive ``run()`` calls on one platform are exactly one
    continuous simulation split at recording boundaries, so the campaign
    layer and the chunked start-up loop stitch their segment traces back
    together with this.  The turn-on time and sample rate come from the
    last segment; waveform traces are concatenated only when every
    segment recorded them.
    """
    if not results:
        raise SimulationError("no simulation segments to concatenate")
    if len(results) == 1:
        return results[0]
    last = results[-1]

    def cat(name: str) -> np.ndarray:
        return np.concatenate([getattr(r, name) for r in results])

    waveforms = all(r.primary_pickoff_norm is not None for r in results)
    return GyroSimulationResult(
        time_s=cat("time_s"),
        sample_rate_hz=last.sample_rate_hz,
        true_rate_dps=cat("true_rate_dps"),
        temperature_c=cat("temperature_c"),
        rate_output_dps=cat("rate_output_dps"),
        rate_output_v=cat("rate_output_v"),
        amplitude_control=cat("amplitude_control"),
        amplitude_error=cat("amplitude_error"),
        phase_error=cat("phase_error"),
        vco_control=cat("vco_control"),
        pll_locked=cat("pll_locked"),
        running=cat("running"),
        primary_pickoff_norm=cat("primary_pickoff_norm") if waveforms else None,
        drive_word=cat("drive_word") if waveforms else None,
        turn_on_time_s=last.turn_on_time_s,
        safe_mode=last.safe_mode,
        safe_mode_events=last.safe_mode_events,
        safe_mode_entry_s=last.safe_mode_entry_s,
        overload_time_s=last.overload_time_s,
    )
