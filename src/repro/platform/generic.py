"""The generic sensor-interface platform of Fig. 2 and its customisation.

The generic platform is the *superset* of resources (analog cells,
hardwired DSP IPs, the 8051 subsystem and firmware services) from which
a specific sensor interface is derived: "from such generic platform, the
optimum interface for a specific sensor can be easily derived in a short
time", and "only the required analog/digital components are integrated
onto silicon".

:class:`GenericSensorPlatform` models exactly that: it owns the IP
portfolio and a set of named customisation recipes (gyro, capacitive
pressure, resistive bridge, inductive position); :meth:`derive` selects
the blocks a given sensor class needs and returns a
:class:`PlatformInstance` carrying the selected blocks and their rolled-
up implementation cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..common.exceptions import ConfigurationError
from .ip_portfolio import Domain, IpBlock, IpPortfolio, default_portfolio

#: Blocks every customisation needs regardless of the sensor class.
BASE_BLOCKS = (
    "sar_adc_12b", "dac_12b", "pga", "antialias_filter", "bandgap_reference",
    "bias_generator", "supply_regulator", "clock_oscillator", "temperature_sensor",
    "iir_filter", "compensation_unit",
    "cpu_8051", "memory_subsystem", "bus_bridge", "uart", "spi",
    "timer_watchdog", "jtag_tap",
    "monitor_firmware", "comm_firmware", "trim_firmware", "boot_loader",
)

#: Extra blocks per sensor class (the "customisation recipes").
SENSOR_CLASS_BLOCKS: Dict[str, Sequence[str]] = {
    "gyro": ("charge_amplifier", "nco", "mixer_demodulator", "pll_loop_filter",
             "agc", "fir_filter", "cic_decimator", "force_rebalance",
             "sram_controller"),
    "capacitive": ("charge_amplifier", "cic_decimator", "fir_filter"),
    "resistive": ("bridge_excitation", "fir_filter", "cic_decimator"),
    "inductive": ("lvdt_driver", "nco", "mixer_demodulator", "fir_filter"),
}


@dataclass
class PlatformInstance:
    """A customised instance of the generic platform.

    Attributes:
        sensor_class: the sensor class it was derived for.
        blocks: the selected IP blocks.
        analog_area_mm2: rolled-up analog area.
        digital_gates: rolled-up digital gate count.
        power_mw: rolled-up power consumption.
        code_bytes: rolled-up firmware footprint.
    """

    sensor_class: str
    blocks: List[IpBlock] = field(default_factory=list)
    analog_area_mm2: float = 0.0
    digital_gates: int = 0
    power_mw: float = 0.0
    code_bytes: int = 0

    def block_names(self) -> List[str]:
        """Names of the selected blocks (sorted for stable reports)."""
        return sorted(b.name for b in self.blocks)

    def blocks_in_domain(self, domain: Domain) -> List[IpBlock]:
        """Selected blocks belonging to one implementation domain."""
        return [b for b in self.blocks if b.domain is domain]


class GenericSensorPlatform:
    """The generic automotive sensor-interface platform."""

    def __init__(self, portfolio: Optional[IpPortfolio] = None):
        self.portfolio = portfolio or default_portfolio()

    @property
    def supported_sensor_classes(self) -> List[str]:
        """Sensor classes with a customisation recipe."""
        return sorted(SENSOR_CLASS_BLOCKS)

    def derive(self, sensor_class: str,
               extra_blocks: Sequence[str] = ()) -> PlatformInstance:
        """Derive a customised platform instance for a sensor class.

        Args:
            sensor_class: one of :attr:`supported_sensor_classes`.
            extra_blocks: additional portfolio blocks to force-include
                (e.g. ``"sram_controller"`` for a prototyping build).

        Returns:
            A :class:`PlatformInstance` with the selected blocks and
            rolled-up cost.
        """
        if sensor_class not in SENSOR_CLASS_BLOCKS:
            raise ConfigurationError(
                f"unknown sensor class {sensor_class!r}; supported: "
                f"{self.supported_sensor_classes}")
        names = list(dict.fromkeys(list(BASE_BLOCKS)
                                   + list(SENSOR_CLASS_BLOCKS[sensor_class])
                                   + list(extra_blocks)))
        blocks = [self.portfolio.get(name) for name in names]
        instance = PlatformInstance(
            sensor_class=sensor_class,
            blocks=blocks,
            analog_area_mm2=sum(b.area_mm2 for b in blocks),
            digital_gates=sum(b.gates for b in blocks),
            power_mw=sum(b.power_mw for b in blocks),
            code_bytes=sum(b.code_bytes for b in blocks),
        )
        return instance

    def unused_blocks(self, instance: PlatformInstance) -> List[IpBlock]:
        """Portfolio blocks *not* integrated in the given instance.

        This is the crux of the platform argument: a Universal Sensor
        Interface would carry all of these on silicon; the platform-based
        derivation leaves them out.
        """
        selected = set(instance.block_names())
        return [b for b in self.portfolio if b.name not in selected]

    def architecture_report(self, instance: PlatformInstance) -> str:
        """Human-readable architecture summary (Fig. 2 / Fig. 4 style)."""
        lines = [f"Platform instance for sensor class '{instance.sensor_class}'",
                 "=" * 60]
        for domain, title in ((Domain.ANALOG, "Analog front-end"),
                              (Domain.DIGITAL_HW, "Hardwired digital"),
                              (Domain.SOFTWARE, "Software (8051 firmware)")):
            lines.append(f"{title}:")
            for block in instance.blocks_in_domain(domain):
                cost = []
                if block.area_mm2:
                    cost.append(f"{block.area_mm2:.2f} mm2")
                if block.gates:
                    cost.append(f"{block.gates} gates")
                if block.code_bytes:
                    cost.append(f"{block.code_bytes} bytes")
                cost_text = ", ".join(cost) if cost else "-"
                lines.append(f"  - {block.name:<22s} {cost_text:<24s} {block.description}")
        lines.append("-" * 60)
        lines.append(f"Analog area : {instance.analog_area_mm2:8.2f} mm2")
        lines.append(f"Digital size: {instance.digital_gates:8d} gates")
        lines.append(f"Power       : {instance.power_mw:8.1f} mW")
        lines.append(f"Firmware    : {instance.code_bytes:8d} bytes")
        return "\n".join(lines)
