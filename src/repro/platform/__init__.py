"""Platform assembly: IP portfolio, generic platform and the gyro instance."""

from .ip_portfolio import Domain, IpBlock, IpPortfolio, default_portfolio
from .generic import (
    BASE_BLOCKS,
    SENSOR_CLASS_BLOCKS,
    GenericSensorPlatform,
    PlatformInstance,
)
from .result import (
    GyroSimulationResult,
    canonical_bytes,
    concatenate_results,
    content_digest,
)
from .gyro_platform import (
    GyroPlatform,
    GyroPlatformConfig,
    TemperatureSensorConfig,
)

__all__ = [
    "Domain",
    "IpBlock",
    "IpPortfolio",
    "default_portfolio",
    "BASE_BLOCKS",
    "SENSOR_CLASS_BLOCKS",
    "GenericSensorPlatform",
    "PlatformInstance",
    "GyroSimulationResult",
    "canonical_bytes",
    "concatenate_results",
    "content_digest",
    "GyroPlatform",
    "GyroPlatformConfig",
    "TemperatureSensorConfig",
]
