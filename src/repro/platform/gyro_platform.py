"""The customised gyro conditioning platform (case study of Section 4).

:class:`GyroPlatform` is the mixed-signal co-simulation of the complete
system: the MEMS vibrating-ring sensor, the analog front-end and the
digital conditioning chain, closed in a loop sample by sample exactly as
the silicon closes it through electrodes and pick-offs.  It also owns
the calibration procedure (scale factor, offset, temperature
compensation) that a production part undergoes on the rate table.

This is the object the evaluation harness and the benchmarks drive.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..afe.frontend import FrontEndConfig, GyroAnalogFrontEnd
from ..common.exceptions import ConfigurationError, SimulationError
from ..common.units import ROOM_TEMPERATURE_C
from ..gyro.calibration import (
    fit_scale_factor,
    fit_temperature_compensation,
    select_reference_slope,
)
from ..gyro.conditioning import GyroConditioner, GyroConditionerConfig
from ..scenarios.engines import ENGINE_BATCHED, get_engine, validate_engine
from ..sensors.environment import Environment
from ..sensors.gyro import GyroParameters, VibratingRingGyro
from .result import GyroSimulationResult
from .safety import SafeModeMonitor


@dataclass
class TemperatureSensorConfig:
    """On-chip temperature sensor used by the digital compensation.

    Attributes:
        offset_error_c: static measurement offset.
        resolution_c: quantisation step of the digital temperature word.
    """

    offset_error_c: float = 0.3
    resolution_c: float = 0.25

    def __post_init__(self) -> None:
        if self.resolution_c <= 0:
            raise ConfigurationError("temperature resolution must be > 0")


@dataclass
class GyroPlatformConfig:
    """Configuration of the complete case-study platform.

    Attributes:
        sample_rate_hz: co-simulation / acquisition sample rate.
        sensor: MEMS gyro parameters.
        frontend: analog front-end configuration.
        conditioner: digital conditioning chain configuration.
        temperature_sensor: on-chip temperature sensor model.
        record_decimation: trace recording decimation factor.
        engine: default simulation engine — ``"fused"`` (flattened
            single-function kernel, the fast default), ``"compiled"``
            (generated specialised kernel, numba-JIT when available) or
            ``"reference"`` (the original object-oriented per-sample
            loop).  All produce bit-identical traces; see
            ``repro.engine`` and the registry in
            ``repro.scenarios.engines``.
    """

    sample_rate_hz: float = 120_000.0
    sensor: GyroParameters = field(default_factory=GyroParameters)
    frontend: FrontEndConfig = field(default_factory=FrontEndConfig)
    conditioner: GyroConditionerConfig = field(default_factory=GyroConditionerConfig)
    temperature_sensor: TemperatureSensorConfig = field(
        default_factory=TemperatureSensorConfig)
    record_decimation: int = 16
    engine: str = "fused"

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be > 0")
        if self.record_decimation < 1:
            raise ConfigurationError("record decimation must be >= 1")
        validate_engine(self.engine, scalar_only=True)
        # keep every section on the same time base
        self.frontend.sample_rate_hz = self.sample_rate_hz
        self.conditioner.drive.pll.sample_rate_hz = self.sample_rate_hz
        self.conditioner.sense.sample_rate_hz = self.sample_rate_hz
        self.conditioner.rebalance.sample_rate_hz = self.sample_rate_hz
        self.conditioner.startup.sample_rate_hz = self.sample_rate_hz


class GyroPlatform:
    """Mixed-signal co-simulation of the gyro conditioning platform."""

    def __init__(self, config: Optional[GyroPlatformConfig] = None):
        self.config = config or GyroPlatformConfig()
        cfg = self.config
        self.sensor = VibratingRingGyro(cfg.sensor, cfg.sample_rate_hz)
        self.frontend = GyroAnalogFrontEnd(cfg.frontend)
        self.conditioner = GyroConditioner(cfg.conditioner)
        self.safety = SafeModeMonitor()
        self._drive_v = 0.0
        self._control_v = 0.0
        self._time_s = 0.0
        self.calibrated = False

    # -- basic controls ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._time_s

    def reset(self) -> None:
        """Power-cycle the whole platform (sensor at rest, chain at reset)."""
        self.sensor.reset()
        self.frontend.reset()
        self.conditioner.reset()
        self.safety.reset()
        self._drive_v = 0.0
        self._control_v = 0.0
        self._time_s = 0.0

    # -- co-simulation -----------------------------------------------------------

    def run(self, environment: "Union[Environment, Sequence[Environment]]",
            duration_s: float, reset: bool = False,
            record_waveforms: bool = False, engine: Optional[str] = None,
            *, executor: Optional[str] = None, workers: Optional[int] = None,
            fleet: "Optional[FleetSimulator]" = None
            ) -> "Union[GyroSimulationResult, List[GyroSimulationResult]]":
        """Run the co-simulation for ``duration_s`` seconds.

        This is the one run entry point: a single
        :class:`~repro.sensors.environment.Environment` simulates this
        platform in-process and returns one result; a *sequence* of
        environments simulates one deep-copied clone per environment (the
        platform itself is not advanced) and returns one result per
        environment — in NumPy lockstep by default, optionally fanned out
        over worker processes.  Every combination produces bit-identical
        traces.

        Args:
            environment: applied rate and temperature profiles (time is
                relative to the platform's current simulation time), or a
                sequence of them — one clone lane each.
            duration_s: how long to simulate.
            reset: power-cycle the platform (or the clone lanes) before
                running.
            record_waveforms: additionally record the primary pick-off and
                drive-word waveforms (memory-hungry; used by the figure
                benches).
            engine: override the simulation engine for this run
                (:func:`~repro.scenarios.engines.engine_names`).  Single
                environments accept the scalar engines (``"fused"``,
                ``"reference"``); sequences default to ``"batched"``
                lockstep and accept a scalar engine to replay the lanes
                sequentially instead.  All engines produce bit-identical
                traces and platform state.
            executor: for sequences —
                :func:`~repro.scenarios.executor.executor_names`;
                ``"local"`` (default) runs in the calling process,
                ``"sharded"`` partitions the lanes across worker
                processes.  Defaults to ``"sharded"`` when ``workers``
                is given.
            workers: worker-process count for the sharded executor.
            fleet: an existing fleet (e.g. from :meth:`make_fleet`) to
                run instead of cloning this platform — its lanes carry
                their state from run to run, so it cannot be combined
                with the sharded executor (which advances worker-side
                copies).

        Returns:
            A :class:`GyroSimulationResult` for a single environment, or
            a list with one result per environment.
        """
        if duration_s <= 0:
            raise SimulationError("duration must be > 0")
        if isinstance(environment, Environment) and fleet is None:
            if workers not in (None, 1) or executor not in (None, "local"):
                raise ConfigurationError(
                    "a single environment runs in-process; pass a sequence "
                    "of environments to fan lanes out over workers")
            spec = get_engine(engine or self.config.engine, scalar_only=True)
            if reset:
                self.reset()
            result = spec.run(self, environment, duration_s, record_waveforms)
            self.safety.observe(self._time_s, self.frontend.overload,
                                duration_s)
            return dataclasses.replace(result,
                                       **self.safety.result_fields())
        if fleet is not None:
            if workers not in (None, 1) or executor not in (None, "local"):
                raise ConfigurationError(
                    "an existing fleet carries caller-owned lane state and "
                    "cannot cross process boundaries; drop fleet= to use "
                    "the sharded executor")
            if (not isinstance(environment, Environment)
                    and len(environment) != len(fleet)):
                raise ConfigurationError(
                    f"got {len(environment)} environments for "
                    f"{len(fleet)} fleet lanes")
            return fleet.run(environment, duration_s, reset=reset,
                             record_waveforms=record_waveforms)
        from ..scenarios.campaign import Campaign
        from ..scenarios.scenario import Scenario

        environments = list(environment)
        if not environments:
            raise ConfigurationError(
                "a sequence of environments must not be empty")
        programs = [Scenario(name=f"run[{i}]", environment=env,
                             duration_s=duration_s, reset=reset,
                             record_waveforms=record_waveforms)
                    for i, env in enumerate(environments)]
        result = Campaign(programs, name="platform-run").run(
            self, engine=engine or ENGINE_BATCHED, executor=executor,
            workers=workers)
        return [lane.outcomes[0].result for lane in result.lanes]

    def _run_reference(self, environment: Environment, duration_s: float,
                       record_waveforms: bool = False) -> GyroSimulationResult:
        """The original object-oriented per-sample loop (ground truth).

        Validation and reset are handled by the caller (:meth:`run` or
        the engine registry).
        """
        cfg = self.config
        fs = cfg.sample_rate_hz
        dt = 1.0 / fs
        n = int(round(duration_s * fs))
        dec = cfg.record_decimation
        n_rec = n // dec + 1

        time_tr = np.zeros(n_rec)
        rate_tr = np.zeros(n_rec)
        temp_tr = np.zeros(n_rec)
        out_dps_tr = np.zeros(n_rec)
        out_v_tr = np.zeros(n_rec)
        agc_tr = np.zeros(n_rec)
        agc_err_tr = np.zeros(n_rec)
        perr_tr = np.zeros(n_rec)
        vco_tr = np.zeros(n_rec)
        lock_tr = np.zeros(n_rec, dtype=bool)
        run_tr = np.zeros(n_rec, dtype=bool)
        pick_tr = np.zeros(n_rec) if record_waveforms else None
        drive_tr = np.zeros(n_rec) if record_waveforms else None

        sensor = self.sensor
        frontend = self.frontend
        conditioner = self.conditioner
        tsensor = cfg.temperature_sensor
        rate_profile = environment.rate_dps
        temp_profile = environment.temperature_c
        start_time = self._time_s

        rec = 0
        drive_v = self._drive_v
        control_v = self._control_v
        for i in range(n):
            t = i * dt
            rate_dps = rate_profile.value(t)
            temp_c = temp_profile.value(t)

            primary_v, secondary_v = sensor.step(drive_v, control_v,
                                                 rate_dps, temp_c)
            p_norm, s_norm = frontend.acquire(primary_v, secondary_v, temp_c)
            measured_temp = (round((temp_c + tsensor.offset_error_c)
                                   / tsensor.resolution_c) * tsensor.resolution_c)
            drive_word, control_word, rate_word = conditioner.step(
                p_norm, s_norm, measured_temp)
            drive_v, control_v = frontend.drive(drive_word, control_word, temp_c)

            if i % dec == 0:
                out_v = frontend.rate_output(rate_word, temp_c)
                time_tr[rec] = start_time + t
                rate_tr[rec] = rate_dps
                temp_tr[rec] = temp_c
                out_dps_tr[rec] = conditioner.rate_dps
                out_v_tr[rec] = out_v
                agc_tr[rec] = conditioner.drive_loop.amplitude_control
                agc_err_tr[rec] = conditioner.drive_loop.amplitude_error
                perr_tr[rec] = conditioner.drive_loop.phase_error
                vco_tr[rec] = conditioner.drive_loop.vco_control
                lock_tr[rec] = conditioner.drive_loop.locked
                run_tr[rec] = conditioner.running
                if record_waveforms:
                    pick_tr[rec] = p_norm
                    drive_tr[rec] = drive_word
                rec += 1

        self._drive_v = drive_v
        self._control_v = control_v
        self._time_s = start_time + n * dt

        return GyroSimulationResult(
            time_s=time_tr[:rec],
            sample_rate_hz=fs / dec,
            true_rate_dps=rate_tr[:rec],
            temperature_c=temp_tr[:rec],
            rate_output_dps=out_dps_tr[:rec],
            rate_output_v=out_v_tr[:rec],
            amplitude_control=agc_tr[:rec],
            amplitude_error=agc_err_tr[:rec],
            phase_error=perr_tr[:rec],
            vco_control=vco_tr[:rec],
            pll_locked=lock_tr[:rec],
            running=run_tr[:rec],
            primary_pickoff_norm=pick_tr[:rec] if record_waveforms else None,
            drive_word=drive_tr[:rec] if record_waveforms else None,
            turn_on_time_s=conditioner.startup.turn_on_time_s,
        )

    def make_fleet(self, n: int) -> "FleetSimulator":
        """Clone this platform into an ``n``-lane batched fleet.

        Each lane is a deep copy — calibration words, filter states,
        start-up progress and noise-generator positions included.  Keep
        the returned :class:`~repro.engine.batch.FleetSimulator` around
        and pass it back to :meth:`run_batch` (or run it directly) so
        repeated campaigns do not pay a fresh deep copy per call.
        """
        import copy

        from ..engine.batch import FleetSimulator
        if n < 1:
            raise ConfigurationError("fleet size must be >= 1")
        return FleetSimulator([copy.deepcopy(self) for _ in range(n)])

    def run_batch(self, environments: Sequence[Environment],
                  duration_s: float, reset: bool = False,
                  record_waveforms: bool = False,
                  fleet: "Optional[FleetSimulator]" = None
                  ) -> "List[GyroSimulationResult]":
        """Deprecated alias for :meth:`run` with a sequence of environments.

        .. deprecated::
            ``run`` now accepts a sequence of environments directly (plus
            ``engine=``, ``executor=``, ``workers=`` and ``fleet=``) and
            returns the same bit-identical per-environment results; this
            shim forwards to it.
        """
        warnings.warn(
            "GyroPlatform.run_batch is deprecated; call run() with a "
            "sequence of environments instead",
            DeprecationWarning, stacklevel=2)
        if isinstance(environments, Environment) and fleet is None:
            raise ConfigurationError(
                "a single environment does not define the fleet size; "
                "pass a sequence of environments or an explicit fleet")
        return self.run(environments, duration_s, reset=reset,
                        record_waveforms=record_waveforms, fleet=fleet)

    # -- start-up and calibration -------------------------------------------------

    def start(self, temperature_c: float = ROOM_TEMPERATURE_C,
              max_duration_s: float = 1.5,
              chunk_s: float = 0.1) -> GyroSimulationResult:
        """Power-cycle and run until start-up completes (or the limit expires).

        The start-up scenario proceeds in ``chunk_s`` slices and stops
        as soon as the start-up sequencer reports RUNNING, so a healthy
        part does not pay for the full watchdog window.
        """
        from ..scenarios.campaign import Campaign
        from ..scenarios.library import startup_scenario

        scenario = startup_scenario(temperature_c, max_duration_s, chunk_s)
        result = Campaign([scenario], name="startup").run(self, mutate=True)
        return result.lanes[0].outcomes[0].result

    def measure_settled_output(self, rate_dps: float, temperature_c: float,
                               duration_s: float = 0.2) -> Tuple[float, float, float]:
        """Apply a constant rate and return settled chain outputs.

        Returns:
            ``(rate_channel, rate_output_dps, rate_output_v)``; the
            outputs are averaged over the settled tail of the window and
            the raw (uncompensated) channel value is read from the chain
            state, exactly as the settled-output scenario defines.
        """
        from ..scenarios.campaign import Campaign
        from ..scenarios.library import settled_output_scenario

        scenario = settled_output_scenario(rate_dps, temperature_c, duration_s)
        result = Campaign([scenario], name="settled-output").run(self,
                                                                 mutate=True)
        metrics = result.lanes[0].outcomes[0].metrics
        return (metrics["raw_channel"], metrics["rate_output_dps"],
                metrics["rate_output_v"])

    def calibrate(self, rates_dps: Sequence[float] = (-200.0, 0.0, 200.0),
                  temperature_c: float = ROOM_TEMPERATURE_C,
                  settle_s: float = 0.25,
                  engine: str = ENGINE_BATCHED,
                  executor: Optional[str] = None,
                  workers: Optional[int] = None) -> None:
        """Factory calibration of scale factor and zero-rate offset.

        Runs start-up on this platform, then measures every calibration
        rate as one campaign of settled-output scenarios branching from
        the started state — by default packed into a single batched
        fleet, one lane per rate-table point — fits the response and
        programs the sense-chain scaler and offset compensation.

        Args:
            engine: campaign engine for the rate sweep.  The scalar
                engines replay the same scenarios sequentially and
                program bit-identical calibration words (locked by
                ``tests/test_scenarios.py``).
            executor: campaign executor for the rate sweep; the
                ``"sharded"`` executor programs bit-identical
                calibration words from worker processes.
            workers: worker-process count for the sharded executor.
        """
        from ..scenarios.campaign import Campaign
        from ..scenarios.library import rate_table_scenarios

        self.start(temperature_c)
        sweep = Campaign(rate_table_scenarios(rates_dps, temperature_c,
                                              settle_s),
                         name="calibration-sweep")
        result = sweep.run(self, engine=engine, executor=executor,
                           workers=workers)
        channels = [lane.outcomes[0].metrics["raw_channel"]
                    for lane in result.lanes]
        calibration = fit_scale_factor(rates_dps, channels)
        self.conditioner.sense_chain.calibrate_scale(calibration.channel_per_dps)
        self.conditioner.sense_chain.calibrate_offset(calibration.channel_offset)
        self.calibrated = True

    def calibrate_temperature(self,
                              temperatures_c: Sequence[float] = (-40.0, 25.0, 85.0),
                              probe_rate_dps: float = 100.0,
                              settle_s: float = 0.25,
                              engine: str = ENGINE_BATCHED,
                              executor: Optional[str] = None,
                              workers: Optional[int] = None) -> None:
        """Fit and install temperature-compensation polynomials.

        Each temperature leg is one lane program — restart at the
        temperature, measure the zero-rate channel, measure the
        sensitivity at ``probe_rate_dps`` — and the legs run as one
        campaign (by default a batched fleet whose lanes leave start-up
        independently, exactly like the chunked ``start()`` loop).
        First-order compensation polynomials are fitted from the
        per-leg metrics.
        """
        if not self.calibrated:
            raise SimulationError("run calibrate() before calibrate_temperature()")
        from ..scenarios.campaign import Campaign
        from ..scenarios.library import settled_output_scenario, startup_scenario

        static_offset = self.conditioner.sense_chain.offset_comp.offset
        programs = [[startup_scenario(temp),
                     settled_output_scenario(0.0, temp, settle_s,
                                             name=f"zero@{temp:g}C"),
                     settled_output_scenario(probe_rate_dps, temp, settle_s,
                                             name=f"probe@{temp:g}C")]
                    for temp in temperatures_c]
        result = Campaign(programs, name="temperature-calibration").run(
            self, engine=engine, executor=executor, workers=workers)
        offsets = []
        slopes = []
        for lane in result.lanes:
            zero_raw = lane.outcomes[1].metrics["raw_channel"]
            pos_raw = lane.outcomes[2].metrics["raw_channel"]
            slopes.append((pos_raw - zero_raw) / probe_rate_dps)
            # residual offset after the static compensation, in the raw
            # channel units the temperature compensation operates on
            offsets.append(zero_raw - static_offset)
        reference_slope = select_reference_slope(temperatures_c, slopes,
                                                 ROOM_TEMPERATURE_C)
        ratios = [s / reference_slope for s in slopes]
        config = fit_temperature_compensation(temperatures_c, offsets, ratios)
        self.conditioner.sense_chain.calibrate_temperature(config)
