"""IP portfolio: the catalogue of analog and digital cells of the platform.

"The front-end can be customized for different classes of sensors ... by
choosing the most suitable analog cells from a well-stocked IP
portfolio."  The portfolio also carries the implementation metadata
(area, gate count, power) the design flow needs to estimate the FPGA
prototype utilisation and the ASIC area, and which the partitioning
engine uses as its cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional

from ..common.exceptions import ConfigurationError


class Domain(Enum):
    """Implementation domain of an IP block."""

    ANALOG = "analog"
    DIGITAL_HW = "digital_hw"
    SOFTWARE = "software"


@dataclass(frozen=True)
class IpBlock:
    """One reusable block of the platform portfolio.

    Attributes:
        name: unique block name.
        domain: implementation domain.
        description: one-line description.
        area_mm2: silicon area in a 0.35 µm CMOS process (analog blocks).
        gates: equivalent gate count (digital blocks).
        power_mw: typical power consumption.
        code_bytes: program memory footprint (software routines).
        sensor_classes: sensor classes the block applies to (empty = all).
    """

    name: str
    domain: Domain
    description: str = ""
    area_mm2: float = 0.0
    gates: int = 0
    power_mw: float = 0.0
    code_bytes: int = 0
    sensor_classes: tuple = ()

    def __post_init__(self) -> None:
        if self.area_mm2 < 0 or self.gates < 0 or self.power_mw < 0 or self.code_bytes < 0:
            raise ConfigurationError(f"negative cost metadata for IP {self.name!r}")


class IpPortfolio:
    """Searchable catalogue of IP blocks."""

    def __init__(self, blocks: Optional[Iterable[IpBlock]] = None):
        self._blocks: Dict[str, IpBlock] = {}
        for block in blocks or []:
            self.add(block)

    def add(self, block: IpBlock) -> IpBlock:
        """Add a block; names must be unique."""
        if block.name in self._blocks:
            raise ConfigurationError(f"duplicate IP block {block.name!r}")
        self._blocks[block.name] = block
        return block

    def get(self, name: str) -> IpBlock:
        """Look up a block by name."""
        try:
            return self._blocks[name]
        except KeyError:
            raise ConfigurationError(f"no IP block named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self):
        return iter(self._blocks.values())

    def by_domain(self, domain: Domain) -> List[IpBlock]:
        """All blocks implemented in the given domain."""
        return [b for b in self._blocks.values() if b.domain is domain]

    def for_sensor_class(self, sensor_class: str) -> List[IpBlock]:
        """Blocks applicable to a sensor class (plus the universal ones)."""
        return [b for b in self._blocks.values()
                if not b.sensor_classes or sensor_class in b.sensor_classes]

    def total_area_mm2(self, names: Iterable[str]) -> float:
        """Summed analog area of the named blocks."""
        return sum(self.get(n).area_mm2 for n in names)

    def total_gates(self, names: Iterable[str]) -> int:
        """Summed gate count of the named blocks."""
        return sum(self.get(n).gates for n in names)

    def total_power_mw(self, names: Iterable[str]) -> float:
        """Summed power of the named blocks."""
        return sum(self.get(n).power_mw for n in names)


def default_portfolio() -> IpPortfolio:
    """The platform's default IP portfolio.

    Area/gate/power figures are representative of a 0.35 µm mixed-signal
    process and are chosen so that the gyro customisation rolls up to the
    published implementation figures (~200 kgates of digital logic,
    ~12 mm² of analog front end).
    """
    analog = [
        IpBlock("sar_adc_12b", Domain.ANALOG, "12-bit SAR ADC, 250 kS/s",
                area_mm2=1.1, power_mw=3.5),
        IpBlock("dac_12b", Domain.ANALOG, "12-bit string DAC with output buffer",
                area_mm2=0.8, power_mw=2.0),
        IpBlock("charge_amplifier", Domain.ANALOG,
                "Capacitive pick-off charge amplifier",
                area_mm2=0.6, power_mw=1.2, sensor_classes=("capacitive", "gyro")),
        IpBlock("pga", Domain.ANALOG, "Programmable-gain amplifier 1..64 V/V",
                area_mm2=0.7, power_mw=1.5),
        IpBlock("antialias_filter", Domain.ANALOG, "2-pole anti-alias filter",
                area_mm2=0.35, power_mw=0.6),
        IpBlock("bandgap_reference", Domain.ANALOG, "Bandgap voltage reference",
                area_mm2=0.3, power_mw=0.4),
        IpBlock("bias_generator", Domain.ANALOG, "Bias current generator",
                area_mm2=0.25, power_mw=0.3),
        IpBlock("supply_regulator", Domain.ANALOG, "5 V automotive supply regulator",
                area_mm2=0.9, power_mw=4.0),
        IpBlock("clock_oscillator", Domain.ANALOG, "20 MHz system oscillator",
                area_mm2=0.4, power_mw=1.0),
        IpBlock("temperature_sensor", Domain.ANALOG, "On-chip temperature sensor",
                area_mm2=0.2, power_mw=0.2),
        IpBlock("bridge_excitation", Domain.ANALOG, "Wheatstone bridge excitation",
                area_mm2=0.45, power_mw=1.8, sensor_classes=("resistive",)),
        IpBlock("lvdt_driver", Domain.ANALOG, "Inductive sensor carrier driver",
                area_mm2=0.55, power_mw=2.2, sensor_classes=("inductive",)),
    ]
    digital = [
        IpBlock("fir_filter", Domain.DIGITAL_HW, "Programmable FIR filter engine",
                gates=18_000, power_mw=1.5),
        IpBlock("iir_filter", Domain.DIGITAL_HW, "Biquad IIR filter bank",
                gates=14_000, power_mw=1.2),
        IpBlock("cic_decimator", Domain.DIGITAL_HW, "CIC decimator",
                gates=6_000, power_mw=0.5),
        IpBlock("nco", Domain.DIGITAL_HW, "Numerically controlled oscillator",
                gates=8_000, power_mw=0.7),
        IpBlock("mixer_demodulator", Domain.DIGITAL_HW, "I/Q mixer / demodulator pair",
                gates=10_000, power_mw=0.8),
        IpBlock("pll_loop_filter", Domain.DIGITAL_HW, "Drive PLL phase detector + PI",
                gates=12_000, power_mw=1.0),
        IpBlock("agc", Domain.DIGITAL_HW, "Drive AGC",
                gates=7_000, power_mw=0.6),
        IpBlock("compensation_unit", Domain.DIGITAL_HW,
                "Offset/temperature compensation datapath",
                gates=9_000, power_mw=0.7),
        IpBlock("force_rebalance", Domain.DIGITAL_HW, "Force-rebalance controller",
                gates=11_000, power_mw=0.9),
        IpBlock("cpu_8051", Domain.DIGITAL_HW, "Oregano MC8051 core",
                gates=35_000, power_mw=3.0),
        IpBlock("memory_subsystem", Domain.DIGITAL_HW,
                "ROM/RAM/cache controller and SFR bus",
                gates=30_000, power_mw=2.0),
        IpBlock("bus_bridge", Domain.DIGITAL_HW, "SFR-bus to 16-bit bridge",
                gates=4_000, power_mw=0.3),
        IpBlock("uart", Domain.DIGITAL_HW, "UART / RS485 controller",
                gates=5_000, power_mw=0.3),
        IpBlock("spi", Domain.DIGITAL_HW, "SPI master/slave controller",
                gates=4_500, power_mw=0.3),
        IpBlock("timer_watchdog", Domain.DIGITAL_HW, "Timer + watchdog",
                gates=5_500, power_mw=0.3),
        IpBlock("sram_controller", Domain.DIGITAL_HW, "External SRAM data logger",
                gates=6_500, power_mw=0.5),
        IpBlock("jtag_tap", Domain.DIGITAL_HW, "JTAG TAP + analog trim chain",
                gates=4_000, power_mw=0.2),
    ]
    software = [
        IpBlock("monitor_firmware", Domain.SOFTWARE,
                "Status monitoring routines (PLL lock, overload, watchdog)",
                code_bytes=2_048),
        IpBlock("comm_firmware", Domain.SOFTWARE,
                "UART/SPI communication services and output streaming",
                code_bytes=3_072),
        IpBlock("trim_firmware", Domain.SOFTWARE,
                "Analog trim and calibration-coefficient management",
                code_bytes=1_536),
        IpBlock("boot_loader", Domain.SOFTWARE,
                "Boot loader with UART/SPI/EEPROM software download",
                code_bytes=1_024),
    ]
    return IpPortfolio(analog + digital + software)
