"""Declarative fault models for resilience campaigns.

The paper's robustness story rests on "several readable registers
spread along the processing chain" and digitally-trimmed analog cells —
this package breaks those cells *on purpose* so campaigns can measure
that the platform detects, degrades and recovers.  Each fault model is
a small frozen (picklable) dataclass with an activation window; the
campaign runner arms and disarms them at chunk boundaries, which keeps
faulted scenarios bit-identical across every engine and executor.
"""

from .models import (
    AfeSaturation,
    FaultModel,
    SensorDropout,
    StuckAdcCode,
    StuckRegisterField,
    SupplyDroop,
)

__all__ = [
    "FaultModel",
    "StuckRegisterField",
    "AfeSaturation",
    "SupplyDroop",
    "SensorDropout",
    "StuckAdcCode",
]
