"""Picklable fault models armed/disarmed by the campaign runner.

Every model is a frozen dataclass describing *what breaks* and *when*:

* :class:`StuckRegisterField` — stuck-at bits in the trim register
  fabric (RO status bits, RW controls, W1C flags alike).
* :class:`AfeSaturation` — pins the charge-amplifier front end against
  its rails so both acquisition channels clip.
* :class:`SupplyDroop` — scales every AFE reference (ADC/DAC vrefs,
  supply rail, bandgap) by a time profile.
* :class:`SensorDropout` — zeroes the MEMS pick-off gain.
* :class:`StuckAdcCode` — wedges a SAR ADC at one output code.

The mechanics that make faulted runs bit-identical across engines: a
fault only ever mutates *platform state that every engine reads at
chunk entry* (configs, converter resolutions, register values), and the
campaign runner applies :meth:`FaultModel.inject` /
:meth:`FaultModel.restore` exclusively at chunk boundaries, adding the
activation edges to the lane's own boundary grid.  No engine contains
any fault-specific code.

Models are declarative and stateless: :meth:`inject` returns a saved
snapshot that :meth:`restore` consumes, so one fault object can run on
many lanes (and travel through the sharded executor's pickled shard
payloads) concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..common.exceptions import ConfigurationError
from ..common.units import ROOM_TEMPERATURE_C


@dataclass(frozen=True)
class FaultModel:
    """Base fault model: an activation window plus inject/restore hooks.

    Attributes:
        t_start: activation time, seconds from scenario start.
        t_stop: deactivation time; ``None`` keeps the fault active until
            the scenario ends (a *permanent* fault — the campaign still
            restores the platform when the scenario completes, so the
            scenario stays the replayable unit).
    """

    t_start: float = 0.0
    t_stop: Optional[float] = None

    def __post_init__(self) -> None:
        if self.t_start < 0:
            raise ConfigurationError("fault t_start must be >= 0")
        if self.t_stop is not None and self.t_stop <= self.t_start:
            raise ConfigurationError("fault t_stop must be > t_start")

    def edges(self) -> List[float]:
        """Times (scenario-relative) where the lane needs a chunk boundary."""
        out = [self.t_start]
        if self.t_stop is not None:
            out.append(self.t_stop)
        return out

    def inject(self, platform) -> dict:
        """Apply the fault; return the snapshot :meth:`restore` consumes."""
        raise NotImplementedError

    def update(self, platform, t_s: float, saved: dict) -> None:
        """Re-evaluate a time-profiled fault at a chunk boundary.

        Called at every boundary while the fault is armed, with ``t_s``
        the current scenario-relative time.  The default is a no-op;
        only profiled faults (:class:`SupplyDroop`) override it.
        """

    def restore(self, platform, saved: dict) -> None:
        """Undo the fault from the snapshot :meth:`inject` returned."""
        raise NotImplementedError

    def digest_token(self) -> str:
        """Stable textual identity for scenario digests.

        Frozen-dataclass reprs are deterministic functions of the field
        values, so the token is stable across processes and sessions.
        """
        return repr(self)


@dataclass(frozen=True)
class StuckRegisterField(FaultModel):
    """Force bits of a trim-bank register to a fixed value.

    Exercises the :class:`~repro.common.registers.RegisterFile` fabric's
    stuck-at path: the forced bits shadow every read (RO, RW and W1C
    registers alike) while bus/hardware writes keep updating the storage
    underneath.  Control registers re-notify their write callbacks on
    inject and release, so the analog blocks they tune follow the fault.

    Attributes:
        register: trim-bank register name (e.g. ``"afe_secondary_gain"``).
        field: bit-field name within the register; ``None`` forces the
            whole register word.
        value: stuck value of the field (or word).
    """

    register: str = ""
    field: Optional[str] = None
    value: int = 0

    def _bank(self, platform):
        if not self.register:
            raise ConfigurationError("StuckRegisterField needs a register name")
        return platform.frontend.trim

    def inject(self, platform) -> dict:
        bank = self._bank(platform)
        reg = bank.register(self.register)
        if self.field is not None:
            bitfield = reg._field(self.field)
            mask = bitfield.mask
            forced = bitfield.insert(0, self.value)
        else:
            mask = (1 << reg.width) - 1
            forced = self.value & mask
        reg.force(mask, forced)
        bank.refresh(self.register)
        return {"register": self.register}

    def restore(self, platform, saved: dict) -> None:
        bank = self._bank(platform)
        bank.register(saved["register"]).release()
        bank.refresh(saved["register"])


@dataclass(frozen=True)
class AfeSaturation(FaultModel):
    """Pin the analog front end into overload for the window.

    Injects a large input-referred offset into the (shared) charge
    amplifier so both acquisition channels slam against the ±rail and
    the anti-alias outputs sit above the overload threshold — the
    condition :attr:`GyroAnalogFrontEnd.overload` reports and the
    platform's safe-mode monitor latches on.

    Attributes:
        drive_v: offset forced onto the charge-amplifier path; anything
            beyond the amplifier rail (2.5 V default) saturates the
            channel.
    """

    drive_v: float = 10.0

    def inject(self, platform) -> dict:
        cfg = platform.frontend.config.charge_amplifier
        saved = {"offset_v": cfg.offset_v}
        cfg.offset_v = self.drive_v
        return saved

    def restore(self, platform, saved: dict) -> None:
        platform.frontend.config.charge_amplifier.offset_v = saved["offset_v"]


@dataclass(frozen=True)
class SupplyDroop(FaultModel):
    """Scale every AFE reference by a (piecewise-constant) time profile.

    Models a supply brown-out: the ADC references, every DAC reference,
    the supply rail and the bandgap all sag together (ratiometric
    system), so conversions, drive levels and the rate output shift
    coherently.  The droop is ``scale`` over the whole window by
    default; ``profile`` refines it as ``(t_offset_s, scale)`` steps
    relative to ``t_start``, each step becoming a chunk boundary.

    Attributes:
        scale: reference multiplier while active (0.9 = 10 % droop).
        profile: optional piecewise-constant refinement.
    """

    scale: float = 0.9
    profile: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        FaultModel.__post_init__(self)
        if self.scale <= 0:
            raise ConfigurationError("droop scale must be > 0")
        offsets = [t for t, _ in self.profile]
        if any(t < 0 for t in offsets) or offsets != sorted(offsets):
            raise ConfigurationError(
                "droop profile offsets must be >= 0 and ascending")
        if any(s <= 0 for _, s in self.profile):
            raise ConfigurationError("droop profile scales must be > 0")

    def edges(self) -> List[float]:
        out = FaultModel.edges(self)
        out.extend(self.t_start + t for t, _ in self.profile)
        return out

    def _scale_at(self, t_s: float) -> float:
        scale = self.scale
        for offset, step_scale in self.profile:
            if t_s - self.t_start >= offset:
                scale = step_scale
        return scale

    @staticmethod
    def _references(platform):
        fe = platform.frontend
        # primary_adc shares the frontend config's AdcConfig while
        # secondary_adc / control_dac own copies — each must be scaled
        converters = (fe.primary_adc, fe.secondary_adc)
        dacs = (fe.drive_dac, fe.control_dac, fe.rate_output_dac)
        return fe, converters, dacs

    def _apply(self, platform, scale: float, saved: dict) -> None:
        fe, converters, dacs = self._references(platform)
        for adc, nominal in zip(converters, saved["adc_vref"]):
            adc.config.vref = nominal * scale
            adc._update_resolution()
        for dac, nominal in zip(dacs, saved["dac_vref"]):
            dac.config.vref = nominal * scale
            dac._update_resolution()
        fe.supply.config.nominal_v = saved["supply_v"] * scale
        fe.reference.config.nominal = saved["reference_v"] * scale

    def inject(self, platform) -> dict:
        fe, converters, dacs = self._references(platform)
        saved = {
            "adc_vref": [adc.config.vref for adc in converters],
            "dac_vref": [dac.config.vref for dac in dacs],
            "supply_v": fe.supply.config.nominal_v,
            "reference_v": fe.reference.config.nominal,
        }
        self._apply(platform, self._scale_at(self.t_start), saved)
        return saved

    def update(self, platform, t_s: float, saved: dict) -> None:
        self._apply(platform, self._scale_at(t_s), saved)

    def restore(self, platform, saved: dict) -> None:
        self._apply(platform, 1.0, saved)


@dataclass(frozen=True)
class SensorDropout(FaultModel):
    """Zero the MEMS pick-off gain (both channels read nothing).

    The vibrating-ring model derives one pick-off gain from
    ``GyroParameters.pickoff_gain_v_per_m`` (with its temperature
    coefficient), shared by the primary and secondary channels — a
    dropout silences both, exactly like a broken pick-off bond wire.
    """

    def inject(self, platform) -> dict:
        sensor = platform.sensor
        saved = {"gain_param": sensor.params.pickoff_gain_v_per_m}
        # frozen dataclass: bypass __setattr__ the way a broken bond
        # wire bypasses the datasheet
        object.__setattr__(sensor.params, "pickoff_gain_v_per_m", 0.0)
        sensor._pickoff_gain = 0.0
        return saved

    def restore(self, platform, saved: dict) -> None:
        sensor = platform.sensor
        object.__setattr__(sensor.params, "pickoff_gain_v_per_m",
                           saved["gain_param"])
        # recompute the derived gain exactly as _apply_temperature would
        # at the last applied temperature (bit-identical restore)
        p = sensor.params
        last = sensor._last_temp_applied
        dt_c = 0.0 if last is None else last - ROOM_TEMPERATURE_C
        sensor._pickoff_gain = (p.pickoff_gain_v_per_m
                                * (1.0 + p.pickoff_tc_ppm_per_c * 1e-6 * dt_c))


@dataclass(frozen=True)
class StuckAdcCode(FaultModel):
    """Wedge a SAR ADC at one output code.

    Clamps the converter's code range to a single value so every
    conversion returns ``code`` regardless of the input (noise streams
    are still consumed, preserving bit-identity of the other channel).

    Attributes:
        channel: ``"primary"``, ``"secondary"`` or ``"both"``.
        code: the stuck signed output code.
    """

    channel: str = "secondary"
    code: int = 0

    def __post_init__(self) -> None:
        FaultModel.__post_init__(self)
        if self.channel not in ("primary", "secondary", "both"):
            raise ConfigurationError(
                "StuckAdcCode channel must be 'primary', 'secondary' or "
                f"'both', got {self.channel!r}")

    def _adcs(self, platform):
        fe = platform.frontend
        if self.channel == "primary":
            return [fe.primary_adc]
        if self.channel == "secondary":
            return [fe.secondary_adc]
        return [fe.primary_adc, fe.secondary_adc]

    def inject(self, platform) -> dict:
        for adc in self._adcs(platform):
            adc._code_min = self.code
            adc._code_max = self.code
        return {"channel": self.channel}

    def restore(self, platform, saved: dict) -> None:
        for adc in self._adcs(platform):
            # the code range is derived purely from the (intact) config
            adc._update_resolution()


def validate_fault(fault) -> None:
    """Duck-type check that an object implements the fault protocol."""
    for attr in ("t_start", "t_stop", "edges", "inject", "restore",
                 "update", "digest_token"):
        if not hasattr(fault, attr):
            raise ConfigurationError(
                f"{fault!r} is not a fault model (missing {attr!r}); use "
                "the models in repro.faults or implement the same protocol")
