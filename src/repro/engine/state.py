"""Shared state/coefficient plumbing for the fast co-simulation engines.

The fused and batched kernels flatten the object-oriented reference
chain (sensor → AFE → DSP → DACs) into plain locals / NumPy arrays.  The
helpers here extract the constants the kernels need from the existing
block objects — so both engines compute with *exactly* the same
coefficient bits as the reference chain — and provide quantiser closures
that reproduce :func:`repro.common.fixedpoint.quantize` bit-for-bit on
scalars and arrays.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..common.exceptions import ConfigurationError, FixedPointOverflowError
from ..common.fixedpoint import QFormat


def scalar_quantizer(fmt: Optional[QFormat]) -> Optional[Callable[[float], float]]:
    """Fast scalar equivalent of ``quantize(x, fmt)`` (bit-exact).

    Returns ``None`` when ``fmt`` is ``None`` so the kernels can skip the
    call entirely in floating-point mode.
    """
    if fmt is None:
        return None
    lsb = fmt.lsb
    lo = fmt.min_value / lsb
    hi = fmt.max_value / lsb
    rounding = fmt.rounding
    overflow = fmt.overflow
    floor = math.floor
    trunc = math.trunc
    span = hi - lo + 1

    def q(x: float) -> float:
        scaled = x / lsb
        if rounding == "nearest":
            r = floor(scaled + 0.5)
        elif rounding == "floor":
            r = floor(scaled)
        else:  # truncate
            r = trunc(scaled)
        if overflow == "saturate":
            r = lo if r < lo else (hi if r > hi else r)
        elif overflow == "wrap":
            r = ((r - lo) % span) + lo
        elif r > hi or r < lo:
            raise FixedPointOverflowError(
                f"value {x!r} out of range for {fmt.describe()}")
        return r * lsb

    return q


def array_quantizer(fmt: Optional[QFormat]
                    ) -> Optional[Callable[[np.ndarray], np.ndarray]]:
    """Vectorised equivalent of ``quantize(x, fmt)`` (bit-exact)."""
    if fmt is None:
        return None
    lsb = fmt.lsb
    lo = fmt.min_value / lsb
    hi = fmt.max_value / lsb
    rounding = fmt.rounding
    overflow = fmt.overflow
    span = hi - lo + 1

    def q(x: np.ndarray) -> np.ndarray:
        scaled = x / lsb
        if rounding == "nearest":
            r = np.floor(scaled + 0.5)
        elif rounding == "floor":
            r = np.floor(scaled)
        else:
            r = np.trunc(scaled)
        if overflow == "saturate":
            r = np.clip(r, lo, hi)
        elif overflow == "wrap":
            r = ((r - lo) % span) + lo
        elif np.any(r > hi) or np.any(r < lo):
            raise FixedPointOverflowError(
                f"value out of range for {fmt.describe()}")
        return r * lsb

    return q


def sensor_temperature_plan(sensor, temp_arr: np.ndarray
                            ) -> List[Tuple[int, dict]]:
    """Plan the sensor's temperature-dependent coefficient updates.

    Replays the per-sample ``_apply_temperature`` hysteresis (recompute
    only when the temperature moved by >= 0.05 °C since the last applied
    value) over the whole temperature trace up front.  Returns a list of
    ``(sample_index, coefficients)`` events; the sensor object is mutated
    exactly as the reference loop would have left it (propagators retuned
    at each event, ``_temperature_c`` at the final trace value).

    Because the retune happens eagerly, an exception raised later in a
    fused/batched run (e.g. a fixed-point ``overflow="error"`` format
    tripping mid-loop) leaves the sensor's temperature state ahead of
    the sample where the run aborted; treat the platform as needing a
    ``reset()`` after an engine error, as with any half-completed run.

    The first entry always describes the coefficients valid from sample
    0, whether or not sample 0 triggers a recompute.
    """

    def snapshot() -> dict:
        p = sensor.primary
        s = sensor.secondary
        return {
            "pa": (p._a11, p._a12, p._a21, p._a22, p._b1, p._b2),
            "sa": (s._a11, s._a12, s._a21, s._a22, s._b1, s._b2),
            "pickoff_gain": sensor._pickoff_gain,
            "offset_rate_dps": sensor._offset_rate_dps,
            "primary_res_hz": p.resonance_hz,
        }

    temps = temp_arr.tolist()
    last = sensor._last_temp_applied
    events: List[Tuple[int, dict]] = []
    if last is not None and temp_arr.size:
        tmin = float(np.min(temp_arr))
        tmax = float(np.max(temp_arr))
        if abs(tmin - last) < 0.05 and abs(tmax - last) < 0.05:
            # the whole run stays inside the hysteresis band: no retune
            sensor._temperature_c = temps[-1]
            return [(0, snapshot())]
    initial = snapshot()
    for i, temp in enumerate(temps):
        if last is None or abs(temp - last) >= 0.05:
            sensor._apply_temperature(temp)
            last = temp
            events.append((i, snapshot()))
    if not events or events[0][0] != 0:
        # samples before the first recompute use the pre-run coefficients
        events.insert(0, (0, initial))
    if temps:
        sensor._temperature_c = temps[-1]
    return events


#: Slot order of the packed scalar-state vector used by the compiled
#: engine's kernels.  The names match the locals of the fused kernel;
#: :func:`pack_scalar_state` fills the vector from the platform objects
#: and :func:`unpack_scalar_state` writes it back, reproducing exactly
#: the state the fused kernel reads at entry / writes at exit.  Booleans
#: travel as 0.0/1.0, counters as exact small floats, the start-up
#: sequencer state as its enum value and ``st_ready`` uses -1.0 for
#: "not ready yet" (the reference sequencer never reports sample 0).
SCALAR_STATE = (
    "x", "xv", "y", "yv",
    "pga_p_state", "pga_s_state", "aa_p1", "aa_p2", "aa_s1", "aa_s2",
    "overload",
    "pd_state", "amp_state", "pll_integ", "phase_err", "amplitude",
    "lock_counter", "locked", "sin_ref", "cos_ref", "nco_phase", "tuning",
    "agc_integ", "agc_gain", "agc_err",
    "di_state", "dq_state", "rate_channel", "quad_channel",
    "rate_dps_val", "rate_word",
    "reb_state", "reb_integ", "reb_cmd", "reb_residual",
    "st_state", "st_count", "st_settle", "st_ready", "st_failed",
    "drive_v", "control_v", "drive_word", "control_word", "rdac_held",
)

STATE_INDEX = {name: index for index, name in enumerate(SCALAR_STATE)}


def pack_scalar_state(platform) -> np.ndarray:
    """Pack one platform's mutable loop state into a float64 vector.

    Reads exactly the attributes the fused kernel loads into locals at
    entry (see :data:`SCALAR_STATE` for the slot order), so a kernel
    operating on the vector starts from bit-identical state.
    """
    frontend = platform.frontend
    conditioner = platform.conditioner
    sensor = platform.sensor
    drive_loop = conditioner.drive_loop
    pll = drive_loop.pll
    nco = pll.nco
    agc = drive_loop.agc
    sense = conditioner.sense_chain
    rebalance = conditioner.rebalance
    startup = conditioner.startup
    ready = startup._ready_sample
    values = {
        "x": sensor.primary._displacement,
        "xv": sensor.primary._velocity,
        "y": sensor.secondary._displacement,
        "yv": sensor.secondary._velocity,
        "pga_p_state": frontend.primary_pga._state,
        "pga_s_state": frontend.secondary_pga._state,
        "aa_p1": frontend.primary_antialias._first._state,
        "aa_p2": frontend.primary_antialias._second._state,
        "aa_s1": frontend.secondary_antialias._first._state,
        "aa_s2": frontend.secondary_antialias._second._state,
        "overload": 1.0 if frontend._overload else 0.0,
        "pd_state": pll._pd_filter._state,
        "amp_state": pll._amp_filter._state,
        "pll_integ": pll._integrator,
        "phase_err": pll._phase_error,
        "amplitude": pll._amplitude,
        "lock_counter": float(pll._lock_counter),
        "locked": 1.0 if pll._locked else 0.0,
        "sin_ref": pll._sin_ref,
        "cos_ref": pll._cos_ref,
        "nco_phase": nco._phase,
        "tuning": nco._tuning_hz,
        "agc_integ": agc._integrator,
        "agc_gain": agc._gain,
        "agc_err": agc._error,
        "di_state": sense.demodulator.in_phase._filter._state,
        "dq_state": sense.demodulator.quadrature._filter._state,
        "rate_channel": sense._rate_channel,
        "quad_channel": sense._quadrature_channel,
        "rate_dps_val": sense._rate_dps,
        "rate_word": sense._rate_word,
        "reb_state": rebalance._demod._filter._state,
        "reb_integ": rebalance._integrator,
        "reb_cmd": rebalance._command,
        "reb_residual": rebalance._residual,
        "st_state": float(startup._state.value),
        "st_count": float(startup._sample_count),
        "st_settle": float(startup._settle_counter),
        "st_ready": -1.0 if ready is None else float(ready),
        "st_failed": 1.0 if startup._failed else 0.0,
        "drive_v": platform._drive_v,
        "control_v": platform._control_v,
        "drive_word": drive_loop._drive_word,
        "control_word": conditioner._control_word,
        "rdac_held": frontend.rate_output_dac._held_output,
    }
    return np.array([float(values[name]) for name in SCALAR_STATE])


def unpack_scalar_state(platform, state: np.ndarray) -> None:
    """Write a packed state vector back into the platform objects.

    Performs the same writeback the fused kernel does at exit (the
    caller still owns biquad states, the sample counter, the platform
    clock and the monitor-register refresh).  Values are converted back
    to the plain Python types the reference chain keeps (floats, ints,
    bools, :class:`~repro.gyro.startup.StartupState`), so platforms that
    ran compiled pickle/digest identically to ones that ran fused.
    """
    from ..gyro.startup import StartupState
    g = {name: state[index] for index, name in enumerate(SCALAR_STATE)}
    frontend = platform.frontend
    conditioner = platform.conditioner
    sensor = platform.sensor
    drive_loop = conditioner.drive_loop
    pll = drive_loop.pll
    nco = pll.nco
    agc = drive_loop.agc
    sense = conditioner.sense_chain
    rebalance = conditioner.rebalance
    startup = conditioner.startup

    sensor.primary._displacement = float(g["x"])
    sensor.primary._velocity = float(g["xv"])
    sensor.secondary._displacement = float(g["y"])
    sensor.secondary._velocity = float(g["yv"])

    frontend.primary_pga._state = float(g["pga_p_state"])
    frontend.secondary_pga._state = float(g["pga_s_state"])
    frontend.primary_antialias._first._state = float(g["aa_p1"])
    frontend.primary_antialias._second._state = float(g["aa_p2"])
    frontend.secondary_antialias._first._state = float(g["aa_s1"])
    frontend.secondary_antialias._second._state = float(g["aa_s2"])
    overload = bool(g["overload"] != 0.0)
    frontend._overload = overload
    frontend.trim.register("afe_status").hw_write_field(
        "overload", int(overload))
    frontend.drive_dac._held_output = float(g["drive_v"])
    frontend.control_dac._held_output = float(g["control_v"])
    frontend.rate_output_dac._held_output = float(g["rdac_held"])

    pll._pd_filter._state = float(g["pd_state"])
    pll._amp_filter._state = float(g["amp_state"])
    pll._integrator = float(g["pll_integ"])
    pll._phase_error = float(g["phase_err"])
    pll._amplitude = float(g["amplitude"])
    pll._lock_counter = int(g["lock_counter"])
    pll._locked = bool(g["locked"] != 0.0)
    pll._sin_ref = float(g["sin_ref"])
    pll._cos_ref = float(g["cos_ref"])
    nco._phase = float(g["nco_phase"])
    nco._tuning_hz = float(g["tuning"])
    agc._integrator = float(g["agc_integ"])
    agc._gain = float(g["agc_gain"])
    agc._error = float(g["agc_err"])
    drive_loop._drive_word = float(g["drive_word"])

    sense.demodulator.in_phase._filter._state = float(g["di_state"])
    sense.demodulator.quadrature._filter._state = float(g["dq_state"])
    sense._rate_channel = float(g["rate_channel"])
    sense._quadrature_channel = float(g["quad_channel"])
    sense._rate_dps = float(g["rate_dps_val"])
    sense._rate_word = float(g["rate_word"])

    rebalance._demod._filter._state = float(g["reb_state"])
    rebalance._integrator = float(g["reb_integ"])
    rebalance._command = float(g["reb_cmd"])
    rebalance._residual = float(g["reb_residual"])

    startup._state = StartupState(int(g["st_state"]))
    startup._sample_count = int(g["st_count"])
    startup._settle_counter = int(g["st_settle"])
    ready = g["st_ready"]
    startup._ready_sample = None if ready < 0.0 else int(ready)
    startup._failed = bool(g["st_failed"] != 0.0)

    conditioner._control_word = float(g["control_word"])
    platform._drive_v = float(g["drive_v"])
    platform._control_v = float(g["control_v"])


def biquad_arrays(iir_filter) -> Tuple[np.ndarray, np.ndarray]:
    """Flat ``(coefs, z)`` arrays of an IirFilter for the compiled kernels.

    ``coefs`` is ``[b0, b1, b2, a1, a2]`` per section, flattened;
    ``z`` is ``[z1, z2]`` per section, flattened (the kernel mutates it
    in place; push it back with :func:`writeback_biquad_arrays`).
    """
    coefs = []
    z = []
    for section in iir_filter.sections:
        coefs.extend((section.b[0], section.b[1], section.b[2],
                      section.a[1], section.a[2]))
        z.extend((section._z1, section._z2))
    return np.array(coefs, dtype=float), np.array(z, dtype=float)


def writeback_biquad_arrays(iir_filter, z: np.ndarray) -> None:
    """Push a compiled kernel's flat biquad states back into the filter."""
    for index, section in enumerate(iir_filter.sections):
        section._z1 = float(z[2 * index])
        section._z2 = float(z[2 * index + 1])


def biquad_sections(iir_filter) -> List[List[float]]:
    """Extract ``[b0, b1, b2, a1, a2, z1, z2]`` rows from an IirFilter."""
    rows = []
    for section in iir_filter.sections:
        rows.append([section.b[0], section.b[1], section.b[2],
                     section.a[1], section.a[2], section._z1, section._z2])
    return rows


def writeback_biquads(iir_filter, rows: List[List[float]]) -> None:
    """Push kernel biquad states back into the IirFilter sections."""
    for section, row in zip(iir_filter.sections, rows):
        section._z1 = float(row[5])
        section._z2 = float(row[6])


def check_fleet_compatible(platforms) -> None:
    """Validate that a set of platforms can run in NumPy lockstep.

    Per-lane *values* (gains, seeds, noise levels, sensor parameters,
    startup timings...) may differ freely; what must match is the
    *structure*: sample rate, record decimation, loop topology, filter
    section counts and fixed-point formats, because those decide the
    shape of the vectorised state.
    """
    if not platforms:
        raise ConfigurationError("fleet needs at least one platform")
    ref = platforms[0]
    rc = ref.config
    for p in platforms[1:]:
        c = p.config
        if c.sample_rate_hz != rc.sample_rate_hz:
            raise ConfigurationError("fleet lanes must share the sample rate")
        if c.record_decimation != rc.record_decimation:
            raise ConfigurationError("fleet lanes must share record_decimation")
        if c.conditioner.closed_loop != rc.conditioner.closed_loop:
            raise ConfigurationError("fleet lanes must share the loop topology")
        if c.conditioner.fixed_point != rc.conditioner.fixed_point:
            raise ConfigurationError("fleet lanes must share the datapath mode")
        for fmt_a, fmt_b in (
                (c.conditioner.drive.output_format, rc.conditioner.drive.output_format),
                (c.conditioner.sense.output_format, rc.conditioner.sense.output_format),
                (c.conditioner.drive.pll.output_format,
                 rc.conditioner.drive.pll.output_format),
                (c.conditioner.drive.agc.output_format,
                 rc.conditioner.drive.agc.output_format)):
            if fmt_a != fmt_b:
                raise ConfigurationError("fleet lanes must share fixed-point formats")
        if (len(p.conditioner.sense_chain.output_filter.sections)
                != len(ref.conditioner.sense_chain.output_filter.sections)):
            raise ConfigurationError("fleet lanes must share the output filter order")
        if (len(p.conditioner.sense_chain.quadrature_filter.sections)
                != len(ref.conditioner.sense_chain.quadrature_filter.sections)):
            raise ConfigurationError(
                "fleet lanes must share the quadrature filter order")
