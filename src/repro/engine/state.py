"""Shared state/coefficient plumbing for the fast co-simulation engines.

The fused and batched kernels flatten the object-oriented reference
chain (sensor → AFE → DSP → DACs) into plain locals / NumPy arrays.  The
helpers here extract the constants the kernels need from the existing
block objects — so both engines compute with *exactly* the same
coefficient bits as the reference chain — and provide quantiser closures
that reproduce :func:`repro.common.fixedpoint.quantize` bit-for-bit on
scalars and arrays.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..common.exceptions import ConfigurationError, FixedPointOverflowError
from ..common.fixedpoint import QFormat


def scalar_quantizer(fmt: Optional[QFormat]) -> Optional[Callable[[float], float]]:
    """Fast scalar equivalent of ``quantize(x, fmt)`` (bit-exact).

    Returns ``None`` when ``fmt`` is ``None`` so the kernels can skip the
    call entirely in floating-point mode.
    """
    if fmt is None:
        return None
    lsb = fmt.lsb
    lo = fmt.min_value / lsb
    hi = fmt.max_value / lsb
    rounding = fmt.rounding
    overflow = fmt.overflow
    floor = math.floor
    trunc = math.trunc
    span = hi - lo + 1

    def q(x: float) -> float:
        scaled = x / lsb
        if rounding == "nearest":
            r = floor(scaled + 0.5)
        elif rounding == "floor":
            r = floor(scaled)
        else:  # truncate
            r = trunc(scaled)
        if overflow == "saturate":
            r = lo if r < lo else (hi if r > hi else r)
        elif overflow == "wrap":
            r = ((r - lo) % span) + lo
        elif r > hi or r < lo:
            raise FixedPointOverflowError(
                f"value {x!r} out of range for {fmt.describe()}")
        return r * lsb

    return q


def array_quantizer(fmt: Optional[QFormat]
                    ) -> Optional[Callable[[np.ndarray], np.ndarray]]:
    """Vectorised equivalent of ``quantize(x, fmt)`` (bit-exact)."""
    if fmt is None:
        return None
    lsb = fmt.lsb
    lo = fmt.min_value / lsb
    hi = fmt.max_value / lsb
    rounding = fmt.rounding
    overflow = fmt.overflow
    span = hi - lo + 1

    def q(x: np.ndarray) -> np.ndarray:
        scaled = x / lsb
        if rounding == "nearest":
            r = np.floor(scaled + 0.5)
        elif rounding == "floor":
            r = np.floor(scaled)
        else:
            r = np.trunc(scaled)
        if overflow == "saturate":
            r = np.clip(r, lo, hi)
        elif overflow == "wrap":
            r = ((r - lo) % span) + lo
        elif np.any(r > hi) or np.any(r < lo):
            raise FixedPointOverflowError(
                f"value out of range for {fmt.describe()}")
        return r * lsb

    return q


def sensor_temperature_plan(sensor, temp_arr: np.ndarray
                            ) -> List[Tuple[int, dict]]:
    """Plan the sensor's temperature-dependent coefficient updates.

    Replays the per-sample ``_apply_temperature`` hysteresis (recompute
    only when the temperature moved by >= 0.05 °C since the last applied
    value) over the whole temperature trace up front.  Returns a list of
    ``(sample_index, coefficients)`` events; the sensor object is mutated
    exactly as the reference loop would have left it (propagators retuned
    at each event, ``_temperature_c`` at the final trace value).

    Because the retune happens eagerly, an exception raised later in a
    fused/batched run (e.g. a fixed-point ``overflow="error"`` format
    tripping mid-loop) leaves the sensor's temperature state ahead of
    the sample where the run aborted; treat the platform as needing a
    ``reset()`` after an engine error, as with any half-completed run.

    The first entry always describes the coefficients valid from sample
    0, whether or not sample 0 triggers a recompute.
    """

    def snapshot() -> dict:
        p = sensor.primary
        s = sensor.secondary
        return {
            "pa": (p._a11, p._a12, p._a21, p._a22, p._b1, p._b2),
            "sa": (s._a11, s._a12, s._a21, s._a22, s._b1, s._b2),
            "pickoff_gain": sensor._pickoff_gain,
            "offset_rate_dps": sensor._offset_rate_dps,
            "primary_res_hz": p.resonance_hz,
        }

    temps = temp_arr.tolist()
    last = sensor._last_temp_applied
    events: List[Tuple[int, dict]] = []
    if last is not None and temp_arr.size:
        tmin = float(np.min(temp_arr))
        tmax = float(np.max(temp_arr))
        if abs(tmin - last) < 0.05 and abs(tmax - last) < 0.05:
            # the whole run stays inside the hysteresis band: no retune
            sensor._temperature_c = temps[-1]
            return [(0, snapshot())]
    initial = snapshot()
    for i, temp in enumerate(temps):
        if last is None or abs(temp - last) >= 0.05:
            sensor._apply_temperature(temp)
            last = temp
            events.append((i, snapshot()))
    if not events or events[0][0] != 0:
        # samples before the first recompute use the pre-run coefficients
        events.insert(0, (0, initial))
    if temps:
        sensor._temperature_c = temps[-1]
    return events


def biquad_sections(iir_filter) -> List[List[float]]:
    """Extract ``[b0, b1, b2, a1, a2, z1, z2]`` rows from an IirFilter."""
    rows = []
    for section in iir_filter.sections:
        rows.append([section.b[0], section.b[1], section.b[2],
                     section.a[1], section.a[2], section._z1, section._z2])
    return rows


def writeback_biquads(iir_filter, rows: List[List[float]]) -> None:
    """Push kernel biquad states back into the IirFilter sections."""
    for section, row in zip(iir_filter.sections, rows):
        section._z1 = float(row[5])
        section._z2 = float(row[6])


def check_fleet_compatible(platforms) -> None:
    """Validate that a set of platforms can run in NumPy lockstep.

    Per-lane *values* (gains, seeds, noise levels, sensor parameters,
    startup timings...) may differ freely; what must match is the
    *structure*: sample rate, record decimation, loop topology, filter
    section counts and fixed-point formats, because those decide the
    shape of the vectorised state.
    """
    if not platforms:
        raise ConfigurationError("fleet needs at least one platform")
    ref = platforms[0]
    rc = ref.config
    for p in platforms[1:]:
        c = p.config
        if c.sample_rate_hz != rc.sample_rate_hz:
            raise ConfigurationError("fleet lanes must share the sample rate")
        if c.record_decimation != rc.record_decimation:
            raise ConfigurationError("fleet lanes must share record_decimation")
        if c.conditioner.closed_loop != rc.conditioner.closed_loop:
            raise ConfigurationError("fleet lanes must share the loop topology")
        if c.conditioner.fixed_point != rc.conditioner.fixed_point:
            raise ConfigurationError("fleet lanes must share the datapath mode")
        for fmt_a, fmt_b in (
                (c.conditioner.drive.output_format, rc.conditioner.drive.output_format),
                (c.conditioner.sense.output_format, rc.conditioner.sense.output_format),
                (c.conditioner.drive.pll.output_format,
                 rc.conditioner.drive.pll.output_format),
                (c.conditioner.drive.agc.output_format,
                 rc.conditioner.drive.agc.output_format)):
            if fmt_a != fmt_b:
                raise ConfigurationError("fleet lanes must share fixed-point formats")
        if (len(p.conditioner.sense_chain.output_filter.sections)
                != len(ref.conditioner.sense_chain.output_filter.sections)):
            raise ConfigurationError("fleet lanes must share the output filter order")
        if (len(p.conditioner.sense_chain.quadrature_filter.sections)
                != len(ref.conditioner.sense_chain.quadrature_filter.sections)):
            raise ConfigurationError(
                "fleet lanes must share the quadrature filter order")
