"""Fast co-simulation engines for the gyro conditioning platform.

Four interchangeable ways to run the same mixed-signal co-simulation:

* **reference** — the original object-oriented per-sample loop in
  :meth:`GyroPlatform.run` (one method call per block per sample).
  The behavioural ground truth.
* **fused** (:func:`repro.engine.fused.run_fused`) — the whole
  sensor → AFE → DSP → DAC loop flattened into one function over local
  scalars; several times faster, bit-identical traces and state.
* **batched** (:class:`repro.engine.batch.FleetSimulator`) — the loop
  state made array-valued over a fleet of ``B`` independent platforms
  stepped in NumPy lockstep; an order of magnitude more per-scenario
  throughput at ``B≈32``, again bit-identical per lane.
* **compiled** (:func:`repro.engine.compiled.run_compiled`) — a kernel
  *generated* for the platform's structure (fixed-point quantisers
  inlined, biquads unrolled, dead branches dropped) and JIT-compiled
  with numba when it is installed; without numba the same generated
  source runs as a plain Python kernel, still faster than fused and
  still bit-identical.  :func:`repro.engine.compiled.run_compiled_fleet`
  runs heterogeneous fleets lane-by-lane with cache-sized time chunks.

``GyroPlatform.run`` dispatches through the engine registry
(``GyroPlatformConfig.engine``); ``GyroPlatform.run_batch`` and
:class:`FleetSimulator` expose the batch axis.
"""

from .batch import FleetSimulator
from .compiled import (
    backend_info,
    compiled_backend,
    run_compiled,
    run_compiled_fleet,
)
from .fused import run_fused

__all__ = [
    "FleetSimulator",
    "backend_info",
    "compiled_backend",
    "run_compiled",
    "run_compiled_fleet",
    "run_fused",
]
