"""Fast co-simulation engines for the gyro conditioning platform.

Three interchangeable ways to run the same mixed-signal co-simulation:

* **reference** — the original object-oriented per-sample loop in
  :meth:`GyroPlatform.run` (one method call per block per sample).
  The behavioural ground truth.
* **fused** (:func:`repro.engine.fused.run_fused`) — the whole
  sensor → AFE → DSP → DAC loop flattened into one function over local
  scalars; several times faster, bit-identical traces and state.
* **batched** (:class:`repro.engine.batch.FleetSimulator`) — the loop
  state made array-valued over a fleet of ``B`` independent platforms
  stepped in NumPy lockstep; an order of magnitude more per-scenario
  throughput at ``B≈32``, again bit-identical per lane.

``GyroPlatform.run`` dispatches to the fused kernel by default
(``GyroPlatformConfig.engine``); ``GyroPlatform.run_batch`` and
:class:`FleetSimulator` expose the batch axis.
"""

from .batch import FleetSimulator
from .fused import run_fused

__all__ = ["FleetSimulator", "run_fused"]
