"""Compiled hot-loop engine: specialised, optionally JIT-ed fused kernels.

The fused engine (:mod:`repro.engine.fused`) already flattens the whole
sensor → AFE → DSP → DAC loop into one Python function, but it still
pays interpreter cost for every sample: closure calls for each
fixed-point quantisation, list iteration over biquad sections, runtime
branches on structurally-constant flags (closed loop, ADC noise/INL
presence) and a modulo per sample for trace decimation.

This module removes all of that by *generating* a kernel specialised to
one platform structure.  :func:`kernel_plan` extracts the structural key
(loop topology, filter orders, the exact fixed-point formats at each of
the ten quantisation sites, noise/INL presence) and
:func:`generate_kernel_source` emits a straight-line Python function for
that key: quantisers inlined with their constants baked as literals,
biquad cascades unrolled, dead branches dropped, the start-up sequencer
skipped once it reaches RUNNING and the record point tracked with a
countdown instead of a modulo.

The same generated source is compiled two ways:

* ``"numba"`` — wrapped in ``numba.njit`` (no ``fastmath``, so IEEE-754
  semantics are preserved) when numba is importable; the kernel then
  runs as native code.
* ``"python"`` — plain ``compile()``/``exec``; a ``.tolist()`` prelude
  moves the per-sample arrays into Python floats so the loop runs on
  scalar floats exactly like the fused kernel, just without its
  remaining dispatch overhead.  This fallback is selected automatically
  when numba is missing, so the ``"compiled"`` engine always registers
  and behaves identically — only slower.

Bit-identity contract: the generated arithmetic replicates the fused
kernel (itself replicating the reference chain) operation for
operation — same expression order, same rounding points, same RNG block
draws — so traces and end-of-run platform state are bit-identical to the
reference engine on both backends.  All mutable loop state travels
through the packed vectors of :mod:`repro.engine.state`
(:func:`~repro.engine.state.pack_scalar_state` /
:func:`~repro.engine.state.unpack_scalar_state`), which is what lets
faults, safe-mode latching and early-exit lane retirement behave
identically: the campaign layer keeps mutating the platform objects
between chunks and every chunk re-packs from them.

Formats with ``overflow="error"`` cannot raise from inside a generated
kernel, so :func:`run_compiled` transparently delegates such platforms
to :func:`repro.engine.fused.run_fused` (same results, same exception
behaviour).

Runs are processed in time chunks (:data:`CHUNK_SAMPLES`) like the
batched engine; fleets of more than :data:`LANE_CHUNK` lanes drop to
:data:`BIG_FLEET_CHUNK_SAMPLES` so a big Monte Carlo sweep's per-lane
working set stays cache-resident.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from ..common.exceptions import ConfigurationError
from ..platform.result import GyroSimulationResult
from .fused import run_fused
from .state import (
    SCALAR_STATE,
    STATE_INDEX,
    biquad_arrays,
    pack_scalar_state,
    sensor_temperature_plan,
    unpack_scalar_state,
    writeback_biquad_arrays,
)

try:  # pragma: no cover - absence is the tested path in this environment
    import numba
    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    numba = None
    HAVE_NUMBA = False

#: Samples per kernel invocation for single runs and small fleets.
CHUNK_SAMPLES = 16384
#: Fleet size above which the per-lane time chunk shrinks.
LANE_CHUNK = 64
#: Samples per kernel invocation for >LANE_CHUNK-lane fleets, so the
#: combined per-lane buffers of a big sweep stay cache-resident.
BIG_FLEET_CHUNK_SAMPLES = 4096

_PI = repr(math.pi)
_TWO_PI = repr(2.0 * math.pi)

#: Slot order of the per-run scalar-constant vector handed to kernels.
#: The names match the fused kernel's constant locals.
_CONSTS = (
    "kq", "kc", "s_drive_gain", "s_control_gain",
    "ca_gain", "ca_rail", "trim_p", "trim_s",
    "pga_p_gain", "pga_s_gain", "pga_p_alpha", "pga_s_alpha",
    "pga_p_rail", "pga_s_rail", "aa_alpha", "aa_alpha_s",
    "adc_p_kinl", "adc_p_vref", "adc_p_lsb", "adc_p_cmin", "adc_p_cmax",
    "adc_s_kinl", "adc_s_vref", "adc_s_lsb", "adc_s_cmin", "adc_s_cmax",
    "ov_thr",
    "ddac_lsb", "ddac_vref", "ddac_min", "ddac_max",
    "cdac_lsb", "cdac_vref", "cdac_min", "cdac_max",
    "rdac_lsb", "rdac_vref", "rdac_min", "rdac_max",
    "mid", "out_span", "trim_out",
    "pd_alpha", "amp_alpha", "pll_thr", "pll_kp", "pll_ki",
    "lock_thr", "lock_count", "tuning_range", "nco_fc", "nco_fs",
    "agc_target", "agc_kp", "agc_ki", "agc_min", "agc_max", "settle_thr",
    "demod_alpha", "qc_coeff", "off_comp", "scale_dps", "full_scale",
    "reb_alpha", "reb_kp", "reb_ki", "reb_limit",
    "wd_samples", "settle_samples", "dt", "start_time",
)

_CONSTS_INDEX = {name: index for index, name in enumerate(_CONSTS)}

#: Kernel argument order (shared by both backends).
_KERNEL_ARGS = (
    "n0", "nc", "dec", "rec", "record_waveforms", "state", "consts",
    "rate", "temp", "sens_noise", "ca_off", "ca_p_noise", "ca_s_noise",
    "pga_p_off", "pga_s_off", "pga_p_noise", "pga_s_noise",
    "adc_p_gain", "adc_p_off", "adc_p_noise",
    "adc_s_gain", "adc_s_off", "adc_s_noise",
    "ddac_gain", "ddac_off", "cdac_gain", "cdac_off",
    "rdac_gain", "rdac_off", "tcomp_off", "tcomp_sens",
    "ev_starts", "ev_coefs", "out_coefs", "out_z", "quad_coefs", "quad_z",
    "time_tr", "rate_tr", "temp_tr", "out_dps_tr", "out_v_tr", "agc_tr",
    "agc_err_tr", "perr_tr", "vco_tr", "lock_tr", "run_tr",
    "pick_tr", "drive_tr",
)

#: Arrays the Python backend converts to lists up front (per-sample
#: reads on Python floats are several times faster than on NumPy
#: scalars).  The write-back arrays (state/out_z/quad_z/traces) and the
#: record-point-only arrays (temp, rdac_gain, rdac_off) stay ndarrays.
_HOT_ARRAYS = (
    "consts", "state", "rate", "sens_noise", "ca_off", "ca_p_noise",
    "ca_s_noise", "pga_p_off", "pga_s_off", "pga_p_noise", "pga_s_noise",
    "adc_p_gain", "adc_p_off", "adc_s_gain", "adc_s_off",
    "ddac_gain", "ddac_off", "cdac_gain", "cdac_off",
    "tcomp_off", "tcomp_sens",
    "ev_starts", "ev_coefs", "out_coefs", "out_z", "quad_coefs", "quad_z",
)

_EV_NAMES = ("pa11", "pa12", "pa21", "pa22", "pb1", "pb2",
             "sa11", "sa12", "sa21", "sa22", "sb1", "sb2",
             "pick_gain", "offset_rate", "res_hz")


def _fmt_spec(fmt) -> Optional[Tuple]:
    """Hashable structural key of a QFormat quantisation site."""
    if fmt is None:
        return None
    return (fmt.lsb, fmt.min_value / fmt.lsb, fmt.max_value / fmt.lsb,
            fmt.rounding, fmt.overflow)


def kernel_plan(platform) -> Optional[Tuple]:
    """Structural key deciding which specialised kernel a platform needs.

    Two platforms with the same plan share one generated kernel (their
    differing *values* travel through the consts/state vectors).
    Returns ``None`` when any quantisation site uses ``overflow="error"``
    — generated kernels cannot raise, so such runs delegate to the fused
    engine.
    """
    conditioner = platform.conditioner
    drive_loop = conditioner.drive_loop
    sense = conditioner.sense_chain
    frontend = platform.frontend
    specs = (
        _fmt_spec(drive_loop.pll.nco.output_format),
        _fmt_spec(drive_loop.agc.config.output_format),
        _fmt_spec(drive_loop.config.output_format),
        _fmt_spec(sense.demodulator.in_phase.output_format),
        _fmt_spec(sense.quadrature_cancel.output_format),
        _fmt_spec(sense.output_filter.sections[0].output_format),
        _fmt_spec(sense.quadrature_filter.sections[0].output_format),
        _fmt_spec(sense.offset_comp.output_format),
        _fmt_spec(sense.temperature_comp.output_format),
        _fmt_spec(sense.scaler.output_format),
    )
    for spec in specs:
        if spec is not None and spec[4] == "error":
            return None
    adc_p = frontend.primary_adc
    adc_s = frontend.secondary_adc
    return (
        bool(conditioner.config.closed_loop),
        len(sense.output_filter.sections),
        len(sense.quadrature_filter.sections),
    ) + specs + (
        bool(adc_p.config.noise_rms_v),
        bool(adc_s.config.noise_rms_v),
        bool(adc_p.config.inl_lsb * adc_p._lsb),
        bool(adc_s.config.inl_lsb * adc_s._lsb),
    )


def quantizer_lines(var, spec, indent: int, counter) -> list:
    """Emit the bit-exact inline equivalent of ``var = quantize(var, fmt)``.

    ``spec`` is a :func:`_fmt_spec` tuple (``None`` emits nothing) and
    ``counter`` a one-element list used to mint unique temporaries, so
    every inlined site stays SSA-friendly for numba.  Exposed at module
    level so tests can lock the generated snippet against
    :func:`repro.common.fixedpoint.quantize` directly.
    """
    if spec is None:
        return []
    lsb, lo, hi, rounding, overflow = spec
    pad = " " * indent
    k = counter[0]
    counter[0] += 1
    s, r = f"_s{k}", f"_r{k}"
    lines = [f"{pad}{s} = {var} / {lsb!r}"]
    if rounding == "nearest":
        lines.append(f"{pad}{r} = floor({s} + 0.5)")
    elif rounding == "floor":
        lines.append(f"{pad}{r} = floor({s})")
    else:  # truncate
        lines.append(f"{pad}{r} = trunc({s})")
    if overflow == "saturate":
        lines.append(f"{pad}{r} = {lo!r} if {r} < {lo!r} "
                     f"else ({hi!r} if {r} > {hi!r} else {r})")
    else:  # wrap ("error" never reaches codegen: kernel_plan -> None)
        span = hi - lo + 1
        lines.append(f"{pad}{r} = (({r} - {lo!r}) % {span!r}) + {lo!r}")
    lines.append(f"{pad}{var} = {r} * {lsb!r}")
    return lines


def generate_kernel_source(plan: Tuple, backend: str) -> str:
    """Emit the specialised kernel source for one plan and backend.

    The produced function body is identical for both backends except for
    the array-access prelude; the ``"python"`` variant reads per-sample
    data from ``.tolist()`` copies while ``"numba"`` indexes the ndarrays
    directly (and is then compiled by :func:`numba.njit`).
    """
    if backend not in ("python", "numba"):
        raise ConfigurationError(f"unknown kernel backend {backend!r}")
    (closed, n_out, n_quad, q_nco, q_agc, q_drive, q_demod, q_qc,
     q_out, q_quad, q_off, q_tc, q_scaler,
     has_p_noise, has_s_noise, has_p_inl, has_s_inl) = plan

    lines = []
    emit = lines.append
    counter = [0]

    def quant(var, spec, indent):
        lines.extend(quantizer_lines(var, spec, indent, counter))

    args = ", ".join(_KERNEL_ARGS)
    emit(f"def kernel({args}):")

    # ---- backend prelude: array access + function binding -----------------
    if backend == "python":
        emit("    floor = _floor; trunc = _trunc")
        emit("    sin = _sin; cos = _cos; rnd = _rnd")
        hot = set(_HOT_ARRAYS)
        if has_p_noise:
            hot.add("adc_p_noise")
        if has_s_noise:
            hot.add("adc_s_noise")
        for name in _KERNEL_ARGS:
            if name in hot:
                emit(f"    {name}_r = {name}.tolist()")
    else:
        for name in _HOT_ARRAYS + ("adc_p_noise", "adc_s_noise"):
            emit(f"    {name}_r = {name}")

    # ---- constants and entry state into locals ----------------------------
    for index, name in enumerate(_CONSTS):
        emit(f"    {name} = consts_r[{index}]")
    for name in SCALAR_STATE:
        index = STATE_INDEX[name]
        if name == "overload":
            continue  # recomputed from the final AA states at exit
        if name in ("locked", "st_failed"):
            emit(f"    {name} = state_r[{index}] != 0.0")
        elif name == "st_count":
            emit(f"    st_count0 = state_r[{index}]")
        else:
            emit(f"    {name} = state_r[{index}]")
    emit("    st_active = st_state != 4.0")

    # ---- biquad cascades unrolled into locals -----------------------------
    for k in range(n_out):
        base, zb = 5 * k, 2 * k
        emit(f"    ob0_{k} = out_coefs_r[{base}]; "
             f"ob1_{k} = out_coefs_r[{base + 1}]; "
             f"ob2_{k} = out_coefs_r[{base + 2}]")
        emit(f"    oa1_{k} = out_coefs_r[{base + 3}]; "
             f"oa2_{k} = out_coefs_r[{base + 4}]")
        emit(f"    oz1_{k} = out_z_r[{zb}]; oz2_{k} = out_z_r[{zb + 1}]")
    for k in range(n_quad):
        base, zb = 5 * k, 2 * k
        emit(f"    qb0_{k} = quad_coefs_r[{base}]; "
             f"qb1_{k} = quad_coefs_r[{base + 1}]; "
             f"qb2_{k} = quad_coefs_r[{base + 2}]")
        emit(f"    qa1_{k} = quad_coefs_r[{base + 3}]; "
             f"qa2_{k} = quad_coefs_r[{base + 4}]")
        emit(f"    qz1_{k} = quad_z_r[{zb}]; qz2_{k} = quad_z_r[{zb + 1}]")

    # ---- sensor temperature events ----------------------------------------
    emit("    ev_n = len(ev_starts_r)")
    emit("    ev_idx = 1")
    emit("    if ev_n > 1:")
    emit("        next_ev = int(ev_starts_r[1])")
    emit("    else:")
    emit("        next_ev = -1")
    for offset, name in enumerate(_EV_NAMES):
        emit(f"    {name} = ev_coefs_r[{offset}]")

    emit("    next_rec = (dec - n0 % dec) % dec")
    emit("    for j in range(nc):")
    emit("        rate_j = rate_r[j]")

    emit("        if j == next_ev:")
    emit("            _b = ev_idx * 15")
    for offset, name in enumerate(_EV_NAMES):
        emit(f"            {name} = ev_coefs_r[_b + {offset}]"
             if offset else f"            {name} = ev_coefs_r[_b]")
    emit("            ev_idx += 1")
    emit("            if ev_idx < ev_n:")
    emit("                next_ev = int(ev_starts_r[ev_idx])")
    emit("            else:")
    emit("                next_ev = -1")

    # MEMS sensor (exact ZOH resonator modes + Coriolis coupling)
    emit("        drive_accel = s_drive_gain * drive_v")
    emit("        x_new = pa11 * x + pa12 * xv + pb1 * drive_accel")
    emit("        xv = pa21 * x + pa22 * xv + pb2 * drive_accel")
    emit("        x = x_new")
    emit(f"        eff = (rate_j + offset_rate + sens_noise_r[j])"
         f" * {_PI} / 180.0")
    emit("        coriolis = kc * eff * xv")
    emit(f"        quad = kq * x * 2.0 * {_PI} * res_hz")
    emit("        sacc = coriolis + quad + s_control_gain * control_v")
    emit("        y_new = sa11 * y + sa12 * yv + sb1 * sacc")
    emit("        yv = sa21 * y + sa22 * yv + sb2 * sacc")
    emit("        y = y_new")

    # AFE acquisition: charge amp -> PGA -> anti-alias -> SAR ADC
    emit("        out = pick_gain * x * ca_gain + ca_off_r[j]"
         " + ca_p_noise_r[j]")
    emit("        p1 = -ca_rail if out < -ca_rail"
         " else (ca_rail if out > ca_rail else out)")
    emit("        ideal = (p1 + trim_p + pga_p_off_r[j] + pga_p_noise_r[j])"
         " * pga_p_gain")
    emit("        pga_p_state = pga_p_state"
         " + pga_p_alpha * (ideal - pga_p_state)")
    emit("        p2 = (-pga_p_rail if pga_p_state < -pga_p_rail"
         " else (pga_p_rail if pga_p_state > pga_p_rail else pga_p_state))")
    emit("        aa_p1 = aa_p1 + aa_alpha * (p2 - aa_p1)")
    emit("        aa_p2 = aa_p2 + aa_alpha * (aa_p1 - aa_p2)")

    emit("        out = pick_gain * y * ca_gain + ca_off_r[j]"
         " + ca_s_noise_r[j]")
    emit("        s1 = -ca_rail if out < -ca_rail"
         " else (ca_rail if out > ca_rail else out)")
    emit("        ideal = (s1 + trim_s + pga_s_off_r[j] + pga_s_noise_r[j])"
         " * pga_s_gain")
    emit("        pga_s_state = pga_s_state"
         " + pga_s_alpha * (ideal - pga_s_state)")
    emit("        s2 = (-pga_s_rail if pga_s_state < -pga_s_rail"
         " else (pga_s_rail if pga_s_state > pga_s_rail else pga_s_state))")
    emit("        aa_s1 = aa_s1 + aa_alpha_s * (s2 - aa_s1)")
    emit("        aa_s2 = aa_s2 + aa_alpha_s * (aa_s1 - aa_s2)")

    emit("        d = aa_p2 * adc_p_gain_r[j] + adc_p_off_r[j]")
    if has_p_inl:
        emit("        nrm = d / adc_p_vref")
        emit("        nrm = -1.0 if nrm < -1.0 else (1.0 if nrm > 1.0"
             " else nrm)")
        emit("        d += adc_p_kinl * (1.0 - nrm * nrm)")
    if has_p_noise:
        emit("        d += adc_p_noise_r[j]")
    emit("        code = floor(d / adc_p_lsb + 0.5)")
    emit("        code = adc_p_cmin if code < adc_p_cmin"
         " else (adc_p_cmax if code > adc_p_cmax else code)")
    emit("        p_norm = code * adc_p_lsb / adc_p_vref")

    emit("        d = aa_s2 * adc_s_gain_r[j] + adc_s_off_r[j]")
    if has_s_inl:
        emit("        nrm = d / adc_s_vref")
        emit("        nrm = -1.0 if nrm < -1.0 else (1.0 if nrm > 1.0"
             " else nrm)")
        emit("        d += adc_s_kinl * (1.0 - nrm * nrm)")
    if has_s_noise:
        emit("        d += adc_s_noise_r[j]")
    emit("        code = floor(d / adc_s_lsb + 0.5)")
    emit("        code = adc_s_cmin if code < adc_s_cmin"
         " else (adc_s_cmax if code > adc_s_cmax else code)")
    emit("        s_norm = code * adc_s_lsb / adc_s_vref")

    # drive PLL: phase detector -> PI -> NCO
    emit("        pd_state = pd_state + pd_alpha * (p_norm * cos_ref"
         " - pd_state)")
    emit("        amp_state = amp_state + amp_alpha * (p_norm * sin_ref"
         " - amp_state)")
    emit("        amplitude = 2.0 * amp_state")
    emit("        if amplitude < 0.0:")
    emit("            amplitude = 0.0")
    emit("        if amplitude > pll_thr:")
    emit("            denom = amplitude if amplitude > pll_thr else pll_thr")
    emit("            err = 2.0 * pd_state / denom")
    emit("            pll_integ += pll_ki * err")
    emit("            if pll_integ > tuning_range:")
    emit("                pll_integ = tuning_range")
    emit("            elif pll_integ < -tuning_range:")
    emit("                pll_integ = -tuning_range")
    emit("            tuning = pll_kp * err + pll_integ")
    emit("            if tuning > tuning_range:")
    emit("                tuning = tuning_range")
    emit("            elif tuning < -tuning_range:")
    emit("                tuning = -tuning_range")
    emit("            phase_err = err")
    emit("            if (err if err >= 0.0 else -err) < lock_thr:")
    emit("                lock_counter = lock_counter + 1.0"
         " if lock_counter < lock_count else lock_count")
    emit("            else:")
    emit("                lock_counter = 0.0")
    emit("        else:")
    emit("            tuning = 0.0")
    emit("            phase_err = 0.0")
    emit("            lock_counter = 0.0")
    emit("        locked = lock_counter >= lock_count")
    emit(f"        nco_phase = (nco_phase + {_TWO_PI} * (nco_fc + tuning)"
         f" / nco_fs) % {_TWO_PI}")
    emit("        sin_ref = sin(nco_phase)")
    emit("        cos_ref = cos(nco_phase)")
    quant("sin_ref", q_nco, 8)
    quant("cos_ref", q_nco, 8)

    # AGC
    emit("        agc_err = agc_target - amplitude")
    emit("        agc_integ += agc_ki * agc_err")
    emit("        if agc_integ < agc_min:")
    emit("            agc_integ = agc_min")
    emit("        elif agc_integ > agc_max:")
    emit("            agc_integ = agc_max")
    emit("        agc_gain = agc_kp * agc_err + agc_integ")
    emit("        if agc_gain < agc_min:")
    emit("            agc_gain = agc_min")
    emit("        elif agc_gain > agc_max:")
    emit("            agc_gain = agc_max")
    quant("agc_gain", q_agc, 8)
    emit("        drive_word = agc_gain * cos_ref")
    quant("drive_word", q_drive, 8)

    # sense chain: I/Q demod -> quadrature cancel -> filters -> comp
    emit("        di_state = di_state + demod_alpha * (s_norm * cos_ref"
         " - di_state)")
    emit("        i_chan = 2.0 * di_state")
    emit("        dq_state = dq_state + demod_alpha * (s_norm * sin_ref"
         " - dq_state)")
    emit("        q_chan = 2.0 * dq_state")
    quant("i_chan", q_demod, 8)
    quant("q_chan", q_demod, 8)
    emit("        raw = i_chan - qc_coeff * q_chan")
    quant("raw", q_qc, 8)
    emit("        v = raw")
    for k in range(n_out):
        emit(f"        yy = ob0_{k} * v + oz1_{k}")
        emit(f"        oz1_{k} = ob1_{k} * v - oa1_{k} * yy + oz2_{k}")
        emit(f"        oz2_{k} = ob2_{k} * v - oa2_{k} * yy")
        quant("yy", q_out, 8)
        emit("        v = yy")
    emit("        rate_channel = v")
    emit("        v = q_chan")
    for k in range(n_quad):
        emit(f"        yy = qb0_{k} * v + qz1_{k}")
        emit(f"        qz1_{k} = qb1_{k} * v - qa1_{k} * yy + qz2_{k}")
        emit(f"        qz2_{k} = qb2_{k} * v - qa2_{k} * yy")
        quant("yy", q_quad, 8)
        emit("        v = yy")
    emit("        quad_channel = v")
    emit("        comp = rate_channel - off_comp")
    quant("comp", q_off, 8)
    emit("        comp = (comp - tcomp_off_r[j]) / tcomp_sens_r[j]")
    quant("comp", q_tc, 8)
    emit("        rate_dps_val = comp * scale_dps")
    emit("        word = rate_dps_val / full_scale")
    emit("        word = -1.0 if word < -1.0 else (1.0 if word > 1.0"
         " else word)")
    quant("word", q_scaler, 8)
    emit("        rate_word = word")

    # force rebalance (closed-loop configuration) — structural branch
    if closed:
        emit("        reb_state = reb_state + reb_alpha * (s_norm * cos_ref"
             " - reb_state)")
        emit("        reb_residual = 2.0 * reb_state")
        emit("        reb_integ += reb_ki * reb_residual")
        emit("        if reb_integ > reb_limit:")
        emit("            reb_integ = reb_limit")
        emit("        elif reb_integ < -reb_limit:")
        emit("            reb_integ = -reb_limit")
        emit("        reb_cmd = reb_kp * reb_residual + reb_integ")
        emit("        if reb_cmd > reb_limit:")
        emit("            reb_cmd = reb_limit")
        emit("        elif reb_cmd < -reb_limit:")
        emit("            reb_cmd = -reb_limit")
        emit("        control_word = -reb_cmd * cos_ref")
        emit("        out_dps = reb_cmd * scale_dps")
        emit("        out_word = out_dps / full_scale")
        emit("        out_word = -1.0 if out_word < -1.0"
             " else (1.0 if out_word > 1.0 else out_word)")
        quant("out_word", q_scaler, 8)
    else:
        emit("        control_word = 0.0")
        emit("        out_dps = rate_dps_val")
        emit("        out_word = rate_word")

    # start-up sequencer (skipped once RUNNING: every branch is then a
    # no-op in the reference chain; the count still advances via the
    # st_count0 + nc write-back at exit)
    emit("        if st_active:")
    emit("            cur = st_count0 + (j + 1.0)")
    emit("            just_failed = False")
    emit("            if not st_failed:")
    emit("                if cur > wd_samples:")
    emit("                    st_failed = True")
    emit("                    just_failed = True")
    emit("            if not just_failed:")
    emit("                if st_state == 0.0:")
    emit("                    st_state = 1.0")
    emit("                elif st_state == 1.0:")
    emit("                    if locked:")
    emit("                        st_state = 2.0")
    emit("                elif st_state == 2.0:")
    emit("                    if agc_err < settle_thr and"
         " agc_err > -settle_thr:")
    emit("                        st_state = 3.0")
    emit("                        st_settle = 0.0")
    emit("                    elif not locked:")
    emit("                        st_state = 1.0")
    emit("                elif st_state == 3.0:")
    emit("                    if locked and (agc_err < settle_thr"
         " and agc_err > -settle_thr):")
    emit("                        st_settle = st_settle + 1.0")
    emit("                    else:")
    emit("                        st_settle = 0.0")
    emit("                    if st_settle >= settle_samples:")
    emit("                        st_state = 4.0")
    emit("                        st_ready = cur")
    emit("                        st_active = False")

    # drive / control DACs
    emit("        val = -1.0 if drive_word < -1.0"
         " else (1.0 if drive_word > 1.0 else drive_word)")
    emit("        qd = rnd(val * ddac_vref / ddac_lsb) * ddac_lsb")
    emit("        out = qd * ddac_gain_r[j] + ddac_off_r[j]")
    emit("        drive_v = ddac_min if out < ddac_min"
         " else (ddac_max if out > ddac_max else out)")
    emit("        val = -1.0 if control_word < -1.0"
         " else (1.0 if control_word > 1.0 else control_word)")
    emit("        qd = rnd(val * cdac_vref / cdac_lsb) * cdac_lsb")
    emit("        out = qd * cdac_gain_r[j] + cdac_off_r[j]")
    emit("        control_v = cdac_min if out < cdac_min"
         " else (cdac_max if out > cdac_max else out)")

    # trace recording (decimated; countdown instead of a per-sample %)
    emit("        if j == next_rec:")
    emit("            clipped = -1.0 if out_word < -1.0"
         " else (1.0 if out_word > 1.0 else out_word)")
    emit("            target = (mid + clipped * out_span + trim_out)"
         " / rdac_vref")
    emit("            val = 0.0 if target < 0.0"
         " else (1.0 if target > 1.0 else target)")
    emit("            qd = rnd(val * rdac_vref / rdac_lsb) * rdac_lsb")
    emit("            out = qd * rdac_gain[j] + rdac_off[j]")
    emit("            rdac_held = rdac_min if out < rdac_min"
         " else (rdac_max if out > rdac_max else out)")
    emit("            i = n0 + j")
    emit("            time_tr[rec] = start_time + i * dt")
    emit("            rate_tr[rec] = rate_j")
    emit("            temp_tr[rec] = temp[j]")
    emit("            out_dps_tr[rec] = out_dps")
    emit("            out_v_tr[rec] = rdac_held")
    emit("            agc_tr[rec] = agc_gain")
    emit("            agc_err_tr[rec] = agc_err")
    emit("            perr_tr[rec] = phase_err")
    emit("            vco_tr[rec] = pll_integ")
    emit("            lock_tr[rec] = locked")
    emit("            run_tr[rec] = st_state == 4.0")
    emit("            if record_waveforms:")
    emit("                pick_tr[rec] = p_norm")
    emit("                drive_tr[rec] = drive_word")
    emit("            rec += 1")
    emit("            next_rec += dec")

    # ---- write the final state back into the packed vectors ---------------
    for name in SCALAR_STATE:
        index = STATE_INDEX[name]
        if name == "overload":
            emit(f"    state[{index}] = 1.0 if (aa_p2 >= ov_thr"
                 " or -aa_p2 >= ov_thr or aa_s2 >= ov_thr"
                 " or -aa_s2 >= ov_thr) else 0.0")
        elif name in ("locked", "st_failed"):
            emit(f"    state[{index}] = 1.0 if {name} else 0.0")
        elif name == "st_count":
            emit(f"    state[{index}] = st_count0 + nc")
        else:
            emit(f"    state[{index}] = {name}")
    for k in range(n_out):
        emit(f"    out_z[{2 * k}] = oz1_{k}")
        emit(f"    out_z[{2 * k + 1}] = oz2_{k}")
    for k in range(n_quad):
        emit(f"    quad_z[{2 * k}] = qz1_{k}")
        emit(f"    quad_z[{2 * k + 1}] = qz2_{k}")
    emit("    return rec")
    emit("")
    return "\n".join(lines)


_KERNELS: dict = {}


def compiled_backend() -> str:
    """Name of the backend the compiled engine selects: numba or python."""
    return "numba" if HAVE_NUMBA else "python"


def backend_info() -> dict:
    """Provenance record for benchmark artifacts and diagnostics."""
    info = {"backend": compiled_backend(), "numba_available": HAVE_NUMBA}
    if HAVE_NUMBA:  # pragma: no cover - requires the optional dependency
        info["numba_version"] = numba.__version__
    return info


def _compile_kernel(plan: Tuple, backend: Optional[str] = None):
    """Compile (and cache) the specialised kernel for one plan."""
    if backend is None:
        backend = compiled_backend()
    key = (plan, backend)
    fn = _KERNELS.get(key)
    if fn is None:
        source = generate_kernel_source(plan, backend)
        namespace = {
            "floor": math.floor, "trunc": math.trunc,
            "sin": math.sin, "cos": math.cos, "rnd": round,
            "_floor": math.floor, "_trunc": math.trunc,
            "_sin": math.sin, "_cos": math.cos, "_rnd": round,
        }
        code = compile(source, f"<repro-compiled-kernel:{backend}>", "exec")
        exec(code, namespace)
        fn = namespace["kernel"]
        if backend == "numba":  # pragma: no cover - optional dependency
            fn = numba.njit(cache=False, fastmath=False)(fn)
        _KERNELS[key] = fn
    return fn


def _gather_consts(platform, start_time: float) -> np.ndarray:
    """Pack the run's scalar constants in :data:`_CONSTS` order."""
    cfg = platform.config
    sensor = platform.sensor
    frontend = platform.frontend
    conditioner = platform.conditioner
    drive_loop = conditioner.drive_loop
    pll = drive_loop.pll
    nco = pll.nco
    agc = drive_loop.agc
    sense = conditioner.sense_chain
    rebalance = conditioner.rebalance
    startup = conditioner.startup

    p = sensor.params
    ca_cfg = frontend.primary_charge_amp.config
    pga_p = frontend.primary_pga
    pga_s = frontend.secondary_pga
    adc_p = frontend.primary_adc
    adc_s = frontend.secondary_adc
    ddac = frontend.drive_dac
    cdac = frontend.control_dac
    rdac = frontend.rate_output_dac
    pll_cfg = pll.config
    agc_cfg = agc.config
    reb_cfg = rebalance.config
    st_cfg = startup.config
    values = {
        "kq": (p.quadrature_error_dps * math.pi / 180.0)
              * 2.0 * p.angular_gain,
        "kc": -2.0 * p.angular_gain,
        "s_drive_gain": p.drive_gain_ms2_per_v,
        "s_control_gain": p.control_gain_ms2_per_v,
        "ca_gain": ca_cfg.transimpedance_gain,
        "ca_rail": ca_cfg.rail_v,
        "trim_p": frontend._offset_trim_primary_v,
        "trim_s": frontend._offset_trim_secondary_v,
        "pga_p_gain": pga_p.gain,
        "pga_s_gain": pga_s.gain,
        "pga_p_alpha": pga_p._alpha,
        "pga_s_alpha": pga_s._alpha,
        "pga_p_rail": pga_p.config.rail_v,
        "pga_s_rail": pga_s.config.rail_v,
        "aa_alpha": frontend.primary_antialias._first._alpha,
        "aa_alpha_s": frontend.secondary_antialias._first._alpha,
        "adc_p_kinl": adc_p.config.inl_lsb * adc_p._lsb,
        "adc_p_vref": adc_p.config.vref,
        "adc_p_lsb": adc_p._lsb,
        "adc_p_cmin": float(adc_p._code_min),
        "adc_p_cmax": float(adc_p._code_max),
        "adc_s_kinl": adc_s.config.inl_lsb * adc_s._lsb,
        "adc_s_vref": adc_s.config.vref,
        "adc_s_lsb": adc_s._lsb,
        "adc_s_cmin": float(adc_s._code_min),
        "adc_s_cmax": float(adc_s._code_max),
        "ov_thr": 0.98 * frontend.config.adc.vref,
        "ddac_lsb": ddac._lsb,
        "ddac_vref": ddac.config.vref,
        "ddac_min": ddac._out_min,
        "ddac_max": ddac._out_max,
        "cdac_lsb": cdac._lsb,
        "cdac_vref": cdac.config.vref,
        "cdac_min": cdac._out_min,
        "cdac_max": cdac._out_max,
        "rdac_lsb": rdac._lsb,
        "rdac_vref": rdac.config.vref,
        "rdac_min": rdac._out_min,
        "rdac_max": rdac._out_max,
        "mid": frontend.supply.config.nominal_v / 2.0,
        "out_span": frontend.config.rate_output_sensitivity_v_per_fs,
        "trim_out": frontend._offset_trim_output_v,
        "pd_alpha": pll._pd_filter.alpha,
        "amp_alpha": pll._amp_filter.alpha,
        "pll_thr": pll_cfg.amplitude_threshold,
        "pll_kp": pll_cfg.kp,
        "pll_ki": pll_cfg.ki,
        "lock_thr": pll_cfg.lock_threshold,
        "lock_count": float(pll_cfg.lock_count),
        "tuning_range": nco.tuning_range_hz,
        "nco_fc": nco.center_frequency_hz,
        "nco_fs": nco.sample_rate_hz,
        "agc_target": agc_cfg.target_amplitude,
        "agc_kp": agc_cfg.kp,
        "agc_ki": agc_cfg.ki,
        "agc_min": agc_cfg.min_gain,
        "agc_max": agc_cfg.max_gain,
        "settle_thr": agc_cfg.settle_threshold,
        "demod_alpha": sense.demodulator.in_phase._filter.alpha,
        "qc_coeff": sense.quadrature_cancel.coefficient,
        "off_comp": sense.offset_comp.offset,
        "scale_dps": sense.scaler.config.scale_dps_per_unit,
        "full_scale": sense.scaler.config.full_scale_dps,
        "reb_alpha": rebalance._demod._filter.alpha,
        "reb_kp": reb_cfg.kp,
        "reb_ki": reb_cfg.ki,
        "reb_limit": reb_cfg.max_command,
        "wd_samples": st_cfg.watchdog_time_s * st_cfg.sample_rate_hz,
        "settle_samples": st_cfg.settling_time_s * st_cfg.sample_rate_hz,
        "dt": 1.0 / cfg.sample_rate_hz,
        "start_time": start_time,
    }
    return np.array([float(values[name]) for name in _CONSTS])


_EMPTY = np.zeros(0)


def run_compiled(platform, environment, duration_s: float,
                 record_waveforms: bool = False, *,
                 chunk_samples: Optional[int] = None) -> GyroSimulationResult:
    """Run the platform co-simulation on the compiled engine.

    Drop-in replacement for :func:`repro.engine.fused.run_fused` with the
    same result and end-of-run platform state, bit for bit.  Platforms
    whose fixed-point formats use ``overflow="error"`` are delegated to
    the fused engine (generated kernels cannot raise overflow errors).
    """
    plan = kernel_plan(platform)
    if plan is None:
        return run_fused(platform, environment, duration_s, record_waveforms)

    cfg = platform.config
    fs = cfg.sample_rate_hz
    dt = 1.0 / fs
    n = int(round(duration_s * fs))
    dec = cfg.record_decimation
    n_rec = n // dec + 1
    start_time = platform._time_s

    sensor = platform.sensor
    frontend = platform.frontend
    conditioner = platform.conditioner
    sense = conditioner.sense_chain
    tsens = cfg.temperature_sensor
    tc_cfg = sense.temperature_comp.config
    ca_cfg = frontend.primary_charge_amp.config
    pga_p = frontend.primary_pga
    pga_s = frontend.secondary_pga
    adc_p = frontend.primary_adc
    adc_s = frontend.secondary_adc
    ddac = frontend.drive_dac
    cdac = frontend.control_dac
    rdac = frontend.rate_output_dac
    (closed, n_out, n_quad) = plan[:3]
    has_p_noise, has_s_noise = plan[13], plan[14]

    kernel = _compile_kernel(plan)
    consts = _gather_consts(platform, start_time)
    state = pack_scalar_state(platform)
    out_coefs, out_z = biquad_arrays(sense.output_filter)
    quad_coefs, quad_z = biquad_arrays(sense.quadrature_filter)

    time_tr = np.zeros(n_rec)
    rate_tr = np.zeros(n_rec)
    temp_tr = np.zeros(n_rec)
    out_dps_tr = np.zeros(n_rec)
    out_v_tr = np.zeros(n_rec)
    agc_tr = np.zeros(n_rec)
    agc_err_tr = np.zeros(n_rec)
    perr_tr = np.zeros(n_rec)
    vco_tr = np.zeros(n_rec)
    lock_tr = np.zeros(n_rec, dtype=bool)
    run_tr = np.zeros(n_rec, dtype=bool)
    pick_tr = np.zeros(n_rec) if record_waveforms else _EMPTY
    drive_tr = np.zeros(n_rec) if record_waveforms else _EMPTY
    rec = 0

    chunk = int(chunk_samples) if chunk_samples else CHUNK_SAMPLES
    n0 = 0
    while n0 < n:
        nc = min(chunk, n - n0)
        t = np.arange(n0, n0 + nc) * dt
        rate_arr, temp_arr = environment.sample(t)
        rate_arr = np.asarray(rate_arr, dtype=float)
        temp_arr = np.asarray(temp_arr, dtype=float)
        dt_c = temp_arr - 25.0
        meas = (np.round((temp_arr + tsens.offset_error_c)
                         / tsens.resolution_c) * tsens.resolution_c)
        dtm = meas - 25.0

        events = sensor_temperature_plan(sensor, temp_arr)
        ev_starts = np.array([e[0] for e in events], dtype=np.int64)
        ev_coefs = np.empty(len(events) * 15)
        for k, (_, ev) in enumerate(events):
            base = 15 * k
            ev_coefs[base:base + 6] = ev["pa"]
            ev_coefs[base + 6:base + 12] = ev["sa"]
            ev_coefs[base + 12] = ev["pickoff_gain"]
            ev_coefs[base + 13] = ev["offset_rate_dps"]
            ev_coefs[base + 14] = ev["primary_res_hz"]

        sens_noise = sensor._noise.take(nc)
        ca_off = ca_cfg.offset_v + ca_cfg.offset_tc_v_per_c * dt_c
        ca_p_noise = frontend.primary_charge_amp._noise.take(nc)
        ca_s_noise = frontend.secondary_charge_amp._noise.take(nc)
        pga_p_off = (pga_p.config.offset_v
                     + pga_p.config.offset_tc_v_per_c * dt_c)
        pga_s_off = (pga_s.config.offset_v
                     + pga_s.config.offset_tc_v_per_c * dt_c)
        pga_p_noise = pga_p._noise.take(nc)
        pga_s_noise = pga_s._noise.take(nc)

        def converter_drift(device):
            c = device.config
            gain = ((1.0 + c.gain_error)
                    * (1.0 + c.gain_tc_ppm_per_c * 1e-6 * dt_c))
            off = c.offset_error_v + c.offset_tc_v_per_c * dt_c
            return gain, off

        adc_p_gain, adc_p_off = converter_drift(adc_p)
        adc_s_gain, adc_s_off = converter_drift(adc_s)
        adc_p_noise = adc_p._noise.take(nc) if has_p_noise else _EMPTY
        adc_s_noise = adc_s._noise.take(nc) if has_s_noise else _EMPTY
        ddac_gain, ddac_off = converter_drift(ddac)
        cdac_gain, cdac_off = converter_drift(cdac)
        rdac_gain, rdac_off = converter_drift(rdac)

        tcomp_off = np.zeros(nc)
        for i, c in enumerate(tc_cfg.offset_poly):
            tcomp_off = tcomp_off + c * dtm ** i
        tcomp_sens = np.zeros(nc)
        for i, c in enumerate(tc_cfg.sensitivity_poly):
            tcomp_sens = tcomp_sens + c * dtm ** (i + 1)
        tcomp_sens = 1.0 + tcomp_sens
        if np.any(tcomp_sens == 0.0):
            raise ConfigurationError(
                "sensitivity correction factor reached zero")

        rec = int(kernel(
            n0, nc, dec, rec, record_waveforms, state, consts,
            rate_arr, temp_arr, sens_noise, ca_off, ca_p_noise, ca_s_noise,
            pga_p_off, pga_s_off, pga_p_noise, pga_s_noise,
            adc_p_gain, adc_p_off, adc_p_noise,
            adc_s_gain, adc_s_off, adc_s_noise,
            ddac_gain, ddac_off, cdac_gain, cdac_off,
            rdac_gain, rdac_off, tcomp_off, tcomp_sens,
            ev_starts, ev_coefs, out_coefs, out_z, quad_coefs, quad_z,
            time_tr, rate_tr, temp_tr, out_dps_tr, out_v_tr, agc_tr,
            agc_err_tr, perr_tr, vco_tr, lock_tr, run_tr,
            pick_tr, drive_tr))
        n0 += nc

    unpack_scalar_state(platform, state)
    writeback_biquad_arrays(sense.output_filter, out_z)
    writeback_biquad_arrays(sense.quadrature_filter, quad_z)
    conditioner._sample_count += n
    conditioner._refresh_registers()
    platform._time_s = start_time + n * dt

    return GyroSimulationResult(
        time_s=time_tr[:rec],
        sample_rate_hz=fs / dec,
        true_rate_dps=rate_tr[:rec],
        temperature_c=temp_tr[:rec],
        rate_output_dps=out_dps_tr[:rec],
        rate_output_v=out_v_tr[:rec],
        amplitude_control=agc_tr[:rec],
        amplitude_error=agc_err_tr[:rec],
        phase_error=perr_tr[:rec],
        vco_control=vco_tr[:rec],
        pll_locked=lock_tr[:rec],
        running=run_tr[:rec],
        primary_pickoff_norm=pick_tr[:rec] if record_waveforms else None,
        drive_word=drive_tr[:rec] if record_waveforms else None,
        turn_on_time_s=conditioner.startup.turn_on_time_s,
    )


def run_compiled_fleet(platforms: Sequence, environments, durations_s,
                       record_waveforms: bool = False):
    """Run a fleet of platforms on the compiled engine.

    Unlike the lockstep :class:`~repro.engine.batch.FleetSimulator`, the
    lanes run sequentially through their own specialised kernels, so the
    fleet may be structurally heterogeneous and per-lane durations
    (early-exit retirement) are free.  Fleets larger than
    :data:`LANE_CHUNK` use the smaller :data:`BIG_FLEET_CHUNK_SAMPLES`
    time chunk so big Monte Carlo sweeps stay cache-resident.

    Returns one :class:`~repro.platform.result.GyroSimulationResult` per
    lane.
    """
    n_lanes = len(platforms)
    if not isinstance(environments, (list, tuple)):
        environments = [environments] * n_lanes
    if isinstance(durations_s, (int, float)):
        durations_s = [durations_s] * n_lanes
    if len(environments) != n_lanes or len(durations_s) != n_lanes:
        raise ConfigurationError(
            "fleet environments/durations must match the number of lanes")
    chunk = CHUNK_SAMPLES if n_lanes <= LANE_CHUNK else BIG_FLEET_CHUNK_SAMPLES
    return [
        run_compiled(platform, environment, duration_s, record_waveforms,
                     chunk_samples=chunk)
        for platform, environment, duration_s
        in zip(platforms, environments, durations_s)
    ]
