"""Batched scenario-fleet co-simulation engine.

Where the fused kernel removes per-sample dispatch for a single
platform, this engine adds a *batch axis*: every piece of closed-loop
state (resonator modes, AFE filter states, PLL integrator/NCO phase,
AGC, demod filters, rebalance, start-up counters, DAC outputs) becomes a
``(B,)`` NumPy array over ``B`` independent platforms stepped in
lockstep.  One pass through the Python interpreter per sample then
advances the whole fleet, amortising the interpreter cost across
scenarios and opening workloads the scalar loop cannot afford: Monte
Carlo mismatch runs, multi-device trim sweeps and simulation-backed
design-space exploration.

Per-lane *values* may differ freely (sensor parameters, noise seeds,
gains, calibration words, environments); only the *structure* must match
across lanes (sample rate, loop topology, filter orders, fixed-point
formats) — see :func:`repro.engine.state.check_fleet_compatible`.

Like the fused kernel, every arithmetic expression replicates the
reference chain operation-for-operation (elementwise IEEE-754 ops are
identical to their scalar counterparts, and ``np.sin``/``np.cos``/
``np.round`` match ``math.sin``/``math.cos``/``round`` bit-for-bit), so
each lane's traces and final platform state are bit-identical to a
dedicated reference-engine run.  Registers are refreshed once at the end
of the run, as in the fused engine.
"""

from __future__ import annotations

import copy
import math
from typing import List, Optional, Sequence, Union

import numpy as np

from ..common.exceptions import ConfigurationError
from ..gyro.startup import StartupState
from ..platform.result import GyroSimulationResult
from ..sensors.environment import Environment
from .state import (
    array_quantizer,
    biquad_sections,
    check_fleet_compatible,
    sensor_temperature_plan,
    writeback_biquads,
)

TWO_PI = 2.0 * math.pi

#: Samples per precompute chunk — bounds the memory of the per-sample
#: stimulus/noise/drift buffers to a few MB per fleet lane block.
CHUNK_SAMPLES = 16384

ST_POWER_ON = StartupState.POWER_ON.value
ST_SPINUP = StartupState.DRIVE_SPINUP.value
ST_LOCKED = StartupState.PLL_LOCKED.value
ST_SETTLING = StartupState.OUTPUT_SETTLING.value
ST_RUNNING = StartupState.RUNNING.value


class FleetSimulator:
    """Steps ``B`` independent gyro platforms in NumPy lockstep.

    The lanes are ordinary :class:`~repro.platform.gyro_platform.GyroPlatform`
    objects: their state is read into the batch axis at the start of a
    run and written back at the end, so fleet runs can be freely mixed
    with per-platform (reference or fused) simulation, calibration and
    register access.
    """

    def __init__(self, platforms: Sequence):
        check_fleet_compatible(platforms)
        self.platforms = list(platforms)

    def __len__(self) -> int:
        return len(self.platforms)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_config(cls, config, n: int) -> "FleetSimulator":
        """Build a fleet of ``n`` identical platforms from one config."""
        from ..platform.gyro_platform import GyroPlatform
        if n < 1:
            raise ConfigurationError("fleet size must be >= 1")
        return cls([GyroPlatform(copy.deepcopy(config)) for _ in range(n)])

    @classmethod
    def with_part_variation(cls, config, n: int,
                            rng: Optional[np.random.Generator] = None,
                            **spreads) -> "FleetSimulator":
        """Build a Monte-Carlo fleet with part-to-part sensor mismatch.

        Each lane gets a sensor drawn via
        :meth:`GyroParameters.with_part_variation` (its own pick-off
        gain, resonances, offset and noise seed) and a distinct
        front-end noise seed, modelling ``n`` different physical devices
        of the same design.
        """
        from ..platform.gyro_platform import GyroPlatform
        if n < 1:
            raise ConfigurationError("fleet size must be >= 1")
        rng = rng or np.random.default_rng()
        platforms = []
        for _ in range(n):
            cfg = copy.deepcopy(config)
            cfg.sensor = cfg.sensor.with_part_variation(rng, **spreads)
            if cfg.frontend.seed is not None:
                cfg.frontend.seed = int(rng.integers(0, 2 ** 31 - 1))
            platforms.append(GyroPlatform(cfg))
        return cls(platforms)

    # -- operation ----------------------------------------------------------

    def run(self, environments: Union[Environment, Sequence[Environment]],
            duration_s: Union[float, Sequence[float]], reset: bool = False,
            record_waveforms: bool = False) -> List[GyroSimulationResult]:
        """Run every lane in lockstep, each for its own duration.

        Args:
            environments: one :class:`Environment` per lane, or a single
                environment applied to all lanes.
            duration_s: how long to simulate — a scalar applied to every
                lane, or one duration per lane.  Lanes with shorter
                durations *retire* at their own end instead of paying
                for the longest lane: their state is frozen at the
                retirement boundary and their noise generators stop
                advancing, so each lane's traces and final state are
                bit-identical to a standalone run of its own length.
            reset: power-cycle every lane before running.
            record_waveforms: record pick-off / drive-word waveforms.

        Returns:
            One :class:`GyroSimulationResult` per lane, bit-identical to
            per-platform reference runs.
        """
        if isinstance(duration_s, (int, float)):
            durations = [float(duration_s)] * len(self.platforms)
        else:
            durations = [float(d) for d in duration_s]
            if len(durations) != len(self.platforms):
                raise ConfigurationError(
                    f"got {len(durations)} durations for "
                    f"{len(self.platforms)} fleet lanes")
        if any(d <= 0 for d in durations):
            raise ConfigurationError("duration must be > 0")
        if isinstance(environments, Environment):
            environments = [environments] * len(self.platforms)
        environments = list(environments)
        if len(environments) != len(self.platforms):
            raise ConfigurationError(
                f"got {len(environments)} environments for "
                f"{len(self.platforms)} fleet lanes")
        if reset:
            for p in self.platforms:
                p.reset()
        return _run_batch(self.platforms, environments, durations,
                          record_waveforms)


def _lane_array(platforms, fn) -> np.ndarray:
    """Gather one scalar per lane into a float ``(B,)`` array."""
    return np.array([fn(p) for p in platforms], dtype=np.float64)


def _run_batch(platforms, environments, durations_s: Sequence[float],
               record_waveforms: bool) -> List[GyroSimulationResult]:
    B = len(platforms)
    ref = platforms[0]
    cfg = ref.config
    fs = cfg.sample_rate_hz
    dt = 1.0 / fs
    n_lane = [int(round(d * fs)) for d in durations_s]
    n = max(n_lane)
    dec = cfg.record_decimation
    n_rec = n // dec + 1
    start_times = _lane_array(platforms, lambda p: p._time_s)

    sensors = [p.sensor for p in platforms]
    frontends = [p.frontend for p in platforms]
    conds = [p.conditioner for p in platforms]
    plls = [c.drive_loop.pll for c in conds]
    ncos = [pll.nco for pll in plls]
    agcs = [c.drive_loop.agc for c in conds]
    senses = [c.sense_chain for c in conds]
    rebs = [c.rebalance for c in conds]
    starts = [c.startup for c in conds]

    # ---- per-lane constants ------------------------------------------------
    la = _lane_array
    sp = [s.params for s in sensors]
    kq = np.array([(p.quadrature_error_dps * math.pi / 180.0)
                   * 2.0 * p.angular_gain for p in sp])
    kc = np.array([-2.0 * p.angular_gain for p in sp])
    s_drive_gain = np.array([p.drive_gain_ms2_per_v for p in sp])
    s_control_gain = np.array([p.control_gain_ms2_per_v for p in sp])

    ca_gain = la(frontends, lambda f: f.primary_charge_amp.config.transimpedance_gain)
    ca_rail = la(frontends, lambda f: f.primary_charge_amp.config.rail_v)
    ca_off_v = la(frontends, lambda f: f.primary_charge_amp.config.offset_v)
    ca_off_tc = la(frontends, lambda f: f.primary_charge_amp.config.offset_tc_v_per_c)

    pga_p_gain = la(frontends, lambda f: f.primary_pga.gain)
    pga_s_gain = la(frontends, lambda f: f.secondary_pga.gain)
    pga_p_alpha = la(frontends, lambda f: f.primary_pga._alpha)
    pga_s_alpha = la(frontends, lambda f: f.secondary_pga._alpha)
    pga_p_rail = la(frontends, lambda f: f.primary_pga.config.rail_v)
    pga_s_rail = la(frontends, lambda f: f.secondary_pga.config.rail_v)
    pga_p_off_v = la(frontends, lambda f: f.primary_pga.config.offset_v)
    pga_p_off_tc = la(frontends, lambda f: f.primary_pga.config.offset_tc_v_per_c)
    pga_s_off_v = la(frontends, lambda f: f.secondary_pga.config.offset_v)
    pga_s_off_tc = la(frontends, lambda f: f.secondary_pga.config.offset_tc_v_per_c)
    trim_p = la(frontends, lambda f: f._offset_trim_primary_v)
    trim_s = la(frontends, lambda f: f._offset_trim_secondary_v)
    aa_alpha_p = la(frontends, lambda f: f.primary_antialias._first._alpha)
    aa_alpha_s = la(frontends, lambda f: f.secondary_antialias._first._alpha)

    def adc_consts(get):
        adcs = [get(f) for f in frontends]
        return {
            "k_gain": np.array([1.0 + a.config.gain_error for a in adcs]),
            "k_tc": np.array([a.config.gain_tc_ppm_per_c * 1e-6 for a in adcs]),
            "off_v": np.array([a.config.offset_error_v for a in adcs]),
            "off_tc": np.array([a.config.offset_tc_v_per_c for a in adcs]),
            "kinl": np.array([a.config.inl_lsb * a._lsb for a in adcs]),
            "vref": np.array([a.config.vref for a in adcs]),
            "lsb": np.array([a._lsb for a in adcs]),
            "cmin": np.array([float(a._code_min) for a in adcs]),
            "cmax": np.array([float(a._code_max) for a in adcs]),
            "noise": [a._noise for a in adcs],
        }

    adc_p = adc_consts(lambda f: f.primary_adc)
    adc_s = adc_consts(lambda f: f.secondary_adc)
    ov_thr = 0.98 * la(frontends, lambda f: f.config.adc.vref)

    def dac_consts(get):
        dacs = [get(f) for f in frontends]
        return {
            "k_gain": np.array([1.0 + d.config.gain_error for d in dacs]),
            "k_tc": np.array([d.config.gain_tc_ppm_per_c * 1e-6 for d in dacs]),
            "off_v": np.array([d.config.offset_error_v for d in dacs]),
            "off_tc": np.array([d.config.offset_tc_v_per_c for d in dacs]),
            "lsb": np.array([d._lsb for d in dacs]),
            "vref": np.array([d.config.vref for d in dacs]),
            "out_min": np.array([d._out_min for d in dacs]),
            "out_max": np.array([d._out_max for d in dacs]),
        }

    ddac = dac_consts(lambda f: f.drive_dac)
    cdac = dac_consts(lambda f: f.control_dac)
    rdac = dac_consts(lambda f: f.rate_output_dac)
    mid = la(frontends, lambda f: f.supply.config.nominal_v) / 2.0
    out_span = la(frontends, lambda f: f.config.rate_output_sensitivity_v_per_fs)
    trim_out = la(frontends, lambda f: f._offset_trim_output_v)

    pd_alpha = la(plls, lambda p: p._pd_filter.alpha)
    amp_alpha = la(plls, lambda p: p._amp_filter.alpha)
    pll_thr = la(plls, lambda p: p.config.amplitude_threshold)
    pll_kp = la(plls, lambda p: p.config.kp)
    pll_ki = la(plls, lambda p: p.config.ki)
    lock_thr = la(plls, lambda p: p.config.lock_threshold)
    lock_count = np.array([p.config.lock_count for p in plls])
    tuning_range = la(ncos, lambda o: o.tuning_range_hz)
    nco_fc = la(ncos, lambda o: o.center_frequency_hz)
    nco_fs = la(ncos, lambda o: o.sample_rate_hz)
    q_nco = array_quantizer(ncos[0].output_format)

    agc_target = la(agcs, lambda a: a.config.target_amplitude)
    agc_kp = la(agcs, lambda a: a.config.kp)
    agc_ki = la(agcs, lambda a: a.config.ki)
    agc_min = la(agcs, lambda a: a.config.min_gain)
    agc_max = la(agcs, lambda a: a.config.max_gain)
    settle_thr = la(agcs, lambda a: a.config.settle_threshold)
    q_agc = array_quantizer(agcs[0].config.output_format)
    q_drive = array_quantizer(conds[0].drive_loop.config.output_format)

    demod_alpha = la(senses, lambda s: s.demodulator.in_phase._filter.alpha)
    q_demod = array_quantizer(senses[0].demodulator.in_phase.output_format)
    qc_coeff = la(senses, lambda s: s.quadrature_cancel.coefficient)
    q_qc = array_quantizer(senses[0].quadrature_cancel.output_format)
    q_out = array_quantizer(senses[0].output_filter.sections[0].output_format)
    q_quad = array_quantizer(
        senses[0].quadrature_filter.sections[0].output_format)
    off_comp = la(senses, lambda s: s.offset_comp.offset)
    q_off = array_quantizer(senses[0].offset_comp.output_format)
    q_tc = array_quantizer(senses[0].temperature_comp.output_format)
    tc_offset_polys = [s.temperature_comp.config.offset_poly for s in senses]
    tc_sens_polys = [s.temperature_comp.config.sensitivity_poly for s in senses]
    scale_dps = la(senses, lambda s: s.scaler.config.scale_dps_per_unit)
    full_scale = la(senses, lambda s: s.scaler.config.full_scale_dps)
    q_scaler = array_quantizer(senses[0].scaler.output_format)

    closed = cfg.conditioner.closed_loop
    reb_alpha = la(rebs, lambda r: r._demod._filter.alpha)
    reb_kp = la(rebs, lambda r: r.config.kp)
    reb_ki = la(rebs, lambda r: r.config.ki)
    reb_limit = la(rebs, lambda r: r.config.max_command)

    wd_samples = la(starts, lambda s: s.config.watchdog_time_s
                    * s.config.sample_rate_hz)
    settle_samples = la(starts, lambda s: s.config.settling_time_s
                        * s.config.sample_rate_hz)
    ts_off = la(platforms, lambda p: p.config.temperature_sensor.offset_error_c)
    ts_res = la(platforms, lambda p: p.config.temperature_sensor.resolution_c)

    # per-section biquad coefficient/state arrays: [b0, b1, b2, a1, a2, z1, z2]
    def stack_sections(get_filter):
        per_lane = [biquad_sections(get_filter(s)) for s in senses]
        n_sec = len(per_lane[0])
        return [[np.array([per_lane[lane][k][j] for lane in range(B)])
                 for j in range(7)] for k in range(n_sec)]

    out_secs = stack_sections(lambda s: s.output_filter)
    quad_secs = stack_sections(lambda s: s.quadrature_filter)

    # ---- mutable state gathered into the batch axis ------------------------
    x = la(sensors, lambda s: s.primary._displacement)
    xv = la(sensors, lambda s: s.primary._velocity)
    y = la(sensors, lambda s: s.secondary._displacement)
    yv = la(sensors, lambda s: s.secondary._velocity)

    pga_p_state = la(frontends, lambda f: f.primary_pga._state)
    pga_s_state = la(frontends, lambda f: f.secondary_pga._state)
    aa_p1 = la(frontends, lambda f: f.primary_antialias._first._state)
    aa_p2 = la(frontends, lambda f: f.primary_antialias._second._state)
    aa_s1 = la(frontends, lambda f: f.secondary_antialias._first._state)
    aa_s2 = la(frontends, lambda f: f.secondary_antialias._second._state)
    overload = np.array([f._overload for f in frontends])

    pd_state = la(plls, lambda p: p._pd_filter._state)
    amp_state = la(plls, lambda p: p._amp_filter._state)
    pll_integ = la(plls, lambda p: p._integrator)
    phase_err = la(plls, lambda p: p._phase_error)
    amplitude = la(plls, lambda p: p._amplitude)
    lock_counter = np.array([p._lock_counter for p in plls])
    locked = np.array([p._locked for p in plls])
    sin_ref = la(plls, lambda p: p._sin_ref)
    cos_ref = la(plls, lambda p: p._cos_ref)
    nco_phase = la(ncos, lambda o: o._phase)
    tuning = la(ncos, lambda o: o._tuning_hz)
    agc_integ = la(agcs, lambda a: a._integrator)
    agc_gain = la(agcs, lambda a: a._gain)
    agc_err = la(agcs, lambda a: a._error)

    di_state = la(senses, lambda s: s.demodulator.in_phase._filter._state)
    dq_state = la(senses, lambda s: s.demodulator.quadrature._filter._state)
    rate_channel = la(senses, lambda s: s._rate_channel)
    quad_channel = la(senses, lambda s: s._quadrature_channel)
    rate_dps_val = la(senses, lambda s: s._rate_dps)
    rate_word = la(senses, lambda s: s._rate_word)

    reb_state = la(rebs, lambda r: r._demod._filter._state)
    reb_integ = la(rebs, lambda r: r._integrator)
    reb_cmd = la(rebs, lambda r: r._command)
    reb_residual = la(rebs, lambda r: r._residual)

    st_state = np.array([s._state.value for s in starts])
    st_count = np.array([s._sample_count for s in starts])
    st_settle = np.array([s._settle_counter for s in starts])
    st_ready = np.array([-1 if s._ready_sample is None else s._ready_sample
                         for s in starts])
    st_failed = np.array([s._failed for s in starts])

    drive_v = la(platforms, lambda p: p._drive_v)
    control_v = la(platforms, lambda p: p._control_v)
    drive_word = la(conds, lambda c: c.drive_loop._drive_word)
    control_word = la(conds, lambda c: c._control_word)
    out_dps = rate_dps_val.copy()
    rdac_held = la(frontends, lambda f: f.rate_output_dac._held_output)

    # sensor temperature-dependent coefficients (updated on plan events)
    sens_coef = {key: np.empty(B) for key in
                 ("pa11", "pa12", "pa21", "pa22", "pb1", "pb2",
                  "sa11", "sa12", "sa21", "sa22", "sb1", "sb2",
                  "pick_gain", "offset_rate", "res_hz")}

    def apply_coefs(lane: int, coefs: dict) -> None:
        (sens_coef["pa11"][lane], sens_coef["pa12"][lane],
         sens_coef["pa21"][lane], sens_coef["pa22"][lane],
         sens_coef["pb1"][lane], sens_coef["pb2"][lane]) = coefs["pa"]
        (sens_coef["sa11"][lane], sens_coef["sa12"][lane],
         sens_coef["sa21"][lane], sens_coef["sa22"][lane],
         sens_coef["sb1"][lane], sens_coef["sb2"][lane]) = coefs["sa"]
        sens_coef["pick_gain"][lane] = coefs["pickoff_gain"]
        sens_coef["offset_rate"][lane] = coefs["offset_rate_dps"]
        sens_coef["res_hz"][lane] = coefs["primary_res_hz"]

    # ---- recording buffers (time-major, one column per lane) ---------------
    time_tr = np.zeros((n_rec, B))
    rate_tr = np.zeros((n_rec, B))
    temp_tr = np.zeros((n_rec, B))
    out_dps_tr = np.zeros((n_rec, B))
    out_v_tr = np.zeros((n_rec, B))
    agc_tr = np.zeros((n_rec, B))
    agc_err_tr = np.zeros((n_rec, B))
    perr_tr = np.zeros((n_rec, B))
    vco_tr = np.zeros((n_rec, B))
    lock_tr = np.zeros((n_rec, B), dtype=bool)
    run_tr = np.zeros((n_rec, B), dtype=bool)
    pick_tr = np.zeros((n_rec, B)) if record_waveforms else None
    drive_tr = np.zeros((n_rec, B)) if record_waveforms else None
    rec = 0

    where = np.where
    concat = np.concatenate
    np_round = np.rint      # same half-to-even values, raw-ufunc dispatch
    np_floor = np.floor
    np_minimum = np.minimum
    np_maximum = np.maximum

    def clip(a, lo, hi):
        # np.clip's python wrapper costs ~4us per call at B=32; the raw
        # minimum/maximum ufuncs compute the identical values
        return np_minimum(np_maximum(a, lo), hi)
    np_sin = np.sin
    np_cos = np.cos
    m_pi = math.pi
    np_pi = np.pi

    # the two acquisition channels run the same block sequence, so they are
    # stacked on a (2B,) axis (primary lanes first, secondary lanes after)
    # and advanced with one set of elementwise ops per block
    ca_gain2 = concat((ca_gain, ca_gain))
    ca_rail2 = concat((ca_rail, ca_rail))
    pga_gain2 = concat((pga_p_gain, pga_s_gain))
    pga_alpha2 = concat((pga_p_alpha, pga_s_alpha))
    pga_rail2 = concat((pga_p_rail, pga_s_rail))
    trim2 = concat((trim_p, trim_s))
    aa_alpha2 = concat((aa_alpha_p, aa_alpha_s))
    adc_vref2 = concat((adc_p["vref"], adc_s["vref"]))
    adc_lsb2 = concat((adc_p["lsb"], adc_s["lsb"]))
    adc_kinl2 = concat((adc_p["kinl"], adc_s["kinl"]))
    adc_cmin2 = concat((adc_p["cmin"], adc_s["cmin"]))
    adc_cmax2 = concat((adc_p["cmax"], adc_s["cmax"]))
    pga_state2 = concat((pga_p_state, pga_s_state))
    aa1 = concat((aa_p1, aa_s1))
    aa2 = concat((aa_p2, aa_s2))

    # hoisted per-sample constants (dict lookups out of the hot loop)
    pa11 = sens_coef["pa11"]; pa12 = sens_coef["pa12"]
    pa21 = sens_coef["pa21"]; pa22 = sens_coef["pa22"]
    pb1 = sens_coef["pb1"]; pb2 = sens_coef["pb2"]
    sa11 = sens_coef["sa11"]; sa12 = sens_coef["sa12"]
    sa21 = sens_coef["sa21"]; sa22 = sens_coef["sa22"]
    sb1 = sens_coef["sb1"]; sb2 = sens_coef["sb2"]
    pick_gain = sens_coef["pick_gain"]
    offset_rate = sens_coef["offset_rate"]
    res_hz = sens_coef["res_hz"]
    ddac_vref = ddac["vref"]; ddac_lsb = ddac["lsb"]
    ddac_lo = ddac["out_min"]; ddac_hi = ddac["out_max"]
    cdac_vref = cdac["vref"]; cdac_lsb = cdac["lsb"]
    cdac_lo = cdac["out_min"]; cdac_hi = cdac["out_max"]
    rdac_vref = rdac["vref"]; rdac_lsb = rdac["lsb"]
    rdac_lo = rdac["out_min"]; rdac_hi = rdac["out_max"]

    # the PLL's two detector filters (pd: x*cos, amp: x*sin) and the sense
    # demodulator's I/Q filters share their per-lane alphas pairwise, so each
    # pair is advanced as one (2B,) one-pole update against the stacked
    # (cos, sin) reference vector
    pll_alpha2 = concat((pd_alpha, amp_alpha))
    pll_state2 = concat((pd_state, amp_state))
    demod_alpha2 = concat((demod_alpha, demod_alpha))
    demod_state2 = concat((di_state, dq_state))

    zero_b = np.zeros(B)
    st_count0 = st_count.copy()
    startup_active = bool(np.any(st_state != ST_RUNNING))
    sample_idx = 0

    # ---- per-lane early exit ----------------------------------------------
    # Lanes whose duration ends before the longest lane *retire*: their
    # closed-loop state is snapshotted at the retirement boundary (the
    # chunk grid is split so every retirement lands on a boundary) and
    # restored before writeback, and their noise generators stop being
    # consumed.  The lane's column keeps evolving with frozen stimulus —
    # elementwise garbage that is discarded — so the lockstep loop needs
    # no per-sample masking and live lanes are untouched bit-for-bit.
    alive = [True] * B
    retired_snaps = {}

    def _snapshot(lane):
        # current bindings of every loop-carried array, read at call time
        return {
            "x": x[lane], "xv": xv[lane], "y": y[lane], "yv": yv[lane],
            "pga_p": pga_state2[lane], "pga_s": pga_state2[lane + B],
            "aa1_p": aa1[lane], "aa1_s": aa1[lane + B],
            "aa2_p": aa2[lane], "aa2_s": aa2[lane + B],
            "pll_pd": pll_state2[lane], "pll_amp": pll_state2[lane + B],
            "dm_i": demod_state2[lane], "dm_q": demod_state2[lane + B],
            "pll_integ": pll_integ[lane], "phase_err": phase_err[lane],
            "amplitude": amplitude[lane],
            "lock_counter": lock_counter[lane], "locked": locked[lane],
            "sin_ref": sin_ref[lane], "cos_ref": cos_ref[lane],
            "nco_phase": nco_phase[lane], "tuning": tuning[lane],
            "agc_integ": agc_integ[lane], "agc_gain": agc_gain[lane],
            "agc_err": agc_err[lane], "drive_word": drive_word[lane],
            "rate_channel": rate_channel[lane],
            "quad_channel": quad_channel[lane],
            "rate_dps": rate_dps_val[lane], "rate_word": rate_word[lane],
            "reb_state": reb_state[lane], "reb_integ": reb_integ[lane],
            "reb_cmd": reb_cmd[lane], "reb_residual": reb_residual[lane],
            "st_state": st_state[lane], "st_settle": st_settle[lane],
            "st_ready": st_ready[lane], "st_failed": st_failed[lane],
            "drive_v": drive_v[lane], "control_v": control_v[lane],
            "control_word": control_word[lane], "rdac_held": rdac_held[lane],
            "out_z": [(sec[5][lane], sec[6][lane]) for sec in out_secs],
            "quad_z": [(sec[5][lane], sec[6][lane]) for sec in quad_secs],
        }

    bounds = sorted(set(range(0, n, CHUNK_SAMPLES))
                    | {ni for ni in n_lane if ni < n} | {n})

    # ---- chunked lockstep loop --------------------------------------------
    for chunk_start, chunk_end in zip(bounds, bounds[1:]):
        nc = chunk_end - chunk_start
        for lane in range(B):
            if alive[lane] and n_lane[lane] == chunk_start:
                retired_snaps[lane] = _snapshot(lane)
                alive[lane] = False
        t_arr = (np.arange(chunk_start, chunk_start + nc)) * dt

        # stimulus, drift and noise precompute, time-major (nc, B)
        rate_ch = np.empty((nc, B))
        temp_ch = np.empty((nc, B))
        events = {}
        for lane, env in enumerate(environments):
            if not alive[lane]:
                # frozen stimulus; the column's evolution is discarded
                rate_ch[:, lane] = 0.0
                temp_ch[:, lane] = 25.0
                continue
            r_lane, t_lane = env.sample(t_arr)
            rate_ch[:, lane] = r_lane
            temp_ch[:, lane] = t_lane
            for idx, coefs in sensor_temperature_plan(sensors[lane], t_lane):
                if idx == 0:
                    apply_coefs(lane, coefs)
                else:
                    events.setdefault(idx, []).append((lane, coefs))
        event_queue = sorted(events)
        next_ev = event_queue[0] if event_queue else -1
        ev_ptr = 0
        dt_c = temp_ch - 25.0
        meas = np.round((temp_ch + ts_off) / ts_res) * ts_res
        dtm = meas - 25.0

        ca_off = ca_off_v + ca_off_tc * dt_c
        ca_off2 = concat((ca_off, ca_off), axis=1)
        pga_off2 = concat((pga_p_off_v + pga_p_off_tc * dt_c,
                           pga_s_off_v + pga_s_off_tc * dt_c), axis=1)
        adc_gain2 = concat((adc_p["k_gain"] * (1.0 + adc_p["k_tc"] * dt_c),
                            adc_s["k_gain"] * (1.0 + adc_s["k_tc"] * dt_c)),
                           axis=1)
        adc_off2 = concat((adc_p["off_v"] + adc_p["off_tc"] * dt_c,
                           adc_s["off_v"] + adc_s["off_tc"] * dt_c), axis=1)
        ddac_gain = ddac["k_gain"] * (1.0 + ddac["k_tc"] * dt_c)
        ddac_offs = ddac["off_v"] + ddac["off_tc"] * dt_c
        cdac_gain = cdac["k_gain"] * (1.0 + cdac["k_tc"] * dt_c)
        cdac_offs = cdac["off_v"] + cdac["off_tc"] * dt_c
        rdac_gain = rdac["k_gain"] * (1.0 + rdac["k_tc"] * dt_c)
        rdac_offs = rdac["off_v"] + rdac["off_tc"] * dt_c
        if not closed:
            # open loop: the control word is identically zero, so the whole
            # control-DAC chain can be evaluated for the chunk up front
            # (0.0 quantises to code 0 -> output = offset, clipped)
            control_v_ch = clip(0.0 * cdac_gain + cdac_offs, cdac_lo, cdac_hi)

        tcomp_off = np.zeros((nc, B))
        tcomp_sens = np.zeros((nc, B))
        for lane in range(B):
            if not alive[lane]:
                continue        # leaves off=0, sens=1: never trips the check
            acc = np.zeros(nc)
            for i, c in enumerate(tc_offset_polys[lane]):
                acc = acc + c * dtm[:, lane] ** i
            tcomp_off[:, lane] = acc
            acc = np.zeros(nc)
            for i, c in enumerate(tc_sens_polys[lane]):
                acc = acc + c * dtm[:, lane] ** (i + 1)
            tcomp_sens[:, lane] = acc
        tcomp_sens = 1.0 + tcomp_sens
        if np.any(tcomp_sens == 0.0):
            raise ConfigurationError(
                "sensitivity correction factor reached zero")

        # retired lanes' generators must not advance: a later standalone
        # run from the written-back platform state has to see the same
        # noise stream a never-batched platform would
        zeros_nc = np.zeros(nc)

        def lane_noise(noises):
            return np.stack([nz.take(nc) if alive[k] else zeros_nc
                             for k, nz in enumerate(noises)], axis=1)

        sens_noise = lane_noise([s._noise for s in sensors])
        # Coriolis rate input precompute: with no temperature events in the
        # chunk, offset_rate is constant, so the per-sample sum can be done
        # vectorised up front (same elementwise op order as the scalar path)
        eff_ch = ((rate_ch + offset_rate + sens_noise) * m_pi / 180.0
                  if not events else None)
        ca_noise2 = np.concatenate(
            [lane_noise([f.primary_charge_amp._noise for f in frontends]),
             lane_noise([f.secondary_charge_amp._noise for f in frontends])],
            axis=1)
        pga_noise2 = np.concatenate(
            [lane_noise([f.primary_pga._noise for f in frontends]),
             lane_noise([f.secondary_pga._noise for f in frontends])], axis=1)
        adc_noise2 = np.concatenate(
            [lane_noise(adc_p["noise"]), lane_noise(adc_s["noise"])], axis=1)

        for j in range(nc):
            i = sample_idx
            sample_idx += 1
            if j == next_ev:
                for lane, coefs in events[j]:
                    apply_coefs(lane, coefs)
                ev_ptr += 1
                next_ev = event_queue[ev_ptr] \
                    if ev_ptr < len(event_queue) else -1

            # MEMS sensor
            drive_accel = s_drive_gain * drive_v
            x_new = pa11 * x + pa12 * xv + pb1 * drive_accel
            xv = pa21 * x + pa22 * xv + pb2 * drive_accel
            x = x_new
            if eff_ch is not None:
                eff = eff_ch[j]
            else:
                eff = (rate_ch[j] + offset_rate + sens_noise[j]) \
                    * m_pi / 180.0
            sacc = kc * eff * xv + kq * x * 2.0 * np_pi * res_hz \
                + s_control_gain * control_v
            y_new = sa11 * y + sa12 * yv + sb1 * sacc
            yv = sa21 * y + sa22 * yv + sb2 * sacc
            y = y_new

            # AFE acquisition, both channels stacked on the (2B,) axis
            pick = concat((pick_gain * x, pick_gain * y))
            out = pick * ca_gain2 + ca_off2[j] + ca_noise2[j]
            p1 = clip(out, -ca_rail2, ca_rail2)
            ideal = (p1 + trim2 + pga_off2[j] + pga_noise2[j]) * pga_gain2
            pga_state2 = pga_state2 + pga_alpha2 * (ideal - pga_state2)
            p2 = clip(pga_state2, -pga_rail2, pga_rail2)
            aa1 = aa1 + aa_alpha2 * (p2 - aa1)
            aa2 = aa2 + aa_alpha2 * (aa1 - aa2)

            d = aa2 * adc_gain2[j] + adc_off2[j]
            nrm = clip(d / adc_vref2, -1.0, 1.0)
            d = d + adc_kinl2 * (1.0 - nrm * nrm) + adc_noise2[j]
            code = clip(np_floor(d / adc_lsb2 + 0.5), adc_cmin2, adc_cmax2)
            norm = code * adc_lsb2 / adc_vref2
            p_norm = norm[:B]
            s_norm = norm[B:]

            # drive PLL
            ref2 = concat((cos_ref, sin_ref))
            p_norm2 = concat((p_norm, p_norm))
            pll_state2 = pll_state2 \
                + pll_alpha2 * (p_norm2 * ref2 - pll_state2)
            pd_state = pll_state2[:B]
            amplitude = np.maximum(0.0, 2.0 * pll_state2[B:])
            mask = amplitude > pll_thr
            err = 2.0 * pd_state / np.maximum(amplitude, pll_thr)
            integ_cand = clip(pll_integ + pll_ki * err,
                              -tuning_range, tuning_range)
            pll_integ = where(mask, integ_cand, pll_integ)
            tuning = where(mask, clip(pll_kp * err + integ_cand,
                                      -tuning_range, tuning_range), 0.0)
            phase_err = where(mask, err, 0.0)
            lock_counter = where(mask & (np.abs(err) < lock_thr),
                                 np.minimum(lock_counter + 1, lock_count), 0)
            locked = lock_counter >= lock_count
            nco_phase = (nco_phase + TWO_PI * (nco_fc + tuning) / nco_fs) \
                % TWO_PI
            sin_ref = np_sin(nco_phase)
            cos_ref = np_cos(nco_phase)
            if q_nco is not None:
                sin_ref = q_nco(sin_ref)
                cos_ref = q_nco(cos_ref)

            # AGC
            agc_err = agc_target - amplitude
            agc_integ = clip(agc_integ + agc_ki * agc_err, agc_min, agc_max)
            agc_gain = clip(agc_kp * agc_err + agc_integ, agc_min, agc_max)
            if q_agc is not None:
                agc_gain = q_agc(agc_gain)
            drive_word = agc_gain * cos_ref
            if q_drive is not None:
                drive_word = q_drive(drive_word)

            # sense chain
            ref2 = concat((cos_ref, sin_ref))
            s_norm2 = concat((s_norm, s_norm))
            demod_state2 = demod_state2 \
                + demod_alpha2 * (s_norm2 * ref2 - demod_state2)
            chan2 = 2.0 * demod_state2
            if q_demod is not None:
                chan2 = q_demod(chan2)
            i_chan = chan2[:B]
            q_chan = chan2[B:]
            v = i_chan - qc_coeff * q_chan
            if q_qc is not None:
                v = q_qc(v)
            for sec in out_secs:
                yy = sec[0] * v + sec[5]
                sec[5] = sec[1] * v - sec[3] * yy + sec[6]
                sec[6] = sec[2] * v - sec[4] * yy
                if q_out is not None:
                    yy = q_out(yy)
                v = yy
            rate_channel = v
            v = q_chan
            for sec in quad_secs:
                yy = sec[0] * v + sec[5]
                sec[5] = sec[1] * v - sec[3] * yy + sec[6]
                sec[6] = sec[2] * v - sec[4] * yy
                if q_quad is not None:
                    yy = q_quad(yy)
                v = yy
            quad_channel = v
            comp = rate_channel - off_comp
            if q_off is not None:
                comp = q_off(comp)
            comp = (comp - tcomp_off[j]) / tcomp_sens[j]
            if q_tc is not None:
                comp = q_tc(comp)
            rate_dps_val = comp * scale_dps
            rate_word = clip(rate_dps_val / full_scale, -1.0, 1.0)
            if q_scaler is not None:
                rate_word = q_scaler(rate_word)

            # force rebalance
            if closed:
                reb_state = reb_state \
                    + reb_alpha * (s_norm * cos_ref - reb_state)
                reb_residual = 2.0 * reb_state
                reb_integ = clip(reb_integ + reb_ki * reb_residual,
                                 -reb_limit, reb_limit)
                reb_cmd = clip(reb_kp * reb_residual + reb_integ,
                               -reb_limit, reb_limit)
                control_word = -reb_cmd * cos_ref
                out_dps = reb_cmd * scale_dps
                out_word = clip(out_dps / full_scale, -1.0, 1.0)
                if q_scaler is not None:
                    out_word = q_scaler(out_word)
            else:
                control_word = zero_b
                out_dps = rate_dps_val
                out_word = rate_word

            # start-up sequencer (skipped once every lane is RUNNING:
            # RUNNING is terminal, only the sample counter keeps advancing,
            # and that is reconstructed as st_count0 + samples at writeback)
            if startup_active:
                cur_count = st_count0 + (i + 1)
                active = (st_state != ST_RUNNING) & ~st_failed
                just_failed = active & (cur_count > wd_samples)
                st_failed = st_failed | just_failed
                trans = ~just_failed
                settled = (agc_err < settle_thr) & (agc_err > -settle_thr)
                new_state = st_state.copy()
                new_state[trans & (st_state == ST_POWER_ON)] = ST_SPINUP
                new_state[trans & (st_state == ST_SPINUP) & locked] = ST_LOCKED
                m_lock = trans & (st_state == ST_LOCKED)
                m = m_lock & settled
                new_state[m] = ST_SETTLING
                st_settle = where(m, 0, st_settle)
                new_state[m_lock & ~settled & ~locked] = ST_SPINUP
                m_set = trans & (st_state == ST_SETTLING)
                st_settle = where(m_set & settled & locked, st_settle + 1,
                                  where(m_set, 0, st_settle))
                done = m_set & (st_settle >= settle_samples)
                new_state[done] = ST_RUNNING
                st_ready = where(done, cur_count, st_ready)
                st_state = new_state
                if done.any():
                    startup_active = bool(np.any(st_state != ST_RUNNING))

            # drive / control DACs
            qd = np_round(clip(drive_word, -1.0, 1.0) * ddac_vref
                          / ddac_lsb) * ddac_lsb
            drive_v = clip(qd * ddac_gain[j] + ddac_offs[j], ddac_lo, ddac_hi)
            if closed:
                qd = np_round(clip(control_word, -1.0, 1.0) * cdac_vref
                              / cdac_lsb) * cdac_lsb
                control_v = clip(qd * cdac_gain[j] + cdac_offs[j],
                                 cdac_lo, cdac_hi)
            else:
                control_v = control_v_ch[j]

            # trace recording (decimated)
            if not i % dec:
                target = (mid + clip(out_word, -1.0, 1.0) * out_span
                          + trim_out) / rdac_vref
                qd = np_round(clip(target, 0.0, 1.0) * rdac_vref
                              / rdac_lsb) * rdac_lsb
                rdac_held = clip(qd * rdac_gain[j] + rdac_offs[j],
                                 rdac_lo, rdac_hi)
                time_tr[rec] = start_times + i * dt
                rate_tr[rec] = rate_ch[j]
                temp_tr[rec] = temp_ch[j]
                out_dps_tr[rec] = out_dps
                out_v_tr[rec] = rdac_held
                agc_tr[rec] = agc_gain
                agc_err_tr[rec] = agc_err
                perr_tr[rec] = phase_err
                vco_tr[rec] = pll_integ
                lock_tr[rec] = locked
                run_tr[rec] = st_state == ST_RUNNING
                if record_waveforms:
                    pick_tr[rec] = p_norm
                    drive_tr[rec] = drive_word
                rec += 1

    # put retired lanes back to their retirement-boundary state before
    # anything derived (overload, writeback) is computed from the arrays
    for lane, snap in retired_snaps.items():
        x[lane] = snap["x"]; xv[lane] = snap["xv"]
        y[lane] = snap["y"]; yv[lane] = snap["yv"]
        pga_state2[lane] = snap["pga_p"]; pga_state2[lane + B] = snap["pga_s"]
        aa1[lane] = snap["aa1_p"]; aa1[lane + B] = snap["aa1_s"]
        aa2[lane] = snap["aa2_p"]; aa2[lane + B] = snap["aa2_s"]
        pll_state2[lane] = snap["pll_pd"]
        pll_state2[lane + B] = snap["pll_amp"]
        demod_state2[lane] = snap["dm_i"]; demod_state2[lane + B] = snap["dm_q"]
        pll_integ[lane] = snap["pll_integ"]
        phase_err[lane] = snap["phase_err"]
        amplitude[lane] = snap["amplitude"]
        lock_counter[lane] = snap["lock_counter"]
        locked[lane] = snap["locked"]
        sin_ref[lane] = snap["sin_ref"]; cos_ref[lane] = snap["cos_ref"]
        nco_phase[lane] = snap["nco_phase"]; tuning[lane] = snap["tuning"]
        agc_integ[lane] = snap["agc_integ"]
        agc_gain[lane] = snap["agc_gain"]
        agc_err[lane] = snap["agc_err"]
        drive_word[lane] = snap["drive_word"]
        rate_channel[lane] = snap["rate_channel"]
        quad_channel[lane] = snap["quad_channel"]
        rate_dps_val[lane] = snap["rate_dps"]
        rate_word[lane] = snap["rate_word"]
        reb_state[lane] = snap["reb_state"]
        reb_integ[lane] = snap["reb_integ"]
        reb_cmd[lane] = snap["reb_cmd"]
        reb_residual[lane] = snap["reb_residual"]
        st_state[lane] = snap["st_state"]
        st_settle[lane] = snap["st_settle"]
        st_ready[lane] = snap["st_ready"]
        st_failed[lane] = snap["st_failed"]
        drive_v[lane] = snap["drive_v"]; control_v[lane] = snap["control_v"]
        control_word[lane] = snap["control_word"]
        rdac_held[lane] = snap["rdac_held"]
        for sec, (z1, z2) in zip(out_secs, snap["out_z"]):
            sec[5][lane] = z1; sec[6][lane] = z2
        for sec, (z1, z2) in zip(quad_secs, snap["quad_z"]):
            sec[5][lane] = z1; sec[6][lane] = z2

    # the overload flag is only observable through the final register state,
    # so it is evaluated once from the last anti-alias outputs
    overload = (np.abs(aa2[:B]) >= ov_thr) | (np.abs(aa2[B:]) >= ov_thr)
    pd_state, amp_state = pll_state2[:B], pll_state2[B:]
    di_state, dq_state = demod_state2[:B], demod_state2[B:]
    st_count = st_count0 + np.array(n_lane)
    pga_p_state, pga_s_state = pga_state2[:B], pga_state2[B:]
    aa_p1, aa_s1 = aa1[:B], aa1[B:]
    aa_p2, aa_s2 = aa2[:B], aa2[B:]

    # ---- write state back into the per-lane objects ------------------------
    for lane, platform in enumerate(platforms):
        sensor = sensors[lane]
        sensor.primary._displacement = float(x[lane])
        sensor.primary._velocity = float(xv[lane])
        sensor.secondary._displacement = float(y[lane])
        sensor.secondary._velocity = float(yv[lane])

        f = frontends[lane]
        f.primary_pga._state = float(pga_p_state[lane])
        f.secondary_pga._state = float(pga_s_state[lane])
        f.primary_antialias._first._state = float(aa_p1[lane])
        f.primary_antialias._second._state = float(aa_p2[lane])
        f.secondary_antialias._first._state = float(aa_s1[lane])
        f.secondary_antialias._second._state = float(aa_s2[lane])
        f._overload = bool(overload[lane])
        f.trim.register("afe_status").hw_write_field(
            "overload", int(bool(overload[lane])))
        f.drive_dac._held_output = float(drive_v[lane])
        f.control_dac._held_output = float(control_v[lane])
        f.rate_output_dac._held_output = float(rdac_held[lane])

        pll = plls[lane]
        pll._pd_filter._state = float(pd_state[lane])
        pll._amp_filter._state = float(amp_state[lane])
        pll._integrator = float(pll_integ[lane])
        pll._phase_error = float(phase_err[lane])
        pll._amplitude = float(amplitude[lane])
        pll._lock_counter = int(lock_counter[lane])
        pll._locked = bool(locked[lane])
        pll._sin_ref = float(sin_ref[lane])
        pll._cos_ref = float(cos_ref[lane])
        pll.nco._phase = float(nco_phase[lane])
        pll.nco._tuning_hz = float(tuning[lane])
        agc = agcs[lane]
        agc._integrator = float(agc_integ[lane])
        agc._gain = float(agc_gain[lane])
        agc._error = float(agc_err[lane])
        conds[lane].drive_loop._drive_word = float(drive_word[lane])

        sense = senses[lane]
        sense.demodulator.in_phase._filter._state = float(di_state[lane])
        sense.demodulator.quadrature._filter._state = float(dq_state[lane])
        writeback_biquads(sense.output_filter,
                          [[float(arr[lane]) for arr in sec]
                           for sec in out_secs])
        writeback_biquads(sense.quadrature_filter,
                          [[float(arr[lane]) for arr in sec]
                           for sec in quad_secs])
        sense._rate_channel = float(rate_channel[lane])
        sense._quadrature_channel = float(quad_channel[lane])
        sense._rate_dps = float(rate_dps_val[lane])
        sense._rate_word = float(rate_word[lane])

        reb = rebs[lane]
        reb._demod._filter._state = float(reb_state[lane])
        reb._integrator = float(reb_integ[lane])
        reb._command = float(reb_cmd[lane])
        reb._residual = float(reb_residual[lane])

        st = starts[lane]
        st._state = StartupState(int(st_state[lane]))
        st._sample_count = int(st_count[lane])
        st._settle_counter = int(st_settle[lane])
        st._ready_sample = None if st_ready[lane] < 0 else int(st_ready[lane])
        st._failed = bool(st_failed[lane])

        conds[lane]._sample_count += n_lane[lane]
        conds[lane]._control_word = float(control_word[lane])
        conds[lane]._refresh_registers()

        platform._drive_v = float(drive_v[lane])
        platform._control_v = float(control_v[lane])
        platform._time_s = float(start_times[lane]) + n_lane[lane] * dt

    # ---- per-lane results --------------------------------------------------
    # a retired lane's trace stops at its own retirement row; anything a
    # longer lane recorded past that point in its column is garbage
    results = []
    for lane, platform in enumerate(platforms):
        rl = (n_lane[lane] - 1) // dec + 1
        results.append(GyroSimulationResult(
            time_s=time_tr[:rl, lane].copy(),
            sample_rate_hz=fs / dec,
            true_rate_dps=rate_tr[:rl, lane].copy(),
            temperature_c=temp_tr[:rl, lane].copy(),
            rate_output_dps=out_dps_tr[:rl, lane].copy(),
            rate_output_v=out_v_tr[:rl, lane].copy(),
            amplitude_control=agc_tr[:rl, lane].copy(),
            amplitude_error=agc_err_tr[:rl, lane].copy(),
            phase_error=perr_tr[:rl, lane].copy(),
            vco_control=vco_tr[:rl, lane].copy(),
            pll_locked=lock_tr[:rl, lane].copy(),
            running=run_tr[:rl, lane].copy(),
            primary_pickoff_norm=(pick_tr[:rl, lane].copy()
                                  if record_waveforms else None),
            drive_word=(drive_tr[:rl, lane].copy()
                        if record_waveforms else None),
            turn_on_time_s=platform.conditioner.startup.turn_on_time_s,
        ))
    return results
