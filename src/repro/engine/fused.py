"""Fused scalar co-simulation kernel.

The reference :meth:`GyroPlatform.run` loop makes ~15 method calls per
sample across the sensor, AFE, DSP and DAC objects; at 120 kHz that is
millions of Python calls per simulated second.  This kernel flattens the
entire closed loop — resonator modes, charge amps, PGAs, anti-alias
filters, SAR ADCs, PLL (phase detector / PI / NCO), AGC, I/Q demod,
output filters, compensation, force rebalance, start-up sequencer and
drive/control DACs — into one function body operating on plain local
floats, eliminating all per-sample attribute lookups and dispatch.

The arithmetic replicates the reference chain operation-for-operation
(same expression order, same rounding points, same RNG block draws), so
the produced traces are bit-identical to the reference engine, including
in fixed-point (prototype) mode.  The only intentional behavioural
difference: the DSP monitor registers are refreshed once at the end of
the run instead of every ``status_update_interval`` samples (firmware
polling *during* a fused run would observe stale registers).

All object state (filters, integrators, NCO phase, noise-generator
buffers, start-up sequencer, DAC held outputs...) is read at entry and
written back at exit, so reference and fused segments can be freely
interleaved on the same platform with bit-identical results.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.exceptions import ConfigurationError
from ..gyro.startup import StartupState
from ..platform.result import GyroSimulationResult
from .state import (
    biquad_sections,
    scalar_quantizer,
    sensor_temperature_plan,
    writeback_biquads,
)

TWO_PI = 2.0 * math.pi


def run_fused(platform, environment, duration_s: float,
              record_waveforms: bool = False) -> GyroSimulationResult:
    """Run the platform co-simulation with the fused scalar kernel.

    Drop-in replacement for the reference loop body of
    :meth:`GyroPlatform.run` (validation and reset are handled by the
    caller).  Returns the same :class:`GyroSimulationResult` and leaves
    the platform in the same state as the reference engine would.
    """
    cfg = platform.config
    fs = cfg.sample_rate_hz
    dt = 1.0 / fs
    n = int(round(duration_s * fs))
    dec = cfg.record_decimation
    n_rec = n // dec + 1
    start_time = platform._time_s

    sensor = platform.sensor
    frontend = platform.frontend
    conditioner = platform.conditioner
    drive_loop = conditioner.drive_loop
    pll = drive_loop.pll
    nco = pll.nco
    agc = drive_loop.agc
    sense = conditioner.sense_chain
    rebalance = conditioner.rebalance
    startup = conditioner.startup

    # ---- per-sample stimulus / drift precompute (vectorised) --------------
    t_arr = np.arange(n) * dt
    rate_arr, temp_arr = environment.sample(t_arr)
    dt_c = temp_arr - 25.0

    tsens = cfg.temperature_sensor
    meas_arr = (np.round((temp_arr + tsens.offset_error_c)
                         / tsens.resolution_c) * tsens.resolution_c)
    dtm = meas_arr - 25.0

    # sensor temperature plan (mutates the sensor exactly as the reference
    # per-sample _apply_temperature calls would)
    events = sensor_temperature_plan(sensor, temp_arr)
    ev_starts = [e[0] for e in events]
    p = sensor.params
    kq = (p.quadrature_error_dps * math.pi / 180.0) * 2.0 * p.angular_gain
    kc = -2.0 * p.angular_gain
    s_drive_gain = p.drive_gain_ms2_per_v
    s_control_gain = p.control_gain_ms2_per_v
    sens_noise = sensor._noise.take(n).tolist()

    # analog front end constants / drift traces
    ca_cfg = frontend.primary_charge_amp.config
    ca_gain = ca_cfg.transimpedance_gain
    ca_rail = ca_cfg.rail_v
    ca_off = (ca_cfg.offset_v + ca_cfg.offset_tc_v_per_c * dt_c).tolist()
    ca_p_noise = frontend.primary_charge_amp._noise.take(n).tolist()
    ca_s_noise = frontend.secondary_charge_amp._noise.take(n).tolist()

    pga_p = frontend.primary_pga
    pga_s = frontend.secondary_pga
    pga_p_gain = pga_p.gain
    pga_s_gain = pga_s.gain
    pga_p_alpha = pga_p._alpha
    pga_s_alpha = pga_s._alpha
    pga_p_rail = pga_p.config.rail_v
    pga_s_rail = pga_s.config.rail_v
    pga_p_off = (pga_p.config.offset_v
                 + pga_p.config.offset_tc_v_per_c * dt_c).tolist()
    pga_s_off = (pga_s.config.offset_v
                 + pga_s.config.offset_tc_v_per_c * dt_c).tolist()
    pga_p_noise = pga_p._noise.take(n).tolist()
    pga_s_noise = pga_s._noise.take(n).tolist()
    trim_p = frontend._offset_trim_primary_v
    trim_s = frontend._offset_trim_secondary_v

    aa_alpha = frontend.primary_antialias._first._alpha
    aa_alpha_s = frontend.secondary_antialias._first._alpha

    def adc_consts(adc):
        c = adc.config
        gain = ((1.0 + c.gain_error)
                * (1.0 + c.gain_tc_ppm_per_c * 1e-6 * dt_c)).tolist()
        off = (c.offset_error_v + c.offset_tc_v_per_c * dt_c).tolist()
        return (gain, off, c.inl_lsb * adc._lsb, c.vref, adc._lsb,
                float(adc._code_min), float(adc._code_max),
                adc._noise.take(n).tolist() if c.noise_rms_v else None)

    (adc_p_gain, adc_p_off, adc_p_kinl, adc_p_vref, adc_p_lsb,
     adc_p_cmin, adc_p_cmax, adc_p_noise) = adc_consts(frontend.primary_adc)
    (adc_s_gain, adc_s_off, adc_s_kinl, adc_s_vref, adc_s_lsb,
     adc_s_cmin, adc_s_cmax, adc_s_noise) = adc_consts(frontend.secondary_adc)
    ov_thr = 0.98 * frontend.config.adc.vref

    def dac_consts(dac):
        c = dac.config
        gain = ((1.0 + c.gain_error)
                * (1.0 + c.gain_tc_ppm_per_c * 1e-6 * dt_c)).tolist()
        off = (c.offset_error_v + c.offset_tc_v_per_c * dt_c).tolist()
        return gain, off, dac._lsb, c.vref, dac._out_min, dac._out_max

    (ddac_gain, ddac_off, ddac_lsb, ddac_vref,
     ddac_min, ddac_max) = dac_consts(frontend.drive_dac)
    (cdac_gain, cdac_off, cdac_lsb, cdac_vref,
     cdac_min, cdac_max) = dac_consts(frontend.control_dac)
    (rdac_gain, rdac_off, rdac_lsb, rdac_vref,
     rdac_min, rdac_max) = dac_consts(frontend.rate_output_dac)
    mid = frontend.supply.config.nominal_v / 2.0
    out_span = frontend.config.rate_output_sensitivity_v_per_fs
    trim_out = frontend._offset_trim_output_v

    # conditioning chain constants
    pll_cfg = pll.config
    pd_alpha = pll._pd_filter.alpha
    amp_alpha = pll._amp_filter.alpha
    pll_thr = pll_cfg.amplitude_threshold
    pll_kp = pll_cfg.kp
    pll_ki = pll_cfg.ki
    lock_thr = pll_cfg.lock_threshold
    lock_count = pll_cfg.lock_count
    tuning_range = nco.tuning_range_hz
    nco_fc = nco.center_frequency_hz
    nco_fs = nco.sample_rate_hz
    q_nco = scalar_quantizer(nco.output_format)

    agc_cfg = agc.config
    agc_target = agc_cfg.target_amplitude
    agc_kp = agc_cfg.kp
    agc_ki = agc_cfg.ki
    agc_min = agc_cfg.min_gain
    agc_max = agc_cfg.max_gain
    settle_thr = agc_cfg.settle_threshold
    q_agc = scalar_quantizer(agc_cfg.output_format)
    q_drive = scalar_quantizer(drive_loop.config.output_format)

    demod_alpha = sense.demodulator.in_phase._filter.alpha
    q_demod = scalar_quantizer(sense.demodulator.in_phase.output_format)
    qc_coeff = sense.quadrature_cancel.coefficient
    q_qc = scalar_quantizer(sense.quadrature_cancel.output_format)
    out_secs = biquad_sections(sense.output_filter)
    q_out = scalar_quantizer(sense.output_filter.sections[0].output_format)
    quad_secs = biquad_sections(sense.quadrature_filter)
    q_quad = scalar_quantizer(sense.quadrature_filter.sections[0].output_format)
    off_comp = sense.offset_comp.offset
    q_off = scalar_quantizer(sense.offset_comp.output_format)
    tc_cfg = sense.temperature_comp.config
    q_tc = scalar_quantizer(sense.temperature_comp.output_format)
    tcomp_off = np.zeros(n)
    for i, c in enumerate(tc_cfg.offset_poly):
        tcomp_off = tcomp_off + c * dtm ** i
    tcomp_sens = np.zeros(n)
    for i, c in enumerate(tc_cfg.sensitivity_poly):
        tcomp_sens = tcomp_sens + c * dtm ** (i + 1)
    tcomp_sens = 1.0 + tcomp_sens
    if np.any(tcomp_sens == 0.0):
        raise ConfigurationError("sensitivity correction factor reached zero")
    tcomp_off = tcomp_off.tolist()
    tcomp_sens = tcomp_sens.tolist()
    scale_dps = sense.scaler.config.scale_dps_per_unit
    full_scale = sense.scaler.config.full_scale_dps
    q_scaler = scalar_quantizer(sense.scaler.output_format)

    closed = conditioner.config.closed_loop
    reb_cfg = rebalance.config
    reb_alpha = rebalance._demod._filter.alpha
    reb_kp = reb_cfg.kp
    reb_ki = reb_cfg.ki
    reb_limit = reb_cfg.max_command

    st_cfg = startup.config
    wd_samples = st_cfg.watchdog_time_s * st_cfg.sample_rate_hz
    settle_samples = st_cfg.settling_time_s * st_cfg.sample_rate_hz
    ST_POWER_ON = StartupState.POWER_ON.value
    ST_SPINUP = StartupState.DRIVE_SPINUP.value
    ST_LOCKED = StartupState.PLL_LOCKED.value
    ST_SETTLING = StartupState.OUTPUT_SETTLING.value
    ST_RUNNING = StartupState.RUNNING.value

    rate_l = rate_arr.tolist()
    temp_l = temp_arr.tolist()

    # ---- mutable state loaded into locals ---------------------------------
    x, xv = sensor.primary._displacement, sensor.primary._velocity
    y, yv = sensor.secondary._displacement, sensor.secondary._velocity
    (pa11, pa12, pa21, pa22, pb1, pb2) = events[0][1]["pa"]
    (sa11, sa12, sa21, sa22, sb1, sb2) = events[0][1]["sa"]
    pick_gain = events[0][1]["pickoff_gain"]
    offset_rate = events[0][1]["offset_rate_dps"]
    res_hz = events[0][1]["primary_res_hz"]
    ev_idx = 1
    next_ev = ev_starts[1] if len(ev_starts) > 1 else -1

    pga_p_state = pga_p._state
    pga_s_state = pga_s._state
    aa_p1 = frontend.primary_antialias._first._state
    aa_p2 = frontend.primary_antialias._second._state
    aa_s1 = frontend.secondary_antialias._first._state
    aa_s2 = frontend.secondary_antialias._second._state
    overload = frontend._overload

    pd_state = pll._pd_filter._state
    amp_state = pll._amp_filter._state
    pll_integ = pll._integrator
    phase_err = pll._phase_error
    amplitude = pll._amplitude
    lock_counter = pll._lock_counter
    locked = pll._locked
    sin_ref = pll._sin_ref
    cos_ref = pll._cos_ref
    nco_phase = nco._phase
    tuning = nco._tuning_hz
    agc_integ = agc._integrator
    agc_gain = agc._gain
    agc_err = agc._error

    di_state = sense.demodulator.in_phase._filter._state
    dq_state = sense.demodulator.quadrature._filter._state
    rate_channel = sense._rate_channel
    quad_channel = sense._quadrature_channel
    rate_dps_val = sense._rate_dps
    rate_word = sense._rate_word

    reb_state = rebalance._demod._filter._state
    reb_integ = rebalance._integrator
    reb_cmd = rebalance._command
    reb_residual = rebalance._residual

    st_state = startup._state.value
    st_count = startup._sample_count
    st_settle = startup._settle_counter
    st_ready = startup._ready_sample
    st_failed = startup._failed

    drive_v = platform._drive_v
    control_v = platform._control_v
    drive_word = drive_loop._drive_word
    control_word = conditioner._control_word

    # ---- recording buffers -------------------------------------------------
    time_tr = np.zeros(n_rec)
    rate_tr = np.zeros(n_rec)
    temp_tr = np.zeros(n_rec)
    out_dps_tr = np.zeros(n_rec)
    out_v_tr = np.zeros(n_rec)
    agc_tr = np.zeros(n_rec)
    agc_err_tr = np.zeros(n_rec)
    perr_tr = np.zeros(n_rec)
    vco_tr = np.zeros(n_rec)
    lock_tr = np.zeros(n_rec, dtype=bool)
    run_tr = np.zeros(n_rec, dtype=bool)
    pick_tr = np.zeros(n_rec) if record_waveforms else None
    drive_tr = np.zeros(n_rec) if record_waveforms else None
    rec = 0

    floor = math.floor
    sin = math.sin
    cos = math.cos
    m_pi = math.pi
    np_pi = np.pi

    # ---- the fused loop ----------------------------------------------------
    for i in range(n):
        rate = rate_l[i]

        # MEMS sensor (exact ZOH resonator modes + Coriolis coupling)
        if i == next_ev:
            ev = events[ev_idx][1]
            (pa11, pa12, pa21, pa22, pb1, pb2) = ev["pa"]
            (sa11, sa12, sa21, sa22, sb1, sb2) = ev["sa"]
            pick_gain = ev["pickoff_gain"]
            offset_rate = ev["offset_rate_dps"]
            res_hz = ev["primary_res_hz"]
            ev_idx += 1
            next_ev = ev_starts[ev_idx] if ev_idx < len(ev_starts) else -1
        drive_accel = s_drive_gain * drive_v
        x_new = pa11 * x + pa12 * xv + pb1 * drive_accel
        xv = pa21 * x + pa22 * xv + pb2 * drive_accel
        x = x_new
        eff = (rate + offset_rate + sens_noise[i]) * m_pi / 180.0
        coriolis = kc * eff * xv
        quad = kq * x * 2.0 * np_pi * res_hz
        sacc = coriolis + quad + s_control_gain * control_v
        y_new = sa11 * y + sa12 * yv + sb1 * sacc
        yv = sa21 * y + sa22 * yv + sb2 * sacc
        y = y_new

        # AFE acquisition: charge amp -> PGA -> anti-alias -> SAR ADC
        out = pick_gain * x * ca_gain + ca_off[i] + ca_p_noise[i]
        p1 = -ca_rail if out < -ca_rail else (ca_rail if out > ca_rail else out)
        ideal = (p1 + trim_p + pga_p_off[i] + pga_p_noise[i]) * pga_p_gain
        pga_p_state = pga_p_state + pga_p_alpha * (ideal - pga_p_state)
        p2 = (-pga_p_rail if pga_p_state < -pga_p_rail
              else (pga_p_rail if pga_p_state > pga_p_rail else pga_p_state))
        aa_p1 = aa_p1 + aa_alpha * (p2 - aa_p1)
        aa_p2 = aa_p2 + aa_alpha * (aa_p1 - aa_p2)

        out = pick_gain * y * ca_gain + ca_off[i] + ca_s_noise[i]
        s1 = -ca_rail if out < -ca_rail else (ca_rail if out > ca_rail else out)
        ideal = (s1 + trim_s + pga_s_off[i] + pga_s_noise[i]) * pga_s_gain
        pga_s_state = pga_s_state + pga_s_alpha * (ideal - pga_s_state)
        s2 = (-pga_s_rail if pga_s_state < -pga_s_rail
              else (pga_s_rail if pga_s_state > pga_s_rail else pga_s_state))
        aa_s1 = aa_s1 + aa_alpha_s * (s2 - aa_s1)
        aa_s2 = aa_s2 + aa_alpha_s * (aa_s1 - aa_s2)

        overload = aa_p2 >= ov_thr or -aa_p2 >= ov_thr \
            or aa_s2 >= ov_thr or -aa_s2 >= ov_thr

        d = aa_p2 * adc_p_gain[i] + adc_p_off[i]
        if adc_p_kinl:
            nrm = d / adc_p_vref
            nrm = -1.0 if nrm < -1.0 else (1.0 if nrm > 1.0 else nrm)
            d += adc_p_kinl * (1.0 - nrm * nrm)
        if adc_p_noise is not None:
            d += adc_p_noise[i]
        code = floor(d / adc_p_lsb + 0.5)
        code = adc_p_cmin if code < adc_p_cmin \
            else (adc_p_cmax if code > adc_p_cmax else code)
        p_norm = code * adc_p_lsb / adc_p_vref

        d = aa_s2 * adc_s_gain[i] + adc_s_off[i]
        if adc_s_kinl:
            nrm = d / adc_s_vref
            nrm = -1.0 if nrm < -1.0 else (1.0 if nrm > 1.0 else nrm)
            d += adc_s_kinl * (1.0 - nrm * nrm)
        if adc_s_noise is not None:
            d += adc_s_noise[i]
        code = floor(d / adc_s_lsb + 0.5)
        code = adc_s_cmin if code < adc_s_cmin \
            else (adc_s_cmax if code > adc_s_cmax else code)
        s_norm = code * adc_s_lsb / adc_s_vref

        # drive PLL: phase detector -> PI -> NCO
        pd_state = pd_state + pd_alpha * (p_norm * cos_ref - pd_state)
        amp_state = amp_state + amp_alpha * (p_norm * sin_ref - amp_state)
        amplitude = 2.0 * amp_state
        if amplitude < 0.0:
            amplitude = 0.0
        if amplitude > pll_thr:
            denom = amplitude if amplitude > pll_thr else pll_thr
            err = 2.0 * pd_state / denom
            pll_integ += pll_ki * err
            if pll_integ > tuning_range:
                pll_integ = tuning_range
            elif pll_integ < -tuning_range:
                pll_integ = -tuning_range
            tuning = pll_kp * err + pll_integ
            if tuning > tuning_range:
                tuning = tuning_range
            elif tuning < -tuning_range:
                tuning = -tuning_range
            phase_err = err
            if (err if err >= 0.0 else -err) < lock_thr:
                lock_counter = lock_counter + 1 \
                    if lock_counter < lock_count else lock_count
            else:
                lock_counter = 0
        else:
            # free-run at the centre frequency
            tuning = 0.0
            phase_err = 0.0
            lock_counter = 0
        locked = lock_counter >= lock_count
        nco_phase = (nco_phase + TWO_PI * (nco_fc + tuning) / nco_fs) % TWO_PI
        sin_ref = sin(nco_phase)
        cos_ref = cos(nco_phase)
        if q_nco is not None:
            sin_ref = q_nco(sin_ref)
            cos_ref = q_nco(cos_ref)

        # AGC
        agc_err = agc_target - amplitude
        agc_integ += agc_ki * agc_err
        if agc_integ < agc_min:
            agc_integ = agc_min
        elif agc_integ > agc_max:
            agc_integ = agc_max
        agc_gain = agc_kp * agc_err + agc_integ
        if agc_gain < agc_min:
            agc_gain = agc_min
        elif agc_gain > agc_max:
            agc_gain = agc_max
        if q_agc is not None:
            agc_gain = q_agc(agc_gain)
        drive_word = agc_gain * cos_ref
        if q_drive is not None:
            drive_word = q_drive(drive_word)

        # sense chain: I/Q demod -> quadrature cancel -> filters -> comp
        di_state = di_state + demod_alpha * (s_norm * cos_ref - di_state)
        i_chan = 2.0 * di_state
        dq_state = dq_state + demod_alpha * (s_norm * sin_ref - dq_state)
        q_chan = 2.0 * dq_state
        if q_demod is not None:
            i_chan = q_demod(i_chan)
            q_chan = q_demod(q_chan)
        raw = i_chan - qc_coeff * q_chan
        if q_qc is not None:
            raw = q_qc(raw)
        v = raw
        for sec in out_secs:
            yy = sec[0] * v + sec[5]
            sec[5] = sec[1] * v - sec[3] * yy + sec[6]
            sec[6] = sec[2] * v - sec[4] * yy
            if q_out is not None:
                yy = q_out(yy)
            v = yy
        rate_channel = v
        v = q_chan
        for sec in quad_secs:
            yy = sec[0] * v + sec[5]
            sec[5] = sec[1] * v - sec[3] * yy + sec[6]
            sec[6] = sec[2] * v - sec[4] * yy
            if q_quad is not None:
                yy = q_quad(yy)
            v = yy
        quad_channel = v
        comp = rate_channel - off_comp
        if q_off is not None:
            comp = q_off(comp)
        comp = (comp - tcomp_off[i]) / tcomp_sens[i]
        if q_tc is not None:
            comp = q_tc(comp)
        rate_dps_val = comp * scale_dps
        word = rate_dps_val / full_scale
        word = -1.0 if word < -1.0 else (1.0 if word > 1.0 else word)
        if q_scaler is not None:
            word = q_scaler(word)
        rate_word = word

        # force rebalance (closed-loop configuration)
        if closed:
            reb_state = reb_state + reb_alpha * (s_norm * cos_ref - reb_state)
            reb_residual = 2.0 * reb_state
            reb_integ += reb_ki * reb_residual
            if reb_integ > reb_limit:
                reb_integ = reb_limit
            elif reb_integ < -reb_limit:
                reb_integ = -reb_limit
            reb_cmd = reb_kp * reb_residual + reb_integ
            if reb_cmd > reb_limit:
                reb_cmd = reb_limit
            elif reb_cmd < -reb_limit:
                reb_cmd = -reb_limit
            control_word = -reb_cmd * cos_ref
            out_dps = reb_cmd * scale_dps
            out_word = out_dps / full_scale
            out_word = -1.0 if out_word < -1.0 \
                else (1.0 if out_word > 1.0 else out_word)
            if q_scaler is not None:
                out_word = q_scaler(out_word)
        else:
            control_word = 0.0
            out_dps = rate_dps_val
            out_word = rate_word

        # start-up sequencer
        st_count += 1
        just_failed = False
        if st_state != ST_RUNNING and not st_failed:
            if st_count > wd_samples:
                st_failed = True
                just_failed = True
        if not just_failed:
            if st_state == ST_POWER_ON:
                st_state = ST_SPINUP
            elif st_state == ST_SPINUP:
                if locked:
                    st_state = ST_LOCKED
            elif st_state == ST_LOCKED:
                if agc_err < settle_thr and agc_err > -settle_thr:
                    st_state = ST_SETTLING
                    st_settle = 0
                elif not locked:
                    st_state = ST_SPINUP
            elif st_state == ST_SETTLING:
                if locked and (agc_err < settle_thr
                               and agc_err > -settle_thr):
                    st_settle += 1
                else:
                    st_settle = 0
                if st_settle >= settle_samples:
                    st_state = ST_RUNNING
                    st_ready = st_count

        # drive / control DACs
        val = -1.0 if drive_word < -1.0 else (1.0 if drive_word > 1.0
                                              else drive_word)
        qd = round(val * ddac_vref / ddac_lsb) * ddac_lsb
        out = qd * ddac_gain[i] + ddac_off[i]
        drive_v = ddac_min if out < ddac_min \
            else (ddac_max if out > ddac_max else out)
        val = -1.0 if control_word < -1.0 else (1.0 if control_word > 1.0
                                                else control_word)
        qd = round(val * cdac_vref / cdac_lsb) * cdac_lsb
        out = qd * cdac_gain[i] + cdac_off[i]
        control_v = cdac_min if out < cdac_min \
            else (cdac_max if out > cdac_max else out)

        # trace recording (decimated)
        if not i % dec:
            clipped = -1.0 if out_word < -1.0 else (1.0 if out_word > 1.0
                                                    else out_word)
            target = (mid + clipped * out_span + trim_out) / rdac_vref
            val = 0.0 if target < 0.0 else (1.0 if target > 1.0 else target)
            qd = round(val * rdac_vref / rdac_lsb) * rdac_lsb
            out = qd * rdac_gain[i] + rdac_off[i]
            rdac_held = rdac_min if out < rdac_min \
                else (rdac_max if out > rdac_max else out)
            time_tr[rec] = start_time + i * dt
            rate_tr[rec] = rate
            temp_tr[rec] = temp_l[i]
            out_dps_tr[rec] = out_dps
            out_v_tr[rec] = rdac_held
            agc_tr[rec] = agc_gain
            agc_err_tr[rec] = agc_err
            perr_tr[rec] = phase_err
            vco_tr[rec] = pll_integ
            lock_tr[rec] = locked
            run_tr[rec] = st_state == ST_RUNNING
            if record_waveforms:
                pick_tr[rec] = p_norm
                drive_tr[rec] = drive_word
            rec += 1

    # ---- write all state back into the reference objects -------------------
    sensor.primary._displacement, sensor.primary._velocity = x, xv
    sensor.secondary._displacement, sensor.secondary._velocity = y, yv

    pga_p._state = pga_p_state
    pga_s._state = pga_s_state
    frontend.primary_antialias._first._state = aa_p1
    frontend.primary_antialias._second._state = aa_p2
    frontend.secondary_antialias._first._state = aa_s1
    frontend.secondary_antialias._second._state = aa_s2
    frontend._overload = bool(overload)
    frontend.trim.register("afe_status").hw_write_field(
        "overload", int(bool(overload)))
    frontend.drive_dac._held_output = drive_v
    frontend.control_dac._held_output = control_v
    if rec:
        frontend.rate_output_dac._held_output = float(out_v_tr[rec - 1])

    pll._pd_filter._state = pd_state
    pll._amp_filter._state = amp_state
    pll._integrator = pll_integ
    pll._phase_error = phase_err
    pll._amplitude = amplitude
    pll._lock_counter = lock_counter
    pll._locked = locked
    pll._sin_ref = sin_ref
    pll._cos_ref = cos_ref
    nco._phase = nco_phase
    nco._tuning_hz = tuning
    agc._integrator = agc_integ
    agc._gain = agc_gain
    agc._error = agc_err
    drive_loop._drive_word = drive_word

    sense.demodulator.in_phase._filter._state = di_state
    sense.demodulator.quadrature._filter._state = dq_state
    writeback_biquads(sense.output_filter, out_secs)
    writeback_biquads(sense.quadrature_filter, quad_secs)
    sense._rate_channel = rate_channel
    sense._quadrature_channel = quad_channel
    sense._rate_dps = rate_dps_val
    sense._rate_word = rate_word

    rebalance._demod._filter._state = reb_state
    rebalance._integrator = reb_integ
    rebalance._command = reb_cmd
    rebalance._residual = reb_residual

    startup._state = StartupState(st_state)
    startup._sample_count = st_count
    startup._settle_counter = st_settle
    startup._ready_sample = st_ready
    startup._failed = st_failed

    conditioner._sample_count += n
    conditioner._control_word = control_word
    conditioner._refresh_registers()

    platform._drive_v = drive_v
    platform._control_v = control_v
    platform._time_s = start_time + n * dt

    return GyroSimulationResult(
        time_s=time_tr[:rec],
        sample_rate_hz=fs / dec,
        true_rate_dps=rate_tr[:rec],
        temperature_c=temp_tr[:rec],
        rate_output_dps=out_dps_tr[:rec],
        rate_output_v=out_v_tr[:rec],
        amplitude_control=agc_tr[:rec],
        amplitude_error=agc_err_tr[:rec],
        phase_error=perr_tr[:rec],
        vco_control=vco_tr[:rec],
        pll_locked=lock_tr[:rec],
        running=run_tr[:rec],
        primary_pickoff_norm=pick_tr[:rec] if record_waveforms else None,
        drive_word=drive_tr[:rec] if record_waveforms else None,
        turn_on_time_s=startup.turn_on_time_s,
    )
