"""Base classes for sample-processing blocks.

Every conditioning element — analog or digital — is modelled as a block
that consumes one input sample per simulation step and produces one
output sample (plus optional auxiliary signals published as attributes).
This mirrors the paper's functional-block view at the MATLAB level: the
same topology survives partitioning, only each block's internals get
refined.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Optional

import numpy as np


class Block(ABC):
    """A single-input single-output sample-processing block.

    Subclasses implement :meth:`step`; :meth:`process` is a convenience
    that streams a whole numpy array through the block, preserving state
    between calls (call :meth:`reset` to clear it).
    """

    def __init__(self, name: Optional[str] = None):
        self._name = name or type(self).__name__

    @property
    def name(self) -> str:
        """Instance name used in reports and traces."""
        return self._name

    @abstractmethod
    def step(self, x: float) -> float:
        """Process one input sample and return one output sample."""

    def reset(self) -> None:
        """Clear internal state.  Default implementation does nothing."""

    def process(self, samples: Iterable[float]) -> np.ndarray:
        """Stream an iterable of samples through :meth:`step`."""
        return np.array([self.step(float(x)) for x in samples], dtype=np.float64)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self._name!r})"


class Passthrough(Block):
    """Identity block, useful as a default or in tests."""

    def step(self, x: float) -> float:
        return x


class Gain(Block):
    """Constant-gain block ``y = gain * x``."""

    def __init__(self, gain: float, name: Optional[str] = None):
        super().__init__(name)
        self.gain = float(gain)

    def step(self, x: float) -> float:
        return self.gain * x


class Saturator(Block):
    """Clamp samples into ``[lo, hi]`` — models rail limiting."""

    def __init__(self, lo: float, hi: float, name: Optional[str] = None):
        super().__init__(name)
        if lo > hi:
            raise ValueError(f"lo ({lo}) must be <= hi ({hi})")
        self.lo = float(lo)
        self.hi = float(hi)

    def step(self, x: float) -> float:
        return min(max(x, self.lo), self.hi)


class Cascade(Block):
    """Series connection of blocks; output of one feeds the next."""

    def __init__(self, blocks: Iterable[Block], name: Optional[str] = None):
        super().__init__(name)
        self.blocks = list(blocks)

    def step(self, x: float) -> float:
        for block in self.blocks:
            x = block.step(x)
        return x

    def reset(self) -> None:
        for block in self.blocks:
            block.reset()
