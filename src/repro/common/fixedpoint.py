"""Fixed-point arithmetic used to model the hardwired digital section.

The paper's DSP block is synthesised RTL: every signal has a finite word
length and the behavioural (MATLAB) model is refined into a bit-true
implementation.  :class:`QFormat` captures the word-length decision and
the quantisation / overflow policy; :func:`quantize` applies it to
scalars or numpy arrays.  :class:`FixedPointValue` wraps a quantised
value so arithmetic between fixed-point operands stays bit-true.

A ``QFormat(int_bits, frac_bits, signed=True)`` value occupies
``int_bits + frac_bits + 1`` bits when signed (the extra bit is the sign
bit), matching the common hardware ``sQx.y`` notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

from .exceptions import ConfigurationError, FixedPointOverflowError

Number = Union[int, float, np.ndarray]

_ROUNDING_MODES = ("nearest", "floor", "truncate")
_OVERFLOW_MODES = ("saturate", "wrap", "error")


@dataclass(frozen=True)
class QFormat:
    """Signed/unsigned Qm.n fixed-point format description.

    Attributes:
        int_bits: number of integer (magnitude) bits, excluding sign.
        frac_bits: number of fractional bits.
        signed: whether a sign bit is present.
        rounding: one of ``"nearest"``, ``"floor"``, ``"truncate"``.
        overflow: one of ``"saturate"``, ``"wrap"``, ``"error"``.
    """

    int_bits: int
    frac_bits: int
    signed: bool = True
    rounding: str = "nearest"
    overflow: str = "saturate"

    def __post_init__(self) -> None:
        if self.int_bits < 0 or self.frac_bits < 0:
            raise ConfigurationError(
                f"bit counts must be >= 0, got Q{self.int_bits}.{self.frac_bits}")
        if self.int_bits + self.frac_bits == 0:
            raise ConfigurationError("format must have at least one magnitude bit")
        if self.rounding not in _ROUNDING_MODES:
            raise ConfigurationError(
                f"rounding must be one of {_ROUNDING_MODES}, got {self.rounding!r}")
        if self.overflow not in _OVERFLOW_MODES:
            raise ConfigurationError(
                f"overflow must be one of {_OVERFLOW_MODES}, got {self.overflow!r}")

    # -- derived properties -------------------------------------------------

    @property
    def word_length(self) -> int:
        """Total number of bits including the sign bit (if signed)."""
        return self.int_bits + self.frac_bits + (1 if self.signed else 0)

    @property
    def lsb(self) -> float:
        """Weight of the least-significant bit."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return 2.0 ** self.int_bits - self.lsb

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2.0 ** self.int_bits) if self.signed else 0.0

    @property
    def range_span(self) -> float:
        """``max_value - min_value``."""
        return self.max_value - self.min_value

    def describe(self) -> str:
        """Human-readable format description, e.g. ``"sQ2.13 (16 bits)"``."""
        prefix = "sQ" if self.signed else "uQ"
        return f"{prefix}{self.int_bits}.{self.frac_bits} ({self.word_length} bits)"

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_word_length(cls, word_length: int, frac_bits: int,
                         signed: bool = True, **kwargs) -> "QFormat":
        """Build a format from a total word length and fractional bits."""
        int_bits = word_length - frac_bits - (1 if signed else 0)
        if int_bits < 0:
            raise ConfigurationError(
                f"word length {word_length} too small for {frac_bits} fractional bits")
        return cls(int_bits, frac_bits, signed=signed, **kwargs)

    # -- conversion ---------------------------------------------------------

    def to_raw(self, value: Number) -> Number:
        """Quantise ``value`` and return the integer raw code(s)."""
        quantised = quantize(value, self)
        raw = np.asarray(quantised) / self.lsb
        raw = np.rint(raw).astype(np.int64)
        if np.isscalar(value) or np.asarray(value).ndim == 0:
            return int(raw)
        return raw

    def from_raw(self, raw: Number) -> Number:
        """Convert integer raw code(s) back to real value(s)."""
        result = np.asarray(raw, dtype=np.float64) * self.lsb
        if np.isscalar(raw) or np.asarray(raw).ndim == 0:
            return float(result)
        return result


def _round(scaled: np.ndarray, mode: str) -> np.ndarray:
    if mode == "nearest":
        return np.floor(scaled + 0.5)
    if mode == "floor":
        return np.floor(scaled)
    # "truncate": round toward zero
    return np.trunc(scaled)


def quantize(value: Number, fmt: QFormat) -> Number:
    """Quantise ``value`` (scalar or array) to ``fmt``.

    Rounding and overflow handling follow ``fmt.rounding`` and
    ``fmt.overflow``.  Scalars in, scalars out; arrays in, arrays out.

    Raises:
        FixedPointOverflowError: if the value is out of range and the
            format uses ``overflow='error'``.
    """
    arr = np.asarray(value, dtype=np.float64)
    scaled = arr / fmt.lsb
    rounded = _round(scaled, fmt.rounding)

    lo = fmt.min_value / fmt.lsb
    hi = fmt.max_value / fmt.lsb

    if fmt.overflow == "error":
        if np.any(rounded > hi) or np.any(rounded < lo):
            raise FixedPointOverflowError(
                f"value {value!r} out of range for {fmt.describe()}")
        clipped = rounded
    elif fmt.overflow == "saturate":
        clipped = np.clip(rounded, lo, hi)
    else:  # wrap (two's complement style)
        span = hi - lo + 1
        clipped = ((rounded - lo) % span) + lo

    result = clipped * fmt.lsb
    if np.isscalar(value) or arr.ndim == 0:
        return float(result)
    return result


def quantization_noise_power(fmt: QFormat) -> float:
    """Theoretical quantisation noise power ``lsb**2 / 12`` for ``fmt``."""
    return fmt.lsb ** 2 / 12.0


class FixedPointValue:
    """A scalar value bound to a :class:`QFormat`.

    Arithmetic between two :class:`FixedPointValue` operands (or a
    fixed-point operand and a plain number) produces a result quantised
    to the left operand's format, mimicking an RTL assignment back into a
    register of that format.
    """

    __slots__ = ("_fmt", "_value")

    def __init__(self, value: float, fmt: QFormat):
        self._fmt = fmt
        self._value = quantize(float(value), fmt)

    @property
    def value(self) -> float:
        """Quantised real value."""
        return self._value

    @property
    def fmt(self) -> QFormat:
        """The bound format."""
        return self._fmt

    @property
    def raw(self) -> int:
        """Integer raw code of the value."""
        return self._fmt.to_raw(self._value)

    def __float__(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"FixedPointValue({self._value!r}, {self._fmt.describe()})"

    # -- arithmetic ---------------------------------------------------------

    def _coerce(self, other: Union["FixedPointValue", float, int]) -> float:
        if isinstance(other, FixedPointValue):
            return other.value
        return float(other)

    def __add__(self, other) -> "FixedPointValue":
        return FixedPointValue(self._value + self._coerce(other), self._fmt)

    def __radd__(self, other) -> "FixedPointValue":
        return self.__add__(other)

    def __sub__(self, other) -> "FixedPointValue":
        return FixedPointValue(self._value - self._coerce(other), self._fmt)

    def __rsub__(self, other) -> "FixedPointValue":
        return FixedPointValue(self._coerce(other) - self._value, self._fmt)

    def __mul__(self, other) -> "FixedPointValue":
        return FixedPointValue(self._value * self._coerce(other), self._fmt)

    def __rmul__(self, other) -> "FixedPointValue":
        return self.__mul__(other)

    def __neg__(self) -> "FixedPointValue":
        return FixedPointValue(-self._value, self._fmt)

    def __eq__(self, other) -> bool:
        if isinstance(other, FixedPointValue):
            return self._value == other._value and self._fmt == other._fmt
        if isinstance(other, (int, float)):
            return self._value == float(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._value, self._fmt))


# ---------------------------------------------------------------------------
# Common formats used by the DSP chain
# ---------------------------------------------------------------------------

#: 16-bit datapath with 1 integer bit — typical for normalised samples.
DSP16 = QFormat(int_bits=1, frac_bits=14, signed=True)

#: 24-bit accumulator format used by filters and the PLL loop filter.
ACC24 = QFormat(int_bits=3, frac_bits=20, signed=True)

#: 12-bit ADC/DAC interface format.
CONVERTER12 = QFormat(int_bits=0, frac_bits=11, signed=True)


def format_for_bits(word_length: int, full_scale: float = 1.0,
                    signed: bool = True) -> QFormat:
    """Choose a Q format for a given total word length and full scale.

    The integer bit count is the smallest that represents ``full_scale``;
    the rest of the word is fractional.
    """
    if full_scale <= 0:
        raise ConfigurationError("full scale must be > 0")
    int_bits = max(0, int(np.ceil(np.log2(full_scale))))
    frac_bits = word_length - int_bits - (1 if signed else 0)
    if frac_bits < 0:
        raise ConfigurationError(
            f"word length {word_length} too small for full scale {full_scale}")
    return QFormat(int_bits=int_bits, frac_bits=frac_bits, signed=signed)
