"""Waveform analysis helpers: settling, amplitude/phase extraction, fits.

These are the measurement primitives behind both the PLL-locking figures
(settling detection on the amplitude/phase-error traces) and the
datasheet table (straight-line sensitivity fit, nonlinearity as maximum
deviation from the fit, turn-on time as time-to-settle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .exceptions import ConfigurationError


@dataclass(frozen=True)
class LinearFit:
    """Result of a least-squares straight-line fit ``y = slope * x + offset``."""

    slope: float
    offset: float
    max_abs_residual: float
    rms_residual: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted line at ``x``."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.offset


def linear_fit(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """Least-squares straight-line fit with residual statistics."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ConfigurationError("x and y must have the same shape")
    if x.size < 2:
        raise ConfigurationError("need at least two points for a linear fit")
    slope, offset = np.polyfit(x, y, 1)
    residuals = y - (slope * x + offset)
    return LinearFit(slope=float(slope), offset=float(offset),
                     max_abs_residual=float(np.max(np.abs(residuals))),
                     rms_residual=float(np.sqrt(np.mean(residuals ** 2))))


def nonlinearity_percent_fs(x: np.ndarray, y: np.ndarray,
                            full_scale_output: Optional[float] = None) -> float:
    """Nonlinearity as percent of full scale (best-fit-straight-line method).

    Args:
        x: stimulus values (e.g. applied rate in °/s).
        y: measured output values.
        full_scale_output: output span to normalise against; default is the
            span predicted by the fit over the stimulus range.
    """
    fit = linear_fit(x, y)
    if full_scale_output is None:
        full_scale_output = abs(fit.slope) * (np.max(x) - np.min(x))
    if full_scale_output == 0:
        raise ConfigurationError("full-scale output is zero; cannot normalise")
    return 100.0 * fit.max_abs_residual / full_scale_output


def settling_time(t: np.ndarray, y: np.ndarray, final_value: Optional[float] = None,
                  tolerance: float = 0.02) -> float:
    """Time after which ``y`` stays within ``tolerance`` of its final value.

    Args:
        t: time stamps.
        y: waveform.
        final_value: settled value; defaults to the mean of the last 10 %.
        tolerance: relative band (fraction of ``final_value`` magnitude, or
            absolute if the final value is ~0).

    Returns:
        Settling time in the same unit as ``t``.  Returns ``t[-1]`` if the
        waveform never settles.
    """
    t = np.asarray(t, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if t.shape != y.shape or t.size < 4:
        raise ConfigurationError("t and y must be equal-length arrays of >= 4 samples")
    if final_value is None:
        tail = max(1, len(y) // 10)
        final_value = float(np.mean(y[-tail:]))
    band = tolerance * max(abs(final_value), 1e-12)
    outside = np.abs(y - final_value) > band
    if not np.any(outside):
        return float(t[0])
    last_outside = int(np.max(np.nonzero(outside)))
    if last_outside + 1 >= len(t):
        return float(t[-1])
    return float(t[last_outside + 1])


def envelope_amplitude(x: np.ndarray, window: int) -> np.ndarray:
    """Sliding-window amplitude estimate of a narrowband signal.

    Uses ``sqrt(2) * RMS`` over a centred window, which equals the peak
    amplitude for a sinusoid.  This is the measurement the AGC performs.
    """
    x = np.asarray(x, dtype=np.float64)
    if window < 2 or window > len(x):
        raise ConfigurationError("window must be in [2, len(x)]")
    squared = x ** 2
    kernel = np.ones(window) / window
    mean_sq = np.convolve(squared, kernel, mode="same")
    return np.sqrt(2.0 * mean_sq)


def tone_amplitude_phase(x: np.ndarray, freq_hz: float,
                         sample_rate_hz: float) -> Tuple[float, float]:
    """Amplitude and phase of the component of ``x`` at ``freq_hz``.

    Single-bin DFT (correlation with a complex exponential); phase is in
    radians relative to a cosine at the record start.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size < 4:
        raise ConfigurationError("need at least 4 samples")
    n = len(x)
    t = np.arange(n) / sample_rate_hz
    ref = np.exp(-2j * np.pi * freq_hz * t)
    coeff = 2.0 * np.sum(x * ref) / n
    return float(np.abs(coeff)), float(np.angle(coeff))


def three_db_bandwidth(freqs_hz: np.ndarray, magnitude: np.ndarray) -> float:
    """-3 dB bandwidth of a low-pass magnitude response.

    The reference level is the magnitude of the lowest-frequency point.
    Returns the interpolated frequency where the response first drops
    3 dB below the reference; returns the last frequency if it never does.
    """
    freqs_hz = np.asarray(freqs_hz, dtype=np.float64)
    magnitude = np.asarray(magnitude, dtype=np.float64)
    if freqs_hz.shape != magnitude.shape or freqs_hz.size < 2:
        raise ConfigurationError("freqs and magnitude must be equal-length arrays of >= 2")
    order = np.argsort(freqs_hz)
    freqs_hz = freqs_hz[order]
    magnitude = magnitude[order]
    ref = magnitude[0]
    if ref <= 0:
        raise ConfigurationError("reference magnitude must be > 0")
    threshold = ref / np.sqrt(2.0)
    below = magnitude < threshold
    if not np.any(below):
        return float(freqs_hz[-1])
    idx = int(np.argmax(below))
    if idx == 0:
        return float(freqs_hz[0])
    # linear interpolation between idx-1 and idx
    f0, f1 = freqs_hz[idx - 1], freqs_hz[idx]
    m0, m1 = magnitude[idx - 1], magnitude[idx]
    if m0 == m1:
        return float(f1)
    frac = (m0 - threshold) / (m0 - m1)
    return float(f0 + frac * (f1 - f0))


def crossing_time(t: np.ndarray, y: np.ndarray, threshold: float,
                  rising: bool = True) -> Optional[float]:
    """First time ``y`` crosses ``threshold`` in the given direction.

    Returns ``None`` if the crossing never happens.
    """
    t = np.asarray(t, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if t.shape != y.shape or t.size < 2:
        raise ConfigurationError("t and y must be equal-length arrays of >= 2 samples")
    if rising:
        hits = np.nonzero((y[:-1] < threshold) & (y[1:] >= threshold))[0]
    else:
        hits = np.nonzero((y[:-1] > threshold) & (y[1:] <= threshold))[0]
    if hits.size == 0:
        return None
    i = int(hits[0])
    y0, y1 = y[i], y[i + 1]
    if y1 == y0:
        return float(t[i + 1])
    frac = (threshold - y0) / (y1 - y0)
    return float(t[i] + frac * (t[i + 1] - t[i]))
