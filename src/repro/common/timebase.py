"""Simulation time base shared by the analog, digital and software models.

The mixed-signal platform is simulated as a discrete-time system at a
single "analog" oversampling rate; the digital section runs at integer
sub-multiples obtained by decimation.  :class:`Timebase` keeps the rates
and conversions in one place so every block agrees on what a "sample"
means, exactly as the paper's MATLAB model fixes a common simulation
step before partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .exceptions import ConfigurationError


@dataclass(frozen=True)
class Timebase:
    """A fixed sampling rate plus helpers to convert between time and samples.

    Attributes:
        sample_rate_hz: simulation sampling frequency in hertz.
    """

    sample_rate_hz: float

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError(
                f"sample rate must be > 0, got {self.sample_rate_hz!r}")

    @property
    def dt(self) -> float:
        """Sample period in seconds."""
        return 1.0 / self.sample_rate_hz

    @property
    def nyquist_hz(self) -> float:
        """Nyquist frequency in hertz."""
        return self.sample_rate_hz / 2.0

    def n_samples(self, duration_s: float) -> int:
        """Number of samples spanning ``duration_s`` seconds (rounded)."""
        if duration_s < 0:
            raise ConfigurationError("duration must be >= 0")
        return int(round(duration_s * self.sample_rate_hz))

    def duration(self, n_samples: int) -> float:
        """Duration in seconds of ``n_samples`` samples."""
        return n_samples / self.sample_rate_hz

    def time_vector(self, n_samples: int, start_s: float = 0.0) -> np.ndarray:
        """Return the time stamps of ``n_samples`` consecutive samples."""
        return start_s + np.arange(n_samples) / self.sample_rate_hz

    def decimated(self, factor: int) -> "Timebase":
        """Timebase after decimation by an integer ``factor``."""
        if factor < 1 or int(factor) != factor:
            raise ConfigurationError(f"decimation factor must be a positive integer, got {factor!r}")
        return Timebase(self.sample_rate_hz / factor)

    def normalized_frequency(self, freq_hz: float) -> float:
        """Frequency as a fraction of the sample rate (cycles/sample)."""
        return freq_hz / self.sample_rate_hz

    def phase_increment(self, freq_hz: float) -> float:
        """Per-sample phase increment in radians for a tone at ``freq_hz``."""
        return 2.0 * np.pi * freq_hz / self.sample_rate_hz


class SimulationClock:
    """Mutable sample counter attached to a :class:`Timebase`.

    Used by the co-simulation engine to advance all sections coherently
    and to schedule events (e.g. a rate step at ``t = 50 ms``).
    """

    def __init__(self, timebase: Timebase):
        self._timebase = timebase
        self._sample_index = 0

    @property
    def timebase(self) -> Timebase:
        """The underlying time base."""
        return self._timebase

    @property
    def sample_index(self) -> int:
        """Number of samples elapsed since construction or :meth:`reset`."""
        return self._sample_index

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._sample_index * self._timebase.dt

    def tick(self, n: int = 1) -> int:
        """Advance the clock by ``n`` samples and return the new index."""
        if n < 0:
            raise ConfigurationError("cannot tick a negative number of samples")
        self._sample_index += n
        return self._sample_index

    def reset(self) -> None:
        """Rewind the clock to time zero."""
        self._sample_index = 0

    def __repr__(self) -> str:
        return (f"SimulationClock(t={self.now:.6f}s, "
                f"fs={self._timebase.sample_rate_hz:.0f}Hz)")
