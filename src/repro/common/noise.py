"""Noise generation and spectral-density estimation utilities.

The headline figure of merit in Table 1 is the rate-noise density in
°/s/√Hz, so the library needs (a) physically parameterised noise
sources to inject into the sensor and front-end models and (b) a robust
way to estimate a one-sided amplitude spectral density from a simulated
output record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import signal as sps

from .exceptions import ConfigurationError
from .units import BOLTZMANN, celsius_to_kelvin


def white_noise(n_samples: int, density: float, sample_rate_hz: float,
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Generate white noise with a one-sided amplitude spectral density.

    Args:
        n_samples: number of samples to generate.
        density: one-sided amplitude spectral density in ``unit/√Hz``.
        sample_rate_hz: sampling rate of the generated sequence.
        rng: optional numpy random generator for reproducibility.

    Returns:
        Array of ``n_samples`` Gaussian samples whose standard deviation
        is ``density * sqrt(fs / 2)`` so that the one-sided PSD equals
        ``density**2``.
    """
    if n_samples < 0:
        raise ConfigurationError("n_samples must be >= 0")
    if density < 0:
        raise ConfigurationError("noise density must be >= 0")
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample rate must be > 0")
    if density == 0.0 or n_samples == 0:
        return np.zeros(n_samples)
    rng = rng or np.random.default_rng()
    sigma = density * np.sqrt(sample_rate_hz / 2.0)
    return rng.normal(0.0, sigma, size=n_samples)


def flicker_noise(n_samples: int, density_at_1hz: float, sample_rate_hz: float,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Generate approximate 1/f (flicker) noise.

    Uses the Voss/spectral-shaping approach: white Gaussian noise is
    shaped in the frequency domain by ``1/sqrt(f)`` so the resulting
    amplitude spectral density falls as ``1/sqrt(f)`` and equals
    ``density_at_1hz`` at 1 Hz.
    """
    if n_samples <= 0:
        return np.zeros(max(n_samples, 0))
    if density_at_1hz == 0.0:
        return np.zeros(n_samples)
    rng = rng or np.random.default_rng()
    white = rng.normal(0.0, 1.0, size=n_samples)
    spectrum = np.fft.rfft(white)
    freqs = np.fft.rfftfreq(n_samples, d=1.0 / sample_rate_hz)
    shaping = np.ones_like(freqs)
    nonzero = freqs > 0
    shaping[nonzero] = 1.0 / np.sqrt(freqs[nonzero])
    shaping[0] = 0.0  # remove DC
    shaped = np.fft.irfft(spectrum * shaping, n=n_samples)
    # normalise so the ASD at 1 Hz matches density_at_1hz
    scale = density_at_1hz * np.sqrt(sample_rate_hz / 2.0) / max(np.std(white), 1e-30)
    return shaped * scale


def thermal_voltage_noise_density(resistance_ohm: float,
                                  temperature_c: float = 25.0) -> float:
    """Johnson-Nyquist voltage noise density ``sqrt(4 k T R)`` in V/√Hz."""
    if resistance_ohm < 0:
        raise ConfigurationError("resistance must be >= 0")
    t_kelvin = celsius_to_kelvin(temperature_c)
    return float(np.sqrt(4.0 * BOLTZMANN * t_kelvin * resistance_ohm))


@dataclass
class NoiseSource:
    """Composite white + flicker noise source.

    Attributes:
        white_density: one-sided white-noise density in unit/√Hz.
        flicker_density_1hz: flicker (1/f) density at 1 Hz in unit/√Hz.
        seed: RNG seed (``None`` draws from entropy).
    """

    white_density: float = 0.0
    flicker_density_1hz: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def generate(self, n_samples: int, sample_rate_hz: float) -> np.ndarray:
        """Generate ``n_samples`` of composite noise."""
        total = white_noise(n_samples, self.white_density, sample_rate_hz, self._rng)
        if self.flicker_density_1hz:
            total = total + flicker_noise(
                n_samples, self.flicker_density_1hz, sample_rate_hz, self._rng)
        return total

    def sample(self, sample_rate_hz: float) -> float:
        """Draw a single white-noise sample (flicker ignored per-sample)."""
        if self.white_density == 0.0:
            return 0.0
        sigma = self.white_density * np.sqrt(sample_rate_hz / 2.0)
        return float(self._rng.normal(0.0, sigma))

    def reset(self) -> None:
        """Re-seed the generator for repeatable runs."""
        self._rng = np.random.default_rng(self.seed)


class BufferedGaussianNoise:
    """Per-sample Gaussian noise drawn from pre-generated blocks.

    ``numpy`` generator calls are comparatively expensive for scalar
    draws; the per-sample simulation loops (ADC, amplifiers, sensor)
    instead pull from a block of 4096 pre-generated samples that is
    refilled on demand.  The sequence is identical for a given seed.
    """

    def __init__(self, sigma: float, seed: Optional[int] = None,
                 block_size: int = 4096):
        if sigma < 0:
            raise ConfigurationError("sigma must be >= 0")
        if block_size < 1:
            raise ConfigurationError("block size must be >= 1")
        self.sigma = float(sigma)
        self._rng = np.random.default_rng(seed)
        self._block_size = int(block_size)
        self._buffer = np.zeros(0)
        self._index = 0

    def next(self) -> float:
        """Return the next noise sample (0.0 when sigma is zero)."""
        if self.sigma == 0.0:
            return 0.0
        if self._index >= self._buffer.size:
            self._buffer = self._rng.normal(0.0, self.sigma, self._block_size)
            self._index = 0
        value = self._buffer[self._index]
        self._index += 1
        return float(value)

    def take(self, n: int) -> np.ndarray:
        """Return the next ``n`` samples as an array.

        Produces exactly the same sequence as ``n`` calls to
        :meth:`next` — blocks are refilled on the same boundaries — and
        leaves the buffer/index state where per-sample consumption would
        have left it, so streaming and batched consumers can be mixed
        freely.  With ``sigma == 0`` nothing is consumed and zeros are
        returned, matching :meth:`next`.
        """
        if n < 0:
            raise ConfigurationError("n must be >= 0")
        if self.sigma == 0.0 or n == 0:
            return np.zeros(n)
        out = np.empty(n)
        filled = 0
        while filled < n:
            if self._index >= self._buffer.size:
                self._buffer = self._rng.normal(0.0, self.sigma, self._block_size)
                self._index = 0
            chunk = min(n - filled, self._buffer.size - self._index)
            out[filled:filled + chunk] = \
                self._buffer[self._index:self._index + chunk]
            self._index += chunk
            filled += chunk
        return out


def amplitude_spectral_density(x: np.ndarray, sample_rate_hz: float,
                               nperseg: Optional[int] = None
                               ) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectral density via Welch's method.

    Returns:
        ``(freqs, asd)`` where ``asd`` is in ``unit/√Hz``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size < 8:
        raise ConfigurationError("need at least 8 samples for an ASD estimate")
    if nperseg is None:
        nperseg = min(len(x), max(256, len(x) // 8))
    freqs, psd = sps.welch(x, fs=sample_rate_hz, nperseg=nperseg, detrend="constant")
    return freqs, np.sqrt(psd)


def band_average_density(x: np.ndarray, sample_rate_hz: float,
                         band_hz: Tuple[float, float],
                         nperseg: Optional[int] = None) -> float:
    """Average amplitude spectral density of ``x`` within a band.

    This is how the rate-noise-density figure (°/s/√Hz) is extracted
    from a zero-rate output record: estimate the ASD and average it over
    the flat in-band region.
    """
    freqs, asd = amplitude_spectral_density(x, sample_rate_hz, nperseg)
    lo, hi = band_hz
    mask = (freqs >= lo) & (freqs <= hi)
    if not np.any(mask):
        raise ConfigurationError(f"no spectral bins inside band {band_hz}")
    return float(np.mean(asd[mask]))


def rms(x: np.ndarray) -> float:
    """Root-mean-square of a record (DC included)."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ConfigurationError("cannot compute RMS of an empty record")
    return float(np.sqrt(np.mean(x ** 2)))


def ac_rms(x: np.ndarray) -> float:
    """RMS of a record after removing its mean."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ConfigurationError("cannot compute RMS of an empty record")
    return float(np.std(x))
