"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so applications can
catch platform-related problems with a single ``except`` clause while
still letting genuine programming errors (``TypeError`` and friends)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid parameters."""


class FixedPointError(ReproError):
    """Base class for fixed-point arithmetic errors."""


class FixedPointOverflowError(FixedPointError):
    """A value exceeded the representable range with ``overflow='error'``."""


class RegisterError(ReproError):
    """Invalid register-file access (unknown register, bad field, read-only write)."""


class PartitioningError(ReproError):
    """The partitioning engine could not find a feasible implementation."""


class VerificationError(ReproError):
    """A refinement step failed its equivalence check against the reference."""


class SimulationError(ReproError):
    """A simulation could not proceed (e.g. divergence, missing stimulus)."""


class StoreError(ReproError):
    """Base class for result-store errors (bad layout, unusable directory)."""


class StoreIntegrityError(StoreError):
    """A stored result failed verification against a live re-simulation."""


class McuError(ReproError):
    """Base class for microcontroller subsystem errors."""


class IllegalOpcodeError(McuError):
    """The 8051 core fetched an opcode it cannot execute."""


class AssemblerError(McuError):
    """The MCS-51 assembler rejected a source line."""


class BusError(McuError):
    """An access was issued to an unmapped bus address."""


class JtagError(McuError):
    """Illegal JTAG TAP operation or unknown instruction."""


class CalibrationError(ReproError):
    """Sensor calibration failed to converge or produced out-of-range trims."""
