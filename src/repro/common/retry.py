"""Shared retry semantics: attempts, exponential backoff, deadlines.

One :class:`RetryPolicy` describes *how often and how patiently* an
operation may be retried — the campaign executor uses it to govern shard
re-launches and the result store uses it to ride out transient I/O
failures (ENOSPC clearing, NFS hiccups) on its durable-write path.
Keeping it in ``common`` means every layer speaks the same retry
vocabulary and the batch manifest can record one policy dict instead of
a drift-prone pile of ad-hoc scalars.

The policy is a frozen (picklable) dataclass like everything else that
travels to worker processes.  Delays grow exponentially from
``backoff_s`` by ``backoff_factor`` per failed attempt, saturate at
``max_backoff_s``, and — when a ``deadline_s`` budget is set — are
always capped by the time remaining in the budget, so a retry loop can
never sleep past its own deadline.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Optional, Tuple, Type

from .exceptions import ConfigurationError


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How an operation is retried: attempts, backoff and deadline budget.

    Attributes:
        max_attempts: total launches allowed (first try included); 1
            means no retries.
        backoff_s: delay before the first retry; 0 retries immediately.
        backoff_factor: multiplier applied to the delay per further
            retry (exponential backoff).
        max_backoff_s: saturation cap on any single delay.
        deadline_s: optional wall-clock budget over the whole retry
            loop; once spent, no further retries launch and any backoff
            sleep is capped by the time remaining.
    """

    max_attempts: int = 3
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ConfigurationError("backoff_s must be >= 0")
        if self.backoff_factor < 1:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.max_backoff_s < 0:
            raise ConfigurationError("max_backoff_s must be >= 0")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ConfigurationError("deadline_s must be >= 0")

    @classmethod
    def from_legacy(cls, max_retries: int = 2,
                    retry_backoff_s: float = 0.0) -> "RetryPolicy":
        """Build a policy from the pre-policy executor scalars.

        ``max_retries`` counted *re*-runs, so the equivalent policy
        allows ``max_retries + 1`` attempts; ``retry_backoff_s`` was
        already the base of an exponential backoff.
        """
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        return cls(max_attempts=max_retries + 1, backoff_s=retry_backoff_s)

    # -- delays -------------------------------------------------------------

    def delay_for(self, attempt: int) -> float:
        """Backoff delay after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError("attempt numbers are 1-based")
        if self.backoff_s == 0:
            return 0.0
        return min(self.backoff_s * self.backoff_factor ** (attempt - 1),
                   self.max_backoff_s)

    def remaining(self, started_monotonic: float,
                  now: Optional[float] = None) -> Optional[float]:
        """Budget left (seconds, floored at 0); None without a deadline."""
        if self.deadline_s is None:
            return None
        if now is None:
            now = time.monotonic()
        return max(0.0, self.deadline_s - (now - started_monotonic))

    # -- the generic retry loop ---------------------------------------------

    def call(self, fn: Callable, *,
             retryable: Tuple[Type[BaseException], ...] = (OSError,),
             sleep: Callable[[float], None] = time.sleep,
             monotonic: Callable[[], float] = time.monotonic):
        """Run ``fn()`` under this policy, retrying ``retryable`` failures.

        The last failure is re-raised when the attempts (or the deadline
        budget) are exhausted; every backoff sleep is capped by the
        remaining budget.  Exceptions outside ``retryable`` propagate
        immediately — a crash simulation or a programming error is not a
        transient fault.
        """
        start = monotonic()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retryable:
                if attempt >= self.max_attempts:
                    raise
                delay = self.delay_for(attempt)
                remaining = self.remaining(start, monotonic())
                if remaining is not None:
                    if remaining <= 0:
                        raise
                    delay = min(delay, remaining)
                if delay > 0:
                    sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- serialisation (for the batch manifest) -----------------------------

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(max_attempts=int(data["max_attempts"]),
                   backoff_s=float(data["backoff_s"]),
                   backoff_factor=float(data["backoff_factor"]),
                   max_backoff_s=float(data["max_backoff_s"]),
                   deadline_s=(None if data.get("deadline_s") is None
                               else float(data["deadline_s"])))
