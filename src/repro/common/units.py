"""Physical units, constants and conversions used across the platform.

The sensor-conditioning domain mixes mechanical quantities (angular rate
in degrees per second), electrical quantities (volts, amps, farads) and
signal-processing quantities (dB, dBFS, Hz).  Keeping every conversion in
one place avoids the classic radians-vs-degrees and single-sided vs
double-sided PSD mistakes.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Constants
# ---------------------------------------------------------------------------

#: Boltzmann constant [J/K] — used for thermal (Johnson) and Brownian noise.
BOLTZMANN = 1.380649e-23

#: Absolute zero offset between Celsius and Kelvin.
KELVIN_OFFSET = 273.15

#: Standard reference temperature for datasheet figures [°C].
ROOM_TEMPERATURE_C = 25.0

#: Automotive operating temperature range used throughout the paper [°C].
AUTOMOTIVE_TEMP_MIN_C = -40.0
AUTOMOTIVE_TEMP_MAX_C = 125.0

#: Operating range of the gyro case study (Table 1) [°C].
GYRO_TEMP_MIN_C = -40.0
GYRO_TEMP_MAX_C = 85.0

TWO_PI = 2.0 * math.pi


# ---------------------------------------------------------------------------
# Angular rate
# ---------------------------------------------------------------------------

def deg_to_rad(deg: float) -> float:
    """Convert degrees to radians."""
    return deg * math.pi / 180.0


def rad_to_deg(rad: float) -> float:
    """Convert radians to degrees."""
    return rad * 180.0 / math.pi


def dps_to_rps(dps: float) -> float:
    """Convert an angular rate from degrees/second to radians/second."""
    return deg_to_rad(dps)


def rps_to_dps(rps: float) -> float:
    """Convert an angular rate from radians/second to degrees/second."""
    return rad_to_deg(rps)


# ---------------------------------------------------------------------------
# Temperature
# ---------------------------------------------------------------------------

def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature from degrees Celsius to Kelvin."""
    return celsius + KELVIN_OFFSET


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert a temperature from Kelvin to degrees Celsius."""
    return kelvin - KELVIN_OFFSET


# ---------------------------------------------------------------------------
# Decibels
# ---------------------------------------------------------------------------

def db_to_linear(db: float) -> float:
    """Convert an amplitude ratio expressed in dB to a linear ratio."""
    return 10.0 ** (db / 20.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear amplitude ratio to dB.

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"amplitude ratio must be > 0, got {ratio!r}")
    return 20.0 * math.log10(ratio)


def power_db_to_linear(db: float) -> float:
    """Convert a power ratio in dB to a linear ratio."""
    return 10.0 ** (db / 10.0)


def power_linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB."""
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be > 0, got {ratio!r}")
    return 10.0 * math.log10(ratio)


# ---------------------------------------------------------------------------
# Frequency / time
# ---------------------------------------------------------------------------

def hz_to_rad_per_s(hz: float) -> float:
    """Convert a frequency in hertz to angular frequency in rad/s."""
    return TWO_PI * hz


def rad_per_s_to_hz(w: float) -> float:
    """Convert an angular frequency in rad/s to hertz."""
    return w / TWO_PI


def seconds_to_samples(duration_s: float, sample_rate_hz: float) -> int:
    """Number of samples covering ``duration_s`` at ``sample_rate_hz``.

    The result is rounded to the nearest integer and never negative.
    """
    if sample_rate_hz <= 0.0:
        raise ValueError(f"sample rate must be > 0, got {sample_rate_hz!r}")
    if duration_s < 0.0:
        raise ValueError(f"duration must be >= 0, got {duration_s!r}")
    return int(round(duration_s * sample_rate_hz))


def samples_to_seconds(n_samples: int, sample_rate_hz: float) -> float:
    """Duration in seconds of ``n_samples`` at ``sample_rate_hz``."""
    if sample_rate_hz <= 0.0:
        raise ValueError(f"sample rate must be > 0, got {sample_rate_hz!r}")
    return n_samples / sample_rate_hz


# ---------------------------------------------------------------------------
# Voltage helpers
# ---------------------------------------------------------------------------

def volts_per_dps_to_volts(sensitivity_v_per_dps: float, rate_dps: float,
                           null_v: float = 0.0) -> float:
    """Ideal ratiometric output voltage for a given rate and sensitivity."""
    return null_v + sensitivity_v_per_dps * rate_dps


def full_scale_fraction(value: float, full_scale: float) -> float:
    """Express ``value`` as a fraction of ``full_scale`` (unitless)."""
    if full_scale == 0.0:
        raise ValueError("full scale must be non-zero")
    return value / full_scale
