"""Memory-mapped control/status registers.

The paper stresses that "several readable registers spread along the
processing chain" let the 8051 firmware monitor the DSP and that every
analog cell is "digitally controlled" through trim registers reachable
over JTAG.  :class:`RegisterFile` provides that register fabric: named
registers with bit fields, access control (RO/RW/W1C) and an address map
so both the MCU bus bridge and the JTAG chain can reach them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .exceptions import RegisterError

ACCESS_MODES = ("rw", "ro", "w1c")


@dataclass
class BitField:
    """A named bit field inside a register.

    Attributes:
        name: field name, unique within the register.
        lsb: position of the least-significant bit of the field.
        width: field width in bits.
        reset: value the field takes at reset.
        doc: one-line description.
    """

    name: str
    lsb: int
    width: int = 1
    reset: int = 0
    doc: str = ""

    def __post_init__(self) -> None:
        if self.lsb < 0 or self.width < 1:
            raise RegisterError(f"invalid field geometry for {self.name!r}")
        if self.reset >= (1 << self.width):
            raise RegisterError(
                f"reset value {self.reset} does not fit in {self.width} bits "
                f"for field {self.name!r}")

    @property
    def mask(self) -> int:
        """Bit mask of the field within the register word."""
        return ((1 << self.width) - 1) << self.lsb

    def extract(self, word: int) -> int:
        """Extract this field's value from a register word."""
        return (word & self.mask) >> self.lsb

    def insert(self, word: int, value: int) -> int:
        """Return ``word`` with this field replaced by ``value``."""
        if value < 0 or value >= (1 << self.width):
            raise RegisterError(
                f"value {value} does not fit in field {self.name!r} ({self.width} bits)")
        return (word & ~self.mask) | (value << self.lsb)


class Register:
    """A single register with optional bit fields and access control."""

    # class-level defaults so pickles from before the fault-injection
    # fabric (no force state / write hooks in __dict__) keep working
    _force_mask = 0
    _force_value = 0
    _write_hooks: "Tuple[Callable[[int], None], ...]" = ()

    def __init__(self, name: str, address: int, width: int = 16,
                 access: str = "rw", reset: int = 0,
                 fields: Optional[List[BitField]] = None, doc: str = ""):
        if access not in ACCESS_MODES:
            raise RegisterError(f"access must be one of {ACCESS_MODES}, got {access!r}")
        if width < 1 or width > 64:
            raise RegisterError(f"register width must be in [1, 64], got {width}")
        self.name = name
        self.address = address
        self.width = width
        self.access = access
        self.doc = doc
        self.fields: Dict[str, BitField] = {}
        self._reset_value = reset & self._mask()
        self._value = self._reset_value
        for f in fields or []:
            self.add_field(f)
        # recompute reset from fields if any define resets
        if fields:
            word = reset
            for f in fields:
                word = f.insert(word, f.reset)
            self._reset_value = word & self._mask()
            self._value = self._reset_value

    def _mask(self) -> int:
        return (1 << self.width) - 1

    def add_field(self, bitfield: BitField) -> None:
        """Register a bit field; fields must not overlap."""
        if bitfield.lsb + bitfield.width > self.width:
            raise RegisterError(
                f"field {bitfield.name!r} does not fit in register {self.name!r}")
        for existing in self.fields.values():
            if existing.mask & bitfield.mask:
                raise RegisterError(
                    f"field {bitfield.name!r} overlaps {existing.name!r} in {self.name!r}")
        if bitfield.name in self.fields:
            raise RegisterError(f"duplicate field {bitfield.name!r} in {self.name!r}")
        self.fields[bitfield.name] = bitfield

    @property
    def value(self) -> int:
        """Current register value (always masked to the register width).

        Forced bits (:meth:`force`) override the stored value on every
        read path until :meth:`release`; writes keep updating the stored
        value underneath, so releasing the force exposes the state the
        hardware and bus writes maintained all along — exactly how a
        stuck-at fault behaves in silicon.
        """
        word = self._value & self._mask()
        if self._force_mask:
            word = (word & ~self._force_mask) | self._force_value
        return word

    def read(self) -> int:
        """Bus read: returns the current value (all access modes are readable)."""
        return self.value

    def write(self, value: int) -> None:
        """Bus write honouring the access mode.

        * ``rw``  — value is stored.
        * ``ro``  — write is ignored (hardware-owned register).
        * ``w1c`` — writing 1 to a bit clears it (interrupt-flag style).

        Per-register write hooks (:meth:`on_write`) fire after any
        non-``ro`` write, including writes arriving through the MCU bus
        bridge, which addresses registers directly.
        """
        value &= self._mask()
        if self.access == "ro":
            return
        if self.access == "w1c":
            self._value &= ~value & self._mask()
        else:
            self._value = value
        for hook in self._write_hooks:
            hook(self.value)

    def hw_write(self, value: int) -> None:
        """Hardware-side write that bypasses access control."""
        self._value = value & self._mask()

    def force(self, mask: int, value: int) -> None:
        """Force the masked bits to ``value`` on every read (stuck-at fault).

        Fault-injection entry point: the forced bits shadow the stored
        value for :meth:`read`/:attr:`value`/:meth:`read_field` across
        all access modes (RO status bits, RW controls, W1C flags) while
        bus and hardware writes keep updating the underlying storage.
        """
        mask &= self._mask()
        self._force_mask = mask
        self._force_value = value & mask

    def release(self) -> None:
        """Remove any forced bits (the stored value shows through again)."""
        self._force_mask = 0
        self._force_value = 0

    @property
    def forced(self) -> bool:
        """Whether any bits are currently forced."""
        return bool(self._force_mask)

    def on_write(self, callback: Callable[[int], None]) -> None:
        """Attach a hook fired after every non-RO bus write (any path)."""
        self._write_hooks = tuple(self._write_hooks) + (callback,)

    def read_field(self, field_name: str) -> int:
        """Read a named bit field (sees forced bits, like any read)."""
        return self._field(field_name).extract(self.value)

    def write_field(self, field_name: str, value: int) -> None:
        """Write a named bit field (honours access mode via :meth:`write`)."""
        word = self._field(field_name).insert(self._value, value)
        if self.access == "ro":
            return
        self._value = word & self._mask()

    def hw_write_field(self, field_name: str, value: int) -> None:
        """Hardware-side field write bypassing access control."""
        self._value = self._field(field_name).insert(self._value, value) & self._mask()

    def reset(self) -> None:
        """Restore the reset value."""
        self._value = self._reset_value

    def _field(self, name: str) -> BitField:
        try:
            return self.fields[name]
        except KeyError:
            raise RegisterError(f"register {self.name!r} has no field {name!r}") from None

    def __repr__(self) -> str:
        return (f"Register({self.name!r}, addr=0x{self.address:04X}, "
                f"value=0x{self.value:0{(self.width + 3) // 4}X})")


class RegisterFile:
    """A collection of registers addressable by name or bus address."""

    def __init__(self, name: str = "regs"):
        self.name = name
        self._by_name: Dict[str, Register] = {}
        self._by_addr: Dict[int, Register] = {}
        self._write_callbacks: Dict[str, List[Callable[[int], None]]] = {}

    def add(self, register: Register) -> Register:
        """Add a register; names and addresses must be unique."""
        if register.name in self._by_name:
            raise RegisterError(f"duplicate register name {register.name!r}")
        if register.address in self._by_addr:
            raise RegisterError(
                f"address 0x{register.address:04X} already used by "
                f"{self._by_addr[register.address].name!r}")
        self._by_name[register.name] = register
        self._by_addr[register.address] = register
        return register

    def define(self, name: str, address: int, **kwargs) -> Register:
        """Create and add a register in one call."""
        return self.add(Register(name, address, **kwargs))

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Register]:
        return iter(sorted(self._by_name.values(), key=lambda r: r.address))

    def __len__(self) -> int:
        return len(self._by_name)

    def register(self, name: str) -> Register:
        """Look up a register by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise RegisterError(f"{self.name!r} has no register named {name!r}") from None

    def at_address(self, address: int) -> Register:
        """Look up a register by bus address."""
        try:
            return self._by_addr[address]
        except KeyError:
            raise RegisterError(
                f"{self.name!r} has no register at address 0x{address:04X}") from None

    # -- bus-style access ---------------------------------------------------

    def read(self, name: str) -> int:
        """Read a register by name."""
        return self.register(name).read()

    def write(self, name: str, value: int) -> None:
        """Write a register by name and fire any write callbacks."""
        reg = self.register(name)
        reg.write(value)
        for callback in self._write_callbacks.get(name, []):
            callback(reg.value)

    def bus_read(self, address: int) -> int:
        """Read a register by bus address."""
        return self.at_address(address).read()

    def bus_write(self, address: int, value: int) -> None:
        """Write a register by bus address and fire callbacks."""
        reg = self.at_address(address)
        reg.write(value)
        for callback in self._write_callbacks.get(reg.name, []):
            callback(reg.value)

    def on_write(self, name: str, callback: Callable[[int], None]) -> None:
        """Register a callback fired after a bus write to ``name``."""
        self.register(name)  # validate
        self._write_callbacks.setdefault(name, []).append(callback)

    def refresh(self, name: str) -> None:
        """Re-fire ``name``'s write callbacks with its current value.

        Used by fault injection: forcing bits of a control register
        (:meth:`Register.force`) changes what reads observe without a
        bus write, so the blocks tuned by this register are re-notified
        to bring their state in line with the (now forced) value.
        """
        reg = self.register(name)
        for callback in self._write_callbacks.get(name, []):
            callback(reg.value)

    def reset(self) -> None:
        """Reset every register to its reset value."""
        for reg in self._by_name.values():
            reg.reset()

    def dump(self) -> Dict[str, int]:
        """Snapshot of every register value keyed by name."""
        return {name: reg.value for name, reg in sorted(self._by_name.items())}

    def address_map(self) -> List[Tuple[int, str, int]]:
        """Sorted ``(address, name, value)`` triples for reports."""
        return [(reg.address, reg.name, reg.value) for reg in self]
