"""repro — Platform-based design for automotive sensor conditioning.

A Python reproduction of the system described in Fanucci et al.,
"Platform Based Design for Automotive Sensor Conditioning" (DATE 2005):
a generic mixed-signal platform (analog front-end, hardwired DSP,
8051-based programmable section) plus the platform-based design flow
used to derive a yaw-rate gyro conditioning ASIC from it.

Subpackages
-----------
``repro.common``    numeric substrate (fixed point, registers, noise, analysis)
``repro.sensors``   MEMS gyro and generic sensing-element models
``repro.afe``       analog front-end building blocks
``repro.dsp``       hardwired digital signal-processing IPs
``repro.mcu``       8051 microcontroller subsystem (ISS, buses, peripherals, JTAG)
``repro.gyro``      gyro conditioning chain (drive loop, sense chain)
``repro.platform``  generic platform, IP portfolio, case-study instance
``repro.engine``    fast co-simulation engines (fused kernel, batched fleet)
``repro.scenarios`` declarative scenario/campaign orchestrator + engine registry
``repro.store``     durable content-addressed result store (hits, audit, quarantine)
``repro.flow``      platform-based design flow (partitioning, DSE, prototyping)
``repro.eval``      metric harness, baselines and datasheet comparisons
"""

__version__ = "1.0.0"

from . import common

__all__ = ["common", "__version__"]
