"""MEMS vibrating-ring yaw-rate gyroscope model.

The case study in the paper conditions a vibrating-ring gyro (references
[7] and [8] of the paper): drive electrodes keep the ring oscillating in
its primary mode at ~15 kHz; rotation about the sensitive axis couples
energy through the Coriolis force into the secondary mode located 45°
away; the secondary vibration amplitude (open loop) or the force needed
to null it (closed loop) is proportional to the angular rate.

The electrical interface seen by the conditioning platform is:

* two drive inputs (primary drive voltage, secondary control voltage),
  converted to modal forces by the electrode transducer gain;
* two capacitive pick-offs (primary and secondary), converted to
  voltages by the pick-off gain.

The model includes the non-idealities the conditioning chain has to deal
with: finite Q (so the amplitude must be regulated by an AGC), resonance
drift and pick-off gain drift with temperature, quadrature coupling,
zero-rate offset and mechanical (Brownian) rate noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from ..common.exceptions import ConfigurationError
from ..common.noise import BufferedGaussianNoise
from ..common.units import ROOM_TEMPERATURE_C, dps_to_rps
from .resonator import ResonatorMode


@dataclass(frozen=True)
class GyroParameters:
    """Physical and electrical parameters of the vibrating-ring gyro.

    The defaults model the SensorDynamics sensor of the case study: a
    ~15 kHz ring with a high-Q primary mode (slow amplitude envelope,
    which is what makes the 500 ms turn-on time of Table 1) and a
    lower-Q secondary mode split ~120 Hz above the primary.
    """

    #: Primary (drive) mode natural frequency [Hz].
    primary_resonance_hz: float = 15000.0
    #: Secondary (sense) mode natural frequency [Hz].
    secondary_resonance_hz: float = 15120.0
    #: Primary mode quality factor.
    primary_q: float = 4000.0
    #: Secondary mode quality factor.
    secondary_q: float = 1500.0
    #: Drive-electrode transducer gain: modal acceleration per volt [m/s^2/V].
    drive_gain_ms2_per_v: float = 2.0
    #: Control-electrode transducer gain for the secondary mode [m/s^2/V].
    control_gain_ms2_per_v: float = 2.0
    #: Capacitive pick-off gain: volts per metre of modal displacement [V/m].
    pickoff_gain_v_per_m: float = 5.0e5
    #: Angular gain (Bryan factor) of the ring structure (dimensionless).
    angular_gain: float = 0.8
    #: Mechanical (Brownian) rate-equivalent noise density [°/s/√Hz].
    rate_noise_density_dps_rthz: float = 0.05
    #: Quadrature error expressed as equivalent rate [°/s].
    quadrature_error_dps: float = 30.0
    #: Zero-rate offset expressed as equivalent rate [°/s].
    offset_rate_dps: float = 1.0
    #: Primary/secondary resonance temperature coefficient [ppm/°C].
    frequency_tc_ppm_per_c: float = -30.0
    #: Pick-off (and hence sensitivity) temperature coefficient [ppm/°C].
    pickoff_tc_ppm_per_c: float = -150.0
    #: Zero-rate offset drift with temperature [°/s per °C].
    offset_tc_dps_per_c: float = 0.02
    #: Q temperature coefficient [ppm/°C] (Q rises as temperature drops).
    q_tc_ppm_per_c: float = -2000.0
    #: RNG seed for the Brownian-noise source (None = non-deterministic).
    noise_seed: Optional[int] = 1234

    def __post_init__(self) -> None:
        if self.primary_resonance_hz <= 0 or self.secondary_resonance_hz <= 0:
            raise ConfigurationError("resonance frequencies must be > 0")
        if self.primary_q <= 0 or self.secondary_q <= 0:
            raise ConfigurationError("quality factors must be > 0")
        if self.pickoff_gain_v_per_m <= 0:
            raise ConfigurationError("pick-off gain must be > 0")
        if self.drive_gain_ms2_per_v <= 0 or self.control_gain_ms2_per_v <= 0:
            raise ConfigurationError("transducer gains must be > 0")
        if self.rate_noise_density_dps_rthz < 0:
            raise ConfigurationError("noise density must be >= 0")

    def with_part_variation(self, rng: np.random.Generator,
                            sensitivity_spread: float = 0.02,
                            frequency_spread: float = 0.005,
                            offset_spread_dps: float = 1.0) -> "GyroParameters":
        """Return a copy with random part-to-part manufacturing variation.

        Used by the Monte-Carlo characterisation that produces the
        min/typ/max columns of the datasheet table.
        """
        return replace(
            self,
            pickoff_gain_v_per_m=self.pickoff_gain_v_per_m
            * (1.0 + rng.normal(0.0, sensitivity_spread)),
            primary_resonance_hz=self.primary_resonance_hz
            * (1.0 + rng.normal(0.0, frequency_spread)),
            secondary_resonance_hz=self.secondary_resonance_hz
            * (1.0 + rng.normal(0.0, frequency_spread)),
            offset_rate_dps=self.offset_rate_dps + rng.normal(0.0, offset_spread_dps),
            noise_seed=int(rng.integers(0, 2 ** 31 - 1)),
        )


class VibratingRingGyro:
    """Time-domain model of the vibrating-ring gyro.

    The model is advanced one simulation sample at a time by
    :meth:`step`, which accepts the two electrode voltages produced by
    the platform's DACs plus the environmental inputs (true rate and
    temperature) and returns the two pick-off voltages sampled by the
    platform's ADCs.
    """

    def __init__(self, params: GyroParameters, sample_rate_hz: float):
        if sample_rate_hz <= 4.0 * params.primary_resonance_hz:
            raise ConfigurationError(
                "sample rate must be at least 4x the primary resonance "
                f"({params.primary_resonance_hz} Hz) to represent the carrier")
        self.params = params
        self.sample_rate_hz = float(sample_rate_hz)
        self._dt = 1.0 / self.sample_rate_hz
        self.primary = ResonatorMode(params.primary_resonance_hz,
                                     params.primary_q, self._dt)
        self.secondary = ResonatorMode(params.secondary_resonance_hz,
                                       params.secondary_q, self._dt)
        # Brownian noise is injected as an equivalent-rate white sequence.
        self._rate_noise_sigma = (params.rate_noise_density_dps_rthz
                                  * np.sqrt(self.sample_rate_hz / 2.0))
        self._noise = BufferedGaussianNoise(self._rate_noise_sigma,
                                            params.noise_seed)
        self._temperature_c = ROOM_TEMPERATURE_C
        self._last_temp_applied = None
        self._apply_temperature(ROOM_TEMPERATURE_C)

    # -- temperature handling -------------------------------------------------

    @property
    def temperature_c(self) -> float:
        """Current die temperature in °C."""
        return self._temperature_c

    def _apply_temperature(self, temperature_c: float) -> None:
        """Retune resonators and gains for a new temperature."""
        if (self._last_temp_applied is not None
                and abs(temperature_c - self._last_temp_applied) < 0.05):
            self._temperature_c = temperature_c
            return
        p = self.params
        dt_c = temperature_c - ROOM_TEMPERATURE_C
        freq_scale = 1.0 + p.frequency_tc_ppm_per_c * 1e-6 * dt_c
        q_scale = max(0.1, 1.0 + p.q_tc_ppm_per_c * 1e-6 * dt_c)
        self.primary.retune(p.primary_resonance_hz * freq_scale,
                            p.primary_q * q_scale)
        self.secondary.retune(p.secondary_resonance_hz * freq_scale,
                              p.secondary_q * q_scale)
        self._pickoff_gain = (p.pickoff_gain_v_per_m
                              * (1.0 + p.pickoff_tc_ppm_per_c * 1e-6 * dt_c))
        self._offset_rate_dps = p.offset_rate_dps + p.offset_tc_dps_per_c * dt_c
        self._temperature_c = temperature_c
        self._last_temp_applied = temperature_c

    # -- simulation -------------------------------------------------------------

    def _next_noise(self) -> float:
        """Draw the next Brownian-noise sample from a pre-generated block."""
        return self._noise.next()

    def reset(self) -> None:
        """Return the mechanical element to rest and re-seed the noise."""
        self.primary.reset()
        self.secondary.reset()
        self._noise = BufferedGaussianNoise(self._rate_noise_sigma,
                                            self.params.noise_seed)
        self._last_temp_applied = None
        self._apply_temperature(ROOM_TEMPERATURE_C)

    def step(self, drive_voltage: float, control_voltage: float,
             rate_dps: float, temperature_c: float = ROOM_TEMPERATURE_C
             ) -> Tuple[float, float]:
        """Advance the sensor by one sample.

        Args:
            drive_voltage: primary drive electrode voltage [V].
            control_voltage: secondary control electrode voltage [V]
                (force-rebalance input; 0 for open-loop operation).
            rate_dps: true yaw rate applied to the package [°/s].
            temperature_c: die temperature [°C].

        Returns:
            ``(primary_pickoff_v, secondary_pickoff_v)`` — the two
            voltages presented to the analog front-end.
        """
        p = self.params
        self._apply_temperature(temperature_c)

        # primary (drive) mode
        drive_accel = p.drive_gain_ms2_per_v * drive_voltage
        x = self.primary.step(drive_accel)
        x_vel = self.primary.velocity

        # Coriolis coupling into the secondary mode.  The offset,
        # temperature drift, quadrature error and Brownian noise are all
        # expressed as equivalent rates so they propagate through the
        # same transfer function as the true rate.
        noise_dps = self._next_noise() if self._rate_noise_sigma else 0.0
        effective_rate_rps = dps_to_rps(rate_dps + self._offset_rate_dps + noise_dps)
        coriolis_accel = -2.0 * p.angular_gain * effective_rate_rps * x_vel
        # quadrature error couples primary *displacement* into the secondary
        quad_accel = (dps_to_rps(p.quadrature_error_dps) * 2.0 * p.angular_gain
                      * x * 2.0 * np.pi * self.primary.resonance_hz)
        control_accel = p.control_gain_ms2_per_v * control_voltage
        y = self.secondary.step(coriolis_accel + quad_accel + control_accel)

        primary_pickoff = self._pickoff_gain * x
        secondary_pickoff = self._pickoff_gain * y
        return primary_pickoff, secondary_pickoff

    # -- analysis helpers ---------------------------------------------------

    def mechanical_sensitivity_v_per_dps(self, drive_displacement_m: float) -> float:
        """Small-signal secondary pick-off voltage per °/s of rate.

        Evaluates the steady-state secondary response to the Coriolis
        acceleration produced by a 1 °/s rate with the primary vibrating
        at ``drive_displacement_m`` amplitude, at the current temperature.
        """
        p = self.params
        x_vel_amp = (2.0 * np.pi * self.primary.resonance_hz * drive_displacement_m)
        coriolis_amp = 2.0 * p.angular_gain * dps_to_rps(1.0) * x_vel_amp
        y_amp = self.secondary.steady_state_amplitude(
            coriolis_amp, drive_freq_hz=self.primary.resonance_hz)
        return self._pickoff_gain * y_amp

    def turn_on_time_estimate_s(self) -> float:
        """Rough turn-on estimate: ~5 primary envelope time constants."""
        return 5.0 * self.primary.envelope_time_constant()
