"""Sensor models: MEMS vibrating-ring gyro and generic sensing elements."""

from .environment import (
    ConstantProfile,
    Environment,
    PiecewiseProfile,
    Profile,
    RampProfile,
    SineProfile,
    StepProfile,
)
from .resonator import ResonatorMode
from .gyro import GyroParameters, VibratingRingGyro
from .elements import (
    CapacitivePressureSensor,
    GenericSensingElement,
    InductivePositionSensor,
    ResistiveBridgeSensor,
    SensingElementSpec,
)

__all__ = [
    "ConstantProfile",
    "Environment",
    "PiecewiseProfile",
    "Profile",
    "RampProfile",
    "SineProfile",
    "StepProfile",
    "ResonatorMode",
    "GyroParameters",
    "VibratingRingGyro",
    "CapacitivePressureSensor",
    "GenericSensingElement",
    "InductivePositionSensor",
    "ResistiveBridgeSensor",
    "SensingElementSpec",
]
