"""Generic automotive sensing elements.

The whole point of the generic platform (Section 3 of the paper) is that
the same analog/digital resource set conditions *many* classes of
sensors — capacitive, resistive, inductive — by picking the right analog
cells from the IP portfolio and reprogramming the digital chain.  These
simple behavioural elements let the platform-reuse examples and the
design-space-exploration benches exercise that claim with sensors other
than the gyro.

Each element maps a physical quantity to an electrical output (voltage,
capacitance-derived voltage, or impedance-derived voltage) with gain and
offset temperature drift plus white output noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..common.exceptions import ConfigurationError
from ..common.units import ROOM_TEMPERATURE_C


@dataclass
class SensingElementSpec:
    """Common specification shared by the generic sensing elements.

    Attributes:
        full_scale: maximum physical input magnitude (element units).
        sensitivity: electrical output per physical unit at 25 °C [V/unit].
        offset_v: electrical offset at 25 °C [V].
        sensitivity_tc_ppm_per_c: sensitivity drift [ppm/°C].
        offset_tc_v_per_c: offset drift [V/°C].
        noise_density_v_rthz: white output-noise density [V/√Hz].
        nonlinearity_fraction: quadratic-term coefficient as a fraction of
            full scale (0 = perfectly linear).
    """

    full_scale: float
    sensitivity: float
    offset_v: float = 0.0
    sensitivity_tc_ppm_per_c: float = -100.0
    offset_tc_v_per_c: float = 1e-4
    noise_density_v_rthz: float = 1e-6
    nonlinearity_fraction: float = 0.001

    def __post_init__(self) -> None:
        if self.full_scale <= 0:
            raise ConfigurationError("full scale must be > 0")
        if self.sensitivity == 0:
            raise ConfigurationError("sensitivity must be non-zero")
        if self.noise_density_v_rthz < 0:
            raise ConfigurationError("noise density must be >= 0")


class GenericSensingElement:
    """Behavioural model of a generic (non-gyro) sensing element."""

    #: Human-readable transduction class, overridden by subclasses.
    transduction = "generic"

    def __init__(self, spec: SensingElementSpec, sample_rate_hz: float,
                 seed: Optional[int] = 0):
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be > 0")
        self.spec = spec
        self.sample_rate_hz = float(sample_rate_hz)
        self._rng = np.random.default_rng(seed)
        self._noise_sigma = (spec.noise_density_v_rthz
                             * np.sqrt(self.sample_rate_hz / 2.0))

    def output_voltage(self, physical_input: float,
                       temperature_c: float = ROOM_TEMPERATURE_C) -> float:
        """Noiseless electrical output for a physical input."""
        s = self.spec
        dt_c = temperature_c - ROOM_TEMPERATURE_C
        sensitivity = s.sensitivity * (1.0 + s.sensitivity_tc_ppm_per_c * 1e-6 * dt_c)
        offset = s.offset_v + s.offset_tc_v_per_c * dt_c
        normalized = physical_input / s.full_scale
        nonlinear_term = s.nonlinearity_fraction * normalized * abs(normalized)
        return offset + sensitivity * (physical_input + nonlinear_term * s.full_scale)

    def step(self, physical_input: float,
             temperature_c: float = ROOM_TEMPERATURE_C) -> float:
        """One noisy output sample for a physical input."""
        noise = self._rng.normal(0.0, self._noise_sigma) if self._noise_sigma else 0.0
        return self.output_voltage(physical_input, temperature_c) + noise

    def ideal_sensitivity(self) -> float:
        """Nominal sensitivity at 25 °C [V/unit]."""
        return self.spec.sensitivity


class CapacitivePressureSensor(GenericSensingElement):
    """Capacitive pressure-sensing element (e.g. MAP sensor).

    Input unit: kPa.  Defaults model a 20–300 kPa manifold pressure
    sensor with a ~4 mV/kPa front-end referred sensitivity.
    """

    transduction = "capacitive"

    def __init__(self, sample_rate_hz: float, seed: Optional[int] = 0,
                 spec: Optional[SensingElementSpec] = None):
        spec = spec or SensingElementSpec(
            full_scale=300.0, sensitivity=4e-3, offset_v=0.2,
            noise_density_v_rthz=2e-6, nonlinearity_fraction=0.002)
        super().__init__(spec, sample_rate_hz, seed)


class ResistiveBridgeSensor(GenericSensingElement):
    """Piezoresistive Wheatstone-bridge element (e.g. acceleration, pressure).

    Input unit: element units (g for an accelerometer).  The bridge output
    is differential and small (mV range) — it needs the platform's
    programmable-gain amplifier.
    """

    transduction = "resistive"

    def __init__(self, sample_rate_hz: float, seed: Optional[int] = 0,
                 spec: Optional[SensingElementSpec] = None):
        spec = spec or SensingElementSpec(
            full_scale=50.0, sensitivity=2e-4, offset_v=1e-3,
            noise_density_v_rthz=5e-7, nonlinearity_fraction=0.005)
        super().__init__(spec, sample_rate_hz, seed)


class InductivePositionSensor(GenericSensingElement):
    """Inductive (LVDT-style) position element.

    Input unit: millimetres of displacement.  The carrier
    modulation/demodulation is handled by the platform's DSP chain, so
    the element model exposes the demodulated envelope directly.
    """

    transduction = "inductive"

    def __init__(self, sample_rate_hz: float, seed: Optional[int] = 0,
                 spec: Optional[SensingElementSpec] = None):
        spec = spec or SensingElementSpec(
            full_scale=10.0, sensitivity=0.05, offset_v=0.0,
            noise_density_v_rthz=1e-6, nonlinearity_fraction=0.003)
        super().__init__(spec, sample_rate_hz, seed)
