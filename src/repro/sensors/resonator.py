"""Second-order resonator mode with exact zero-order-hold discretisation.

A MEMS vibrating-ring gyro mode is a lightly damped harmonic oscillator

    x'' + (w0/Q) x' + w0^2 x = a(t)

driven by an acceleration input ``a`` (drive force, Coriolis force or
control/rebalance force, all normalised by the modal mass).  The mode is
simulated sample by sample with the *exact* discrete-time update for a
zero-order-hold input, so the model stays accurate and unconditionally
stable even when the simulation rate is only a handful of samples per
resonance cycle (the co-simulation typically runs at 8–32 samples per
15 kHz cycle).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from ..common.exceptions import ConfigurationError


class ResonatorMode:
    """One vibrational mode of the sensing element.

    Attributes:
        resonance_hz: natural frequency of the mode.
        quality_factor: mechanical Q.
    """

    def __init__(self, resonance_hz: float, quality_factor: float, dt: float):
        if resonance_hz <= 0:
            raise ConfigurationError("resonance frequency must be > 0")
        if quality_factor <= 0:
            raise ConfigurationError("quality factor must be > 0")
        if dt <= 0:
            raise ConfigurationError("sample period must be > 0")
        self._dt = dt
        self._displacement = 0.0
        self._velocity = 0.0
        self._resonance_hz = resonance_hz
        self._quality_factor = quality_factor
        self._recompute()

    # -- configuration ------------------------------------------------------

    @property
    def resonance_hz(self) -> float:
        """Current natural frequency in hertz."""
        return self._resonance_hz

    @property
    def quality_factor(self) -> float:
        """Current mechanical quality factor."""
        return self._quality_factor

    @property
    def dt(self) -> float:
        """Simulation sample period in seconds."""
        return self._dt

    def retune(self, resonance_hz: float = None, quality_factor: float = None) -> None:
        """Change the resonance and/or Q (e.g. due to temperature drift).

        The discrete-time propagator is recomputed only when a parameter
        actually changes, so calling this every sample with an unchanged
        temperature costs almost nothing.
        """
        new_f = self._resonance_hz if resonance_hz is None else resonance_hz
        new_q = self._quality_factor if quality_factor is None else quality_factor
        if new_f <= 0 or new_q <= 0:
            raise ConfigurationError("resonance and Q must remain > 0")
        if new_f == self._resonance_hz and new_q == self._quality_factor:
            return
        self._resonance_hz = new_f
        self._quality_factor = new_q
        self._recompute()

    def _recompute(self) -> None:
        w0 = 2.0 * np.pi * self._resonance_hz
        a_matrix = np.array([[0.0, 1.0],
                             [-w0 * w0, -w0 / self._quality_factor]])
        b_vector = np.array([[0.0], [1.0]])
        ad = expm(a_matrix * self._dt)
        # ZOH input matrix: A^-1 (Ad - I) B  (A is invertible since w0 > 0)
        bd = np.linalg.solve(a_matrix, (ad - np.eye(2)) @ b_vector)
        # store as plain floats for a fast inner loop
        self._a11, self._a12 = float(ad[0, 0]), float(ad[0, 1])
        self._a21, self._a22 = float(ad[1, 0]), float(ad[1, 1])
        self._b1, self._b2 = float(bd[0, 0]), float(bd[1, 0])

    # -- state --------------------------------------------------------------

    @property
    def displacement(self) -> float:
        """Current modal displacement [m]."""
        return self._displacement

    @property
    def velocity(self) -> float:
        """Current modal velocity [m/s]."""
        return self._velocity

    def reset(self) -> None:
        """Return the mode to rest."""
        self._displacement = 0.0
        self._velocity = 0.0

    def step(self, acceleration: float) -> float:
        """Advance one sample with a constant acceleration input.

        Args:
            acceleration: modal force divided by modal mass [m/s^2], held
                constant over the sample (zero-order hold).

        Returns:
            The new modal displacement [m].
        """
        x, v = self._displacement, self._velocity
        self._displacement = self._a11 * x + self._a12 * v + self._b1 * acceleration
        self._velocity = self._a21 * x + self._a22 * v + self._b2 * acceleration
        return self._displacement

    # -- analysis helpers ----------------------------------------------------

    def steady_state_amplitude(self, drive_amplitude: float,
                               drive_freq_hz: float = None) -> float:
        """Steady-state displacement amplitude for a sinusoidal drive.

        Args:
            drive_amplitude: acceleration amplitude [m/s^2].
            drive_freq_hz: drive frequency; defaults to the resonance.
        """
        w0 = 2.0 * np.pi * self._resonance_hz
        w = w0 if drive_freq_hz is None else 2.0 * np.pi * drive_freq_hz
        denom = np.sqrt((w0 ** 2 - w ** 2) ** 2 + (w0 * w / self._quality_factor) ** 2)
        return float(drive_amplitude / denom)

    def envelope_time_constant(self) -> float:
        """Exponential amplitude build-up/decay time constant ``2Q/w0`` [s]."""
        return 2.0 * self._quality_factor / (2.0 * np.pi * self._resonance_hz)

    def half_power_bandwidth_hz(self) -> float:
        """-3 dB mechanical bandwidth ``f0/Q`` of the mode."""
        return self._resonance_hz / self._quality_factor
