"""Environment stimuli: temperature profiles and angular-rate trajectories.

The datasheet-style characterisation in the paper (Table 1) sweeps two
environmental inputs: the yaw rate applied to the sensor and the ambient
temperature (-40 °C to +85 °C).  Profiles are callables of time so that
the same co-simulation loop can run a rate step, a rate sweep, a
temperature ramp or any combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..common.exceptions import ConfigurationError
from ..common.units import ROOM_TEMPERATURE_C


class Profile:
    """A scalar function of time with vectorised evaluation."""

    def value(self, t: float) -> float:
        """Value of the profile at time ``t`` (seconds)."""
        raise NotImplementedError

    def sample(self, t: np.ndarray) -> np.ndarray:
        """Vectorised evaluation over an array of time stamps."""
        t = np.asarray(t, dtype=np.float64)
        return np.array([self.value(float(ti)) for ti in t])

    def __call__(self, t: float) -> float:
        return self.value(t)


@dataclass
class ConstantProfile(Profile):
    """A constant value for all time."""

    level: float = 0.0

    def value(self, t: float) -> float:
        return self.level

    def sample(self, t: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(t).shape, self.level, dtype=np.float64)


@dataclass
class StepProfile(Profile):
    """A step from ``before`` to ``after`` at ``step_time``."""

    before: float = 0.0
    after: float = 1.0
    step_time: float = 0.0

    def value(self, t: float) -> float:
        return self.after if t >= self.step_time else self.before

    def sample(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return np.where(t >= self.step_time, self.after, self.before)


@dataclass
class RampProfile(Profile):
    """Linear ramp from ``start`` to ``stop`` between ``t0`` and ``t1``."""

    start: float = 0.0
    stop: float = 1.0
    t0: float = 0.0
    t1: float = 1.0

    def __post_init__(self) -> None:
        if self.t1 <= self.t0:
            raise ConfigurationError("ramp end time must be after start time")

    def value(self, t: float) -> float:
        if t <= self.t0:
            return self.start
        if t >= self.t1:
            return self.stop
        frac = (t - self.t0) / (self.t1 - self.t0)
        return self.start + frac * (self.stop - self.start)

    def sample(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        frac = np.clip((t - self.t0) / (self.t1 - self.t0), 0.0, 1.0)
        ramp = self.start + frac * (self.stop - self.start)
        # pin the plateaus to the exact endpoint values so the vectorised
        # evaluation agrees bit-for-bit with the scalar value() branches
        return np.where(t <= self.t0, self.start,
                        np.where(t >= self.t1, self.stop, ramp))


@dataclass
class SineProfile(Profile):
    """Sinusoidal stimulus — used for bandwidth measurements.

    ``value(t) = offset + amplitude * sin(2*pi*frequency_hz*t + phase)``
    """

    amplitude: float = 1.0
    frequency_hz: float = 1.0
    offset: float = 0.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency_hz < 0:
            raise ConfigurationError("frequency must be >= 0")

    def value(self, t: float) -> float:
        return self.offset + self.amplitude * np.sin(
            2.0 * np.pi * self.frequency_hz * t + self.phase)

    def sample(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return self.offset + self.amplitude * np.sin(
            2.0 * np.pi * self.frequency_hz * t + self.phase)


@dataclass
class PiecewiseProfile(Profile):
    """Piecewise-constant profile defined by ``(time, value)`` breakpoints.

    The value holds from each breakpoint until the next one.  Before the
    first breakpoint the first value applies.
    """

    breakpoints: Sequence[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.breakpoints:
            raise ConfigurationError("piecewise profile needs at least one breakpoint")
        times = [bp[0] for bp in self.breakpoints]
        if any(t1 <= t0 for t0, t1 in zip(times, times[1:])):
            raise ConfigurationError("breakpoint times must be strictly increasing")

    def value(self, t: float) -> float:
        current = self.breakpoints[0][1]
        for bp_time, bp_value in self.breakpoints:
            if t >= bp_time:
                current = bp_value
            else:
                break
        return current

    def sample(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        times = np.array([bp[0] for bp in self.breakpoints])
        values = np.array([bp[1] for bp in self.breakpoints])
        idx = np.searchsorted(times, t, side="right") - 1
        # before the first breakpoint the first value applies
        return values[np.maximum(idx, 0)]


@dataclass
class TimeShiftedProfile(Profile):
    """A profile evaluated with a fixed time offset: ``base(t + offset_s)``.

    Scenario campaigns slice one logical run into several engine calls
    (early-stop checks, fleet chunking); each slice sees time relative
    to its own start, so the remainder of a profile is exposed by
    shifting its time axis.  Constant profiles never need shifting (the
    campaign layer skips the wrapper), so replayed slices stay
    bit-identical to one continuous run for piecewise-constant stimuli.
    """

    base: Profile = field(default_factory=ConstantProfile)
    offset_s: float = 0.0

    def value(self, t: float) -> float:
        return self.base.value(t + self.offset_s)

    def sample(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return self.base.sample(t + self.offset_s)


def shift_profile(profile: Profile, offset_s: float) -> Profile:
    """Return ``profile`` advanced by ``offset_s`` seconds.

    Constant profiles are returned unchanged and nested shifts are
    collapsed into a single offset.
    """
    if offset_s == 0.0 or isinstance(profile, ConstantProfile):
        return profile
    if isinstance(profile, TimeShiftedProfile):
        return TimeShiftedProfile(profile.base, profile.offset_s + offset_s)
    return TimeShiftedProfile(profile, offset_s)


@dataclass
class Environment:
    """Combined angular-rate and temperature stimulus.

    Attributes:
        rate_dps: yaw-rate profile in degrees per second.
        temperature_c: ambient-temperature profile in degrees Celsius.
    """

    rate_dps: Profile = field(default_factory=ConstantProfile)
    temperature_c: Profile = field(
        default_factory=lambda: ConstantProfile(ROOM_TEMPERATURE_C))

    def at(self, t: float) -> Tuple[float, float]:
        """Return ``(rate_dps, temperature_c)`` at time ``t``."""
        return self.rate_dps.value(t), self.temperature_c.value(t)

    def sample(self, t: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised evaluation: ``(rate_dps, temperature_c)`` arrays.

        Evaluates both profiles over an array of time stamps in one call.
        The engine's fused/batched simulation paths use this instead of
        per-sample :meth:`Profile.value` calls; every built-in profile
        guarantees ``sample(t)[i] == value(t[i])`` bit-for-bit.
        """
        t = np.asarray(t, dtype=np.float64)
        return (np.asarray(self.rate_dps.sample(t), dtype=np.float64),
                np.asarray(self.temperature_c.sample(t), dtype=np.float64))

    def shifted(self, offset_s: float) -> "Environment":
        """This environment with its time axis advanced by ``offset_s``."""
        if offset_s < 0:
            raise ConfigurationError("time shift must be >= 0")
        return Environment(rate_dps=shift_profile(self.rate_dps, offset_s),
                           temperature_c=shift_profile(self.temperature_c,
                                                       offset_s))

    @classmethod
    def still(cls, temperature_c: float = ROOM_TEMPERATURE_C) -> "Environment":
        """Sensor at rest at a fixed temperature (zero-rate measurement)."""
        return cls(rate_dps=ConstantProfile(0.0),
                   temperature_c=ConstantProfile(temperature_c))

    @classmethod
    def constant_rate(cls, rate_dps: float,
                      temperature_c: float = ROOM_TEMPERATURE_C) -> "Environment":
        """Constant applied yaw rate at a fixed temperature."""
        return cls(rate_dps=ConstantProfile(rate_dps),
                   temperature_c=ConstantProfile(temperature_c))

    @classmethod
    def rate_step(cls, rate_dps: float, step_time: float,
                  temperature_c: float = ROOM_TEMPERATURE_C) -> "Environment":
        """Yaw-rate step at ``step_time`` — used for response-time tests."""
        return cls(rate_dps=StepProfile(0.0, rate_dps, step_time),
                   temperature_c=ConstantProfile(temperature_c))

    @classmethod
    def sinusoidal_rate(cls, amplitude_dps: float, frequency_hz: float,
                        temperature_c: float = ROOM_TEMPERATURE_C) -> "Environment":
        """Sinusoidal yaw rate — used for bandwidth measurement."""
        return cls(rate_dps=SineProfile(amplitude_dps, frequency_hz),
                   temperature_c=ConstantProfile(temperature_c))
