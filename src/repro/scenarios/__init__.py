"""Declarative scenario / campaign subsystem.

Every run loop in the codebase — chunked start-up, factory calibration,
temperature calibration, datasheet characterisation, simulation-backed
DSE, the examples and the benchmarks — is expressed as
:class:`Scenario` objects executed by a :class:`Campaign`, which packs
lanes into the batched fleet engine (or replays them sequentially on
the scalar engines) with identical, bit-exact results.  Two orthogonal
registries pick the run mechanics: *engines* (how a platform is
stepped) and *executors* (where the lanes run — in-process or sharded
across worker processes with a resumable batch manifest).
"""

from .engines import (
    ENGINE_BATCHED,
    ENGINE_FUSED,
    ENGINE_REFERENCE,
    EngineSpec,
    engine_names,
    get_engine,
    register_engine,
    validate_engine,
)
from .scenario import Scenario, ScenarioOutcome
from .campaign import Campaign, CampaignResult, LaneOutcome
from .executor import (
    EXECUTOR_LOCAL,
    EXECUTOR_SHARDED,
    ExecutorSpec,
    executor_names,
    get_executor,
    register_executor,
    validate_executor,
)
from .manifest import (
    CampaignManifest,
    ManifestCorruptionError,
    ShardRecord,
)
from .library import (
    NoiseDensity,
    RawRateChannel,
    RunningAtEnd,
    SineResponseGain,
    TraceTailMean,
    TraceTailStd,
    TurnOnTime,
    bandwidth_probe_scenario,
    design_validation_scenarios,
    fault_matrix_scenarios,
    fault_scenario,
    noise_density_from_record,
    noise_floor_scenario,
    rate_table_scenarios,
    settled_output_scenario,
    startup_complete,
    startup_scenario,
    tail_mean,
)

__all__ = [
    "ENGINE_BATCHED",
    "ENGINE_FUSED",
    "ENGINE_REFERENCE",
    "EngineSpec",
    "engine_names",
    "get_engine",
    "register_engine",
    "validate_engine",
    "EXECUTOR_LOCAL",
    "EXECUTOR_SHARDED",
    "ExecutorSpec",
    "executor_names",
    "get_executor",
    "register_executor",
    "validate_executor",
    "CampaignManifest",
    "ManifestCorruptionError",
    "ShardRecord",
    "Scenario",
    "ScenarioOutcome",
    "Campaign",
    "CampaignResult",
    "LaneOutcome",
    "NoiseDensity",
    "RawRateChannel",
    "RunningAtEnd",
    "SineResponseGain",
    "TraceTailMean",
    "TraceTailStd",
    "TurnOnTime",
    "bandwidth_probe_scenario",
    "design_validation_scenarios",
    "fault_matrix_scenarios",
    "fault_scenario",
    "noise_density_from_record",
    "noise_floor_scenario",
    "rate_table_scenarios",
    "settled_output_scenario",
    "startup_complete",
    "startup_scenario",
    "tail_mean",
]
