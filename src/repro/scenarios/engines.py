"""Registry of the interchangeable co-simulation engines.

One place knows which execution paths exist and what each is for; the
platform configuration, ``GyroPlatform.run`` and the campaign runner all
resolve engine names here instead of keeping their own string checks.

* ``"reference"`` — the object-oriented per-sample loop; the behavioural
  ground truth.  Use it when debugging a single block.
* ``"fused"`` — the flattened scalar kernel; bit-identical, several
  times faster.  The right default for any single-platform run.
* ``"batched"`` — the NumPy lockstep fleet.  It has no scalar runner:
  campaigns (or :class:`repro.engine.FleetSimulator` directly) pack
  scenarios into its lanes.  One lockstep pass costs several fused
  samples, so it only pays off with enough concurrent lanes (roughly
  B >= 12 on the benchmark machine, see ``BENCH_engine.json``); below
  that, running scenarios sequentially on the fused kernel is faster.
* ``"compiled"`` — a kernel *generated* for the platform's structure
  (quantisers inlined, biquads unrolled, dead branches dropped) and
  JIT-compiled with numba when it is installed, falling back to a plain
  ``exec``-compiled Python kernel otherwise.  Bit-identical to the
  reference chain on both backends.  It also exposes a fleet entry
  point: lanes run sequentially through their specialised kernels, so
  compiled fleets may be structurally heterogeneous and retire lanes
  early for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..common.exceptions import ConfigurationError

ENGINE_REFERENCE = "reference"
ENGINE_FUSED = "fused"
ENGINE_BATCHED = "batched"
ENGINE_COMPILED = "compiled"


@dataclass(frozen=True)
class EngineSpec:
    """One registered co-simulation engine.

    Attributes:
        name: registry key (the value of ``GyroPlatformConfig.engine``).
        batched: whether the engine steps a whole fleet per pass; such
            engines have no scalar runner and are driven through the
            campaign layer / :class:`~repro.engine.batch.FleetSimulator`.
        description: one-line summary for error messages and reports.
        runner: scalar entry point
            ``runner(platform, environment, duration_s, record_waveforms)``
            returning a :class:`~repro.platform.result.GyroSimulationResult`.
        fleet_runner: optional fleet entry point
            ``fleet_runner(platforms, environments, durations_s,
            record_waveforms)`` returning one result per lane; engines
            that provide it can step many lanes per call (lockstep or
            specialised-kernel), and the campaign chunker drives them
            through :meth:`run_fleet` instead of per-lane :meth:`run`.
    """

    name: str
    batched: bool
    description: str
    runner: Optional[Callable] = None
    fleet_runner: Optional[Callable] = None

    def run(self, platform, environment, duration_s: float,
            record_waveforms: bool = False):
        """Run one platform through this engine's scalar entry point."""
        if self.runner is None:
            raise ConfigurationError(
                f"engine {self.name!r} has no scalar runner; drive it "
                "through a Campaign or a FleetSimulator")
        return self.runner(platform, environment, duration_s,
                           record_waveforms)

    def run_fleet(self, platforms, environments, durations_s,
                  record_waveforms: bool = False):
        """Run a fleet of platforms through this engine's fleet entry point."""
        if self.fleet_runner is None:
            raise ConfigurationError(
                f"engine {self.name!r} has no fleet runner; run its lanes "
                "one at a time through run()")
        return self.fleet_runner(platforms, environments, durations_s,
                                 record_waveforms)


def _run_reference(platform, environment, duration_s: float,
                   record_waveforms: bool = False):
    return platform._run_reference(environment, duration_s, record_waveforms)


def _run_fused(platform, environment, duration_s: float,
               record_waveforms: bool = False):
    from ..engine.fused import run_fused
    return run_fused(platform, environment, duration_s, record_waveforms)


def _run_fleet_batched(platforms, environments, durations_s,
                       record_waveforms: bool = False):
    from ..engine.batch import FleetSimulator
    return FleetSimulator(list(platforms)).run(
        environments, durations_s, record_waveforms=record_waveforms)


def _run_compiled(platform, environment, duration_s: float,
                  record_waveforms: bool = False):
    from ..engine.compiled import run_compiled
    return run_compiled(platform, environment, duration_s, record_waveforms)


def _run_compiled_fleet(platforms, environments, durations_s,
                        record_waveforms: bool = False):
    from ..engine.compiled import run_compiled_fleet
    return run_compiled_fleet(platforms, environments, durations_s,
                              record_waveforms)


_REGISTRY: Dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> None:
    """Register an engine (rejects duplicate names)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"engine {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


register_engine(EngineSpec(
    ENGINE_REFERENCE, batched=False,
    description="object-oriented per-sample loop (behavioural ground truth)",
    runner=_run_reference))
register_engine(EngineSpec(
    ENGINE_FUSED, batched=False,
    description="flattened scalar kernel (fast single-platform default)",
    runner=_run_fused))
register_engine(EngineSpec(
    ENGINE_BATCHED, batched=True,
    description="NumPy lockstep fleet (amortises the interpreter over "
                "B concurrent lanes)",
    fleet_runner=_run_fleet_batched))
register_engine(EngineSpec(
    ENGINE_COMPILED, batched=False,
    description="generated specialised kernel (numba JIT when installed, "
                "exec-compiled Python fallback otherwise)",
    runner=_run_compiled, fleet_runner=_run_compiled_fleet))


def engine_names(scalar_only: bool = False) -> Tuple[str, ...]:
    """Names of the registered engines (optionally scalar ones only)."""
    return tuple(name for name, spec in _REGISTRY.items()
                 if not (scalar_only and spec.batched))


def get_engine(name: str, scalar_only: bool = False) -> EngineSpec:
    """Resolve an engine name, raising :class:`ConfigurationError` on miss.

    Args:
        name: registry key to look up.
        scalar_only: additionally reject batch-only engines — used by
            the single-platform entry points (``GyroPlatform.run`` and
            the platform configuration default).
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown engine {name!r}; available engines: "
            f"{', '.join(sorted(_REGISTRY))}")
    if scalar_only and spec.batched:
        raise ConfigurationError(
            f"engine {name!r} steps whole fleets and cannot drive a single "
            f"run; pick one of: {', '.join(sorted(engine_names(True)))}")
    return spec


def validate_engine(name: str, scalar_only: bool = False) -> str:
    """Validate an engine name and return it unchanged."""
    get_engine(name, scalar_only=scalar_only)
    return name
