"""Reusable scenario library for the standard platform run loops.

Every run loop the codebase used to hand-roll — chunked start-up,
settled rate-table points, zero-rate noise records, sinusoidal
bandwidth probes and the DSE validation trio — is expressed here as a
named :class:`~repro.scenarios.scenario.Scenario` builder, so the
platform calibration procedures, the characterisation harness, the
baseline-device comparison and the simulation-backed DSE all replay the
*same* campaign definitions instead of private loops.

The metric extractors are small frozen-dataclass callables rather than
closures, so every library scenario **pickles**: the sharded campaign
executor ships lane programs to worker processes by pickling them, and
the manifest layer digests them for resume verification.  User-defined
scenarios may still use lambdas — they just stay restricted to the
in-process ``"local"`` executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..common.noise import band_average_density
from ..common.units import ROOM_TEMPERATURE_C
from ..sensors.environment import Environment
from .scenario import Scenario


def tail_mean(record: np.ndarray, fraction: float) -> float:
    """Mean of the last ``fraction`` of a record (the settled tail)."""
    record = np.asarray(record, dtype=np.float64)
    start = int(record.size * (1.0 - fraction))
    return float(np.mean(record[start:]))


def startup_complete(platform) -> bool:
    """Stop condition: the start-up sequencer reports RUNNING."""
    return platform.conditioner.running


def noise_density_from_record(record: np.ndarray, sample_rate_hz: float,
                              band_hz: Tuple[float, float],
                              skip_fraction: float = 0.2) -> float:
    """Band-averaged ASD of a zero-rate record, transient skipped."""
    record = np.asarray(record, dtype=np.float64)
    record = record[int(record.size * skip_fraction):]
    return band_average_density(record, sample_rate_hz, band_hz)


# ---------------------------------------------------------------------------
# Picklable metric extractors
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceTailMean:
    """Extractor: settled-tail mean of one recorded trace."""

    trace: str = "rate_output_dps"
    fraction: float = 0.4

    def __call__(self, platform, result) -> float:
        return tail_mean(getattr(result, self.trace), self.fraction)


@dataclass(frozen=True)
class TraceTailStd:
    """Extractor: standard deviation over the settled tail of a trace."""

    trace: str = "rate_output_dps"
    fraction: float = 0.6

    def __call__(self, platform, result) -> float:
        record = getattr(result, self.trace)
        return float(np.std(record[result.settled_slice(self.fraction)]))


@dataclass(frozen=True)
class RawRateChannel:
    """Extractor: uncompensated sense-channel value from the chain state.

    The channel is heavily low-pass filtered, so the instantaneous value
    at scenario end represents the settled mean — exactly what
    :meth:`GyroPlatform.measure_settled_output` reads.
    """

    def __call__(self, platform, result) -> float:
        return platform.conditioner.sense_chain.rate_channel


@dataclass(frozen=True)
class TurnOnTime:
    """Extractor: measured turn-on time (None if start-up incomplete)."""

    def __call__(self, platform, result):
        return result.turn_on_time_s


@dataclass(frozen=True)
class RunningAtEnd:
    """Extractor: whether the start-up sequencer reported RUNNING at end."""

    def __call__(self, platform, result) -> bool:
        return bool(result.running[-1])


@dataclass(frozen=True)
class NoiseDensity:
    """Extractor: in-band rate-noise density of a zero-rate record."""

    band_hz: Tuple[float, float] = (2.0, 20.0)
    skip_fraction: float = 0.2

    def __call__(self, platform, result) -> float:
        return noise_density_from_record(result.rate_output_dps,
                                         result.sample_rate_hz,
                                         tuple(self.band_hz),
                                         self.skip_fraction)


@dataclass(frozen=True)
class SineResponseGain:
    """Extractor: output amplitude gain of a sinusoidal rate probe."""

    amplitude_dps: float = 1.0
    fraction: float = 0.6

    def __call__(self, platform, result) -> float:
        response = result.rate_output_dps[result.settled_slice(self.fraction)]
        return float(np.sqrt(2.0) * np.std(response)) / self.amplitude_dps


# ---------------------------------------------------------------------------
# Scenario builders
# ---------------------------------------------------------------------------

def startup_scenario(temperature_c: float = ROOM_TEMPERATURE_C,
                     max_duration_s: float = 1.5,
                     chunk_s: float = 0.1) -> Scenario:
    """Power-cycle and run until start-up completes (chunked early stop).

    Exactly the loop :meth:`GyroPlatform.start` has always run: the
    simulation proceeds in ``chunk_s`` slices and stops at the first
    chunk boundary where the sequencer reports RUNNING, so a healthy
    part does not pay for the full watchdog window; a part that never
    starts raises :class:`SimulationError`.
    """
    return Scenario(
        name=f"startup@{temperature_c:g}C",
        environment=Environment.still(temperature_c),
        duration_s=max_duration_s,
        reset=True,
        stop=startup_complete,
        stop_check_s=chunk_s,
        require_stop=True,
        timeout_message=("conditioning chain failed to complete start-up "
                         f"within {max_duration_s} s"),
        extractors={
            "turn_on_time_s": TurnOnTime(),
        })


def settled_output_scenario(rate_dps: float,
                            temperature_c: float = ROOM_TEMPERATURE_C,
                            settle_s: float = 0.2,
                            settle_fraction: float = 0.4,
                            reset: bool = False,
                            name: str = None) -> Scenario:
    """Constant applied rate, measured over the settled tail.

    Extractors mirror :meth:`GyroPlatform.measure_settled_output`:
    ``raw_channel`` is the uncompensated sense-channel value read from
    the chain state (heavily low-pass filtered, so the instantaneous
    value represents the settled mean), ``rate_output_dps`` /
    ``rate_output_v`` are tail means of the recorded outputs.
    """
    return Scenario(
        name=name or f"settled[{rate_dps:+g}dps@{temperature_c:g}C]",
        environment=Environment.constant_rate(rate_dps, temperature_c),
        duration_s=settle_s,
        reset=reset,
        extractors={
            "raw_channel": RawRateChannel(),
            "rate_output_dps": TraceTailMean("rate_output_dps",
                                             settle_fraction),
            "rate_output_v": TraceTailMean("rate_output_v", settle_fraction),
        })


def rate_table_scenarios(rates_dps: Sequence[float],
                         temperature_c: float = ROOM_TEMPERATURE_C,
                         settle_s: float = 0.2,
                         settle_fraction: float = 0.4,
                         reset: bool = False) -> List[Scenario]:
    """One settled-output scenario per rate-table point.

    This is the shared definition of a rate-table sweep: factory
    calibration, the datasheet sensitivity measurement and the
    baseline-device comparison all consume it, so every device is
    characterised by the identical campaign (the baselines power-cycle
    between points, ``reset=True``, since they have no start-up state to
    preserve).
    """
    return [settled_output_scenario(float(rate), temperature_c, settle_s,
                                    settle_fraction, reset=reset)
            for rate in rates_dps]


def noise_floor_scenario(temperature_c: float = ROOM_TEMPERATURE_C,
                         duration_s: float = 1.5,
                         band_hz: Tuple[float, float] = (2.0, 20.0),
                         skip_fraction: float = 0.2,
                         reset: bool = False) -> Scenario:
    """Zero-rate record reduced to an in-band rate-noise density.

    The first ``skip_fraction`` of the record is dropped to avoid any
    residual settling transient, as the characterisation harness has
    always done.
    """
    return Scenario(
        name=f"noise-floor@{temperature_c:g}C",
        environment=Environment.still(temperature_c),
        duration_s=duration_s,
        reset=reset,
        extractors={
            "noise_density": NoiseDensity(tuple(band_hz), skip_fraction),
        })


def bandwidth_probe_scenario(frequency_hz: float, amplitude_dps: float,
                             cycles: float = 8.0,
                             min_duration_s: float = 0.2,
                             settle_fraction: float = 0.6) -> Scenario:
    """Sinusoidal rate probe reduced to an output amplitude gain."""
    return Scenario(
        name=f"bandwidth-probe[{frequency_hz:g}Hz]",
        environment=Environment.sinusoidal_rate(amplitude_dps, frequency_hz),
        duration_s=max(cycles / frequency_hz, min_duration_s),
        extractors={"gain": SineResponseGain(amplitude_dps, settle_fraction)})


def design_validation_scenarios(probe_rate_dps: float = 100.0,
                                duration_s: float = 0.7,
                                settle_fraction: float = 0.6
                                ) -> List[Scenario]:
    """The DSE validation trio: at rest and at ±``probe_rate_dps``.

    Each scenario power-cycles its lane and measures the settled tail —
    exactly what the rate table does to a physical part.  The still
    scenario additionally reports whether start-up completed and the
    tail spread (the noise measurement).
    """

    def probe(rate):
        return Scenario(
            name=f"dse-probe[{rate:+g}dps]",
            environment=Environment.constant_rate(rate),
            duration_s=duration_s,
            reset=True,
            extractors={
                "tail_mean_dps": TraceTailMean("rate_output_dps",
                                               settle_fraction),
            })

    still = Scenario(
        name="dse-still",
        environment=Environment.still(),
        duration_s=duration_s,
        reset=True,
        extractors={
            "turn_on_time_s": TurnOnTime(),
            "running_at_end": RunningAtEnd(),
            "tail_mean_dps": TraceTailMean("rate_output_dps",
                                           settle_fraction),
            "tail_std_dps": TraceTailStd("rate_output_dps", settle_fraction),
        })
    return [still, probe(probe_rate_dps), probe(-probe_rate_dps)]


def fault_scenario(fault, rate_dps: float = 80.0,
                   duration_s: float = 0.03,
                   temperature_c: float = ROOM_TEMPERATURE_C,
                   name: str = None,
                   tolerance_dps: float = 10.0) -> Scenario:
    """One fault-injection scenario with the standard resilience metrics.

    The platform holds a constant applied rate while ``fault`` (any
    :mod:`repro.faults` model) is armed over its activation window; the
    extractors reduce the run to the resilience figures of the fault
    campaigns — detection latency, time in saturation, post-fault bias
    shift and a survived/failed verdict.
    """
    # lazy: repro.eval.metrics imports this module at module level
    from ..eval.metrics import (
        DetectionLatency,
        PostFaultBiasShift,
        SurvivedVerdict,
        TimeInSaturation,
    )
    start = float(fault.t_start)
    stop = float(duration_s if fault.t_stop is None else fault.t_stop)
    return Scenario(
        name=name or f"fault[{type(fault).__name__}@{rate_dps:+g}dps]",
        environment=Environment.constant_rate(rate_dps, temperature_c),
        duration_s=duration_s,
        faults=(fault,),
        extractors={
            "detection_latency_s": DetectionLatency(start),
            "time_in_saturation_s": TimeInSaturation(),
            "post_fault_bias_shift_dps": PostFaultBiasShift(start, stop),
            "survived": SurvivedVerdict(start, stop, tolerance_dps),
        })


def fault_matrix_scenarios(faults: Sequence, rate_dps: float = 80.0,
                           duration_s: float = 0.03,
                           temperature_c: float = ROOM_TEMPERATURE_C
                           ) -> List[Scenario]:
    """One :func:`fault_scenario` per fault model (a resilience row)."""
    return [fault_scenario(fault, rate_dps, duration_s, temperature_c,
                           name=f"fault[{type(fault).__name__}#{i}"
                                f"@{rate_dps:+g}dps]")
            for i, fault in enumerate(faults)]
