"""Declarative co-simulation scenarios.

A :class:`Scenario` is a replayable description of one run: the applied
environment, how long to simulate, whether to power-cycle first, an
optional early-stop condition (checked on a fixed grid, the way the
chunked start-up loop has always worked) and named metric extractors
that turn the recorded traces and final platform state into numbers.

Scenarios carry no engine choice and no platform reference — the same
object can be replayed on the reference loop, the fused kernel or a
batched fleet lane, and two replays from the same platform state are
bit-identical.  The :class:`~repro.scenarios.campaign.Campaign` runner
executes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..common.exceptions import ConfigurationError
from ..platform.result import GyroSimulationResult
from ..sensors.environment import Environment

#: Signature of a stop condition: inspects the platform state after a
#: chunk and returns True to end the scenario early.
StopCondition = Callable[[object], bool]

#: Signature of a metric extractor: ``fn(platform, result) -> value``
#: evaluated once when the scenario completes, with the platform in its
#: final state and the concatenated trace record.
MetricExtractor = Callable[[object, GyroSimulationResult], float]


@dataclass
class Scenario:
    """One declarative co-simulation run.

    Attributes:
        name: label used in results, error messages and reports.
        environment: applied rate/temperature stimulus (time relative to
            the scenario start).
        duration_s: how long to simulate — an upper bound when a stop
            condition is set.
        reset: power-cycle the platform before running.
        record_waveforms: record pick-off / drive-word waveforms.
        stop: optional early-stop condition, evaluated on the
            ``stop_check_s`` grid; the scenario ends at the first grid
            point where it returns True.
        stop_check_s: evaluation period of the stop condition (defaults
            to ``duration_s``, i.e. a single check at the end).
        require_stop: raise :class:`SimulationError` if the stop
            condition never fired within ``duration_s``.
        timeout_message: message for that error (a default naming the
            scenario is used when omitted).
        extractors: named metric extractors run on completion.
    """

    name: str
    environment: Environment
    duration_s: float
    reset: bool = False
    record_waveforms: bool = False
    stop: Optional[StopCondition] = None
    stop_check_s: Optional[float] = None
    require_stop: bool = False
    timeout_message: Optional[str] = None
    extractors: Dict[str, MetricExtractor] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("scenario duration must be > 0")
        if self.stop is None:
            if self.require_stop:
                raise ConfigurationError(
                    "require_stop needs a stop condition")
            if self.stop_check_s is not None:
                raise ConfigurationError(
                    "stop_check_s needs a stop condition")
        elif self.stop_check_s is None:
            self.stop_check_s = self.duration_s
        elif not 0 < self.stop_check_s <= self.duration_s:
            raise ConfigurationError(
                "stop_check_s must be in (0, duration_s]")


@dataclass
class ScenarioOutcome:
    """A completed scenario: its traces and extracted metrics.

    Attributes:
        scenario: the scenario that ran.
        result: concatenated trace record of the whole scenario.
        metrics: extractor outputs keyed by extractor name.
        stopped_early: whether the stop condition ended the run before
            ``duration_s`` elapsed.
        elapsed_s: simulated time actually spent in the scenario.
    """

    scenario: Scenario
    result: GyroSimulationResult
    metrics: Dict[str, float]
    stopped_early: bool
    elapsed_s: float

    @property
    def name(self) -> str:
        return self.scenario.name
