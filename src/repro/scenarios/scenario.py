"""Declarative co-simulation scenarios.

A :class:`Scenario` is a replayable description of one run: the applied
environment, how long to simulate, whether to power-cycle first, an
optional early-stop condition (checked on a fixed grid, the way the
chunked start-up loop has always worked) and named metric extractors
that turn the recorded traces and final platform state into numbers.

Scenarios carry no engine choice and no platform reference — the same
object can be replayed on the reference loop, the fused kernel or a
batched fleet lane, and two replays from the same platform state are
bit-identical.  The :class:`~repro.scenarios.campaign.Campaign` runner
executes them.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..common.exceptions import ConfigurationError
from ..faults.models import validate_fault
from ..platform.result import GyroSimulationResult
from ..sensors.environment import Environment


def _callable_token(fn: Callable) -> str:
    """A stable textual identity for a stop condition or extractor.

    Dataclass callables (the scenario library's extractors) render their
    full ``repr`` — parameters included — so two extractors that compute
    different things digest differently.  Plain functions render as
    ``module.qualname``.  Lambdas and closures degrade to their
    qualname (``module.<locals>.<lambda>``): the digest is an integrity
    aid for the shard manifest, not a cryptographic identity, and such
    scenarios cannot be shipped cross-process anyway.
    """
    if dataclasses.is_dataclass(fn) and not isinstance(fn, type):
        return repr(fn)
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", repr(fn))
    return f"{module}.{qualname}"

#: Signature of a stop condition: inspects the platform state after a
#: chunk and returns True to end the scenario early.
StopCondition = Callable[[object], bool]

#: Signature of a metric extractor: ``fn(platform, result) -> value``
#: evaluated once when the scenario completes, with the platform in its
#: final state and the concatenated trace record.
MetricExtractor = Callable[[object, GyroSimulationResult], float]


@dataclass
class Scenario:
    """One declarative co-simulation run.

    Attributes:
        name: label used in results, error messages and reports.
        environment: applied rate/temperature stimulus (time relative to
            the scenario start).
        duration_s: how long to simulate — an upper bound when a stop
            condition is set.
        reset: power-cycle the platform before running.
        record_waveforms: record pick-off / drive-word waveforms.
        stop: optional early-stop condition, evaluated on the
            ``stop_check_s`` grid; the scenario ends at the first grid
            point where it returns True.
        stop_check_s: evaluation period of the stop condition (defaults
            to ``duration_s``, i.e. a single check at the end).
        require_stop: raise :class:`SimulationError` if the stop
            condition never fired within ``duration_s``.
        timeout_message: message for that error (a default naming the
            scenario is used when omitted).
        extractors: named metric extractors run on completion.
        faults: fault models (:mod:`repro.faults`) armed and disarmed by
            the campaign runner at chunk boundaries; each fault's
            activation edges join the lane's own boundary grid, so a
            faulted scenario replays bit-identically on every engine
            and executor.  All faults are restored when the scenario
            completes.
    """

    name: str
    environment: Environment
    duration_s: float
    reset: bool = False
    record_waveforms: bool = False
    stop: Optional[StopCondition] = None
    stop_check_s: Optional[float] = None
    require_stop: bool = False
    timeout_message: Optional[str] = None
    extractors: Dict[str, MetricExtractor] = field(default_factory=dict)
    faults: Tuple = ()

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("scenario duration must be > 0")
        self.faults = tuple(self.faults)
        for fault in self.faults:
            validate_fault(fault)
        if self.stop is None:
            if self.require_stop:
                raise ConfigurationError(
                    "require_stop needs a stop condition")
            if self.stop_check_s is not None:
                raise ConfigurationError(
                    "stop_check_s needs a stop condition")
        elif self.stop_check_s is None:
            self.stop_check_s = self.duration_s
        elif not 0 < self.stop_check_s <= self.duration_s:
            raise ConfigurationError(
                "stop_check_s must be in (0, duration_s]")

    def digest(self) -> str:
        """Content digest of this scenario for shard-manifest integrity.

        Hashes the declarative fields — environment (dataclass reprs are
        deterministic), timing, reset/record flags, stop configuration
        and the extractor identities — so a resumed sharded campaign can
        verify that an on-disk manifest was produced by the same lane
        programs before reusing completed shards.
        """
        parts = [
            self.name,
            repr(self.environment),
            repr(self.duration_s),
            repr(self.reset),
            repr(self.record_waveforms),
            "-" if self.stop is None else _callable_token(self.stop),
            repr(self.stop_check_s),
            repr(self.require_stop),
        ]
        for key in sorted(self.extractors):
            parts.append(f"{key}={_callable_token(self.extractors[key])}")
        # sorted fault tokens: the digest is insensitive to declaration
        # order (faults commute — each is armed on its own window)
        for token in sorted(fault.digest_token() for fault in self.faults):
            parts.append(f"fault:{token}")
        payload = "\x1f".join(parts).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:16]


@dataclass
class ScenarioOutcome:
    """A completed scenario: its traces and extracted metrics.

    Attributes:
        scenario: the scenario that ran.
        result: concatenated trace record of the whole scenario.
        metrics: extractor outputs keyed by extractor name.
        stopped_early: whether the stop condition ended the run before
            ``duration_s`` elapsed.
        elapsed_s: simulated time actually spent in the scenario.
        scenario_digest: content digest of the *original* scenario; set
            by :meth:`from_dict` on deserialised outcomes so the digest
            survives the round-trip even though the placeholder scenario
            cannot recompute it (its callables are gone).
    """

    scenario: Scenario
    result: GyroSimulationResult
    metrics: Dict[str, float]
    stopped_early: bool
    elapsed_s: float
    scenario_digest: Optional[str] = None

    @property
    def name(self) -> str:
        return self.scenario.name

    def digest(self) -> str:
        """The digest of the scenario that produced this outcome.

        A live outcome digests its scenario; a deserialised outcome
        returns the digest recorded at serialisation time, so
        ``to_dict`` → ``from_dict`` → ``to_dict`` is lossless.
        """
        return self.scenario_digest or self.scenario.digest()

    def to_dict(self) -> dict:
        """JSON-compatible dict of the outcome.

        The scenario itself is summarised (name, duration, digest), not
        serialised: stop conditions and extractors are arbitrary
        callables.  :meth:`from_dict` therefore rebuilds a placeholder
        scenario carrying the name/duration/digest only — metrics are
        already evaluated, so nothing downstream needs the callables.
        Use pickle when full scenario fidelity is required.
        """
        return {
            "scenario": {"name": self.scenario.name,
                         "duration_s": self.scenario.duration_s,
                         "digest": self.digest()},
            "result": self.result.to_dict(),
            "metrics": dict(self.metrics),
            "stopped_early": self.stopped_early,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioOutcome":
        """Rebuild an outcome from :meth:`to_dict` output."""
        from ..sensors.environment import Environment
        meta = data["scenario"]
        scenario = Scenario(name=meta["name"], environment=Environment.still(),
                            duration_s=meta["duration_s"])
        return cls(scenario=scenario,
                   result=GyroSimulationResult.from_dict(data["result"]),
                   metrics=dict(data["metrics"]),
                   stopped_early=bool(data["stopped_early"]),
                   elapsed_s=float(data["elapsed_s"]),
                   scenario_digest=meta.get("digest"))
