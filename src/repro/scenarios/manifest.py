"""Batch manifests for the sharded campaign executor.

A sharded campaign writes one JSON *batch manifest* describing every
shard — its lane indices, the content digests of those lanes' scenario
programs and its execution status — to the manifest directory **before**
any worker launches, and rewrites it (atomically) as shards complete or
fail.  Workers never touch the manifest; each one writes its shard's
outcomes to ``shard-NNNN.pkl`` via an atomic rename, so a crashed or
killed worker leaves either a complete result file or none at all.

That makes the manifest directory a resumable record of the campaign:
pointing a new ``Campaign.run`` at the same directory verifies the
manifest was produced by the same campaign (name, engine, lane digests,
partition and lane-source digest all have to match) and re-runs only the
shards whose result files are missing or fail verification.  The layout
follows the ``create_batch_manifest.py`` / ``verify_and_retry`` pattern
of HPC array-job pipelines.

Execution hardening (chaos-tested by ``repro.chaos``) adds three more
artifact families to the directory: per-attempt result files
(``shard-NNNN.attempt-KK.pkl``, digest-verified and *promoted* to the
canonical name by the parent — required for speculative execution to be
safe), per-attempt error reports
(``shard-NNNN.attempt-KK.error.json``, the failure reason a dying
worker leaves behind) and per-attempt heartbeat files under
``heartbeats/`` (how the scheduler tells a dead worker from a slow
one).  Each shard record carries its full attempt ``history``.
"""

from __future__ import annotations

import dataclasses
import glob
import hashlib
import json
import os
import pickle
import traceback
import warnings
from typing import Dict, List, Optional

from ..chaos.runtime import fire as _chaos_fire
from ..common.exceptions import ConfigurationError


class ManifestCorruptionError(ConfigurationError):
    """A manifest file exists but cannot be parsed (truncated/corrupted).

    Distinct from an ordinary :class:`ConfigurationError` so the resume
    path can tell "this directory holds a *different* campaign" (a user
    mistake — refuse) apart from "this directory holds a *damaged*
    manifest" (a crash artifact — salvageable: the shard result files
    are individually verifiable, so the manifest can be rebuilt from
    them).
    """

#: Shard lifecycle states recorded in the manifest.
SHARD_PENDING = "pending"
SHARD_DONE = "done"
SHARD_FAILED = "failed"

MANIFEST_FILENAME = "manifest.json"
MANIFEST_VERSION = 1
HEARTBEAT_DIRNAME = "heartbeats"

#: Attempt outcomes recorded in a shard's ``history``.
ATTEMPT_OK = "ok"
ATTEMPT_CRASH = "crash"
ATTEMPT_ERROR = "error"
ATTEMPT_TIMEOUT = "timeout"
ATTEMPT_HEARTBEAT_LOST = "heartbeat-lost"
ATTEMPT_VERIFY_FAILED = "verify-failed"
ATTEMPT_SUPERSEDED = "superseded"
ATTEMPT_RUNNING = "running"

#: Traceback truncation for per-attempt failure reports.
TRACEBACK_LIMIT_CHARS = 2000


@dataclasses.dataclass
class ShardRecord:
    """One shard's slice of the campaign and its execution status.

    Attributes:
        shard_id: position of the shard in the partition.
        lane_indices: campaign lane indices this shard simulates.
        digests: per lane, the content digests of its scenario program
            (:meth:`~repro.scenarios.scenario.Scenario.digest`) — the
            integrity key for resume and result verification.
        status: ``"pending"``, ``"done"`` or ``"failed"``.
        attempts: how many times the shard has been launched (speculative
            backups included).
        error: last failure description, if any.
        history: one record per launched attempt — ``attempt`` number,
            ``speculative`` flag, ``pid``, ``started_unix`` /
            ``ended_unix`` / ``duration_s`` stamps, the ``outcome``
            (``"ok"``, ``"crash"``, ``"error"``, ``"timeout"``,
            ``"heartbeat-lost"``, ``"verify-failed"``,
            ``"superseded"``, or ``"running"`` while in flight) and,
            for reported exceptions, an ``error`` dict carrying the
            exception class, message and truncated traceback.
    """

    shard_id: int
    lane_indices: List[int]
    digests: List[List[str]]
    status: str = SHARD_PENDING
    attempts: int = 0
    error: Optional[str] = None
    history: List[dict] = dataclasses.field(default_factory=list)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ShardRecord":
        return cls(shard_id=int(data["shard_id"]),
                   lane_indices=[int(i) for i in data["lane_indices"]],
                   digests=[[str(d) for d in lane]
                            for lane in data["digests"]],
                   status=str(data["status"]),
                   attempts=int(data.get("attempts", 0)),
                   error=data.get("error"),
                   history=[dict(entry)
                            for entry in data.get("history", [])])

    def attempt_entry(self, number: int) -> Optional[dict]:
        """The history record of attempt ``number``, if recorded."""
        for entry in reversed(self.history):
            if entry.get("attempt") == number:
                return entry
        return None

    def identity(self) -> tuple:
        """The shard fields that must match for a resume to be valid."""
        return (self.shard_id, tuple(self.lane_indices),
                tuple(tuple(lane) for lane in self.digests))


class CampaignManifest:
    """The on-disk state of one sharded campaign run."""

    def __init__(self, directory: str, campaign_name: str, engine: str,
                 source_digest: str, shards: List[ShardRecord],
                 retry: Optional[dict] = None):
        self.directory = directory
        self.campaign_name = campaign_name
        self.engine = engine
        self.source_digest = source_digest
        self.shards = shards
        # informational record of the run's RetryPolicy (to_dict form);
        # not part of the resume identity — a resume may retry with a
        # different policy
        self.retry = retry

    # -- paths --------------------------------------------------------------

    @property
    def path(self) -> str:
        return os.path.join(self.directory, MANIFEST_FILENAME)

    @property
    def heartbeat_dir(self) -> str:
        return os.path.join(self.directory, HEARTBEAT_DIRNAME)

    def shard_result_path(self, shard_id: int) -> str:
        """The canonical (credited) result file of one shard."""
        return os.path.join(self.directory, f"shard-{shard_id:04d}.pkl")

    def attempt_result_path(self, shard_id: int, attempt: int) -> str:
        """Where one attempt publishes its result before promotion.

        Attempts never write the canonical path directly: the parent
        digest-verifies an attempt file first and *promotes* it with an
        atomic rename, so a speculative backup (or a late straggler from
        a killed run) can never clobber a credited result with an
        unverified one.
        """
        return os.path.join(self.directory,
                            f"shard-{shard_id:04d}.attempt-{attempt:02d}.pkl")

    def attempt_error_path(self, shard_id: int, attempt: int) -> str:
        return os.path.join(
            self.directory,
            f"shard-{shard_id:04d}.attempt-{attempt:02d}.error.json")

    def heartbeat_path(self, shard_id: int, attempt: int) -> str:
        return os.path.join(
            self.heartbeat_dir,
            f"shard-{shard_id:04d}.attempt-{attempt:02d}.json")

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "campaign_name": self.campaign_name,
            "engine": self.engine,
            "source_digest": self.source_digest,
            "retry": self.retry,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    def write(self) -> None:
        """Atomically persist the manifest (write temp file + rename).

        The chaos site ``"manifest.write"`` fires first, so an injected
        ENOSPC hits before any bytes land — the executor wraps this in
        its :class:`~repro.common.retry.RetryPolicy` to ride out
        transient failures.
        """
        _chaos_fire("manifest.write", path=self.path)
        tmp = self.path + f".tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
        os.replace(tmp, self.path)

    @classmethod
    def load(cls, directory: str) -> "CampaignManifest":
        path = os.path.join(directory, MANIFEST_FILENAME)
        if not os.path.exists(path):
            raise ConfigurationError(
                f"cannot read campaign manifest {path!r}: no such file")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            # a manifest that exists but does not parse is a truncated or
            # hand-corrupted file, not a different campaign
            raise ManifestCorruptionError(
                f"cannot read campaign manifest {path!r}: {exc}") from exc
        if data.get("version") != MANIFEST_VERSION:
            raise ConfigurationError(
                f"campaign manifest {path!r} has version "
                f"{data.get('version')!r}, expected {MANIFEST_VERSION}")
        try:
            return cls(directory=directory,
                       campaign_name=str(data["campaign_name"]),
                       engine=str(data["engine"]),
                       source_digest=str(data["source_digest"]),
                       shards=[ShardRecord.from_dict(s)
                               for s in data["shards"]],
                       retry=data.get("retry"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestCorruptionError(
                f"campaign manifest {path!r} is malformed: "
                f"{type(exc).__name__}: {exc}") from exc

    @classmethod
    def create_or_resume(cls, directory: str, campaign_name: str,
                         engine: str, source_digest: str,
                         shards: List[ShardRecord],
                         retry: Optional[dict] = None) -> "CampaignManifest":
        """Open a manifest directory: fresh start or verified resume.

        When ``directory`` already holds a manifest it must describe the
        same campaign — same name, engine, shard partition, scenario
        digests and lane-source digest — otherwise a
        :class:`ConfigurationError` explains the mismatch rather than
        silently mixing two campaigns' shards.  On a valid resume the
        previous shard statuses (and completed result files) are kept,
        so only unfinished work re-runs.

        A manifest that exists but is truncated or corrupted does not
        kill the resume: the damaged file is moved aside
        (``manifest.json.corrupt-N``), a warning reports it, and a fresh
        manifest is written.  Completed ``shard-NNNN.pkl`` files survive
        untouched and are individually digest-verified, so the
        verify-and-retry loop credits them back without re-simulating —
        the manifest is rebuilt from the surviving shard results.
        """
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, MANIFEST_FILENAME)
        if os.path.exists(path):
            try:
                manifest = cls.load(directory)
            except ManifestCorruptionError as exc:
                salvage = _sidelined_path(path, "corrupt")
                os.replace(path, salvage)
                warnings.warn(
                    f"campaign manifest {path!r} was corrupt ({exc}); "
                    f"moved it to {salvage!r} and rebuilt the manifest — "
                    "surviving shard result files will be verified and "
                    "credited without re-simulation", RuntimeWarning,
                    stacklevel=2)
                manifest = cls(directory, campaign_name, engine,
                               source_digest, shards, retry=retry)
                manifest.write()
                return manifest
            fresh = cls(directory, campaign_name, engine, source_digest,
                        shards)
            mismatch = manifest._describe_mismatch(fresh)
            if mismatch:
                raise ConfigurationError(
                    f"manifest directory {directory!r} belongs to a "
                    f"different campaign ({mismatch}); use a fresh "
                    "manifest_dir or delete the stale one")
            manifest.retry = retry
            return manifest
        manifest = cls(directory, campaign_name, engine, source_digest,
                       shards, retry=retry)
        manifest.write()
        return manifest

    def _describe_mismatch(self, other: "CampaignManifest") -> Optional[str]:
        if self.campaign_name != other.campaign_name:
            return (f"campaign name {self.campaign_name!r} != "
                    f"{other.campaign_name!r}")
        if self.engine != other.engine:
            return f"engine {self.engine!r} != {other.engine!r}"
        if self.source_digest != other.source_digest:
            return "lane source changed"
        if len(self.shards) != len(other.shards):
            return (f"{len(self.shards)} shards on disk != "
                    f"{len(other.shards)} requested")
        for mine, theirs in zip(self.shards, other.shards):
            if mine.identity() != theirs.identity():
                return (f"shard {mine.shard_id} covers different lanes "
                        "or scenario programs")
        return None

    # -- shard results ------------------------------------------------------

    def load_shard_result(self, record: ShardRecord) -> Optional[dict]:
        """Load and verify one shard's canonical result file.

        Returns the payload only when the file exists, unpickles and
        matches the shard's identity (id, lane indices and scenario
        digests); anything else returns None so the verify-and-retry
        loop treats the shard as not done.
        """
        return self.load_verified_payload(
            self.shard_result_path(record.shard_id), record)

    def load_verified_payload(self, path: str,
                              record: ShardRecord) -> Optional[dict]:
        """Load ``path``, verify its checksum and shard identity.

        The file is a checksummed envelope (see
        :func:`write_shard_payload`): the SHA-256 over the payload
        pickle bytes must match before anything is unpickled into a
        result — a bit flip *anywhere* in the payload fails here, not
        just one that breaks the pickle framing — and the payload must
        carry ``record``'s shard identity (id, lane indices, scenario
        digests).  Anything else returns None so the scheduler treats
        the shard as not done.
        """
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as fh:
                envelope = pickle.load(fh)
            if (not isinstance(envelope, dict)
                    or not isinstance(envelope.get("blob"), bytes)
                    or hashlib.sha256(envelope["blob"]).hexdigest()
                    != envelope.get("sha256")):
                return None
            payload = pickle.loads(envelope["blob"])
        except Exception:
            return None
        if (not isinstance(payload, dict)
                or payload.get("shard_id") != record.shard_id
                or payload.get("lane_indices") != record.lane_indices
                or payload.get("digests") != record.digests):
            return None
        return payload

    def promote_attempt_result(self, record: ShardRecord,
                               attempt: int) -> Optional[dict]:
        """Verify one attempt's result file and credit it canonically.

        The digest verification happens *before* the atomic rename onto
        the canonical path — an unverified attempt file (corrupted
        payload, foreign shard) is never promoted.  Returns the verified
        payload, or None when the attempt file is absent or fails
        verification.
        """
        path = self.attempt_result_path(record.shard_id, attempt)
        payload = self.load_verified_payload(path, record)
        if payload is None:
            return None
        os.replace(path, self.shard_result_path(record.shard_id))
        return payload

    def salvage_attempt_result(self, record: ShardRecord) -> Optional[dict]:
        """Promote any surviving verified attempt file of this shard.

        Used by the resume scan: a run killed between an attempt's
        publish and its promotion (or a late straggler that finished
        after its run died) leaves a verifiable
        ``shard-NNNN.attempt-KK.pkl`` behind; crediting it avoids
        re-simulating completed work.
        """
        pattern = os.path.join(self.directory,
                               f"shard-{record.shard_id:04d}.attempt-*.pkl")
        for path in sorted(glob.glob(pattern)):
            payload = self.load_verified_payload(path, record)
            if payload is not None:
                os.replace(path, self.shard_result_path(record.shard_id))
                return payload
        return None

    def load_attempt_error(self, shard_id: int,
                           attempt: int) -> Optional[dict]:
        """The failure report one attempt wrote before dying, if any."""
        path = self.attempt_error_path(shard_id, attempt)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                report = json.load(fh)
        except (OSError, ValueError):
            return None
        return report if isinstance(report, dict) else None

    def clear_attempt_files(self, record: ShardRecord) -> None:
        """Drop leftover attempt result/error files of a finished shard."""
        for pattern in (f"shard-{record.shard_id:04d}.attempt-*.pkl",
                        f"shard-{record.shard_id:04d}.attempt-*.error.json"):
            for path in glob.glob(os.path.join(self.directory, pattern)):
                try:
                    os.remove(path)
                except OSError:
                    pass

    # -- queries ------------------------------------------------------------

    def unfinished(self) -> List[ShardRecord]:
        return [s for s in self.shards if s.status != SHARD_DONE]

    def counts(self) -> Dict[str, int]:
        counts = {SHARD_PENDING: 0, SHARD_DONE: 0, SHARD_FAILED: 0}
        for shard in self.shards:
            counts[shard.status] = counts.get(shard.status, 0) + 1
        return counts


def _sidelined_path(path: str, reason: str) -> str:
    """First free ``<path>.<reason>-N`` name for moving a bad file aside."""
    for n in range(10_000):
        candidate = f"{path}.{reason}-{n}"
        if not os.path.exists(candidate):
            return candidate
    raise ConfigurationError(
        f"cannot sideline {path!r}: too many {reason!r} files")


def write_shard_payload(path: str, payload: dict) -> None:
    """Atomically persist one shard's outcome payload, checksummed.

    Called from worker processes: the payload pickle travels inside an
    envelope carrying its own SHA-256, so the parent's verification
    catches any corruption of the payload bytes (not only flips that
    happen to break the pickle framing), and the temp-file + rename
    dance means a worker killed mid-write leaves no partial result file
    at the canonical name.  The chaos site ``"shard.write"`` fires
    between the temp write and the rename — exactly where a torn write,
    a slow disk or a bit flip would land.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    envelope = {"sha256": hashlib.sha256(blob).hexdigest(), "blob": blob}
    tmp = path + f".tmp-{os.getpid()}"
    with open(tmp, "wb") as fh:
        pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
    _chaos_fire("shard.write", shard=payload.get("shard_id"),
                attempt=payload.get("attempt"), path=tmp)
    os.replace(tmp, path)


def write_error_report(path: str, exc: BaseException) -> None:
    """Atomically persist a worker's failure reason before it exits.

    The report (exception class, message, truncated traceback) is what
    the parent records in the shard's attempt history — so a quarantined
    shard in a partial campaign result says *why* it failed, not just
    that it did.
    """
    trace = "".join(traceback.format_exception(type(exc), exc,
                                               exc.__traceback__))
    if len(trace) > TRACEBACK_LIMIT_CHARS:
        trace = ("...[truncated]...\n"
                 + trace[-TRACEBACK_LIMIT_CHARS:])
    report = {"type": type(exc).__name__, "message": str(exc),
              "traceback": trace}
    tmp = path + f".tmp-{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1)
        os.replace(tmp, path)
    except OSError:
        # a dying worker must not die harder because the error report
        # could not be written (e.g. the disk is the problem)
        pass
