"""Batch manifests for the sharded campaign executor.

A sharded campaign writes one JSON *batch manifest* describing every
shard — its lane indices, the content digests of those lanes' scenario
programs and its execution status — to the manifest directory **before**
any worker launches, and rewrites it (atomically) as shards complete or
fail.  Workers never touch the manifest; each one writes its shard's
outcomes to ``shard-NNNN.pkl`` via an atomic rename, so a crashed or
killed worker leaves either a complete result file or none at all.

That makes the manifest directory a resumable record of the campaign:
pointing a new ``Campaign.run`` at the same directory verifies the
manifest was produced by the same campaign (name, engine, lane digests,
partition and lane-source digest all have to match) and re-runs only the
shards whose result files are missing or fail verification.  The layout
follows the ``create_batch_manifest.py`` / ``verify_and_retry`` pattern
of HPC array-job pipelines.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import warnings
from typing import Dict, List, Optional

from ..common.exceptions import ConfigurationError


class ManifestCorruptionError(ConfigurationError):
    """A manifest file exists but cannot be parsed (truncated/corrupted).

    Distinct from an ordinary :class:`ConfigurationError` so the resume
    path can tell "this directory holds a *different* campaign" (a user
    mistake — refuse) apart from "this directory holds a *damaged*
    manifest" (a crash artifact — salvageable: the shard result files
    are individually verifiable, so the manifest can be rebuilt from
    them).
    """

#: Shard lifecycle states recorded in the manifest.
SHARD_PENDING = "pending"
SHARD_DONE = "done"
SHARD_FAILED = "failed"

MANIFEST_FILENAME = "manifest.json"
MANIFEST_VERSION = 1


@dataclasses.dataclass
class ShardRecord:
    """One shard's slice of the campaign and its execution status.

    Attributes:
        shard_id: position of the shard in the partition.
        lane_indices: campaign lane indices this shard simulates.
        digests: per lane, the content digests of its scenario program
            (:meth:`~repro.scenarios.scenario.Scenario.digest`) — the
            integrity key for resume and result verification.
        status: ``"pending"``, ``"done"`` or ``"failed"``.
        attempts: how many times the shard has been launched.
        error: last failure description, if any.
    """

    shard_id: int
    lane_indices: List[int]
    digests: List[List[str]]
    status: str = SHARD_PENDING
    attempts: int = 0
    error: Optional[str] = None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ShardRecord":
        return cls(shard_id=int(data["shard_id"]),
                   lane_indices=[int(i) for i in data["lane_indices"]],
                   digests=[[str(d) for d in lane]
                            for lane in data["digests"]],
                   status=str(data["status"]),
                   attempts=int(data.get("attempts", 0)),
                   error=data.get("error"))

    def identity(self) -> tuple:
        """The shard fields that must match for a resume to be valid."""
        return (self.shard_id, tuple(self.lane_indices),
                tuple(tuple(lane) for lane in self.digests))


class CampaignManifest:
    """The on-disk state of one sharded campaign run."""

    def __init__(self, directory: str, campaign_name: str, engine: str,
                 source_digest: str, shards: List[ShardRecord],
                 retry: Optional[dict] = None):
        self.directory = directory
        self.campaign_name = campaign_name
        self.engine = engine
        self.source_digest = source_digest
        self.shards = shards
        # informational record of the run's retry policy (max_retries,
        # retry_backoff_s); not part of the resume identity — a resume
        # may retry with a different policy
        self.retry = retry

    # -- paths --------------------------------------------------------------

    @property
    def path(self) -> str:
        return os.path.join(self.directory, MANIFEST_FILENAME)

    def shard_result_path(self, shard_id: int) -> str:
        return os.path.join(self.directory, f"shard-{shard_id:04d}.pkl")

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "campaign_name": self.campaign_name,
            "engine": self.engine,
            "source_digest": self.source_digest,
            "retry": self.retry,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    def write(self) -> None:
        """Atomically persist the manifest (write temp file + rename)."""
        tmp = self.path + f".tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
        os.replace(tmp, self.path)

    @classmethod
    def load(cls, directory: str) -> "CampaignManifest":
        path = os.path.join(directory, MANIFEST_FILENAME)
        if not os.path.exists(path):
            raise ConfigurationError(
                f"cannot read campaign manifest {path!r}: no such file")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            # a manifest that exists but does not parse is a truncated or
            # hand-corrupted file, not a different campaign
            raise ManifestCorruptionError(
                f"cannot read campaign manifest {path!r}: {exc}") from exc
        if data.get("version") != MANIFEST_VERSION:
            raise ConfigurationError(
                f"campaign manifest {path!r} has version "
                f"{data.get('version')!r}, expected {MANIFEST_VERSION}")
        try:
            return cls(directory=directory,
                       campaign_name=str(data["campaign_name"]),
                       engine=str(data["engine"]),
                       source_digest=str(data["source_digest"]),
                       shards=[ShardRecord.from_dict(s)
                               for s in data["shards"]],
                       retry=data.get("retry"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestCorruptionError(
                f"campaign manifest {path!r} is malformed: "
                f"{type(exc).__name__}: {exc}") from exc

    @classmethod
    def create_or_resume(cls, directory: str, campaign_name: str,
                         engine: str, source_digest: str,
                         shards: List[ShardRecord],
                         retry: Optional[dict] = None) -> "CampaignManifest":
        """Open a manifest directory: fresh start or verified resume.

        When ``directory`` already holds a manifest it must describe the
        same campaign — same name, engine, shard partition, scenario
        digests and lane-source digest — otherwise a
        :class:`ConfigurationError` explains the mismatch rather than
        silently mixing two campaigns' shards.  On a valid resume the
        previous shard statuses (and completed result files) are kept,
        so only unfinished work re-runs.

        A manifest that exists but is truncated or corrupted does not
        kill the resume: the damaged file is moved aside
        (``manifest.json.corrupt-N``), a warning reports it, and a fresh
        manifest is written.  Completed ``shard-NNNN.pkl`` files survive
        untouched and are individually digest-verified, so the
        verify-and-retry loop credits them back without re-simulating —
        the manifest is rebuilt from the surviving shard results.
        """
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, MANIFEST_FILENAME)
        if os.path.exists(path):
            try:
                manifest = cls.load(directory)
            except ManifestCorruptionError as exc:
                salvage = _sidelined_path(path, "corrupt")
                os.replace(path, salvage)
                warnings.warn(
                    f"campaign manifest {path!r} was corrupt ({exc}); "
                    f"moved it to {salvage!r} and rebuilt the manifest — "
                    "surviving shard result files will be verified and "
                    "credited without re-simulation", RuntimeWarning,
                    stacklevel=2)
                manifest = cls(directory, campaign_name, engine,
                               source_digest, shards, retry=retry)
                manifest.write()
                return manifest
            fresh = cls(directory, campaign_name, engine, source_digest,
                        shards)
            mismatch = manifest._describe_mismatch(fresh)
            if mismatch:
                raise ConfigurationError(
                    f"manifest directory {directory!r} belongs to a "
                    f"different campaign ({mismatch}); use a fresh "
                    "manifest_dir or delete the stale one")
            manifest.retry = retry
            return manifest
        manifest = cls(directory, campaign_name, engine, source_digest,
                       shards, retry=retry)
        manifest.write()
        return manifest

    def _describe_mismatch(self, other: "CampaignManifest") -> Optional[str]:
        if self.campaign_name != other.campaign_name:
            return (f"campaign name {self.campaign_name!r} != "
                    f"{other.campaign_name!r}")
        if self.engine != other.engine:
            return f"engine {self.engine!r} != {other.engine!r}"
        if self.source_digest != other.source_digest:
            return "lane source changed"
        if len(self.shards) != len(other.shards):
            return (f"{len(self.shards)} shards on disk != "
                    f"{len(other.shards)} requested")
        for mine, theirs in zip(self.shards, other.shards):
            if mine.identity() != theirs.identity():
                return (f"shard {mine.shard_id} covers different lanes "
                        "or scenario programs")
        return None

    # -- shard results ------------------------------------------------------

    def load_shard_result(self, record: ShardRecord) -> Optional[dict]:
        """Load and verify one shard's result file.

        Returns the payload only when the file exists, unpickles and
        matches the shard's identity (id, lane indices and scenario
        digests); anything else returns None so the verify-and-retry
        loop treats the shard as not done.
        """
        path = self.shard_result_path(record.shard_id)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except Exception:
            return None
        if (payload.get("shard_id") != record.shard_id
                or payload.get("lane_indices") != record.lane_indices
                or payload.get("digests") != record.digests):
            return None
        return payload

    # -- queries ------------------------------------------------------------

    def unfinished(self) -> List[ShardRecord]:
        return [s for s in self.shards if s.status != SHARD_DONE]

    def counts(self) -> Dict[str, int]:
        counts = {SHARD_PENDING: 0, SHARD_DONE: 0, SHARD_FAILED: 0}
        for shard in self.shards:
            counts[shard.status] = counts.get(shard.status, 0) + 1
        return counts


def _sidelined_path(path: str, reason: str) -> str:
    """First free ``<path>.<reason>-N`` name for moving a bad file aside."""
    for n in range(10_000):
        candidate = f"{path}.{reason}-{n}"
        if not os.path.exists(candidate):
            return candidate
    raise ConfigurationError(
        f"cannot sideline {path!r}: too many {reason!r} files")


def write_shard_payload(path: str, payload: dict) -> None:
    """Atomically persist one shard's outcome payload.

    Called from worker processes: the temp-file + rename dance means a
    worker killed mid-write leaves no partial result file for the
    parent's verification to trip over.
    """
    tmp = path + f".tmp-{os.getpid()}"
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
