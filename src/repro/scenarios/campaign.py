"""Campaign runner: one orchestrator for every co-simulation run loop.

A :class:`Campaign` takes lane *programs* — each a scenario or a
sequence of scenarios to run back-to-back on one platform — and executes
them on any registered engine.  With a scalar engine the lanes run one
after another; with the ``"batched"`` engine the lanes are packed into
:class:`~repro.engine.batch.FleetSimulator` lockstep automatically.

Either way the campaign advances in *chunks*: every round, each lane
steps to its own next boundary — a stop-condition check point or a
scenario end — so early-stop conditions ("start-up completed") work in
batch exactly like the platform's chunked ``start()`` loop always has,
and lanes whose programs finish early simply drop out of the fleet.  A
lane is never chopped at a *foreign* lane's boundary: shorter lanes
retire inside the batched engine call (per-lane early exit) while the
longer ones run on.  A lane's chunk sequence is therefore a pure
function of its own program, and because consecutive engine runs
compose exactly into one continuous simulation, the chunking is
invisible: a scenario program replayed through any engine, in any fleet
packing, on any executor's shard partition, from the same platform
state produces bit-identical traces and metrics.

One recording caveat: each engine call restarts the lane's
trace-decimation grid at its own boundaries (stop checks and scenario
ends), so a stop-check interval that is not a multiple of
``record_decimation`` samples leaves a few closer-spaced points at each
join.  Platform state and metrics read from state are unaffected, and
the standard library scenarios use durations that land on the grid;
keep scenario durations and stop-check intervals multiples of
``record_decimation / sample_rate_hz`` when trace uniformity matters
(PSD-based extractors).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

from ..chaos.runtime import active as chaos_active
from ..common.exceptions import ConfigurationError, SimulationError
from ..common.retry import RetryPolicy
from ..platform.result import concatenate_results
from .engines import ENGINE_BATCHED, get_engine
from .scenario import Scenario, ScenarioOutcome


@dataclasses.dataclass
class LaneOutcome:
    """Everything one campaign lane produced.

    Attributes:
        platform: the platform the lane ran on (a clone of the base
            platform unless the caller supplied its own lanes or ran
            with ``mutate=True``) in its final state — inspect it or
            adopt its state for follow-on runs.
        outcomes: one :class:`ScenarioOutcome` per program scenario, in
            execution order.
    """

    platform: object
    outcomes: List[ScenarioOutcome]

    def outcome(self, name: str) -> ScenarioOutcome:
        """The lane's outcome for the scenario called ``name``."""
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise ConfigurationError(
            f"lane has no outcome for scenario {name!r}")

    def to_dict(self) -> dict:
        """JSON-compatible dict of the lane's outcomes.

        The platform is not serialised (it is a full mixed-signal model;
        use pickle when the final platform state must travel too), so
        :meth:`from_dict` restores ``platform=None``.
        """
        return {"outcomes": [o.to_dict() for o in self.outcomes]}

    @classmethod
    def from_dict(cls, data: dict) -> "LaneOutcome":
        """Rebuild a lane outcome (with ``platform=None``)."""
        return cls(platform=None,
                   outcomes=[ScenarioOutcome.from_dict(o)
                             for o in data["outcomes"]])


class CampaignResult:
    """Per-lane outcomes of a campaign run.

    A sharded campaign whose retries were exhausted returns a *partial*
    result: quarantined shards are reported in ``failed_shards`` and
    their lanes are ``None`` in ``lanes``.  Check :attr:`complete` (or
    ``failed_shards``) before treating the result as exhaustive; resume
    with the same ``manifest_dir`` to fill in the missing lanes.
    """

    def __init__(self, lanes: List[Optional[LaneOutcome]],
                 failed_shards: Optional[List[dict]] = None):
        self.lanes = lanes
        self.failed_shards = list(failed_shards or [])

    def __len__(self) -> int:
        return len(self.lanes)

    def __iter__(self):
        return iter(self.lanes)

    @property
    def complete(self) -> bool:
        """True when every lane produced an outcome."""
        return not self.failed_shards and all(
            lane is not None for lane in self.lanes)

    def failed_lane_indices(self) -> List[int]:
        """Indices of lanes lost to quarantined shards."""
        return [i for i, lane in enumerate(self.lanes) if lane is None]

    def outcomes(self) -> List[ScenarioOutcome]:
        """All scenario outcomes, lane-major (missing lanes skipped)."""
        return [outcome for lane in self.lanes if lane is not None
                for outcome in lane.outcomes]

    def outcome(self, name: str) -> ScenarioOutcome:
        """The first outcome for the scenario called ``name``."""
        for outcome in self.outcomes():
            if outcome.name == name:
                return outcome
        raise ConfigurationError(
            f"campaign has no outcome for scenario {name!r}")

    def metric(self, name: str) -> List[float]:
        """Collect one metric across all outcomes that define it."""
        values = [outcome.metrics[name] for outcome in self.outcomes()
                  if name in outcome.metrics]
        if not values:
            raise ConfigurationError(
                f"no scenario extracted a metric called {name!r}")
        return values

    def to_dict(self) -> dict:
        """JSON-compatible dict; see :meth:`LaneOutcome.to_dict`."""
        out = {"lanes": [None if lane is None else lane.to_dict()
                         for lane in self.lanes]}
        if self.failed_shards:
            out["failed_shards"] = list(self.failed_shards)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        """Rebuild a campaign result (lane platforms become ``None``)."""
        return cls([None if lane is None else LaneOutcome.from_dict(lane)
                    for lane in data["lanes"]],
                   failed_shards=data.get("failed_shards"))


class _LaneState:
    """Execution cursor of one lane through its scenario program."""

    def __init__(self, platform, program: Sequence[Scenario], fs: float):
        self.platform = platform
        self.program = list(program)
        self.fs = fs
        self.index = -1
        self.outcomes: List[ScenarioOutcome] = []
        self._segments = []
        self._sample = 0          # samples into the current scenario
        self._n_total = 0
        self._n_check = 0
        self._fault_spans: List = []       # (start, stop) sample windows
        self._fault_edges: List[int] = []  # interior activation edges
        self._armed: dict = {}             # fault index -> saved state
        self.done = not self.program

    @property
    def scenario(self) -> Scenario:
        return self.program[self.index]

    def begin_next_scenario(self) -> None:
        self.index += 1
        if self.index >= len(self.program):
            self.done = True
            return
        scenario = self.scenario
        if scenario.reset:
            self.platform.reset()
        self._segments = []
        self._sample = 0
        self._n_total = max(1, int(round(scenario.duration_s * self.fs)))
        if scenario.stop is not None:
            self._n_check = max(1, int(round(scenario.stop_check_s * self.fs)))
        else:
            self._n_check = self._n_total
        # quantise the fault windows onto the lane's own sample grid:
        # fault edges become lane boundaries, so arming/disarming always
        # happens between engine calls — on every engine identically
        self._fault_spans = []
        self._fault_edges = []
        self._armed = {}
        edges = set()
        for fault in scenario.faults:
            start = min(self._n_total, max(0, int(round(fault.t_start * self.fs))))
            stop = (self._n_total if fault.t_stop is None
                    else min(self._n_total, int(round(fault.t_stop * self.fs))))
            self._fault_spans.append((start, stop))
            for t_edge in fault.edges():
                edge = int(round(t_edge * self.fs))
                if 0 < edge < self._n_total:
                    edges.add(edge)
        self._fault_edges = sorted(edges)
        self._sync_faults()

    def samples_to_boundary(self) -> int:
        """Samples until this lane's next stop check, fault edge or end."""
        next_check = (self._sample // self._n_check + 1) * self._n_check
        boundary = min(next_check, self._n_total)
        for edge in self._fault_edges:
            if edge > self._sample:
                boundary = min(boundary, edge)
                break
        return boundary - self._sample

    def _sync_faults(self) -> None:
        """Arm, update or restore each fault for the current position."""
        for i, fault in enumerate(self.scenario.faults):
            start, stop = self._fault_spans[i]
            active = start <= self._sample < stop
            if active:
                if i not in self._armed:
                    self._armed[i] = fault.inject(self.platform)
                fault.update(self.platform, self._sample / self.fs,
                             self._armed[i])
            elif i in self._armed:
                fault.restore(self.platform, self._armed.pop(i))

    def _restore_faults(self) -> None:
        for i in list(self._armed):
            self.scenario.faults[i].restore(self.platform,
                                            self._armed.pop(i))

    def _observe_safety(self, samples: int) -> None:
        monitor = getattr(self.platform, "safety", None)
        frontend = getattr(self.platform, "frontend", None)
        if monitor is None or frontend is None:
            return
        monitor.observe(self.platform.now, bool(frontend.overload),
                        samples / self.fs)

    def environment(self):
        """The current scenario's stimulus, shifted to the lane position."""
        return self.scenario.environment.shifted(self._sample / self.fs)

    def advance(self, samples: int, result) -> None:
        """Account a finished chunk and roll over completed scenarios."""
        self._segments.append(result)
        self._sample += samples
        self._observe_safety(samples)
        scenario = self.scenario
        at_check = self._sample % self._n_check == 0
        at_end = self._sample >= self._n_total
        stopped = (scenario.stop is not None and (at_check or at_end)
                   and scenario.stop(self.platform))
        if not stopped and not at_end:
            self._sync_faults()
            return
        self._restore_faults()
        if not stopped and scenario.require_stop:
            raise SimulationError(
                scenario.timeout_message
                or (f"scenario {scenario.name!r} timed out after "
                    f"{scenario.duration_s} s without meeting its stop "
                    "condition"))
        self._finish(stopped_early=stopped and not at_end)
        self.begin_next_scenario()

    def _finish(self, stopped_early: bool) -> None:
        scenario = self.scenario
        result = concatenate_results(self._segments)
        if not scenario.record_waveforms and result.primary_pickoff_norm is not None:
            # another fleet lane wanted waveforms this chunk; recording is
            # trace-only, so dropping them preserves bit-identity
            result = dataclasses.replace(result, primary_pickoff_norm=None,
                                         drive_word=None)
        monitor = getattr(self.platform, "safety", None)
        if monitor is not None:
            # stamp the safe-mode snapshot before the extractors run so
            # resilience metrics can read it off the result
            result = dataclasses.replace(result, **monitor.result_fields())
        metrics = {name: fn(self.platform, result)
                   for name, fn in scenario.extractors.items()}
        self.outcomes.append(ScenarioOutcome(
            scenario=scenario, result=result, metrics=metrics,
            stopped_early=stopped_early,
            elapsed_s=self._sample / self.fs))


Program = Union[Scenario, Sequence[Scenario]]


class Campaign:
    """Packs scenario programs into fleet lanes (or sequential runs).

    Args:
        programs: one entry per lane — a single :class:`Scenario` or a
            sequence of scenarios run back-to-back on that lane.
        engine: default engine for :meth:`run` (``"reference"``,
            ``"fused"`` or ``"batched"``); when omitted, multi-lane
            campaigns default to ``"batched"`` and single-lane campaigns
            to the base platform's configured engine.
        name: label for error messages and reports.
    """

    def __init__(self, programs: Sequence[Program],
                 engine: Optional[str] = None, name: str = "campaign"):
        if not programs:
            raise ConfigurationError("campaign needs at least one scenario")
        self.programs: List[List[Scenario]] = []
        for program in programs:
            lane = [program] if isinstance(program, Scenario) else list(program)
            if not lane:
                raise ConfigurationError("empty scenario program")
            if not all(isinstance(s, Scenario) for s in lane):
                raise ConfigurationError(
                    "programs must contain Scenario objects")
            self.programs.append(lane)
        if engine is not None:
            get_engine(engine)
        self.engine = engine
        self.name = name

    def __len__(self) -> int:
        return len(self.programs)

    # -- execution ----------------------------------------------------------

    def run(self, platform=None, *, platforms=None, config=None,
            engine: Optional[str] = None, executor: Optional[str] = None,
            workers: Optional[int] = None, mutate: bool = False,
            manifest_dir=None, retry=None,
            max_retries: Optional[int] = None,
            retry_backoff_s: Optional[float] = None,
            shard_timeout_s: Optional[float] = None,
            shard_size: Optional[int] = None,
            fault_hook=None, chaos=None,
            heartbeat_interval_s: float = 0.5,
            heartbeat_grace: float = 6.0,
            speculation_factor: Optional[float] = 4.0,
            speculation_min_done: int = 2,
            store=None, fleet=None) -> CampaignResult:
        """Execute every lane program and return the per-lane outcomes.

        Exactly one base must be given:

        * ``platform`` — each lane runs on a deep copy (state, noise
          positions and calibration words included), so campaigns branch
          from the platform without advancing it.  With ``mutate=True``
          (single-lane campaigns only) the lane runs on the platform
          itself, the way ``start()`` and the settled-output
          measurements work.
        * ``platforms`` — one pre-built platform per lane, advanced in
          place; reuse them across campaigns to avoid per-run deep
          copies.  (The ``"sharded"`` executor advances worker-side
          copies instead; read final state from the lane outcomes.)
        * ``config`` — each lane gets a fresh platform built from its
          own deep copy of the configuration.

        Args:
            engine: override the campaign's engine for this run
                (:func:`~repro.scenarios.engines.engine_names`).
            executor: execution backend
                (:func:`~repro.scenarios.executor.executor_names`) —
                ``"local"`` runs in-process, ``"sharded"`` partitions
                the lanes across worker processes with a resumable
                batch manifest.  Defaults to ``"sharded"`` when
                ``workers`` is given, else ``"local"``.
            workers: worker-process count for the sharded executor.
            mutate: run a single-lane campaign directly on ``platform``.
            manifest_dir: sharded only — directory for the batch
                manifest and shard results; reuse a previous run's
                directory to resume it.  Defaults to a fresh temp dir.
            retry: sharded only — a
                :class:`~repro.common.retry.RetryPolicy` governing
                shard re-runs: attempts per shard, exponential backoff
                between them (each sleep capped by the remaining
                deadline budget and skipped for workers known dead via
                missed heartbeats) and an optional wall-clock
                ``deadline_s`` for the whole run.  A shard that
                exhausts its budget is *quarantined*: the campaign
                returns a partial :class:`CampaignResult` whose
                ``failed_shards`` report names it with its full attempt
                history (lanes of quarantined shards are ``None``)
                instead of raising; resume with the same
                ``manifest_dir`` to fill them in.
            max_retries: deprecated spelling of the retry budget —
                re-runs allowed per failed shard, equivalent to
                ``RetryPolicy(max_attempts=max_retries + 1)``.
                Incompatible with ``retry``.
            retry_backoff_s: deprecated spelling of the retry backoff —
                equivalent to ``RetryPolicy(backoff_s=...)``.
                Incompatible with ``retry``.
            shard_timeout_s: sharded only — wall-clock budget per shard
                attempt.
            shard_size: sharded only — lanes per shard (default spreads
                the lanes evenly over ``workers``).
            fault_hook: sharded only — picklable callable invoked in
                each worker before its shard runs (fault-injection
                testing).
            chaos: a :class:`repro.chaos.ChaosPlan` of seeded
                infrastructure failures (worker crashes, hangs,
                heartbeat loss, torn/corrupted/slow result writes,
                ENOSPC, kill-mid-rename) injected at the
                executor/manifest/store boundaries for this run —
                chaos-testing the execution substrate, the way
                ``fault_hook`` and :mod:`repro.faults` test the
                platform.
            heartbeat_interval_s: sharded only — how often each shard
                worker beats its liveness file.
            heartbeat_grace: sharded only — heartbeat silence beyond
                ``heartbeat_grace × heartbeat_interval_s`` declares the
                worker dead and reschedules its shard immediately
                (no backoff, no waiting out ``shard_timeout_s``).
            speculation_factor: sharded only — a shard attempt running
                longer than this multiple of the median completed-shard
                duration gets a speculative backup attempt; whichever
                attempt publishes a digest-verified result first is
                credited.  ``None`` disables speculation.
            speculation_min_done: sharded only — completed shards
                required before the median is trusted for speculation.
            store: a :class:`repro.store.ResultStore` — lanes whose
                results are already stored (same starting state, engine
                and scenario program) are served from disk with zero
                simulation; only missing, corrupted or quarantined
                lanes run (on the requested executor) and their fresh
                outcomes are durably stored before the merged result
                returns.  Served lanes carry ``platform=None``.
                Incompatible with ``mutate=True``.
            fleet: store-backed ``platform=`` runs only — a pool of
                pre-built warm platforms (``len(fleet) >= len(self)``)
                for the cache-miss lanes to run on.  Each miss borrows
                a fleet lane and rewinds it in place to the base
                platform's exact state from one shared pickle, instead
                of deep-copying the base once per miss — reuse the same
                fleet across many store-backed campaigns to amortise
                lane construction.  Results, store keys and stored
                entries are bit-identical to the cold (no-``fleet``)
                path; local executor only.
        """
        from .executor import ExecutorOptions, LaneSource, get_executor
        source = LaneSource.resolve(platform, platforms, config, mutate,
                                    len(self.programs))
        engine = engine or self.engine
        if engine is None:
            # resolved against the whole campaign before any sharding, so
            # a one-lane shard still runs the engine the full campaign
            # would have picked (bit-identity across executors)
            engine = (ENGINE_BATCHED if len(self.programs) > 1
                      else source.default_engine())
        get_engine(engine)
        if executor is None:
            executor = "sharded" if workers else "local"
        if retry is not None and (max_retries is not None
                                  or retry_backoff_s is not None):
            raise ConfigurationError(
                "give either retry=RetryPolicy(...) or the legacy "
                "max_retries/retry_backoff_s scalars, not both")
        if retry is None:
            retry = RetryPolicy.from_legacy(
                2 if max_retries is None else max_retries,
                retry_backoff_s or 0.0)
        options = ExecutorOptions(workers=workers, manifest_dir=manifest_dir,
                                  retry=retry,
                                  shard_timeout_s=shard_timeout_s,
                                  shard_size=shard_size,
                                  fault_hook=fault_hook,
                                  chaos=chaos,
                                  heartbeat_interval_s=heartbeat_interval_s,
                                  heartbeat_grace=heartbeat_grace,
                                  speculation_factor=speculation_factor,
                                  speculation_min_done=speculation_min_done)
        if fleet is not None and store is None:
            raise ConfigurationError(
                "fleet= provides warm lanes for store cache misses; it "
                "requires store=")
        spec = get_executor(executor)
        with chaos_active(chaos):
            if store is not None:
                from ..store.serve import run_with_store
                return run_with_store(self, source, engine, executor,
                                      options, store, fleet=fleet)
            return spec.runner(self, source, engine, options)


def _execute_lanes(programs: Sequence[Sequence[Scenario]], lanes: Sequence,
                   engine: str) -> List[LaneOutcome]:
    """Run lane programs on pre-built platforms with one engine.

    This is the campaign core loop, shared by every executor: the
    ``"local"`` executor calls it with all lanes in-process and the
    ``"sharded"`` executor calls it inside each worker with that shard's
    slice of the lanes.  Chunking policy: every round, each lane steps
    to its *own* next boundary — its next stop-condition check or
    scenario end, never a foreign lane's.  Engines that expose a fleet
    entry point (``batched``, ``compiled``) step all active lanes per
    call; the shorter lanes retire at their boundary (per-lane early
    exit) while the longer lanes run on, so a lane's step sequence is a
    pure function of its own program and its own stop outcomes.  That is what makes the
    traces invariant to packing: sequential replay, any fleet grouping
    and any shard partition all advance each lane through identical
    engine-call boundaries, hence bit-identical results.
    """
    spec = get_engine(engine)
    fs = lanes[0].config.sample_rate_hz
    states = [_LaneState(p, program, fs)
              for p, program in zip(lanes, programs)]
    for state in states:
        state.begin_next_scenario()
    active = [s for s in states if not s.done]
    while active:
        steps = [s.samples_to_boundary() for s in active]
        environments = [state.environment() for state in active]
        record = any(state.scenario.record_waveforms for state in active)
        if spec.fleet_runner is not None and (spec.batched or len(active) > 1):
            results = spec.run_fleet([state.platform for state in active],
                                     environments,
                                     [step / fs for step in steps],
                                     record_waveforms=record)
        else:
            results = [spec.run(state.platform, env, step / fs,
                                state.scenario.record_waveforms)
                       for state, env, step in zip(active, environments,
                                                   steps)]
        for state, result, step in zip(active, results, steps):
            state.advance(step, result)
        active = [s for s in active if not s.done]
    return [LaneOutcome(s.platform, s.outcomes) for s in states]
