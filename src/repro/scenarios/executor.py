"""Campaign execution backends: the executor registry and its members.

Engines (``repro.scenarios.engines``) decide *how one platform is
stepped*; executors decide *where the campaign's lanes run*:

* ``"local"`` — every lane in the calling process, the way campaigns
  have always run.
* ``"sharded"`` — the lane programs are partitioned into contiguous
  shards and farmed out to worker processes through
  :class:`concurrent.futures.ProcessPoolExecutor`.  What travels to a
  worker is pickled *descriptions* — scenario programs plus the lane
  source (base platform, per-lane platforms or a config) — never live
  simulator internals, and a platform survives a pickle round-trip
  bit-identically, so every shard replays exactly the simulation the
  local executor would have run and the assembled
  :class:`~repro.scenarios.campaign.CampaignResult` is bit-identical to
  the in-process one (equivalence-locked by test, the same discipline
  the engine registry lives under).

The sharded executor is crash-tolerant and chaos-hardened: a JSON batch
manifest (:mod:`repro.scenarios.manifest`) is written before any worker
starts, workers publish their results via atomic renames, and an
event-driven scheduler re-runs only the shards whose result files are
missing or fail digest verification.  The hardening mechanics, each
chaos-tested by :mod:`repro.chaos`:

* **Heartbeats** — every shard worker beats a liveness file from a
  background thread, so the scheduler tells a *dead* worker (crashed,
  frozen: heartbeat gone stale, reschedule immediately — no backoff,
  no waiting out ``shard_timeout_s``) from a *slow* one (heartbeat
  fresh: keep waiting up to the deadline).
* **Straggler speculation** — a shard running longer than
  ``speculation_factor`` × the median completed-shard duration gets a
  speculative backup attempt; whichever attempt's result file verifies
  first is credited (attempt files are *promoted* to the canonical
  result name only after digest verification, so a backup can never
  clobber a verified result, and a terminated straggler can never
  corrupt one).
* **Retry budgets** — re-launches are governed by a shared
  :class:`~repro.common.retry.RetryPolicy` (max attempts, exponential
  backoff with cap, optional deadline budget); every backoff is capped
  by the remaining deadline and skipped outright for known-dead
  workers, and the full attempt history (failure class + truncated
  traceback included) is recorded in the manifest.

A killed run therefore degrades into a resume: call ``Campaign.run``
again with the same ``manifest_dir`` and only unfinished shards are
simulated (verified canonical *and* stray attempt result files from the
dead run are credited without re-simulation).
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
import math
import multiprocessing
import os
import pickle
import statistics
import tempfile
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..chaos import runtime as _chaos
from ..common.exceptions import ConfigurationError, SimulationError
from ..common.retry import RetryPolicy
from .campaign import Campaign, CampaignResult, LaneOutcome, _execute_lanes
from .manifest import (
    ATTEMPT_CRASH,
    ATTEMPT_ERROR,
    ATTEMPT_HEARTBEAT_LOST,
    ATTEMPT_OK,
    ATTEMPT_RUNNING,
    ATTEMPT_SUPERSEDED,
    ATTEMPT_TIMEOUT,
    ATTEMPT_VERIFY_FAILED,
    SHARD_DONE,
    SHARD_FAILED,
    CampaignManifest,
    ShardRecord,
    write_error_report,
    write_shard_payload,
)

EXECUTOR_LOCAL = "local"
EXECUTOR_SHARDED = "sharded"


@dataclasses.dataclass(frozen=True)
class ExecutorOptions:
    """Per-run knobs consumed by the executors (see ``Campaign.run``)."""

    workers: Optional[int] = None
    manifest_dir: Optional[str] = None
    retry: Optional[RetryPolicy] = None
    shard_timeout_s: Optional[float] = None
    shard_size: Optional[int] = None
    fault_hook: Optional[Callable] = None
    chaos: Optional[object] = None
    heartbeat_interval_s: float = 0.5
    heartbeat_grace: float = 6.0
    speculation_factor: Optional[float] = 4.0
    speculation_min_done: int = 2
    poll_interval_s: float = 0.02


@dataclasses.dataclass
class LaneSource:
    """Where a campaign's lane platforms come from.

    Captures the ``platform`` / ``platforms`` / ``config`` choice of
    ``Campaign.run`` without materialising anything, so the sharded
    executor can ship each worker only its own slice and materialise
    lanes worker-side.  A pickle round-trip preserves platform state
    bit-for-bit, so worker-side materialisation equals local
    materialisation exactly.
    """

    mode: str                   # "platform" | "platforms" | "config"
    base: object
    mutate: bool = False

    @classmethod
    def resolve(cls, platform, platforms, config, mutate: bool,
                n_lanes: int) -> "LaneSource":
        given = [x is not None for x in (platform, platforms, config)]
        if sum(given) != 1:
            raise ConfigurationError(
                "give exactly one of platform, platforms or config")
        if platforms is not None:
            if mutate:
                raise ConfigurationError(
                    "mutate only applies when branching from one platform")
            platforms = list(platforms)
            if len(platforms) != n_lanes:
                raise ConfigurationError(
                    f"got {len(platforms)} platforms for {n_lanes} lanes")
            return cls("platforms", platforms)
        if config is not None:
            if mutate:
                raise ConfigurationError(
                    "mutate only applies when branching from one platform")
            return cls("config", config)
        if mutate and n_lanes != 1:
            raise ConfigurationError(
                "mutate=True requires a single-lane campaign")
        return cls("platform", platform, mutate)

    def default_engine(self) -> str:
        """The configured engine of the (first) base platform."""
        if self.mode == "platforms":
            return self.base[0].config.engine
        if self.mode == "config":
            return self.base.engine
        return self.base.config.engine

    def materialize(self, indices: Sequence[int]) -> list:
        """Build the lane platforms for the given campaign lane indices."""
        if self.mode == "platforms":
            return [self.base[i] for i in indices]
        if self.mode == "config":
            from ..platform.gyro_platform import GyroPlatform
            return [GyroPlatform(copy.deepcopy(self.base)) for _ in indices]
        if self.mutate:
            return [self.base]
        return [copy.deepcopy(self.base) for _ in indices]

    def subset(self, indices: Sequence[int]) -> "LaneSource":
        """The slice of this source one shard needs (for its payload)."""
        if self.mode == "platforms":
            return LaneSource("platforms", [self.base[i] for i in indices])
        return LaneSource(self.mode, self.base)

    def digest(self) -> str:
        """Content digest of the lane source for resume verification."""
        blob = pickle.dumps((self.mode, self.base),
                            protocol=pickle.HIGHEST_PROTOCOL)
        return hashlib.sha256(blob).hexdigest()[:16]

    def lane_digests(self, n_lanes: int) -> List[str]:
        """Per-lane content digests of the starting state (store keys).

        Two lanes key identically exactly when they start from the same
        platform state (or are built from the same configuration): with
        a shared base (``platform`` / ``config`` mode) every lane gets
        the same digest; with pre-built ``platforms`` each lane digests
        its own platform, so heterogeneous fleets (e.g. the DSE sweep's
        per-point configurations) never alias.  Platform state pickles
        deterministically, so the digests are stable across process
        restarts — the property the result store's keys rely on.
        """
        if self.mode == "platforms":
            return ["platforms:" + _state_digest(platform)
                    for platform in self.base]
        digest = f"{self.mode}:{_state_digest(self.base)}"
        return [digest] * n_lanes


def _state_digest(obj) -> str:
    """SHA-256 over an object's *normalized* pickle bytes.

    Raw pickle bytes depend on object-graph sharing: a platform that was
    itself unpickled can lose (or gain) shared sub-objects — a dtype
    instance referenced by two arrays, say — and re-pickle to different
    bytes than the freshly constructed equivalent.  One dump/load round
    trip normalizes the graph (``dumps ∘ loads`` is a fixed point), so
    the digest is stable across process restarts and across
    pickle/unpickle round trips of the platform.
    """
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    blob = pickle.dumps(pickle.loads(blob),
                        protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(blob).hexdigest()


@dataclasses.dataclass(frozen=True)
class ExecutorSpec:
    """One registered campaign execution backend.

    Attributes:
        name: registry key (the ``executor=`` value of ``Campaign.run``).
        parallel: whether the executor fans lanes out across processes.
        description: one-line summary for error messages and reports.
        runner: entry point ``runner(campaign, source, engine, options)``
            returning a :class:`CampaignResult`.
    """

    name: str
    parallel: bool
    description: str
    runner: Callable


_REGISTRY: Dict[str, ExecutorSpec] = {}


def register_executor(spec: ExecutorSpec) -> None:
    """Register an executor (rejects duplicate names)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(
            f"executor {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def executor_names() -> Tuple[str, ...]:
    """Names of the registered executors."""
    return tuple(_REGISTRY)


def get_executor(name: str) -> ExecutorSpec:
    """Resolve an executor name, raising ``ConfigurationError`` on miss."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown executor {name!r}; available executors: "
            f"{', '.join(sorted(_REGISTRY))}")
    return spec


def validate_executor(name: str) -> str:
    """Validate an executor name and return it unchanged."""
    get_executor(name)
    return name


# ---------------------------------------------------------------------------
# local executor
# ---------------------------------------------------------------------------

def _run_local(campaign: Campaign, source: LaneSource, engine: str,
               options: ExecutorOptions) -> CampaignResult:
    if options.workers not in (None, 1):
        raise ConfigurationError(
            "the local executor runs in-process; pass executor='sharded' "
            "(or just workers=N) to fan lanes out over worker processes")
    lanes = source.materialize(range(len(campaign.programs)))
    return CampaignResult(_execute_lanes(campaign.programs, lanes, engine))


# ---------------------------------------------------------------------------
# sharded executor
# ---------------------------------------------------------------------------

class _HeartbeatWriter:
    """Background thread beating a JSON liveness file for one attempt.

    The beat is a tmp-write + atomic rename, so the parent never reads a
    torn heartbeat; its staleness check only consults the file's mtime.
    A crash (``os._exit``, SIGKILL) takes the thread down with the
    process and the file goes stale — exactly the signal the scheduler
    uses to tell *dead* from *slow*.
    """

    def __init__(self, path: str, interval_s: float, shard_id: int,
                 attempt: int):
        self.path = path
        self.interval_s = interval_s
        self.shard_id = shard_id
        self.attempt = attempt
        self._sequence = 0
        self._halt = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, daemon=True,
            name=f"heartbeat-shard-{shard_id}")

    def start(self) -> None:
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        self._beat()
        self._thread.start()

    def stop(self) -> None:
        self._halt.set()
        if self._thread.is_alive():
            self._thread.join(timeout=2 * self.interval_s)

    def _loop(self) -> None:
        while not self._halt.wait(self.interval_s):
            self._beat()

    def _beat(self) -> None:
        self._sequence += 1
        tmp = f"{self.path}.tmp-{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"shard_id": self.shard_id,
                           "attempt": self.attempt,
                           "pid": os.getpid(),
                           "sequence": self._sequence,
                           "time_unix": time.time()}, fh)
            os.replace(tmp, self.path)
        except OSError:
            # a failing heartbeat must never kill the simulation; a
            # silent worker is at worst declared dead and rescheduled
            pass


def _shard_worker_main(task: dict) -> None:
    """Worker process entry point: beat, simulate, publish, exit.

    Everything it needs arrived pickled in ``task``; the outcome
    (including each lane's final platform) goes to the *attempt* result
    file via an atomic rename, never back over a pipe — the parent
    digest-verifies that file and promotes it to the canonical shard
    result, so a worker that dies after publishing still counts as done
    and a corrupt publish can never be credited.  Failures are reported
    through an error file (exception class + truncated traceback) and a
    non-zero exit code.
    """
    heartbeat = _HeartbeatWriter(task["heartbeat_path"],
                                 task["heartbeat_interval_s"],
                                 task["shard_id"], task["attempt"])
    if task.get("chaos") is not None:
        _chaos.activate(task["chaos"])
    try:
        heartbeat.start()
        _chaos.fire("worker.start", shard=task["shard_id"],
                    attempt=task["attempt"], heartbeat=heartbeat)
        if task["fault_hook"] is not None:
            task["fault_hook"](task["shard_id"], task["attempt"])
        source: LaneSource = task["source"]
        lanes = source.materialize(range(len(task["programs"])))
        outcomes = _execute_lanes(task["programs"], lanes, task["engine"])
        write_shard_payload(task["result_path"], {
            "shard_id": task["shard_id"],
            "attempt": task["attempt"],
            "lane_indices": task["lane_indices"],
            "digests": task["digests"],
            "outcomes": outcomes,
        })
    except BaseException as exc:
        write_error_report(task["error_path"], exc)
        heartbeat.stop()
        os._exit(1)
    heartbeat.stop()


def _partition(n_lanes: int, workers: int,
               shard_size: Optional[int]) -> List[List[int]]:
    """Contiguous lane blocks, spread evenly over the workers."""
    if shard_size is None:
        shard_size = math.ceil(n_lanes / workers)
    if shard_size < 1:
        raise ConfigurationError("shard_size must be >= 1")
    return [list(range(lo, min(lo + shard_size, n_lanes)))
            for lo in range(0, n_lanes, shard_size)]


def _check_picklable(campaign: Campaign, source: LaneSource,
                     options: ExecutorOptions) -> str:
    """Pickle-compatibility check and lane-source digest in one pass.

    The lane source (typically the largest payload — whole platform
    objects) is pickled exactly once and the bytes reused for the
    manifest's resume-verification digest, instead of a second full
    pickle through :meth:`LaneSource.digest`.  The digest bytes are
    identical to ``source.digest()``.
    """
    try:
        source_blob = pickle.dumps((source.mode, source.base),
                                   protocol=pickle.HIGHEST_PROTOCOL)
        pickle.dumps((campaign.programs, options.fault_hook,
                      options.chaos),
                     protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ConfigurationError(
            "the sharded executor ships lane programs to worker processes "
            "by pickling them; every stop condition, metric extractor, "
            "fault hook and chaos model must be picklable (the scenario "
            "and chaos libraries' are — lambdas and closures are not): "
            f"{exc}") from exc
    return hashlib.sha256(source_blob).hexdigest()[:16]


def _terminate_process(process) -> None:
    """Stop a worker process, escalating from terminate to kill."""
    if process.is_alive():
        process.terminate()
        process.join(timeout=1.0)
    if process.is_alive():
        process.kill()
        process.join(timeout=1.0)


def _run_sharded(campaign: Campaign, source: LaneSource, engine: str,
                 options: ExecutorOptions) -> CampaignResult:
    if source.mutate:
        raise ConfigurationError(
            "mutate=True runs on the caller's platform object and cannot "
            "cross process boundaries; use the local executor")
    source_digest = _check_picklable(campaign, source, options)
    workers = options.workers or max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    policy = options.retry or RetryPolicy()
    n_lanes = len(campaign.programs)
    partition = _partition(n_lanes, workers, options.shard_size)
    digests = [[s.digest() for s in program]
               for program in campaign.programs]
    shards = [ShardRecord(shard_id=k, lane_indices=indices,
                          digests=[digests[i] for i in indices])
              for k, indices in enumerate(partition)]
    directory = options.manifest_dir or tempfile.mkdtemp(
        prefix="repro-campaign-")
    manifest = policy.call(lambda: CampaignManifest.create_or_resume(
        str(directory), campaign.name, engine, source_digest, shards,
        retry=policy.to_dict()))
    policy.call(manifest.write)

    # resume scan: credit shards whose canonical result file already
    # exists and verifies (a previous run's completed work), and salvage
    # verified *attempt* files a killed run published but never promoted
    recovered = False
    for shard in manifest.unfinished():
        payload = (manifest.load_shard_result(shard)
                   or manifest.salvage_attempt_result(shard))
        if payload is not None:
            shard.status = SHARD_DONE
            shard.error = None
            recovered = True
    if recovered:
        policy.call(manifest.write)

    _ShardScheduler(manifest, campaign, source, engine, options, policy,
                    workers).run()

    # shards still unfinished after the retry budget are quarantined: the
    # campaign completes with partial results and an explicit failure
    # report (attempt history included) instead of discarding the shards
    # that did succeed
    failed_shards = [
        {"shard_id": s.shard_id,
         "lane_indices": list(s.lane_indices),
         "attempts": s.attempts,
         "error": s.error or "no result file",
         "history": [dict(entry) for entry in s.history]}
        for s in manifest.unfinished()]

    lane_outcomes: List[Optional[LaneOutcome]] = [None] * n_lanes
    for shard in manifest.shards:
        if shard.status != SHARD_DONE:
            continue
        payload = manifest.load_shard_result(shard)
        if payload is None:
            raise SimulationError(
                f"shard {shard.shard_id} is marked done but its result "
                f"file failed verification; delete {manifest.directory!r} "
                "and re-run")
        for index, outcome in zip(shard.lane_indices, payload["outcomes"]):
            lane_outcomes[index] = outcome
    return CampaignResult(lane_outcomes, failed_shards=failed_shards)


class _AttemptHandle:
    """One live (or just-finished) worker attempt the scheduler tracks."""

    __slots__ = ("record", "number", "speculative", "process",
                 "started_monotonic", "heartbeat_path", "finished")

    def __init__(self, record: ShardRecord, number: int, speculative: bool,
                 process, heartbeat_path: str):
        self.record = record
        self.number = number
        self.speculative = speculative
        self.process = process
        self.started_monotonic = time.monotonic()
        self.heartbeat_path = heartbeat_path
        self.finished = False


class _ShardScheduler:
    """Event-driven per-attempt scheduler for the sharded executor.

    Replaces the old lock-step retry *rounds* (which slept out a global
    exponential backoff between rounds and waited the full shard timeout
    on crashed workers).  Each shard attempt is its own
    ``multiprocessing.Process``; the scheduler polls them all, credits
    verified results the moment they land, distinguishes dead workers
    from slow ones via heartbeat staleness, launches speculative backups
    for stragglers, and reschedules failures per the
    :class:`~repro.common.retry.RetryPolicy` — each backoff capped by
    the remaining deadline budget and skipped entirely for known-dead
    workers.
    """

    def __init__(self, manifest: CampaignManifest, campaign: Campaign,
                 source: LaneSource, engine: str, options: ExecutorOptions,
                 policy: RetryPolicy, workers: int):
        self.manifest = manifest
        self.campaign = campaign
        self.source = source
        self.engine = engine
        self.options = options
        self.policy = policy
        self.workers = workers
        try:
            self.mp_context = multiprocessing.get_context("fork")
        except ValueError:        # platforms without fork
            self.mp_context = multiprocessing.get_context()
        self.running: List[_AttemptHandle] = []
        self.completed_durations: List[float] = []
        self.started_monotonic = time.monotonic()
        # shard_id -> mutable slot state; "launched" counts this run's
        # attempts (the retry budget is per run, so a resumed campaign
        # gets a fresh budget while record.attempts stays cumulative)
        self.slots: Dict[int, dict] = {}
        self.dead_after_s = max(
            options.heartbeat_interval_s * options.heartbeat_grace,
            4 * options.poll_interval_s)
        # a freshly forked worker needs time for its first beat (import
        # and fork latency on a loaded host), so silence is measured
        # against a larger allowance until the first beat lands
        self.startup_grace_s = self.dead_after_s + 10.0

    # -- main loop ----------------------------------------------------------

    def run(self) -> None:
        for record in self.manifest.unfinished():
            self.slots[record.shard_id] = {
                "record": record, "eligible": 0.0, "launched": 0,
                "pending": True, "quarantined": False}
        if not self.slots:
            return
        os.makedirs(self.manifest.heartbeat_dir, exist_ok=True)
        while True:
            progressed = self._harvest()
            progressed |= self._launch_eligible()
            if not self.running and not any(
                    slot["pending"] for slot in self.slots.values()):
                break
            if not progressed:
                time.sleep(self.options.poll_interval_s)

    # -- harvesting ---------------------------------------------------------

    def _harvest(self) -> bool:
        progressed = False
        for attempt in list(self.running):
            if attempt.finished:
                continue
            if self._try_credit(attempt):
                progressed = True
                continue
            process = attempt.process
            runtime = time.monotonic() - attempt.started_monotonic
            if not process.is_alive():
                process.join()
                # the worker may have published in the window since the
                # last poll — credit before declaring the attempt failed
                if self._try_credit(attempt):
                    progressed = True
                    continue
                self._harvest_dead(attempt)
                progressed = True
                continue
            silence = self._heartbeat_silence(attempt, runtime)
            if silence is not None:
                # alive by is_alive() but not beating: frozen or wedged.
                # Declare it dead now instead of waiting out the shard
                # timeout; known-dead reschedules skip the backoff too.
                _terminate_process(process)
                self._fail(attempt, ATTEMPT_HEARTBEAT_LOST,
                           f"no heartbeat for {silence:.2f} s (interval "
                           f"{self.options.heartbeat_interval_s} s); "
                           "worker declared dead")
                progressed = True
                continue
            if (self.options.shard_timeout_s is not None
                    and runtime > self.options.shard_timeout_s):
                _terminate_process(process)
                self._fail(attempt, ATTEMPT_TIMEOUT,
                           f"timed out after {self.options.shard_timeout_s}"
                           " s")
                progressed = True
                continue
            self._maybe_speculate(attempt, runtime)
        self.running = [a for a in self.running if not a.finished]
        return progressed

    def _heartbeat_silence(self, attempt: _AttemptHandle,
                           runtime: float) -> Optional[float]:
        """Seconds of heartbeat silence past the allowance, else None."""
        try:
            age = time.time() - os.path.getmtime(attempt.heartbeat_path)
        except OSError:
            # no beat published yet: measure against the startup grace
            return runtime if runtime > self.startup_grace_s else None
        return age if age > self.dead_after_s else None

    def _try_credit(self, attempt: _AttemptHandle) -> bool:
        record = attempt.record
        payload = self.manifest.promote_attempt_result(record,
                                                       attempt.number)
        if payload is None:
            return False
        duration = time.monotonic() - attempt.started_monotonic
        self._finish_entry(attempt, ATTEMPT_OK)
        attempt.finished = True
        record.status = SHARD_DONE
        record.error = None
        self.completed_durations.append(duration)
        slot = self.slots[record.shard_id]
        slot["pending"] = False
        # the speculative race (if any) is settled by verification: the
        # loser is terminated and can never touch the canonical result,
        # because workers only ever write attempt-private files
        for sibling in self.running:
            if (sibling.finished or sibling is attempt
                    or sibling.record.shard_id != record.shard_id):
                continue
            _terminate_process(sibling.process)
            self._finish_entry(sibling, ATTEMPT_SUPERSEDED)
            sibling.finished = True
        if attempt.process.is_alive():
            attempt.process.join(timeout=2.0)
        self.manifest.clear_attempt_files(record)
        self.policy.call(self.manifest.write)
        return True

    def _harvest_dead(self, attempt: _AttemptHandle) -> None:
        record = attempt.record
        report = self.manifest.load_attempt_error(record.shard_id,
                                                  attempt.number)
        exitcode = attempt.process.exitcode
        if report is not None:
            self._fail(attempt, ATTEMPT_ERROR,
                       f"{report['type']}: {report['message']}",
                       report=report)
        elif exitcode == 0:
            self._fail(attempt, ATTEMPT_VERIFY_FAILED,
                       "worker exited cleanly but its result file is "
                       "missing or failed verification")
        else:
            self._fail(attempt, ATTEMPT_CRASH,
                       f"worker died with exit code {exitcode} before "
                       "publishing a result")

    def _fail(self, attempt: _AttemptHandle, outcome: str, message: str,
              report: Optional[dict] = None) -> None:
        record = attempt.record
        self._finish_entry(attempt, outcome, report)
        attempt.finished = True
        if record.status != SHARD_DONE:
            record.status = SHARD_FAILED
            record.error = f"attempt {attempt.number}: {message}"
            if not self._live_attempts(record.shard_id):
                self._schedule_or_quarantine(record, outcome)
        self.policy.call(self.manifest.write)

    def _schedule_or_quarantine(self, record: ShardRecord,
                                outcome: str) -> None:
        slot = self.slots[record.shard_id]
        now = time.monotonic()
        remaining = self.policy.remaining(self.started_monotonic, now)
        if slot["launched"] >= self.policy.max_attempts:
            slot["pending"] = False
            slot["quarantined"] = True
            return
        if remaining is not None and remaining <= 0:
            slot["pending"] = False
            slot["quarantined"] = True
            record.error = (f"{record.error} [deadline budget "
                            f"{self.policy.deadline_s} s exhausted]")
            return
        if outcome in (ATTEMPT_CRASH, ATTEMPT_HEARTBEAT_LOST):
            # the worker is known dead — there is no host pressure to
            # wait out, so reschedule immediately
            delay = 0.0
        else:
            delay = self.policy.delay_for(slot["launched"])
            if remaining is not None:
                delay = min(delay, remaining)
        slot["eligible"] = now + delay

    def _finish_entry(self, attempt: _AttemptHandle, outcome: str,
                      report: Optional[dict] = None) -> None:
        entry = attempt.record.attempt_entry(attempt.number)
        if entry is None:
            return
        entry["outcome"] = outcome
        entry["ended_unix"] = time.time()
        entry["duration_s"] = round(
            time.monotonic() - attempt.started_monotonic, 6)
        if report is not None:
            entry["error"] = report

    def _live_attempts(self, shard_id: int) -> List[_AttemptHandle]:
        return [a for a in self.running
                if not a.finished and a.record.shard_id == shard_id]

    # -- launching ----------------------------------------------------------

    def _launch_eligible(self) -> bool:
        progressed = False
        now = time.monotonic()
        for slot in self.slots.values():
            if len(self.running) >= self.workers:
                break
            if not slot["pending"] or slot["quarantined"]:
                continue
            if slot["eligible"] > now or self._live_attempts(
                    slot["record"].shard_id):
                continue
            self._launch(slot, speculative=False)
            progressed = True
        return progressed

    def _maybe_speculate(self, attempt: _AttemptHandle,
                         runtime: float) -> None:
        """Launch a speculative backup for a straggling attempt."""
        factor = self.options.speculation_factor
        if factor is None or attempt.speculative:
            return
        record = attempt.record
        slot = self.slots[record.shard_id]
        if (slot["launched"] >= self.policy.max_attempts
                or len(self._live_attempts(record.shard_id)) > 1
                or len(self.completed_durations)
                < self.options.speculation_min_done
                or len(self.running) >= self.workers):
            return
        median = statistics.median(self.completed_durations)
        if runtime <= factor * max(median, self.options.poll_interval_s):
            return
        self._launch(slot, speculative=True)

    def _launch(self, slot: dict, speculative: bool) -> None:
        record: ShardRecord = slot["record"]
        record.attempts += 1
        slot["launched"] += 1
        number = record.attempts
        task = {
            "shard_id": record.shard_id,
            "attempt": number,
            "engine": self.engine,
            "programs": [self.campaign.programs[i]
                         for i in record.lane_indices],
            "lane_indices": record.lane_indices,
            "digests": record.digests,
            "source": self.source.subset(record.lane_indices),
            "result_path": self.manifest.attempt_result_path(
                record.shard_id, number),
            "error_path": self.manifest.attempt_error_path(
                record.shard_id, number),
            "heartbeat_path": self.manifest.heartbeat_path(
                record.shard_id, number),
            "heartbeat_interval_s": self.options.heartbeat_interval_s,
            "fault_hook": self.options.fault_hook,
            "chaos": self.options.chaos,
        }
        process = self.mp_context.Process(
            target=_shard_worker_main, args=(task,), daemon=True)
        process.start()
        handle = _AttemptHandle(record, number, speculative, process,
                                task["heartbeat_path"])
        record.history.append({
            "attempt": number,
            "speculative": speculative,
            "pid": process.pid,
            "started_unix": time.time(),
            "ended_unix": None,
            "duration_s": None,
            "outcome": ATTEMPT_RUNNING,
        })
        self.running.append(handle)
        self.policy.call(self.manifest.write)


register_executor(ExecutorSpec(
    EXECUTOR_LOCAL, parallel=False,
    description="runs every lane in the calling process",
    runner=_run_local))
register_executor(ExecutorSpec(
    EXECUTOR_SHARDED, parallel=True,
    description="partitions lanes into shards across worker processes "
                "with a resumable batch manifest",
    runner=_run_sharded))
