"""Campaign execution backends: the executor registry and its members.

Engines (``repro.scenarios.engines``) decide *how one platform is
stepped*; executors decide *where the campaign's lanes run*:

* ``"local"`` — every lane in the calling process, the way campaigns
  have always run.
* ``"sharded"`` — the lane programs are partitioned into contiguous
  shards and farmed out to worker processes through
  :class:`concurrent.futures.ProcessPoolExecutor`.  What travels to a
  worker is pickled *descriptions* — scenario programs plus the lane
  source (base platform, per-lane platforms or a config) — never live
  simulator internals, and a platform survives a pickle round-trip
  bit-identically, so every shard replays exactly the simulation the
  local executor would have run and the assembled
  :class:`~repro.scenarios.campaign.CampaignResult` is bit-identical to
  the in-process one (equivalence-locked by test, the same discipline
  the engine registry lives under).

The sharded executor is crash-tolerant: a JSON batch manifest
(:mod:`repro.scenarios.manifest`) is written before any worker starts,
workers publish their results via atomic renames, and a
verify-and-retry loop re-runs only the shards whose result files are
missing or fail digest verification — up to ``max_retries`` times, with
an optional per-shard timeout.  A killed run therefore degrades into a
resume: call ``Campaign.run`` again with the same ``manifest_dir`` and
only unfinished shards are simulated.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import math
import multiprocessing
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..common.exceptions import ConfigurationError, SimulationError
from .campaign import Campaign, CampaignResult, LaneOutcome, _execute_lanes
from .manifest import (
    SHARD_DONE,
    SHARD_FAILED,
    CampaignManifest,
    ShardRecord,
    write_shard_payload,
)

EXECUTOR_LOCAL = "local"
EXECUTOR_SHARDED = "sharded"


@dataclasses.dataclass(frozen=True)
class ExecutorOptions:
    """Per-run knobs consumed by the executors (see ``Campaign.run``)."""

    workers: Optional[int] = None
    manifest_dir: Optional[str] = None
    max_retries: int = 2
    retry_backoff_s: float = 0.0
    shard_timeout_s: Optional[float] = None
    shard_size: Optional[int] = None
    fault_hook: Optional[Callable] = None


@dataclasses.dataclass
class LaneSource:
    """Where a campaign's lane platforms come from.

    Captures the ``platform`` / ``platforms`` / ``config`` choice of
    ``Campaign.run`` without materialising anything, so the sharded
    executor can ship each worker only its own slice and materialise
    lanes worker-side.  A pickle round-trip preserves platform state
    bit-for-bit, so worker-side materialisation equals local
    materialisation exactly.
    """

    mode: str                   # "platform" | "platforms" | "config"
    base: object
    mutate: bool = False

    @classmethod
    def resolve(cls, platform, platforms, config, mutate: bool,
                n_lanes: int) -> "LaneSource":
        given = [x is not None for x in (platform, platforms, config)]
        if sum(given) != 1:
            raise ConfigurationError(
                "give exactly one of platform, platforms or config")
        if platforms is not None:
            if mutate:
                raise ConfigurationError(
                    "mutate only applies when branching from one platform")
            platforms = list(platforms)
            if len(platforms) != n_lanes:
                raise ConfigurationError(
                    f"got {len(platforms)} platforms for {n_lanes} lanes")
            return cls("platforms", platforms)
        if config is not None:
            if mutate:
                raise ConfigurationError(
                    "mutate only applies when branching from one platform")
            return cls("config", config)
        if mutate and n_lanes != 1:
            raise ConfigurationError(
                "mutate=True requires a single-lane campaign")
        return cls("platform", platform, mutate)

    def default_engine(self) -> str:
        """The configured engine of the (first) base platform."""
        if self.mode == "platforms":
            return self.base[0].config.engine
        if self.mode == "config":
            return self.base.engine
        return self.base.config.engine

    def materialize(self, indices: Sequence[int]) -> list:
        """Build the lane platforms for the given campaign lane indices."""
        if self.mode == "platforms":
            return [self.base[i] for i in indices]
        if self.mode == "config":
            from ..platform.gyro_platform import GyroPlatform
            return [GyroPlatform(copy.deepcopy(self.base)) for _ in indices]
        if self.mutate:
            return [self.base]
        return [copy.deepcopy(self.base) for _ in indices]

    def subset(self, indices: Sequence[int]) -> "LaneSource":
        """The slice of this source one shard needs (for its payload)."""
        if self.mode == "platforms":
            return LaneSource("platforms", [self.base[i] for i in indices])
        return LaneSource(self.mode, self.base)

    def digest(self) -> str:
        """Content digest of the lane source for resume verification."""
        blob = pickle.dumps((self.mode, self.base),
                            protocol=pickle.HIGHEST_PROTOCOL)
        return hashlib.sha256(blob).hexdigest()[:16]

    def lane_digests(self, n_lanes: int) -> List[str]:
        """Per-lane content digests of the starting state (store keys).

        Two lanes key identically exactly when they start from the same
        platform state (or are built from the same configuration): with
        a shared base (``platform`` / ``config`` mode) every lane gets
        the same digest; with pre-built ``platforms`` each lane digests
        its own platform, so heterogeneous fleets (e.g. the DSE sweep's
        per-point configurations) never alias.  Platform state pickles
        deterministically, so the digests are stable across process
        restarts — the property the result store's keys rely on.
        """
        if self.mode == "platforms":
            return ["platforms:" + _state_digest(platform)
                    for platform in self.base]
        digest = f"{self.mode}:{_state_digest(self.base)}"
        return [digest] * n_lanes


def _state_digest(obj) -> str:
    """SHA-256 over an object's *normalized* pickle bytes.

    Raw pickle bytes depend on object-graph sharing: a platform that was
    itself unpickled can lose (or gain) shared sub-objects — a dtype
    instance referenced by two arrays, say — and re-pickle to different
    bytes than the freshly constructed equivalent.  One dump/load round
    trip normalizes the graph (``dumps ∘ loads`` is a fixed point), so
    the digest is stable across process restarts and across
    pickle/unpickle round trips of the platform.
    """
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    blob = pickle.dumps(pickle.loads(blob),
                        protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(blob).hexdigest()


@dataclasses.dataclass(frozen=True)
class ExecutorSpec:
    """One registered campaign execution backend.

    Attributes:
        name: registry key (the ``executor=`` value of ``Campaign.run``).
        parallel: whether the executor fans lanes out across processes.
        description: one-line summary for error messages and reports.
        runner: entry point ``runner(campaign, source, engine, options)``
            returning a :class:`CampaignResult`.
    """

    name: str
    parallel: bool
    description: str
    runner: Callable


_REGISTRY: Dict[str, ExecutorSpec] = {}


def register_executor(spec: ExecutorSpec) -> None:
    """Register an executor (rejects duplicate names)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(
            f"executor {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def executor_names() -> Tuple[str, ...]:
    """Names of the registered executors."""
    return tuple(_REGISTRY)


def get_executor(name: str) -> ExecutorSpec:
    """Resolve an executor name, raising ``ConfigurationError`` on miss."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown executor {name!r}; available executors: "
            f"{', '.join(sorted(_REGISTRY))}")
    return spec


def validate_executor(name: str) -> str:
    """Validate an executor name and return it unchanged."""
    get_executor(name)
    return name


# ---------------------------------------------------------------------------
# local executor
# ---------------------------------------------------------------------------

def _run_local(campaign: Campaign, source: LaneSource, engine: str,
               options: ExecutorOptions) -> CampaignResult:
    if options.workers not in (None, 1):
        raise ConfigurationError(
            "the local executor runs in-process; pass executor='sharded' "
            "(or just workers=N) to fan lanes out over worker processes")
    lanes = source.materialize(range(len(campaign.programs)))
    return CampaignResult(_execute_lanes(campaign.programs, lanes, engine))


# ---------------------------------------------------------------------------
# sharded executor
# ---------------------------------------------------------------------------

def _run_shard(task: dict) -> int:
    """Worker entry point: simulate one shard and publish its results.

    Runs in a worker process.  Everything it needs arrived pickled in
    ``task``; the outcome (including each lane's final platform) goes to
    the shard's result file via an atomic rename, never back over the
    pipe — so a worker that dies after publishing still counts as done.
    """
    if task["fault_hook"] is not None:
        task["fault_hook"](task["shard_id"], task["attempt"])
    source: LaneSource = task["source"]
    lanes = source.materialize(range(len(task["programs"])))
    outcomes = _execute_lanes(task["programs"], lanes, task["engine"])
    write_shard_payload(task["result_path"], {
        "shard_id": task["shard_id"],
        "lane_indices": task["lane_indices"],
        "digests": task["digests"],
        "outcomes": outcomes,
    })
    return task["shard_id"]


def _partition(n_lanes: int, workers: int,
               shard_size: Optional[int]) -> List[List[int]]:
    """Contiguous lane blocks, spread evenly over the workers."""
    if shard_size is None:
        shard_size = math.ceil(n_lanes / workers)
    if shard_size < 1:
        raise ConfigurationError("shard_size must be >= 1")
    return [list(range(lo, min(lo + shard_size, n_lanes)))
            for lo in range(0, n_lanes, shard_size)]


def _check_picklable(campaign: Campaign, source: LaneSource,
                     options: ExecutorOptions) -> None:
    try:
        pickle.dumps((campaign.programs, source, options.fault_hook),
                     protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ConfigurationError(
            "the sharded executor ships lane programs to worker processes "
            "by pickling them; every stop condition and metric extractor "
            "must be picklable (the scenario library's are — lambdas and "
            f"closures are not): {exc}") from exc


def _run_sharded(campaign: Campaign, source: LaneSource, engine: str,
                 options: ExecutorOptions) -> CampaignResult:
    if source.mutate:
        raise ConfigurationError(
            "mutate=True runs on the caller's platform object and cannot "
            "cross process boundaries; use the local executor")
    _check_picklable(campaign, source, options)
    workers = options.workers or max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    n_lanes = len(campaign.programs)
    partition = _partition(n_lanes, workers, options.shard_size)
    digests = [[s.digest() for s in program]
               for program in campaign.programs]
    shards = [ShardRecord(shard_id=k, lane_indices=indices,
                          digests=[digests[i] for i in indices])
              for k, indices in enumerate(partition)]
    directory = options.manifest_dir or tempfile.mkdtemp(
        prefix="repro-campaign-")
    manifest = CampaignManifest.create_or_resume(
        str(directory), campaign.name, engine, source.digest(), shards,
        retry={"max_retries": options.max_retries,
               "retry_backoff_s": options.retry_backoff_s})
    manifest.write()

    # verify-and-retry loop: each round first credits shards whose result
    # files already exist and verify (a previous run's completed work, or
    # a timed-out worker that finished late), then re-runs the rest —
    # waiting out an exponential backoff between retry rounds so a
    # transiently overloaded host gets room to recover
    for round_index in range(options.max_retries + 1):
        recovered = False
        for shard in manifest.unfinished():
            if manifest.load_shard_result(shard) is not None:
                shard.status = SHARD_DONE
                shard.error = None
                recovered = True
        if recovered:
            manifest.write()
        todo = manifest.unfinished()
        if not todo:
            break
        if round_index and options.retry_backoff_s > 0:
            time.sleep(options.retry_backoff_s * (2 ** (round_index - 1)))
        _run_round(manifest, campaign, source, engine, options, todo,
                   workers)

    # shards still unfinished after the last retry are quarantined: the
    # campaign completes with partial results and an explicit failure
    # report instead of discarding the shards that did succeed
    failed_shards = [
        {"shard_id": s.shard_id,
         "lane_indices": list(s.lane_indices),
         "attempts": s.attempts,
         "error": s.error or "no result file"}
        for s in manifest.unfinished()]

    lane_outcomes: List[Optional[LaneOutcome]] = [None] * n_lanes
    for shard in manifest.shards:
        if shard.status != SHARD_DONE:
            continue
        payload = manifest.load_shard_result(shard)
        if payload is None:
            raise SimulationError(
                f"shard {shard.shard_id} is marked done but its result "
                f"file failed verification; delete {manifest.directory!r} "
                "and re-run")
        for index, outcome in zip(shard.lane_indices, payload["outcomes"]):
            lane_outcomes[index] = outcome
    return CampaignResult(lane_outcomes, failed_shards=failed_shards)


def _run_round(manifest: CampaignManifest, campaign: Campaign,
               source: LaneSource, engine: str, options: ExecutorOptions,
               todo: List[ShardRecord], workers: int) -> None:
    """Launch one attempt of every unfinished shard and harvest results."""
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:        # platforms without fork
        mp_context = multiprocessing.get_context()
    pool = ProcessPoolExecutor(max_workers=min(workers, len(todo)),
                               mp_context=mp_context)
    futures = {}
    for shard in todo:
        shard.attempts += 1
        futures[pool.submit(_run_shard, {
            "shard_id": shard.shard_id,
            "attempt": shard.attempts,
            "engine": engine,
            "programs": [campaign.programs[i] for i in shard.lane_indices],
            "lane_indices": shard.lane_indices,
            "digests": shard.digests,
            "source": source.subset(shard.lane_indices),
            "result_path": manifest.shard_result_path(shard.shard_id),
            "fault_hook": options.fault_hook,
        })] = shard
    manifest.write()
    timed_out = False
    for future, shard in futures.items():
        try:
            future.result(timeout=options.shard_timeout_s)
        except _FuturesTimeout:
            shard.status = SHARD_FAILED
            shard.error = (f"attempt {shard.attempts} timed out after "
                           f"{options.shard_timeout_s} s")
            # cancel if still queued so a hung shard cannot also consume
            # the retry round's worker slots
            future.cancel()
            timed_out = True
        except Exception as exc:   # worker raised or died
            shard.status = SHARD_FAILED
            shard.error = (f"attempt {shard.attempts}: "
                           f"{type(exc).__name__}: {exc}")
        else:
            if manifest.load_shard_result(shard) is not None:
                shard.status = SHARD_DONE
                shard.error = None
            else:
                shard.status = SHARD_FAILED
                shard.error = (f"attempt {shard.attempts}: worker returned "
                               "but its result file failed verification")
        manifest.write()
    # a timed-out worker may still be running; don't block shutdown on it
    # and terminate its process outright so the next round starts with a
    # fresh pool instead of waiting behind a hung simulation
    pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
    if timed_out:
        for proc in list(getattr(pool, "_processes", None) or {}).values():
            if proc.is_alive():
                proc.terminate()


register_executor(ExecutorSpec(
    EXECUTOR_LOCAL, parallel=False,
    description="runs every lane in the calling process",
    runner=_run_local))
register_executor(ExecutorSpec(
    EXECUTOR_SHARDED, parallel=True,
    description="partitions lanes into shards across worker processes "
                "with a resumable batch manifest",
    runner=_run_sharded))
