"""Cross-device comparison report (the paper's Tables 1–3 side by side).

The paper's claim is that the platform-derived implementation
"outperforms current state-of-the-art commercial devices": lower rate
noise and wider bandwidth than the ADXRS300 and the Gyrostar, at the
cost of a longer turn-on time.  The comparison report lines up the
measured performance of all three device models and states, per metric,
which device wins, so the benches can assert the *shape* of the result
rather than absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..common.exceptions import ConfigurationError
from .metrics import MeasuredPerformance

#: Metrics where a smaller measured value is better.
LOWER_IS_BETTER = ("noise_density_dps_rthz", "nonlinearity_pct_fs",
                   "turn_on_time_ms")
#: Metrics where a larger measured value is better.
HIGHER_IS_BETTER = ("bandwidth_hz", "dynamic_range_dps")


@dataclass
class MetricComparison:
    """Result of comparing one metric across devices."""

    metric: str
    unit: str
    values: Dict[str, Optional[float]]
    winner: Optional[str]

    def format_row(self) -> str:
        parts = [f"{self.metric:<28s}"]
        for device, value in self.values.items():
            text = f"{value:10.3f}" if value is not None else "       n/a"
            parts.append(text)
        winner = self.winner or "-"
        return "".join(parts) + f"   best: {winner}"


@dataclass
class ComparisonReport:
    """Comparison of several measured devices."""

    devices: List[MeasuredPerformance]
    metrics: List[MetricComparison] = field(default_factory=list)

    def winner_of(self, metric: str) -> Optional[str]:
        """Winning device name for a metric."""
        for m in self.metrics:
            if m.metric == metric:
                return m.winner
        raise ConfigurationError(f"no metric named {metric!r} in the report")

    def format_table(self) -> str:
        """Render the full comparison table."""
        names = [d.device for d in self.devices]
        header = f"{'Metric':<28s}" + "".join(f"{n[:10]:>10s}" for n in names)
        rows = [m.format_row() for m in self.metrics]
        return "\n".join([header, "-" * len(header)] + rows)


def _metric_value(perf: MeasuredPerformance, metric: str) -> Optional[float]:
    return getattr(perf, metric)


def compare_devices(devices: Sequence[MeasuredPerformance]) -> ComparisonReport:
    """Build the comparison report across measured devices."""
    if len(devices) < 2:
        raise ConfigurationError("need at least two devices to compare")
    report = ComparisonReport(devices=list(devices))
    metric_units = {
        "sensitivity_mv_per_dps": "mV/deg/s",
        "nonlinearity_pct_fs": "% FS",
        "null_v": "V",
        "turn_on_time_ms": "ms",
        "noise_density_dps_rthz": "deg/s/rtHz",
        "bandwidth_hz": "Hz",
        "dynamic_range_dps": "deg/s",
    }
    for metric, unit in metric_units.items():
        values = {d.device: _metric_value(d, metric) for d in devices}
        winner = None
        present = {k: v for k, v in values.items() if v is not None}
        if present:
            if metric in LOWER_IS_BETTER:
                winner = min(present, key=present.get)
            elif metric in HIGHER_IS_BETTER:
                winner = max(present, key=present.get)
        report.metrics.append(MetricComparison(metric=metric, unit=unit,
                                               values=values, winner=winner))
    return report


def paper_shape_checks(report: ComparisonReport,
                       platform_name_fragment: str = "SensorDynamics"
                       ) -> Dict[str, bool]:
    """Check the qualitative claims of the paper against a comparison report.

    Returns a dict of named boolean checks:

    * ``noise_beats_adxrs300`` — platform noise density below the ADXRS300's;
    * ``bandwidth_beats_baselines`` — platform bandwidth above both baselines;
    * ``turn_on_slower_than_adxrs300`` — the one metric where the paper's
      implementation loses (500 ms vs 35 ms);
    * ``sensitivity_matches_5mv`` — sensitivity within ±10 % of 5 mV/°/s.
    """
    def find(fragment: str) -> Optional[MeasuredPerformance]:
        for d in report.devices:
            if fragment.lower() in d.device.lower():
                return d
        return None

    platform = find(platform_name_fragment)
    adxrs = find("ADXRS300")
    murata = find("Murata")
    checks: Dict[str, bool] = {}
    if platform and adxrs:
        checks["noise_beats_adxrs300"] = (
            (platform.noise_density_dps_rthz or 1e9)
            < (adxrs.noise_density_dps_rthz or 0.0))
        checks["turn_on_slower_than_adxrs300"] = (
            (platform.turn_on_time_ms or 0.0) > (adxrs.turn_on_time_ms or 1e9))
    if platform and adxrs and murata:
        checks["bandwidth_beats_baselines"] = (
            (platform.bandwidth_hz or 0.0) > (adxrs.bandwidth_hz or 1e9)
            and (platform.bandwidth_hz or 0.0) > (murata.bandwidth_hz or 1e9))
    if platform:
        checks["sensitivity_matches_5mv"] = (
            abs(platform.sensitivity_mv_per_dps - 5.0) < 0.5)
    return checks
