"""Behavioural models of the commercial comparator devices (Tables 2–3).

The paper compares its implementation against the Analog Devices
ADXRS300 and the Murata Gyrostar using their datasheet numbers.  We
cannot run the real parts, so each baseline is a behavioural device
model parameterised from its datasheet: an analog output around a null
voltage with the published sensitivity, noise density, bandwidth,
temperature drift and turn-on behaviour.  The models are then measured
with the same characterisation harness, so the comparison report and the
"who wins" conclusions are produced from measured-on-model data rather
than transcribed numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import signal as sps

from ..common.analysis import linear_fit, nonlinearity_percent_fs
from ..common.exceptions import ConfigurationError
from ..common.units import ROOM_TEMPERATURE_C
from ..scenarios.library import (
    noise_density_from_record,
    noise_floor_scenario,
    rate_table_scenarios,
    tail_mean,
)
from ..scenarios.scenario import Scenario
from ..sensors.environment import ConstantProfile
from .metrics import MeasuredPerformance


@dataclass(frozen=True)
class BaselineGyroSpec:
    """Datasheet-derived parameters of a baseline (commercial) gyro.

    Attributes:
        name: device name.
        full_scale_dps: rate full scale.
        sensitivity_v_per_dps: nominal analog sensitivity.
        null_v: nominal zero-rate output.
        supply_v: supply voltage (for output clipping).
        nonlinearity_fraction: quadratic bow as a fraction of full scale.
        noise_density_dps_rthz: rate-noise density.
        bandwidth_hz: -3 dB output bandwidth.
        turn_on_time_s: datasheet turn-on time.
        sensitivity_tc_ppm_per_c: sensitivity drift.
        null_tc_v_per_c: null drift.
        operating_temp_c: operating temperature range.
    """

    name: str
    full_scale_dps: float
    sensitivity_v_per_dps: float
    null_v: float
    supply_v: float = 5.0
    nonlinearity_fraction: float = 0.001
    noise_density_dps_rthz: float = 0.1
    bandwidth_hz: float = 40.0
    turn_on_time_s: float = 0.035
    sensitivity_tc_ppm_per_c: float = 600.0
    null_tc_v_per_c: float = 1.0e-3
    operating_temp_c: Tuple[float, float] = (-40.0, 85.0)

    def __post_init__(self) -> None:
        if self.full_scale_dps <= 0 or self.sensitivity_v_per_dps == 0:
            raise ConfigurationError("invalid baseline specification")
        if self.bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth must be > 0")


def adxrs300_spec() -> BaselineGyroSpec:
    """Analog Devices ADXRS300 (paper Table 2)."""
    return BaselineGyroSpec(
        name="Analog Devices ADXRS300 (model)",
        full_scale_dps=300.0,
        sensitivity_v_per_dps=0.005,
        null_v=2.50,
        nonlinearity_fraction=0.001,
        noise_density_dps_rthz=0.10,
        bandwidth_hz=40.0,
        turn_on_time_s=0.035,
        sensitivity_tc_ppm_per_c=700.0,
        null_tc_v_per_c=1.5e-3,
        operating_temp_c=(-40.0, 85.0))


def murata_gyrostar_spec() -> BaselineGyroSpec:
    """Murata Gyrostar ENV-05 series (paper Table 3)."""
    return BaselineGyroSpec(
        name="Murata Gyrostar (model)",
        full_scale_dps=300.0,
        sensitivity_v_per_dps=0.00067,
        null_v=1.35,
        nonlinearity_fraction=0.005,
        noise_density_dps_rthz=0.45,
        bandwidth_hz=50.0,
        turn_on_time_s=0.2,
        sensitivity_tc_ppm_per_c=5000.0,
        null_tc_v_per_c=3.0e-3,
        operating_temp_c=(-5.0, 75.0))


class BaselineGyroDevice:
    """Sampled behavioural model of a commercial analog-output gyro."""

    def __init__(self, spec: BaselineGyroSpec, sample_rate_hz: float = 2000.0,
                 seed: Optional[int] = 7):
        if sample_rate_hz <= 2.0 * spec.bandwidth_hz:
            raise ConfigurationError("sample rate must exceed twice the bandwidth")
        self.spec = spec
        self.sample_rate_hz = float(sample_rate_hz)
        self._rng = np.random.default_rng(seed)
        self._alpha = 1.0 - np.exp(-2.0 * np.pi * spec.bandwidth_hz / sample_rate_hz)
        self._state_v = spec.null_v

    def _sensitivity(self, temperature_c: float) -> float:
        dt_c = temperature_c - ROOM_TEMPERATURE_C
        return self.spec.sensitivity_v_per_dps * (
            1.0 + self.spec.sensitivity_tc_ppm_per_c * 1e-6 * dt_c)

    def _null(self, temperature_c: float) -> float:
        dt_c = temperature_c - ROOM_TEMPERATURE_C
        return self.spec.null_v + self.spec.null_tc_v_per_c * dt_c

    def ideal_output(self, rate_dps: float,
                     temperature_c: float = ROOM_TEMPERATURE_C) -> float:
        """Noiseless, settled output voltage for a constant rate."""
        spec = self.spec
        normalized = rate_dps / spec.full_scale_dps
        bowed = rate_dps + spec.nonlinearity_fraction * normalized * abs(normalized) \
            * spec.full_scale_dps
        out = self._null(temperature_c) + self._sensitivity(temperature_c) * bowed
        return float(np.clip(out, 0.0, spec.supply_v))

    def simulate(self, rate_dps: float, duration_s: float,
                 temperature_c: float = ROOM_TEMPERATURE_C) -> np.ndarray:
        """Simulate the sampled output for a constant applied rate.

        The single-pole output filter is applied as one vectorised
        ``lfilter`` pass (``y[i] = alpha*u[i] + (1-alpha)*y[i-1]``) with
        the held output as initial condition, instead of a per-sample
        Python loop.
        """
        n = int(duration_s * self.sample_rate_hz)
        if n == 0:
            return np.zeros(0)
        noise_sigma = (self.spec.noise_density_dps_rthz
                       * self._sensitivity(temperature_c)
                       * np.sqrt(self.sample_rate_hz / 2.0))
        target = self.ideal_output(rate_dps, temperature_c)
        noise = self._rng.normal(0.0, noise_sigma, n) if noise_sigma else np.zeros(n)
        beta = 1.0 - self._alpha
        out, _ = sps.lfilter([self._alpha], [1.0, -beta], target + noise,
                             zi=np.array([beta * self._state_v]))
        self._state_v = float(out[-1])
        return np.clip(out, 0.0, self.spec.supply_v)

    def reset(self) -> None:
        """Return the output filter to the null state."""
        self._state_v = self.spec.null_v


def _constant_level(profile, what: str) -> float:
    """Read the constant level a baseline scenario applies."""
    if not isinstance(profile, ConstantProfile):
        raise ConfigurationError(
            f"baseline devices only accept constant {what} profiles")
    return float(profile.level)


def run_baseline_scenario(device: BaselineGyroDevice,
                          scenario: Scenario) -> np.ndarray:
    """Replay one library scenario on a behavioural baseline device.

    The baselines have no digital chain to extract platform metrics
    from, but they honour the same stimulus description: the scenario's
    constant rate and temperature, its duration and its power-cycle
    flag.  Returns the sampled output-voltage record.
    """
    rate = _constant_level(scenario.environment.rate_dps, "rate")
    temperature = _constant_level(scenario.environment.temperature_c,
                                  "temperature")
    if scenario.reset:
        device.reset()
    return device.simulate(rate, scenario.duration_s, temperature)


def characterize_baseline(device: BaselineGyroDevice,
                          rate_points_dps=( -300.0, -150.0, 0.0, 150.0, 300.0),
                          noise_duration_s: float = 4.0,
                          noise_band_hz: Tuple[float, float] = (2.0, 20.0),
                          settle_s: float = 0.5) -> MeasuredPerformance:
    """Measure a baseline device with the same metrics as the platform.

    The stimulus plan is the shared scenario library — the same
    rate-table and noise-floor campaign definitions
    :class:`~repro.eval.metrics.GyroCharacterization` runs on the
    platform — replayed on the behavioural device model.
    """
    spec = device.spec
    rates = np.asarray(rate_points_dps, dtype=np.float64)
    settle_fraction = 0.5
    sweep = rate_table_scenarios(rate_points_dps, settle_s=settle_s,
                                 settle_fraction=settle_fraction, reset=True)
    outputs = np.array([tail_mean(run_baseline_scenario(device, scenario),
                                  settle_fraction)
                        for scenario in sweep])
    fit = linear_fit(rates, outputs)
    nonlinearity = nonlinearity_percent_fs(
        rates, outputs, full_scale_output=abs(fit.slope) * 2.0 * spec.full_scale_dps)

    noise_scenario = noise_floor_scenario(duration_s=noise_duration_s,
                                          band_hz=noise_band_hz, reset=True)
    zero_record = run_baseline_scenario(device, noise_scenario)
    noise_v = noise_density_from_record(zero_record, device.sample_rate_hz,
                                        noise_band_hz)
    noise_dps = noise_v / abs(spec.sensitivity_v_per_dps)

    # over-temperature sensitivity / null from the drift model
    temps = spec.operating_temp_c
    sens_temp = [1000.0 * abs(device._sensitivity(t)) for t in
                 (temps[0], ROOM_TEMPERATURE_C, temps[1])]
    null_temp = [device._null(t) for t in (temps[0], ROOM_TEMPERATURE_C, temps[1])]

    return MeasuredPerformance(
        device=spec.name,
        dynamic_range_dps=spec.full_scale_dps,
        sensitivity_mv_per_dps=1000.0 * abs(fit.slope),
        sensitivity_over_temp_mv=(min(sens_temp), max(sens_temp)),
        nonlinearity_pct_fs=nonlinearity,
        null_v=fit.offset,
        null_over_temp_v=(min(null_temp), max(null_temp)),
        turn_on_time_ms=1000.0 * spec.turn_on_time_s,
        noise_density_dps_rthz=noise_dps,
        bandwidth_hz=spec.bandwidth_hz,
        operating_temp_c=spec.operating_temp_c,
    )
