"""Datasheet representation of gyro performance (Tables 1–3 of the paper).

Each table in the paper is a min/typ/max datasheet excerpt.  The same
structure is used both for the paper's published values (kept here as
constants, used as the reference the benches compare against) and for
the values measured on the simulated devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..common.exceptions import ConfigurationError


@dataclass(frozen=True)
class DatasheetEntry:
    """One datasheet row: a parameter with min/typ/max and a unit."""

    parameter: str
    unit: str
    minimum: Optional[float] = None
    typical: Optional[float] = None
    maximum: Optional[float] = None

    def best(self) -> Optional[float]:
        """The most representative value (typ, else mean of min/max, else any)."""
        if self.typical is not None:
            return self.typical
        present = [v for v in (self.minimum, self.maximum) if v is not None]
        if not present:
            return None
        return sum(present) / len(present)

    def format_row(self, width: int = 28) -> str:
        """Render the row in the paper's min/typ/max column layout."""
        def fmt(v: Optional[float]) -> str:
            return f"{v:10.2f}" if v is not None else " " * 10
        return (f"{self.parameter:<{width}s}"
                f"{fmt(self.minimum)}{fmt(self.typical)}{fmt(self.maximum)}"
                f"  {self.unit}")


@dataclass
class DeviceDatasheet:
    """A named collection of datasheet entries (one of the paper's tables)."""

    device: str
    entries: List[DatasheetEntry] = field(default_factory=list)

    def add(self, entry: DatasheetEntry) -> "DeviceDatasheet":
        """Append an entry (chainable)."""
        self.entries.append(entry)
        return self

    def entry(self, parameter: str) -> DatasheetEntry:
        """Look up an entry by parameter name."""
        for e in self.entries:
            if e.parameter == parameter:
                return e
        raise ConfigurationError(
            f"datasheet for {self.device!r} has no parameter {parameter!r}")

    def __contains__(self, parameter: str) -> bool:
        return any(e.parameter == parameter for e in self.entries)

    def parameters(self) -> List[str]:
        """Parameter names in table order."""
        return [e.parameter for e in self.entries]

    def format_table(self) -> str:
        """Render the whole table in the paper's layout."""
        header = (f"{self.device}\n{'Parameter':<28s}"
                  f"{'Min.':>10s}{'Typ.':>10s}{'Max.':>10s}  Units\n" + "-" * 72)
        return header + "\n" + "\n".join(e.format_row() for e in self.entries)


# ---------------------------------------------------------------------------
# Published values (the paper's Tables 1, 2 and 3)
# ---------------------------------------------------------------------------

#: Parameter names used consistently across all tables.
P_DYNAMIC_RANGE = "Dynamic Range"
P_SENS_INITIAL = "Sensitivity Initial"
P_SENS_OVER_TEMP = "Sensitivity Over Temperature"
P_NONLINEARITY = "Non Linearity"
P_NULL_INITIAL = "Null Initial"
P_NULL_OVER_TEMP = "Null Over Temperature"
P_TURN_ON_TIME = "Turn On Time"
P_NOISE_DENSITY = "Rate Noise Density"
P_BANDWIDTH = "3 dB Bandwidth"
P_OPERATING_TEMP_MIN = "Operating Temp Min"
P_OPERATING_TEMP_MAX = "Operating Temp Max"


def paper_table1_sensordynamics() -> DeviceDatasheet:
    """Table 1: performance of the SensorDynamics implementation."""
    return DeviceDatasheet("SensorDynamics (paper Table 1)", [
        DatasheetEntry(P_DYNAMIC_RANGE, "deg/s", minimum=75.0, maximum=300.0),
        DatasheetEntry(P_SENS_INITIAL, "mV/deg/s", 4.85, 5.00, 5.15),
        DatasheetEntry(P_SENS_OVER_TEMP, "mV/deg/s", 4.80, 5.00, 5.20),
        DatasheetEntry(P_NONLINEARITY, "% of FS", 0.07, 0.10, 0.20),
        DatasheetEntry(P_NULL_INITIAL, "V", 2.53, None, 2.70),
        DatasheetEntry(P_NULL_OVER_TEMP, "V", 2.53, None, 2.70),
        DatasheetEntry(P_TURN_ON_TIME, "ms", None, None, 500.0),
        DatasheetEntry(P_NOISE_DENSITY, "deg/s/rtHz", 0.04, 0.09, 0.13),
        DatasheetEntry(P_BANDWIDTH, "Hz", 25.0, None, 75.0),
        DatasheetEntry(P_OPERATING_TEMP_MIN, "degC", typical=-40.0),
        DatasheetEntry(P_OPERATING_TEMP_MAX, "degC", typical=85.0),
    ])


def paper_table2_adxrs300() -> DeviceDatasheet:
    """Table 2: Analog Devices ADXRS300 datasheet excerpt."""
    return DeviceDatasheet("Analog Devices ADXRS300 (paper Table 2)", [
        DatasheetEntry(P_DYNAMIC_RANGE, "deg/s", maximum=300.0),
        DatasheetEntry(P_SENS_INITIAL, "mV/deg/s", 4.6, 5.0, 5.4),
        DatasheetEntry(P_SENS_OVER_TEMP, "mV/deg/s", 4.6, 5.0, 5.4),
        DatasheetEntry(P_NONLINEARITY, "% of FS", typical=0.10),
        DatasheetEntry(P_NULL_INITIAL, "V", 2.30, None, 2.70),
        DatasheetEntry(P_NULL_OVER_TEMP, "V", 2.30, None, 2.70),
        DatasheetEntry(P_TURN_ON_TIME, "ms", typical=35.0),
        DatasheetEntry(P_NOISE_DENSITY, "deg/s/rtHz", typical=0.1),
        DatasheetEntry(P_BANDWIDTH, "Hz", typical=40.0),
        DatasheetEntry(P_OPERATING_TEMP_MIN, "degC", typical=-40.0),
        DatasheetEntry(P_OPERATING_TEMP_MAX, "degC", typical=85.0),
    ])


def paper_table3_murata_gyrostar() -> DeviceDatasheet:
    """Table 3: Murata Gyrostar datasheet excerpt."""
    return DeviceDatasheet("Murata Gyrostar (paper Table 3)", [
        DatasheetEntry(P_DYNAMIC_RANGE, "deg/s", maximum=300.0),
        DatasheetEntry(P_SENS_INITIAL, "mV/deg/s", 0.54, 0.67, 0.80),
        DatasheetEntry(P_SENS_OVER_TEMP, "mV/deg/s", -5.0, None, 5.0),
        DatasheetEntry(P_NONLINEARITY, "% of FS", typical=None),
        DatasheetEntry(P_NULL_INITIAL, "V", typical=1.35),
        DatasheetEntry(P_TURN_ON_TIME, "ms", typical=None),
        DatasheetEntry(P_NOISE_DENSITY, "deg/s/rtHz", typical=None),
        DatasheetEntry(P_BANDWIDTH, "Hz", maximum=50.0),
        DatasheetEntry(P_OPERATING_TEMP_MIN, "degC", typical=-5.0),
        DatasheetEntry(P_OPERATING_TEMP_MAX, "degC", typical=75.0),
    ])
