"""Datasheet-style characterisation harness for the gyro platform.

This module measures, on the simulated platform, exactly the parameters
the paper reports in Table 1: sensitivity (initial and over
temperature), nonlinearity, null voltage (initial and over temperature),
turn-on time, rate-noise density and 3 dB bandwidth.  The same
:class:`MeasuredPerformance` container is produced for the baseline
devices so the comparison report can line everything up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..common.analysis import linear_fit, nonlinearity_percent_fs, three_db_bandwidth
from ..common.exceptions import ConfigurationError
from ..common.units import ROOM_TEMPERATURE_C
from ..platform.gyro_platform import GyroPlatform
from ..scenarios.campaign import Campaign
from ..scenarios.engines import ENGINE_BATCHED
from ..scenarios.library import (
    bandwidth_probe_scenario,
    noise_floor_scenario,
    rate_table_scenarios,
)
from .datasheet import (
    DatasheetEntry,
    DeviceDatasheet,
    P_BANDWIDTH,
    P_DYNAMIC_RANGE,
    P_NOISE_DENSITY,
    P_NONLINEARITY,
    P_NULL_INITIAL,
    P_NULL_OVER_TEMP,
    P_OPERATING_TEMP_MAX,
    P_OPERATING_TEMP_MIN,
    P_SENS_INITIAL,
    P_SENS_OVER_TEMP,
    P_TURN_ON_TIME,
)


@dataclass
class MeasuredPerformance:
    """Datasheet-style figures measured on one device.

    All values use the same units as the paper's tables (mV/°/s, % of
    full scale, volts, milliseconds, °/s/√Hz, hertz, °C).
    """

    device: str
    dynamic_range_dps: float
    sensitivity_mv_per_dps: float
    sensitivity_over_temp_mv: Tuple[float, float]
    nonlinearity_pct_fs: float
    null_v: float
    null_over_temp_v: Tuple[float, float]
    turn_on_time_ms: Optional[float]
    noise_density_dps_rthz: Optional[float]
    bandwidth_hz: Optional[float]
    operating_temp_c: Tuple[float, float] = (-40.0, 85.0)
    details: Dict[str, float] = field(default_factory=dict)

    def to_datasheet(self) -> DeviceDatasheet:
        """Convert to the min/typ/max datasheet format of the paper."""
        sens_lo, sens_hi = self.sensitivity_over_temp_mv
        null_lo, null_hi = self.null_over_temp_v
        sheet = DeviceDatasheet(self.device, [
            DatasheetEntry(P_DYNAMIC_RANGE, "deg/s", maximum=self.dynamic_range_dps),
            DatasheetEntry(P_SENS_INITIAL, "mV/deg/s",
                           typical=self.sensitivity_mv_per_dps),
            DatasheetEntry(P_SENS_OVER_TEMP, "mV/deg/s",
                           minimum=min(sens_lo, sens_hi),
                           maximum=max(sens_lo, sens_hi)),
            DatasheetEntry(P_NONLINEARITY, "% of FS", typical=self.nonlinearity_pct_fs),
            DatasheetEntry(P_NULL_INITIAL, "V", typical=self.null_v),
            DatasheetEntry(P_NULL_OVER_TEMP, "V",
                           minimum=min(null_lo, null_hi),
                           maximum=max(null_lo, null_hi)),
            DatasheetEntry(P_TURN_ON_TIME, "ms", maximum=self.turn_on_time_ms),
            DatasheetEntry(P_NOISE_DENSITY, "deg/s/rtHz",
                           typical=self.noise_density_dps_rthz),
            DatasheetEntry(P_BANDWIDTH, "Hz", typical=self.bandwidth_hz),
            DatasheetEntry(P_OPERATING_TEMP_MIN, "degC",
                           typical=self.operating_temp_c[0]),
            DatasheetEntry(P_OPERATING_TEMP_MAX, "degC",
                           typical=self.operating_temp_c[1]),
        ])
        return sheet


@dataclass
class CharacterizationConfig:
    """Durations and sweep points of the characterisation runs.

    The defaults are sized for the benchmark harness; the unit tests use
    shorter versions.
    """

    rate_points_dps: Sequence[float] = (-300.0, -200.0, -100.0, -50.0, 0.0,
                                        50.0, 100.0, 200.0, 300.0)
    settle_s: float = 0.2
    noise_duration_s: float = 1.5
    noise_band_hz: Tuple[float, float] = (2.0, 20.0)
    bandwidth_probe_hz: Sequence[float] = (5.0, 20.0, 40.0, 60.0, 80.0)
    bandwidth_amplitude_dps: float = 50.0
    bandwidth_cycles: float = 8.0
    temperatures_c: Sequence[float] = (-40.0, 85.0)
    full_scale_dps: float = 300.0

    def __post_init__(self) -> None:
        if len(self.rate_points_dps) < 3:
            raise ConfigurationError("need at least three rate points")
        if self.settle_s <= 0 or self.noise_duration_s <= 0:
            raise ConfigurationError("durations must be > 0")


class GyroCharacterization:
    """Characterises a (calibrated) :class:`GyroPlatform` like a datasheet.

    Every measurement is a campaign over the shared scenario library
    (``repro.scenarios.library``) — the same scenario definitions the
    baseline-device comparison replays — so the platform and the
    commercial parts are characterised by the identical procedure.

    Args:
        engine: campaign engine for the multi-scenario sweeps (rate
            table, bandwidth probes).  Defaults to the batched fleet;
            pass ``"fused"`` to replay the same scenarios sequentially
            (bit-identical results, faster below ~12 concurrent lanes —
            see ``BENCH_engine.json``).
        executor: campaign executor for those sweeps (``"local"``
            in-process, ``"sharded"`` across worker processes);
            bit-identical datasheets either way.
        workers: worker-process count for the sharded executor.
        store: a :class:`repro.store.ResultStore` backing the sweep
            campaigns — a repeated characterisation of an unchanged
            platform serves every rate-table point and bandwidth probe
            from the store with zero fleet simulation, and only changed
            design points re-simulate.
    """

    def __init__(self, platform: GyroPlatform,
                 config: Optional[CharacterizationConfig] = None,
                 engine: str = ENGINE_BATCHED,
                 executor: Optional[str] = None,
                 workers: Optional[int] = None,
                 store=None):
        self.platform = platform
        self.config = config or CharacterizationConfig()
        self.engine = engine
        self.executor = executor
        self.workers = workers
        self.store = store

    # -- individual measurements -------------------------------------------------

    def measure_rate_response(self, temperature_c: float = ROOM_TEMPERATURE_C
                              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sweep the rate table and collect the settled analog outputs.

        The sweep is one campaign of settled-output scenarios branching
        from the platform's current state — one fleet lane per
        rate-table point on the batched engine.

        Returns:
            ``(rates, output_volts, output_dps)`` arrays.
        """
        cfg = self.config
        rates = np.asarray(cfg.rate_points_dps, dtype=np.float64)
        sweep = Campaign(rate_table_scenarios(cfg.rate_points_dps,
                                              temperature_c, cfg.settle_s),
                         name="rate-table")
        result = sweep.run(self.platform, engine=self.engine,
                           executor=self.executor, workers=self.workers,
                           store=self.store)
        volts = np.array([lane.outcomes[0].metrics["rate_output_v"]
                          for lane in result.lanes])
        dps = np.array([lane.outcomes[0].metrics["rate_output_dps"]
                        for lane in result.lanes])
        return rates, volts, dps

    def measure_sensitivity(self, temperature_c: float = ROOM_TEMPERATURE_C
                            ) -> Tuple[float, float, float]:
        """Measure sensitivity [mV/°/s], null [V] and nonlinearity [% FS]."""
        rates, volts, _ = self.measure_rate_response(temperature_c)
        fit = linear_fit(rates, volts)
        nonlinearity = nonlinearity_percent_fs(
            rates, volts, full_scale_output=abs(fit.slope) * 2.0
            * self.config.full_scale_dps)
        return 1000.0 * fit.slope, fit.offset, nonlinearity

    def measure_noise_density(self, temperature_c: float = ROOM_TEMPERATURE_C
                              ) -> float:
        """Zero-rate rate-noise density in °/s/√Hz."""
        cfg = self.config
        scenario = noise_floor_scenario(temperature_c, cfg.noise_duration_s,
                                        cfg.noise_band_hz)
        result = Campaign([scenario], name="noise-floor").run(self.platform,
                                                              mutate=True)
        return result.lanes[0].outcomes[0].metrics["noise_density"]

    def measure_bandwidth(self, method: str = "analytic") -> float:
        """-3 dB bandwidth of the rate channel in hertz.

        Args:
            method: ``"analytic"`` evaluates the output-filter frequency
                response (fast, used by the tests); ``"measured"`` applies
                sinusoidal rates and measures the output amplitude ratio
                (slow, used by the benches).
        """
        chain = self.platform.conditioner.sense_chain
        if method == "analytic":
            return chain.output_filter.three_db_bandwidth_hz(
                chain.config.sample_rate_hz, max_freq_hz=500.0)
        if method != "measured":
            raise ConfigurationError("method must be 'analytic' or 'measured'")
        cfg = self.config
        freqs = np.asarray(cfg.bandwidth_probe_hz, dtype=np.float64)
        probes = Campaign([bandwidth_probe_scenario(float(freq),
                                                    cfg.bandwidth_amplitude_dps,
                                                    cfg.bandwidth_cycles)
                           for freq in freqs],
                          name="bandwidth-probes")
        result = probes.run(self.platform, engine=self.engine,
                            executor=self.executor, workers=self.workers,
                            store=self.store)
        gains = np.array([lane.outcomes[0].metrics["gain"]
                          for lane in result.lanes])
        return three_db_bandwidth(freqs, gains)

    def measure_turn_on_time(self, temperature_c: float = ROOM_TEMPERATURE_C
                             ) -> float:
        """Turn-on time in milliseconds (power-up to valid output)."""
        result = self.platform.start(temperature_c)
        if result.turn_on_time_s is None:
            raise ConfigurationError("start-up did not complete")
        return 1000.0 * result.turn_on_time_s

    # -- the full datasheet --------------------------------------------------------

    def characterize(self, include_noise: bool = True,
                     include_temperature: bool = True,
                     bandwidth_method: str = "analytic") -> MeasuredPerformance:
        """Run the full characterisation and return the measured datasheet."""
        cfg = self.config
        turn_on_ms = self.measure_turn_on_time()
        sens_mv, null_v, nonlin = self.measure_sensitivity()
        sens_temp = [sens_mv]
        null_temp = [null_v]
        if include_temperature:
            for temp in cfg.temperatures_c:
                self.platform.start(temp)
                s, n, _ = self.measure_sensitivity(temp)
                sens_temp.append(s)
                null_temp.append(n)
            # return to room temperature operation
            self.platform.start(ROOM_TEMPERATURE_C)
        noise = self.measure_noise_density() if include_noise else None
        bandwidth = self.measure_bandwidth(bandwidth_method)
        return MeasuredPerformance(
            device="SensorDynamics platform (simulated)",
            dynamic_range_dps=cfg.full_scale_dps,
            sensitivity_mv_per_dps=abs(sens_mv),
            sensitivity_over_temp_mv=(min(abs(s) for s in sens_temp),
                                      max(abs(s) for s in sens_temp)),
            nonlinearity_pct_fs=nonlin,
            null_v=null_v,
            null_over_temp_v=(min(null_temp), max(null_temp)),
            turn_on_time_ms=turn_on_ms,
            noise_density_dps_rthz=noise,
            bandwidth_hz=bandwidth,
            operating_temp_c=(-40.0, 85.0),
            details={"rate_points": len(cfg.rate_points_dps)},
        )


# ---------------------------------------------------------------------------
# Resilience extractors (fault-injection campaigns)
# ---------------------------------------------------------------------------
#
# Picklable frozen-dataclass extractors (the scenario-library discipline)
# that reduce a faulted scenario's traces and safe-mode snapshot to the
# resilience figures the fault campaigns report.  They read the
# ``safe_mode_*`` / ``overload_time_s`` fields the campaign runner stamps
# onto every :class:`~repro.platform.result.GyroSimulationResult`.


@dataclass(frozen=True)
class DetectionLatency:
    """Extractor: fault onset to safe-mode latch, in seconds (or None).

    ``fault_start_s`` is the fault's activation time relative to the
    scenario start; the latch time is absolute simulation time, so the
    record's first timestamp anchors the conversion.  None when the
    monitor never latched.
    """

    fault_start_s: float = 0.0

    def __call__(self, platform, result) -> Optional[float]:
        if result.safe_mode_entry_s is None or result.time_s.size == 0:
            return None
        onset = float(result.time_s[0]) + self.fault_start_s
        return float(result.safe_mode_entry_s) - onset


@dataclass(frozen=True)
class TimeInSaturation:
    """Extractor: accumulated front-end overload time, in seconds."""

    def __call__(self, platform, result) -> float:
        return float(result.overload_time_s or 0.0)


@dataclass(frozen=True)
class PostFaultBiasShift:
    """Extractor: settled-output shift across a fault window, in °/s.

    Compares the mean rate output over the tail of the pre-fault
    interval against the tail of the post-recovery interval; a platform
    that degrades gracefully recovers to (near) its pre-fault bias.
    """

    fault_start_s: float = 0.01
    fault_stop_s: float = 0.02
    fraction: float = 0.5

    def __call__(self, platform, result) -> float:
        t_rel = result.time_s - result.time_s[0]
        pre = result.rate_output_dps[t_rel < self.fault_start_s]
        post = result.rate_output_dps[t_rel >= self.fault_stop_s]
        if pre.size == 0 or post.size == 0:
            return float("nan")
        pre_tail = pre[int(pre.size * (1.0 - self.fraction)):]
        post_tail = post[int(post.size * (1.0 - self.fraction)):]
        return float(np.mean(post_tail) - np.mean(pre_tail))


@dataclass(frozen=True)
class SurvivedVerdict:
    """Extractor: did the platform survive the fault? (bool)

    Survival means the conditioning chain still reports RUNNING at the
    end of the record and the post-recovery output bias returned to
    within ``tolerance_dps`` of the pre-fault bias.
    """

    fault_start_s: float = 0.01
    fault_stop_s: float = 0.02
    tolerance_dps: float = 10.0
    fraction: float = 0.5

    def __call__(self, platform, result) -> bool:
        if result.running.size == 0 or not bool(result.running[-1]):
            return False
        shift = PostFaultBiasShift(self.fault_start_s, self.fault_stop_s,
                                   self.fraction)(platform, result)
        return bool(np.isfinite(shift) and abs(shift) <= self.tolerance_dps)
