"""Gyro conditioning chain: drive loop, sense chain, closed loop, start-up."""

from .drive import DriveLoop, DriveLoopConfig
from .sense import SenseChain, SenseChainConfig
from .closedloop import ForceRebalanceConfig, ForceRebalanceController
from .startup import StartupConfig, StartupSequencer, StartupState
from .conditioning import (
    DSP_REGISTER_MAP,
    GyroConditioner,
    GyroConditionerConfig,
    build_dsp_registers,
    q114_to_float,
)
from .calibration import (
    ScaleCalibration,
    fit_scale_factor,
    fit_temperature_compensation,
    null_voltage_error,
    select_reference_slope,
    sensitivity_error_percent,
)

__all__ = [
    "DriveLoop",
    "DriveLoopConfig",
    "SenseChain",
    "SenseChainConfig",
    "ForceRebalanceConfig",
    "ForceRebalanceController",
    "StartupConfig",
    "StartupSequencer",
    "StartupState",
    "DSP_REGISTER_MAP",
    "GyroConditioner",
    "GyroConditionerConfig",
    "build_dsp_registers",
    "q114_to_float",
    "ScaleCalibration",
    "fit_scale_factor",
    "fit_temperature_compensation",
    "null_voltage_error",
    "select_reference_slope",
    "sensitivity_error_percent",
]
