"""Complete gyro conditioning chain (the customised DSP block of Fig. 2/4).

:class:`GyroConditioner` ties together the drive loop (PLL + AGC), the
open-loop sense chain, the optional force-rebalance controller and the
start-up sequencer, and publishes the monitoring information into a
register file — the "several readable registers spread along the
processing chain" that the 8051 firmware polls (PLL lock, amplitude,
rate output, status).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..common.exceptions import ConfigurationError
from ..common.fixedpoint import DSP16, QFormat
from ..common.registers import BitField, Register, RegisterFile
from .closedloop import ForceRebalanceConfig, ForceRebalanceController
from .drive import DriveLoop, DriveLoopConfig
from .sense import SenseChain, SenseChainConfig
from .startup import StartupConfig, StartupSequencer

#: Address map of the DSP status/monitor registers (16-bit bridge bus).
DSP_REGISTER_MAP = {
    "dsp_status": 0x100,
    "dsp_rate_out": 0x102,
    "dsp_amplitude": 0x104,
    "dsp_vco_control": 0x106,
    "dsp_phase_error": 0x108,
    "dsp_quadrature": 0x10A,
    "dsp_drive_gain": 0x10C,
}


def build_dsp_registers() -> RegisterFile:
    """Create the DSP monitoring/control register file."""
    regs = RegisterFile("dsp")
    regs.add(Register("dsp_status", DSP_REGISTER_MAP["dsp_status"], width=16,
                      access="ro",
                      fields=[BitField("pll_locked", 0, 1),
                              BitField("amplitude_settled", 1, 1),
                              BitField("running", 2, 1),
                              BitField("startup_failed", 3, 1),
                              BitField("closed_loop", 4, 1)],
                      doc="Conditioning chain status flags"))
    regs.add(Register("dsp_rate_out", DSP_REGISTER_MAP["dsp_rate_out"], width=16,
                      access="ro", doc="Signed rate output word (Q1.14)"))
    regs.add(Register("dsp_amplitude", DSP_REGISTER_MAP["dsp_amplitude"], width=16,
                      access="ro", doc="Primary pick-off amplitude (Q1.14)"))
    regs.add(Register("dsp_vco_control", DSP_REGISTER_MAP["dsp_vco_control"],
                      width=16, access="ro",
                      doc="PLL frequency-control word, Hz offset * 16"))
    regs.add(Register("dsp_phase_error", DSP_REGISTER_MAP["dsp_phase_error"],
                      width=16, access="ro", doc="PLL phase error (Q1.14)"))
    regs.add(Register("dsp_quadrature", DSP_REGISTER_MAP["dsp_quadrature"],
                      width=16, access="ro", doc="Quadrature channel (Q1.14)"))
    regs.add(Register("dsp_drive_gain", DSP_REGISTER_MAP["dsp_drive_gain"],
                      width=16, access="ro", doc="AGC drive gain (Q1.14)"))
    return regs


def _to_q114(value: float) -> int:
    """Encode a float into a signed Q1.14 register word (two's complement)."""
    scaled = int(round(value * 16384.0))
    scaled = max(-32768, min(32767, scaled))
    return scaled & 0xFFFF


def q114_to_float(word: int) -> float:
    """Decode a Q1.14 register word back to a float."""
    word &= 0xFFFF
    if word >= 0x8000:
        word -= 0x10000
    return word / 16384.0


@dataclass
class GyroConditionerConfig:
    """Configuration of the complete conditioning chain.

    Attributes:
        drive: drive loop configuration.
        sense: sense chain configuration.
        rebalance: force-rebalance configuration (used when closed_loop).
        startup: start-up sequencer configuration.
        closed_loop: enable the force-rebalance secondary loop.
        status_update_interval: samples between status-register refreshes.
        fixed_point: run the DSP IPs with 16-bit quantised outputs
            (prototype / RTL mode, used for the Fig. 6 reproduction).
    """

    drive: DriveLoopConfig = field(default_factory=DriveLoopConfig)
    sense: SenseChainConfig = field(default_factory=SenseChainConfig)
    rebalance: ForceRebalanceConfig = field(default_factory=ForceRebalanceConfig)
    startup: StartupConfig = field(default_factory=StartupConfig)
    closed_loop: bool = False
    status_update_interval: int = 64
    fixed_point: bool = False

    def __post_init__(self) -> None:
        if self.status_update_interval < 1:
            raise ConfigurationError("status update interval must be >= 1")


class GyroConditioner:
    """The customised digital conditioning chain for the gyro sensor."""

    def __init__(self, config: Optional[GyroConditionerConfig] = None):
        self.config = config or GyroConditionerConfig()
        cfg = self.config
        if cfg.fixed_point:
            fmt: Optional[QFormat] = DSP16
            cfg.drive.output_format = fmt
            cfg.sense.output_format = fmt
        self.drive_loop = DriveLoop(cfg.drive)
        self.sense_chain = SenseChain(cfg.sense)
        self.rebalance = ForceRebalanceController(cfg.rebalance)
        self.startup = StartupSequencer(cfg.startup)
        self.registers = build_dsp_registers()
        self._sample_count = 0
        self._control_word = 0.0

    # -- observables -----------------------------------------------------------

    @property
    def rate_dps(self) -> float:
        """Latest rate estimate in °/s (open or closed loop)."""
        if self.config.closed_loop:
            return self.sense_chain.scaler.to_dps(self.rebalance.command)
        return self.sense_chain.rate_dps

    @property
    def rate_word(self) -> float:
        """Latest normalised rate-output word."""
        if self.config.closed_loop:
            return self.sense_chain.scaler.to_output_word(self.rate_dps)
        return self.sense_chain.rate_word

    @property
    def running(self) -> bool:
        """True once start-up has completed."""
        return self.startup.running

    def reset(self) -> None:
        """Return the whole chain to the power-on state."""
        self.drive_loop.reset()
        self.sense_chain.reset()
        self.rebalance.reset()
        self.startup.reset()
        self.registers.reset()
        self._sample_count = 0
        self._control_word = 0.0

    # -- operation --------------------------------------------------------------

    def step(self, primary_pickoff_norm: float, secondary_pickoff_norm: float,
             temperature_c: float = 25.0) -> Tuple[float, float, float]:
        """Process one pair of acquisition samples.

        Args:
            primary_pickoff_norm: normalised primary-channel ADC sample.
            secondary_pickoff_norm: normalised secondary-channel ADC sample.
            temperature_c: measured die temperature for compensation.

        Returns:
            ``(drive_word, control_word, rate_word)`` — the normalised
            words for the drive DAC, control DAC and rate-output DAC.
        """
        cfg = self.config
        drive_word = self.drive_loop.step(primary_pickoff_norm)
        ref_sin, ref_cos = self.drive_loop.references
        self.sense_chain.step(secondary_pickoff_norm, ref_sin, ref_cos,
                              temperature_c)
        if cfg.closed_loop:
            self._control_word = self.rebalance.step(secondary_pickoff_norm, ref_cos)
        else:
            self._control_word = 0.0
        self.startup.step(self.drive_loop.locked, self.drive_loop.amplitude_settled)

        self._sample_count += 1
        if self._sample_count % cfg.status_update_interval == 0:
            self._refresh_registers()
        return drive_word, self._control_word, self.rate_word

    def _refresh_registers(self) -> None:
        regs = self.registers
        status = regs.register("dsp_status")
        status.hw_write_field("pll_locked", int(self.drive_loop.locked))
        status.hw_write_field("amplitude_settled",
                              int(self.drive_loop.amplitude_settled))
        status.hw_write_field("running", int(self.startup.running))
        status.hw_write_field("startup_failed", int(self.startup.failed))
        status.hw_write_field("closed_loop", int(self.config.closed_loop))
        regs.register("dsp_rate_out").hw_write(_to_q114(self.rate_word))
        regs.register("dsp_amplitude").hw_write(
            _to_q114(self.drive_loop.pll.amplitude_estimate))
        regs.register("dsp_vco_control").hw_write(
            int(max(-32768, min(32767, round(self.drive_loop.vco_control * 16.0))))
            & 0xFFFF)
        regs.register("dsp_phase_error").hw_write(_to_q114(self.drive_loop.phase_error))
        regs.register("dsp_quadrature").hw_write(
            _to_q114(self.sense_chain.quadrature_channel))
        regs.register("dsp_drive_gain").hw_write(
            _to_q114(self.drive_loop.amplitude_control))
