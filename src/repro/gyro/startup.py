"""Start-up sequencer for the gyro conditioning chain.

Table 1 specifies a 500 ms maximum turn-on time.  The sequencer tracks
the start-up progress through explicit states so both the firmware
(which polls the status registers) and the characterisation harness
(which measures the turn-on time) observe the same transitions:

``POWER_ON → DRIVE_SPINUP → PLL_LOCKED → OUTPUT_SETTLING → RUNNING``
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..common.exceptions import ConfigurationError


class StartupState(Enum):
    """States of the start-up sequence."""

    POWER_ON = 0
    DRIVE_SPINUP = 1
    PLL_LOCKED = 2
    OUTPUT_SETTLING = 3
    RUNNING = 4


@dataclass
class StartupConfig:
    """Configuration of the start-up sequencer.

    Attributes:
        sample_rate_hz: DSP sample rate used to convert times to samples.
        settling_time_s: extra output-filter settling time granted after
            the drive loop reports lock and amplitude on target.
        watchdog_time_s: maximum allowed start-up time before the
            sequencer reports a start-up failure.
    """

    sample_rate_hz: float = 120_000.0
    settling_time_s: float = 0.1
    watchdog_time_s: float = 2.0

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be > 0")
        if self.settling_time_s < 0 or self.watchdog_time_s <= 0:
            raise ConfigurationError("times must be positive")


class StartupSequencer:
    """Tracks the start-up progress of the conditioning chain."""

    def __init__(self, config: Optional[StartupConfig] = None):
        self.config = config or StartupConfig()
        self._state = StartupState.POWER_ON
        self._sample_count = 0
        self._settle_counter = 0
        self._ready_sample: Optional[int] = None
        self._failed = False

    @property
    def state(self) -> StartupState:
        """Current start-up state."""
        return self._state

    @property
    def running(self) -> bool:
        """True once the chain has completed start-up."""
        return self._state is StartupState.RUNNING

    @property
    def failed(self) -> bool:
        """True if the watchdog expired before start-up completed."""
        return self._failed

    @property
    def turn_on_time_s(self) -> Optional[float]:
        """Measured turn-on time, or None if start-up has not finished."""
        if self._ready_sample is None:
            return None
        return self._ready_sample / self.config.sample_rate_hz

    def reset(self) -> None:
        """Restart the sequence from POWER_ON."""
        self._state = StartupState.POWER_ON
        self._sample_count = 0
        self._settle_counter = 0
        self._ready_sample = None
        self._failed = False

    def step(self, pll_locked: bool, amplitude_settled: bool) -> StartupState:
        """Advance the sequencer by one sample.

        Args:
            pll_locked: drive PLL lock indication.
            amplitude_settled: AGC amplitude-on-target indication.

        Returns:
            The (possibly new) start-up state.
        """
        cfg = self.config
        self._sample_count += 1
        if not self.running and not self._failed:
            if self._sample_count > cfg.watchdog_time_s * cfg.sample_rate_hz:
                self._failed = True
                return self._state

        if self._state is StartupState.POWER_ON:
            self._state = StartupState.DRIVE_SPINUP
        elif self._state is StartupState.DRIVE_SPINUP:
            if pll_locked:
                self._state = StartupState.PLL_LOCKED
        elif self._state is StartupState.PLL_LOCKED:
            if amplitude_settled:
                self._state = StartupState.OUTPUT_SETTLING
                self._settle_counter = 0
            elif not pll_locked:
                self._state = StartupState.DRIVE_SPINUP
        elif self._state is StartupState.OUTPUT_SETTLING:
            # the amplitude must stay on target continuously for the whole
            # settling window; any excursion restarts the wait
            if amplitude_settled and pll_locked:
                self._settle_counter += 1
            else:
                self._settle_counter = 0
            if self._settle_counter >= cfg.settling_time_s * cfg.sample_rate_hz:
                self._state = StartupState.RUNNING
                self._ready_sample = self._sample_count
        return self._state
