"""Closed-loop (force-rebalance) secondary control.

"A closed loop configuration exploits the control electrodes, by means
of which the secondary vibration can be compensated, in order to let the
sensor work around its rest point, thus achieving more linear and
accurate measures."  The force-rebalance controller integrates the
demodulated secondary motion and produces a counter-force command that
is re-modulated onto the drive carrier and applied through the control
DAC; in steady state the command amplitude is proportional to the rate,
so it *is* the rate measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.exceptions import ConfigurationError
from ..dsp.mixer import Modulator, SynchronousDemodulator


@dataclass
class ForceRebalanceConfig:
    """Configuration of the force-rebalance controller.

    Attributes:
        sample_rate_hz: DSP sample rate.
        demod_cutoff_hz: demodulator low-pass cutoff.
        kp: proportional gain of the rebalance PI controller.
        ki: integral gain per sample.
        max_command: command saturation (normalised DAC full scale).
    """

    sample_rate_hz: float = 120_000.0
    demod_cutoff_hz: float = 400.0
    kp: float = 0.5
    ki: float = 2e-3
    max_command: float = 1.0

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be > 0")
        if self.kp < 0 or self.ki < 0:
            raise ConfigurationError("gains must be >= 0")
        if self.max_command <= 0:
            raise ConfigurationError("max command must be > 0")


class ForceRebalanceController:
    """PI force-rebalance loop nulling the secondary vibration."""

    def __init__(self, config: Optional[ForceRebalanceConfig] = None):
        self.config = config or ForceRebalanceConfig()
        cfg = self.config
        self._demod = SynchronousDemodulator(cfg.demod_cutoff_hz, cfg.sample_rate_hz)
        self._modulator = Modulator()
        self._integrator = 0.0
        self._command = 0.0
        self._residual = 0.0

    @property
    def command(self) -> float:
        """Baseband rebalance command — proportional to the rate."""
        return self._command

    @property
    def residual_motion(self) -> float:
        """Demodulated residual secondary motion (should approach zero)."""
        return self._residual

    def reset(self) -> None:
        """Return to the open-command state."""
        self._demod.reset()
        self._integrator = 0.0
        self._command = 0.0
        self._residual = 0.0

    def step(self, secondary_pickoff_norm: float, ref_cos: float) -> float:
        """Process one sample and return the normalised control-DAC word.

        Args:
            secondary_pickoff_norm: normalised secondary pick-off sample.
            ref_cos: in-phase (drive) reference from the PLL.

        Returns:
            The carrier-modulated control word for the control DAC.
        """
        cfg = self.config
        self._residual = self._demod.demodulate(secondary_pickoff_norm, ref_cos)
        self._integrator += cfg.ki * self._residual
        limit = cfg.max_command
        if self._integrator > limit:
            self._integrator = limit
        elif self._integrator < -limit:
            self._integrator = -limit
        command = cfg.kp * self._residual + self._integrator
        if command > limit:
            command = limit
        elif command < -limit:
            command = -limit
        self._command = command
        # re-modulate onto the carrier with opposite sign to oppose the motion
        return self._modulator.modulate(-command, ref_cos)
