"""Primary drive loop: PLL plus AGC.

The drive loop keeps the ring vibrating along its primary mode with a
fixed amplitude at the resonance frequency:

* the :class:`~repro.dsp.pll.DigitalPll` tracks the resonance and
  supplies the in-phase (cosine) drive reference plus the quadrature
  reference used by the sense-chain demodulators;
* the :class:`~repro.dsp.agc.DriveAgc` regulates the pick-off amplitude
  by scaling the drive reference before it reaches the drive DAC.

The four observable traces of Fig. 5 / Fig. 6 (amplitude control, phase
error, amplitude error, VCO control) are all exposed as properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..common.exceptions import ConfigurationError
from ..common.fixedpoint import QFormat
from ..dsp.agc import AgcConfig, DriveAgc
from ..dsp.pll import DigitalPll, PllConfig


@dataclass
class DriveLoopConfig:
    """Configuration of the complete drive loop.

    Attributes:
        pll: drive PLL configuration.
        agc: drive AGC configuration.
        output_format: optional fixed-point format applied to the drive
            word (prototype / RTL mode).
    """

    pll: PllConfig = field(default_factory=PllConfig)
    agc: AgcConfig = field(default_factory=AgcConfig)
    output_format: Optional[QFormat] = None

    def __post_init__(self) -> None:
        if self.agc.target_amplitude <= self.pll.amplitude_threshold:
            raise ConfigurationError(
                "AGC target amplitude must exceed the PLL amplitude threshold")


class DriveLoop:
    """Closed primary-drive loop (PLL + AGC)."""

    def __init__(self, config: Optional[DriveLoopConfig] = None):
        self.config = config or DriveLoopConfig()
        self.pll = DigitalPll(self.config.pll)
        self.agc = DriveAgc(self.config.agc)
        self._drive_word = 0.0

    # -- observables (Fig. 5 traces) -------------------------------------------

    @property
    def amplitude_control(self) -> float:
        """AGC drive-gain word ("amplitude control" in Fig. 5)."""
        return self.agc.gain

    @property
    def phase_error(self) -> float:
        """PLL normalised phase error ("phase error" in Fig. 5)."""
        return self.pll.phase_error

    @property
    def amplitude_error(self) -> float:
        """AGC amplitude error ("amplitude error" in Fig. 5)."""
        return self.agc.amplitude_error

    @property
    def vco_control(self) -> float:
        """PLL integrator output in Hz ("VCO control" in Fig. 5)."""
        return self.pll.vco_control_hz

    @property
    def drive_word(self) -> float:
        """Latest normalised drive-DAC word."""
        return self._drive_word

    @property
    def locked(self) -> bool:
        """True when the PLL reports phase lock."""
        return self.pll.locked

    @property
    def amplitude_settled(self) -> bool:
        """True when the AGC reports the vibration amplitude is on target."""
        return self.agc.settled

    @property
    def references(self) -> Tuple[float, float]:
        """Latest ``(sin, cos)`` NCO references for the demodulators."""
        return self.pll.references

    # -- operation --------------------------------------------------------------

    def reset(self) -> None:
        """Return the loop to the power-on state."""
        self.pll.reset()
        self.agc.reset()
        self._drive_word = 0.0

    def step(self, primary_pickoff_norm: float) -> float:
        """Process one primary pick-off sample and produce the drive word.

        Args:
            primary_pickoff_norm: normalised (±1 FS) ADC sample of the
                primary pick-off.

        Returns:
            The normalised drive-DAC word for this sample.
        """
        sin_ref, cos_ref = self.pll.step(primary_pickoff_norm)
        gain = self.agc.step(self.pll.amplitude_estimate)
        drive = gain * cos_ref
        if self.config.output_format is not None:
            from ..common.fixedpoint import quantize
            drive = quantize(drive, self.config.output_format)
        self._drive_word = drive
        return drive
