"""Secondary (sense) chain: demodulation, filtering and compensation.

The rate information rides on the ~15 kHz drive carrier: the Coriolis
force is proportional to the product of the angular rate and the primary
velocity, so the secondary pick-off is an amplitude-modulated version of
the drive reference.  The sense chain recovers it:

1. I/Q synchronous demodulation against the drive-locked NCO references
   (in-phase → Coriolis/rate channel, quadrature → quadrature error);
2. quadrature cancellation;
3. a narrow Butterworth low-pass that sets the output bandwidth
   (Table 1: 3 dB bandwidth 25–75 Hz);
4. static offset and polynomial temperature compensation;
5. scaling to °/s and to the normalised rate-output word.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..common.exceptions import ConfigurationError
from ..common.fixedpoint import QFormat
from ..dsp.compensation import (
    OffsetCompensation,
    QuadratureCancellation,
    RateScaler,
    RateScalerConfig,
    TemperatureCompensation,
    TemperatureCompensationConfig,
)
from ..dsp.iir import IirFilter
from ..dsp.mixer import QuadratureDemodulator


@dataclass
class SenseChainConfig:
    """Configuration of the rate (sense) channel.

    Attributes:
        sample_rate_hz: DSP sample rate.
        demod_cutoff_hz: demodulator post-mixer low-pass cutoff.
        output_bandwidth_hz: -3 dB bandwidth of the output filter
            (Table 1 reports 25–75 Hz; 50 Hz is the platform default).
        output_filter_order: order of the Butterworth output filter.
        quadrature_coefficient: quadrature cancellation coefficient.
        offset: static offset removed after filtering (channel units).
        temperature: polynomial temperature-compensation coefficients.
        scaler: rate scaling / calibration configuration.
        output_format: optional fixed-point format (prototype mode).
    """

    sample_rate_hz: float = 120_000.0
    demod_cutoff_hz: float = 800.0
    output_bandwidth_hz: float = 50.0
    output_filter_order: int = 4
    quadrature_coefficient: float = 0.0
    offset: float = 0.0
    temperature: TemperatureCompensationConfig = field(
        default_factory=TemperatureCompensationConfig)
    scaler: RateScalerConfig = field(default_factory=RateScalerConfig)
    output_format: Optional[QFormat] = None

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be > 0")
        if not 0 < self.output_bandwidth_hz < self.sample_rate_hz / 2:
            raise ConfigurationError("output bandwidth must be between 0 and Nyquist")
        if self.output_filter_order < 1:
            raise ConfigurationError("output filter order must be >= 1")


class SenseChain:
    """Open-loop rate readout chain."""

    def __init__(self, config: Optional[SenseChainConfig] = None):
        self.config = config or SenseChainConfig()
        cfg = self.config
        self.demodulator = QuadratureDemodulator(cfg.demod_cutoff_hz,
                                                 cfg.sample_rate_hz,
                                                 cfg.output_format)
        self.output_filter = IirFilter.butterworth_low_pass(
            cfg.output_filter_order, cfg.output_bandwidth_hz, cfg.sample_rate_hz,
            output_format=cfg.output_format, name="rate_output_filter")
        self.quadrature_filter = IirFilter.butterworth_low_pass(
            2, cfg.output_bandwidth_hz, cfg.sample_rate_hz,
            name="quadrature_filter")
        self.quadrature_cancel = QuadratureCancellation(cfg.quadrature_coefficient,
                                                        cfg.output_format)
        self.offset_comp = OffsetCompensation(cfg.offset, cfg.output_format)
        self.temperature_comp = TemperatureCompensation(cfg.temperature,
                                                        cfg.output_format)
        self.scaler = RateScaler(cfg.scaler, cfg.output_format)
        self._rate_dps = 0.0
        self._rate_word = 0.0
        self._rate_channel = 0.0
        self._quadrature_channel = 0.0

    # -- observables -----------------------------------------------------------

    @property
    def rate_dps(self) -> float:
        """Latest compensated rate estimate in °/s."""
        return self._rate_dps

    @property
    def rate_word(self) -> float:
        """Latest normalised output word (drives the rate-output DAC)."""
        return self._rate_word

    @property
    def rate_channel(self) -> float:
        """Filtered, uncompensated in-phase (Coriolis) channel value."""
        return self._rate_channel

    @property
    def quadrature_channel(self) -> float:
        """Filtered quadrature-error channel value."""
        return self._quadrature_channel

    # -- operation --------------------------------------------------------------

    def reset(self) -> None:
        """Clear all filter state."""
        self.demodulator.reset()
        self.output_filter.reset()
        self.quadrature_filter.reset()
        self._rate_dps = 0.0
        self._rate_word = 0.0
        self._rate_channel = 0.0
        self._quadrature_channel = 0.0

    def step(self, secondary_pickoff_norm: float, ref_sin: float, ref_cos: float,
             temperature_c: float = 25.0) -> Tuple[float, float]:
        """Process one secondary pick-off sample.

        Args:
            secondary_pickoff_norm: normalised ADC sample of the secondary
                pick-off.
            ref_sin: quadrature NCO reference from the drive loop.
            ref_cos: in-phase (drive) NCO reference from the drive loop.
            temperature_c: measured die temperature used for compensation.

        Returns:
            ``(rate_dps, rate_word)``.
        """
        # Coriolis force is proportional to the primary *velocity*, which is
        # in phase with the drive (cos) reference, so the in-phase channel
        # carries the rate and the quadrature channel the quadrature error.
        i_chan, q_chan = self.demodulator.step(secondary_pickoff_norm,
                                               ref_cos, ref_sin)
        raw = self.quadrature_cancel.step(i_chan, q_chan)
        self._rate_channel = self.output_filter.step(raw)
        self._quadrature_channel = self.quadrature_filter.step(q_chan)
        compensated = self.offset_comp.step(self._rate_channel)
        compensated = self.temperature_comp.step(compensated, temperature_c)
        self._rate_dps = self.scaler.to_dps(compensated)
        self._rate_word = self.scaler.to_output_word(self._rate_dps)
        return self._rate_dps, self._rate_word

    # -- calibration hooks -------------------------------------------------------

    def calibrate_scale(self, channel_per_dps: float) -> None:
        """Set the channel→°/s conversion from a measured response slope."""
        self.scaler.calibrate(channel_per_dps)

    def calibrate_offset(self, channel_offset: float) -> None:
        """Set the static offset subtracted after the output filter."""
        self.offset_comp.offset = float(channel_offset)

    def calibrate_temperature(self, config: TemperatureCompensationConfig) -> None:
        """Install new temperature-compensation polynomials."""
        self.temperature_comp.config = config
