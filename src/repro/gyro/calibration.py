"""End-of-line calibration routines for the gyro conditioning chain.

The paper's flow trims the platform to the sensor ("manual trimming can
be performed and all intermediate data of the chain can be accessed"
during prototyping).  In production the same steps run on a rate table
in the factory: the part is rotated at known rates and temperatures and
the scale factor, zero-rate offset and temperature-compensation
polynomials are computed from the measured chain outputs and written to
the compensation registers.

These helpers implement the math of those steps; the platform object
(:class:`~repro.platform.gyro_platform.GyroPlatform`) orchestrates the
physical part — applying the rates and temperatures and collecting the
settled chain outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..common.analysis import linear_fit
from ..common.exceptions import CalibrationError
from ..dsp.compensation import TemperatureCompensationConfig


@dataclass(frozen=True)
class ScaleCalibration:
    """Result of the scale-factor calibration.

    Attributes:
        channel_per_dps: raw rate-channel units per °/s.
        channel_offset: raw rate-channel value at zero rate.
        residual_percent_fs: worst-case straight-line residual of the
            calibration points, as % of full scale.
    """

    channel_per_dps: float
    channel_offset: float
    residual_percent_fs: float


def fit_scale_factor(applied_rates_dps: Sequence[float],
                     measured_channel: Sequence[float],
                     full_scale_dps: float = 300.0) -> ScaleCalibration:
    """Fit the rate-channel response to the applied calibration rates.

    Args:
        applied_rates_dps: rates applied on the rate table.
        measured_channel: settled (uncompensated) rate-channel values.
        full_scale_dps: full-scale rate used to normalise the residual.

    Raises:
        CalibrationError: if fewer than two points are supplied or the
            response slope is degenerate.
    """
    rates = np.asarray(applied_rates_dps, dtype=np.float64)
    channel = np.asarray(measured_channel, dtype=np.float64)
    if rates.size < 2 or rates.size != channel.size:
        raise CalibrationError("need at least two matched calibration points")
    fit = linear_fit(rates, channel)
    if abs(fit.slope) < 1e-15:
        raise CalibrationError("rate response slope is zero; check the chain")
    span = abs(fit.slope) * 2.0 * full_scale_dps
    residual = 100.0 * fit.max_abs_residual / span
    return ScaleCalibration(channel_per_dps=fit.slope,
                            channel_offset=fit.offset,
                            residual_percent_fs=residual)


def select_reference_slope(temperatures_c: Sequence[float],
                           slopes: Sequence[float],
                           reference_temperature_c: float = 25.0) -> float:
    """Pick the sensitivity slope the ratio normalisation divides by.

    Prefers the slope measured at the reference temperature; when the
    sweep does not include it, the first measured slope is used.  A
    reference slope of exactly zero means the chain produced no rate
    response at the reference point — normalising by it would silently
    corrupt every ratio, so it is rejected instead.

    Raises:
        CalibrationError: on empty/mismatched inputs or a zero
            reference slope (a dead rate channel).
    """
    temps = list(temperatures_c)
    slope_list = list(slopes)
    if not slope_list or len(temps) != len(slope_list):
        raise CalibrationError("need one measured slope per temperature")
    reference = slope_list[0]
    for temp, slope in zip(temps, slope_list):
        if temp == reference_temperature_c:
            reference = slope
            break
    if reference == 0.0:
        raise CalibrationError(
            "reference sensitivity slope is zero; the rate channel did not "
            "respond at the reference temperature")
    return float(reference)


def fit_temperature_compensation(temperatures_c: Sequence[float],
                                 zero_rate_channel: Sequence[float],
                                 sensitivity_ratio: Sequence[float],
                                 reference_temperature_c: float = 25.0
                                 ) -> TemperatureCompensationConfig:
    """Fit offset and sensitivity temperature-compensation polynomials.

    Args:
        temperatures_c: calibration temperatures.
        zero_rate_channel: zero-rate channel value at each temperature
            (after scale calibration, i.e. in the same units the offset
            compensation operates on).
        sensitivity_ratio: measured sensitivity at each temperature
            divided by the sensitivity at the reference temperature.
        reference_temperature_c: temperature at which no correction applies.

    Returns:
        A :class:`TemperatureCompensationConfig` with first-order offset
        and sensitivity polynomials.
    """
    temps = np.asarray(temperatures_c, dtype=np.float64)
    offsets = np.asarray(zero_rate_channel, dtype=np.float64)
    ratios = np.asarray(sensitivity_ratio, dtype=np.float64)
    if temps.size < 2 or temps.size != offsets.size or temps.size != ratios.size:
        raise CalibrationError("need at least two matched calibration temperatures")
    dt = temps - reference_temperature_c
    offset_fit = np.polyfit(dt, offsets, 1)          # offsets ~ o1*dT + o0
    sens_fit = np.polyfit(dt, ratios - 1.0, 1)       # ratio-1 ~ s1*dT + s0
    return TemperatureCompensationConfig(
        offset_poly=(float(offset_fit[1]), float(offset_fit[0])),
        sensitivity_poly=(float(sens_fit[0]),))


def null_voltage_error(measured_null_v: float, target_null_v: float = 2.5
                       ) -> float:
    """Null-trim error: how far the zero-rate output sits from the target."""
    return measured_null_v - target_null_v


def sensitivity_error_percent(measured_v_per_dps: float,
                              target_v_per_dps: float = 0.005) -> float:
    """Relative sensitivity error in percent of the target."""
    if target_v_per_dps == 0:
        raise CalibrationError("target sensitivity cannot be zero")
    return 100.0 * (measured_v_per_dps - target_v_per_dps) / target_v_per_dps
