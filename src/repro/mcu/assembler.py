"""A small two-pass MCS-51 assembler.

"Software development goes along with digital IP macrocells progress" —
the monitoring and communication firmware in this repository is written
as 8051 assembly source, assembled by this module and executed on the
instruction-set simulator.  The assembler supports the instruction
subset the ISS implements, labels, ``EQU`` constants, ``DB`` data bytes
and ``ORG`` directives — enough for the boot/monitor/communication
routines of the case study.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..common.exceptions import AssemblerError

_REGISTER = re.compile(r"^R([0-7])$", re.IGNORECASE)


def _parse_number(token: str, symbols: Dict[str, int]) -> int:
    token = token.strip()
    if token.startswith("#"):
        token = token[1:]
    if token in symbols:
        return symbols[token]
    try:
        if token.lower().startswith("0x"):
            return int(token, 16)
        if token.lower().endswith("h"):
            return int(token[:-1], 16)
        return int(token, 10)
    except ValueError:
        raise AssemblerError(f"cannot parse numeric operand {token!r}") from None


class Assembler:
    """Two-pass assembler producing a flat binary image."""

    def __init__(self):
        self.symbols: Dict[str, int] = {}

    # -- public API --------------------------------------------------------------

    def assemble(self, source: str) -> bytes:
        """Assemble a source listing into a binary image starting at 0."""
        lines = self._clean(source)
        self._first_pass(lines)
        return self._second_pass(lines)

    # -- helpers -------------------------------------------------------------------

    def _clean(self, source: str) -> List[Tuple[Optional[str], str]]:
        """Strip comments, split labels, return (label, statement) pairs."""
        cleaned: List[Tuple[Optional[str], str]] = []
        for raw in source.splitlines():
            line = raw.split(";")[0].strip()
            if not line:
                continue
            label = None
            # classic "NAME EQU value" form (no colon)
            equ_match = re.match(r"^(\w+)\s+EQU\s+(.+)$", line, re.IGNORECASE)
            if equ_match:
                cleaned.append((equ_match.group(1), f"EQU {equ_match.group(2)}"))
                continue
            if ":" in line:
                label_part, _, rest = line.partition(":")
                label = label_part.strip()
                line = rest.strip()
            cleaned.append((label, line))
        return cleaned

    def _statement_size(self, statement: str) -> int:
        if not statement:
            return 0
        mnemonic, operands = self._split(statement)
        if mnemonic == "ORG" or mnemonic == "EQU":
            return 0
        if mnemonic == "DB":
            return len(operands)
        return len(self._encode(mnemonic, operands, resolve_labels=False,
                                current_address=0))

    def _first_pass(self, lines: List[Tuple[Optional[str], str]]) -> None:
        self.symbols = {}
        address = 0
        for label, statement in lines:
            mnemonic, operands = self._split(statement) if statement else ("", [])
            if mnemonic == "ORG":
                address = _parse_number(operands[0], self.symbols)
                if label:
                    self.symbols[label] = address
                continue
            if mnemonic == "EQU":
                if not label:
                    raise AssemblerError("EQU requires a label")
                self.symbols[label] = _parse_number(operands[0], self.symbols)
                continue
            if label:
                self.symbols[label] = address
            if statement:
                address += self._statement_size(statement)

    def _second_pass(self, lines: List[Tuple[Optional[str], str]]) -> bytes:
        image = bytearray()
        address = 0
        for _, statement in lines:
            if not statement:
                continue
            mnemonic, operands = self._split(statement)
            if mnemonic == "EQU":
                continue
            if mnemonic == "ORG":
                target = _parse_number(operands[0], self.symbols)
                if target < address:
                    raise AssemblerError("ORG cannot move backwards")
                image.extend(b"\x00" * (target - address))
                address = target
                continue
            if mnemonic == "DB":
                data = bytes(_parse_number(op, self.symbols) & 0xFF
                             for op in operands)
                image.extend(data)
                address += len(data)
                continue
            encoded = self._encode(mnemonic, operands, resolve_labels=True,
                                   current_address=address)
            image.extend(encoded)
            address += len(encoded)
        return bytes(image)

    def _split(self, statement: str) -> Tuple[str, List[str]]:
        parts = statement.split(None, 1)
        mnemonic = parts[0].upper()
        operands = []
        if len(parts) > 1:
            operands = [op.strip() for op in parts[1].split(",")]
        return mnemonic, operands

    def _value(self, token: str, resolve: bool, bits: int = 8) -> int:
        value = _parse_number(token, self.symbols) if (resolve or
                                                       not self._is_label(token)) else 0
        return value & ((1 << bits) - 1)

    def _is_label(self, token: str) -> bool:
        token = token.lstrip("#")
        return bool(re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", token)) \
            and token not in self.symbols and not _REGISTER.match(token) \
            and token.upper() not in ("A", "C", "DPTR")

    def _rel(self, token: str, current_address: int, size: int,
             resolve: bool) -> int:
        if not resolve:
            return 0
        target = _parse_number(token, self.symbols)
        offset = target - (current_address + size)
        if not -128 <= offset <= 127:
            raise AssemblerError(f"relative jump to {token!r} out of range ({offset})")
        return offset & 0xFF

    # -- encoding ------------------------------------------------------------------

    def _encode(self, mnemonic: str, ops: List[str], resolve_labels: bool,
                current_address: int) -> bytes:
        resolve = resolve_labels
        up = [op.upper() for op in ops]

        def reg_index(token: str) -> Optional[int]:
            match = _REGISTER.match(token)
            return int(match.group(1)) if match else None

        if mnemonic == "NOP":
            return bytes([0x00])
        if mnemonic == "RET":
            return bytes([0x22])
        if mnemonic == "RETI":
            return bytes([0x32])
        if mnemonic == "CLR":
            if up[0] == "A":
                return bytes([0xE4])
            if up[0] == "C":
                return bytes([0xC3])
            return bytes([0xC2, self._value(ops[0], resolve)])
        if mnemonic == "SETB":
            if up[0] == "C":
                return bytes([0xD3])
            return bytes([0xD2, self._value(ops[0], resolve)])
        if mnemonic == "CPL":
            if up[0] == "A":
                return bytes([0xF4])
            if up[0] == "C":
                return bytes([0xB3])
            return bytes([0xB2, self._value(ops[0], resolve)])
        if mnemonic == "SWAP":
            return bytes([0xC4])
        if mnemonic == "RL":
            return bytes([0x23])
        if mnemonic == "RR":
            return bytes([0x03])
        if mnemonic == "RLC":
            return bytes([0x33])
        if mnemonic == "RRC":
            return bytes([0x13])
        if mnemonic == "INC":
            if up[0] == "A":
                return bytes([0x04])
            if up[0] == "DPTR":
                return bytes([0xA3])
            index = reg_index(up[0])
            if index is not None:
                return bytes([0x08 + index])
            return bytes([0x05, self._value(ops[0], resolve)])
        if mnemonic == "DEC":
            if up[0] == "A":
                return bytes([0x14])
            index = reg_index(up[0])
            if index is not None:
                return bytes([0x18 + index])
            return bytes([0x15, self._value(ops[0], resolve)])
        if mnemonic == "PUSH":
            return bytes([0xC0, self._value(ops[0], resolve)])
        if mnemonic == "POP":
            return bytes([0xD0, self._value(ops[0], resolve)])
        if mnemonic == "MUL":
            return bytes([0xA4])
        if mnemonic == "DIV":
            return bytes([0x84])

        if mnemonic in ("LJMP", "LCALL"):
            opcode = 0x02 if mnemonic == "LJMP" else 0x12
            target = self._value(ops[0], resolve, bits=16)
            return bytes([opcode, (target >> 8) & 0xFF, target & 0xFF])
        if mnemonic == "SJMP":
            return bytes([0x80, self._rel(ops[0], current_address, 2, resolve)])
        if mnemonic == "JZ":
            return bytes([0x60, self._rel(ops[0], current_address, 2, resolve)])
        if mnemonic == "JNZ":
            return bytes([0x70, self._rel(ops[0], current_address, 2, resolve)])
        if mnemonic == "JC":
            return bytes([0x40, self._rel(ops[0], current_address, 2, resolve)])
        if mnemonic == "JNC":
            return bytes([0x50, self._rel(ops[0], current_address, 2, resolve)])
        if mnemonic in ("JB", "JNB", "JBC"):
            opcode = {"JB": 0x20, "JNB": 0x30, "JBC": 0x10}[mnemonic]
            return bytes([opcode, self._value(ops[0], resolve),
                          self._rel(ops[1], current_address, 3, resolve)])
        if mnemonic == "DJNZ":
            index = reg_index(up[0])
            if index is not None:
                return bytes([0xD8 + index,
                              self._rel(ops[1], current_address, 2, resolve)])
            return bytes([0xD5, self._value(ops[0], resolve),
                          self._rel(ops[1], current_address, 3, resolve)])
        if mnemonic == "CJNE":
            if up[0] == "A" and ops[1].startswith("#"):
                return bytes([0xB4, self._value(ops[1], resolve),
                              self._rel(ops[2], current_address, 3, resolve)])
            if up[0] == "A":
                return bytes([0xB5, self._value(ops[1], resolve),
                              self._rel(ops[2], current_address, 3, resolve)])
            index = reg_index(up[0])
            if index is not None and ops[1].startswith("#"):
                return bytes([0xB8 + index, self._value(ops[1], resolve),
                              self._rel(ops[2], current_address, 3, resolve)])
            raise AssemblerError(f"unsupported CJNE form: {ops}")

        if mnemonic == "MOV":
            dst, src = up[0], up[1]
            dst_reg, src_reg = reg_index(dst), reg_index(src)
            if dst == "A" and src.startswith("#"):
                return bytes([0x74, self._value(ops[1], resolve)])
            if dst == "A" and src_reg is not None:
                return bytes([0xE8 + src_reg])
            if dst == "A" and src in ("@R0", "@R1"):
                return bytes([0xE6 + int(src[-1])])
            if dst == "A":
                return bytes([0xE5, self._value(ops[1], resolve)])
            if dst == "DPTR":
                value = self._value(ops[1], resolve, bits=16)
                return bytes([0x90, (value >> 8) & 0xFF, value & 0xFF])
            if dst_reg is not None and src.startswith("#"):
                return bytes([0x78 + dst_reg, self._value(ops[1], resolve)])
            if dst_reg is not None and src == "A":
                return bytes([0xF8 + dst_reg])
            if dst_reg is not None:
                return bytes([0xA8 + dst_reg, self._value(ops[1], resolve)])
            if dst in ("@R0", "@R1") and src == "A":
                return bytes([0xF6 + int(dst[-1])])
            if dst in ("@R0", "@R1") and src.startswith("#"):
                return bytes([0x76 + int(dst[-1]), self._value(ops[1], resolve)])
            if src == "A":
                return bytes([0xF5, self._value(ops[0], resolve)])
            if src_reg is not None:
                return bytes([0x88 + src_reg, self._value(ops[0], resolve)])
            if src.startswith("#"):
                return bytes([0x75, self._value(ops[0], resolve),
                              self._value(ops[1], resolve)])
            # MOV direct, direct  (encoding order: src, dst)
            return bytes([0x85, self._value(ops[1], resolve),
                          self._value(ops[0], resolve)])

        if mnemonic == "MOVX":
            if up[0] == "A" and up[1] == "@DPTR":
                return bytes([0xE0])
            if up[0] == "@DPTR" and up[1] == "A":
                return bytes([0xF0])
            raise AssemblerError(f"unsupported MOVX form: {ops}")
        if mnemonic == "MOVC":
            if up[1].replace(" ", "") == "@A+DPTR":
                return bytes([0x93])
            return bytes([0x83])

        simple_alu = {"ADD": (0x24, 0x25, 0x28), "ADDC": (0x34, None, 0x38),
                      "SUBB": (0x94, 0x95, 0x98), "ANL": (0x54, 0x55, 0x58),
                      "ORL": (0x44, 0x45, 0x48), "XRL": (0x64, 0x65, 0x68)}
        if mnemonic in simple_alu and up[0] == "A":
            imm_op, direct_op, reg_base = simple_alu[mnemonic]
            src = ops[1]
            index = reg_index(up[1])
            if src.startswith("#"):
                return bytes([imm_op, self._value(src, resolve)])
            if index is not None:
                return bytes([reg_base + index])
            if direct_op is None:
                raise AssemblerError(f"unsupported {mnemonic} addressing: {ops}")
            return bytes([direct_op, self._value(src, resolve)])
        if mnemonic == "XCH" and up[0] == "A":
            index = reg_index(up[1])
            if index is not None:
                return bytes([0xC8 + index])
            return bytes([0xC5, self._value(ops[1], resolve)])

        raise AssemblerError(f"unsupported mnemonic {mnemonic!r} with operands {ops}")


def assemble(source: str) -> bytes:
    """Convenience wrapper: assemble ``source`` and return the binary image."""
    return Assembler().assemble(source)
