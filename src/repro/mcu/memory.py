"""Memory subsystem of the 8051-based programmable section.

The paper's CPU core (Fig. 4) is surrounded by configurable ROM/RAM and
a cache controller: an 'ASIC' version boots from a 16 KB ROM, a
'prototype' version keeps the program in RAM (downloaded over the UART)
with only a 1 KB boot ROM.  The memory models here provide code memory,
internal RAM, and an external-data (XDATA) bus with pluggable handlers —
the hook the bridge uses to map the DSP registers, the trim bank and the
SRAM data logger into the 8051's MOVX address space.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..common.exceptions import BusError, ConfigurationError


class CodeMemory:
    """Program memory (ROM or downloaded RAM image)."""

    def __init__(self, size: int = 16 * 1024, writable: bool = False):
        if not 0 < size <= 64 * 1024:
            raise ConfigurationError("code memory size must be in (0, 64K]")
        self.size = size
        self.writable = writable
        self._data = bytearray(size)

    def load(self, image: bytes, origin: int = 0) -> None:
        """Load a program image at ``origin`` (always allowed — this is
        the programming/download path, not a CPU write)."""
        if origin < 0 or origin + len(image) > self.size:
            raise BusError(
                f"image of {len(image)} bytes at 0x{origin:04X} exceeds code memory")
        self._data[origin:origin + len(image)] = image

    def read(self, address: int) -> int:
        """CPU instruction/MOVC read."""
        if not 0 <= address < self.size:
            raise BusError(f"code read outside memory: 0x{address:04X}")
        return self._data[address]

    def write(self, address: int, value: int) -> None:
        """CPU-initiated write (only legal for RAM-backed program storage)."""
        if not self.writable:
            raise BusError("code memory is not writable")
        if not 0 <= address < self.size:
            raise BusError(f"code write outside memory: 0x{address:04X}")
        self._data[address] = value & 0xFF


class InternalRam:
    """256-byte internal RAM (direct + indirect space, register banks, stack)."""

    SIZE = 256

    def __init__(self):
        self._data = bytearray(self.SIZE)

    def read(self, address: int) -> int:
        if not 0 <= address < self.SIZE:
            raise BusError(f"IRAM read out of range: 0x{address:02X}")
        return self._data[address]

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < self.SIZE:
            raise BusError(f"IRAM write out of range: 0x{address:02X}")
        self._data[address] = value & 0xFF

    def clear(self) -> None:
        """Zero the whole RAM (power-on state)."""
        for i in range(self.SIZE):
            self._data[i] = 0


XdataHandler = Tuple[int, int, Callable[[int], int], Callable[[int, int], None]]


class ExternalBus:
    """MOVX (XDATA) address space with memory-mapped peripheral windows.

    A default RAM backs unmapped addresses; handlers registered with
    :meth:`map_region` intercept reads/writes in their window.  The
    bridge maps the DSP registers, trim bank and SRAM controller here.
    """

    def __init__(self, ram_size: int = 4096):
        if not 0 < ram_size <= 64 * 1024:
            raise ConfigurationError("XDATA RAM size must be in (0, 64K]")
        self._ram = bytearray(ram_size)
        self._ram_size = ram_size
        self._regions: List[XdataHandler] = []

    def map_region(self, start: int, end: int,
                   read: Callable[[int], int],
                   write: Callable[[int, int], None]) -> None:
        """Map ``[start, end)`` to a peripheral's read/write callbacks."""
        if start >= end:
            raise ConfigurationError("region start must be below end")
        for existing_start, existing_end, _, _ in self._regions:
            if start < existing_end and existing_start < end:
                raise ConfigurationError(
                    f"region 0x{start:04X}-0x{end:04X} overlaps an existing one")
        self._regions.append((start, end, read, write))

    def read(self, address: int) -> int:
        for start, end, read, _ in self._regions:
            if start <= address < end:
                return read(address) & 0xFF
        if 0 <= address < self._ram_size:
            return self._ram[address]
        raise BusError(f"XDATA read from unmapped address 0x{address:04X}")

    def write(self, address: int, value: int) -> None:
        for start, end, _, write in self._regions:
            if start <= address < end:
                write(address, value & 0xFF)
                return
        if 0 <= address < self._ram_size:
            self._ram[address] = value & 0xFF
            return
        raise BusError(f"XDATA write to unmapped address 0x{address:04X}")
