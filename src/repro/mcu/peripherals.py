"""Peripherals of the programmable section (Fig. 4).

The 8051 core is surrounded by a UART and a cache controller on the
8-bit SFR bus, and — through a bridge — by SPI, timer, watchdog and SRAM
controller on a 16-bit bus.  Each peripheral here is a behavioural model
exposing the registers the firmware uses; the bridge maps the 16-bit bus
(including the DSP monitor registers and the analog trim bank) into the
8051's MOVX address space.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.exceptions import BusError, ConfigurationError
from ..common.registers import RegisterFile

# SFR addresses (standard 8051 UART plus platform-specific extensions)
SFR_SBUF = 0x99
SFR_SCON = 0x98
SFR_CACHE_CTRL = 0x8E


class Uart:
    """UART used for PC communication, software download and rate output.

    The model is transaction-level: bytes written to SBUF are appended to
    the TX log, and bytes queued by the test bench / host appear in SBUF
    after a read of SCON shows the receive flag.
    """

    def __init__(self, baud_rate: int = 115_200):
        if baud_rate <= 0:
            raise ConfigurationError("baud rate must be > 0")
        self.baud_rate = baud_rate
        self.tx_log: List[int] = []
        self._rx_queue: List[int] = []

    def attach(self, sfr_bus) -> None:
        """Attach the UART registers to the core's SFR bus."""
        sfr_bus.attach(SFR_SBUF, read=self._read_sbuf, write=self._write_sbuf)
        sfr_bus.attach(SFR_SCON, read=self._read_scon)

    def _write_sbuf(self, value: int) -> None:
        self.tx_log.append(value & 0xFF)

    def _read_sbuf(self) -> int:
        if self._rx_queue:
            return self._rx_queue.pop(0)
        return 0

    def _read_scon(self) -> int:
        # bit0 (RI) = receive data available, bit1 (TI) = transmit ready
        return (0x01 if self._rx_queue else 0x00) | 0x02

    def host_send(self, data: bytes) -> None:
        """Queue bytes as if sent by the external PC."""
        self._rx_queue.extend(data)

    def transmitted_bytes(self) -> bytes:
        """Everything the firmware has transmitted so far."""
        return bytes(self.tx_log)

    def transmitted_text(self) -> str:
        """TX log decoded as ASCII (errors replaced)."""
        return bytes(self.tx_log).decode("ascii", errors="replace")


class SpiController:
    """SPI master used for the EEPROM and external communication."""

    def __init__(self):
        self.mosi_log: List[int] = []
        self._miso_queue: List[int] = []

    def transfer(self, value: int) -> int:
        """Full-duplex transfer of one byte."""
        self.mosi_log.append(value & 0xFF)
        if self._miso_queue:
            return self._miso_queue.pop(0)
        return 0xFF

    def queue_miso(self, data: bytes) -> None:
        """Queue slave-to-master response bytes."""
        self._miso_queue.extend(data)


class SpiEeprom:
    """External SPI EEPROM used to store downloaded firmware images."""

    READ = 0x03
    WRITE = 0x02

    def __init__(self, size: int = 8192):
        if size <= 0:
            raise ConfigurationError("EEPROM size must be > 0")
        self.size = size
        self._data = bytearray(size)

    def write_block(self, address: int, data: bytes) -> None:
        """Program a block (page-write model, no page-size restriction)."""
        if address < 0 or address + len(data) > self.size:
            raise BusError("EEPROM write out of range")
        self._data[address:address + len(data)] = data

    def read_block(self, address: int, length: int) -> bytes:
        """Read a block."""
        if address < 0 or address + length > self.size:
            raise BusError("EEPROM read out of range")
        return bytes(self._data[address:address + length])


class Timer:
    """Simple 16-bit system timer clocked by machine cycles."""

    def __init__(self, reload: int = 0):
        self.reload = reload & 0xFFFF
        self.count = self.reload
        self.overflows = 0
        self.running = True

    def tick(self, cycles: int = 1) -> None:
        """Advance by a number of machine cycles."""
        if not self.running:
            return
        self.count += cycles
        while self.count > 0xFFFF:
            self.count -= 0x10000 - self.reload
            self.overflows += 1

    def reset(self) -> None:
        self.count = self.reload
        self.overflows = 0


class Watchdog:
    """Watchdog timer: the monitoring firmware must service it periodically."""

    def __init__(self, timeout_cycles: int = 200_000):
        if timeout_cycles <= 0:
            raise ConfigurationError("watchdog timeout must be > 0")
        self.timeout_cycles = timeout_cycles
        self._count = 0
        self.expired = False

    def tick(self, cycles: int = 1) -> None:
        """Advance the watchdog; sets :attr:`expired` on timeout."""
        self._count += cycles
        if self._count >= self.timeout_cycles:
            self.expired = True

    def service(self) -> None:
        """Kick the watchdog (firmware write)."""
        self._count = 0

    def reset(self) -> None:
        self._count = 0
        self.expired = False


class SramController:
    """Prototype-phase data logger: stores DSP samples into a 512 Kb SRAM."""

    def __init__(self, size_bytes: int = 64 * 1024):
        if size_bytes <= 0:
            raise ConfigurationError("SRAM size must be > 0")
        self.size_bytes = size_bytes
        self._data = bytearray(size_bytes)
        self._write_pointer = 0

    def log_sample(self, value: int) -> None:
        """Append one 16-bit sample at the current write pointer (wraps)."""
        value &= 0xFFFF
        self._data[self._write_pointer] = value & 0xFF
        self._data[(self._write_pointer + 1) % self.size_bytes] = (value >> 8) & 0xFF
        self._write_pointer = (self._write_pointer + 2) % self.size_bytes

    def read_sample(self, index: int) -> int:
        """Read back the ``index``-th logged 16-bit sample."""
        address = (2 * index) % self.size_bytes
        return self._data[address] | (self._data[(address + 1) % self.size_bytes] << 8)

    @property
    def samples_logged(self) -> int:
        """Number of samples written since construction (modulo wrap)."""
        return self._write_pointer // 2


class BusBridge:
    """SFR-bus to 16-bit-bus bridge (Fig. 4).

    The bridge exposes the 16-bit peripherals and register files (DSP
    monitor registers, analog trim bank, SPI, timer, watchdog, SRAM
    controller) as a window in the 8051's external-data (MOVX) address
    space.  16-bit registers appear as two consecutive byte addresses,
    little-endian.
    """

    def __init__(self, base_address: int = 0x8000):
        self.base_address = base_address
        self._register_files: List[RegisterFile] = []

    def attach_register_file(self, registers: RegisterFile) -> None:
        """Expose a register file through the bridge."""
        self._register_files.append(registers)

    def connect(self, xdata_bus, window: int = 0x1000) -> None:
        """Map the bridge window into the MOVX address space."""
        xdata_bus.map_region(self.base_address, self.base_address + window,
                             self._read_byte, self._write_byte)

    def _locate(self, offset: int):
        register_offset = offset & ~1
        for regfile in self._register_files:
            try:
                return regfile.at_address(register_offset), offset & 1
            except Exception:
                continue
        raise BusError(f"bridge: no register at offset 0x{offset:04X}")

    def _read_byte(self, address: int) -> int:
        register, byte_sel = self._locate(address - self.base_address)
        value = register.read()
        return (value >> (8 * byte_sel)) & 0xFF

    def _write_byte(self, address: int, value: int) -> None:
        register, byte_sel = self._locate(address - self.base_address)
        current = register.read()
        if byte_sel == 0:
            new = (current & 0xFF00) | value
        else:
            new = (current & 0x00FF) | (value << 8)
        register.write(new)
