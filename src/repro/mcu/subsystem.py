"""The complete programmable section: CPU, buses, peripherals and firmware.

:class:`McuSubsystem` assembles the Fig. 4 architecture: the MCS-51 core
with its code/IRAM memories, the UART and cache control on the SFR bus,
and the 16-bit bridge giving MOVX access to the DSP monitor registers,
the analog trim bank, and the prototype SRAM logger.  The monitoring
firmware shipped with the platform is provided as assembly source so the
whole HW/SW path — firmware polls the DSP status register, reads the
rate word and streams it over the UART — runs on the instruction-set
simulator.
"""

from __future__ import annotations

from typing import Optional

from ..common.exceptions import ConfigurationError
from ..common.registers import RegisterFile
from .assembler import assemble
from .core import Mcs51Core
from .jtag import JtagTap
from .memory import CodeMemory, ExternalBus
from .peripherals import (
    BusBridge,
    SpiController,
    SpiEeprom,
    SramController,
    Timer,
    Uart,
    Watchdog,
)

#: MOVX base address of the bridge window.
BRIDGE_BASE = 0x8000

#: Frame header bytes used by the monitoring firmware's UART protocol.
FRAME_HEADER_LOCKED = 0xA5
FRAME_HEADER_UNLOCKED = 0x5A


#: Monitoring/communication firmware (assembly source).
#:
#: The routine mirrors what the paper describes the CPU doing at run time:
#: "a routine constantly checks the system status by accessing the several
#: readable registers spread along the processing chain (for example makes
#: sure that the PLL is locked)" while "other routines handle communication
#: services, providing status and output data to the user".
MONITOR_FIRMWARE_SOURCE = """
; -------------------------------------------------------------------
; Gyro platform monitoring firmware
;   - poll the DSP status register over the bridge (MOVX)
;   - if the PLL is locked, stream a rate frame over the UART:
;       0xA5, rate_low, rate_high, drive_gain_low
;   - otherwise send the "not locked" status byte 0x5A
;   - R7 counts the number of polling iterations (for test visibility)
; -------------------------------------------------------------------
SBUF        EQU 0x99
STATUS_LO   EQU 0x00        ; dsp_status    @ bridge 0x8100
RATE_LO     EQU 0x02        ; dsp_rate_out  @ bridge 0x8102

START:
    MOV R7, #0              ; iteration counter
LOOP:
    INC R7
    MOV DPTR, #0x8100       ; dsp_status, low byte
    MOVX A, @DPTR
    ANL A, #0x01            ; isolate pll_locked
    JZ NOTLOCKED

    MOV A, #0xA5            ; frame header
    MOV SBUF, A
    MOV DPTR, #0x8102       ; dsp_rate_out, low byte
    MOVX A, @DPTR
    MOV SBUF, A
    MOV DPTR, #0x8103       ; dsp_rate_out, high byte
    MOVX A, @DPTR
    MOV SBUF, A
    MOV DPTR, #0x810C       ; dsp_drive_gain, low byte
    MOVX A, @DPTR
    MOV SBUF, A
    SJMP NEXT

NOTLOCKED:
    MOV A, #0x5A            ; "not locked" status byte
    MOV SBUF, A

NEXT:
    CJNE R7, #4, LOOP       ; poll four times, then stop
HALT:
    SJMP HALT
"""


#: Safe-mode service firmware (assembly source).
#:
#: The graceful-degradation counterpart of the monitor routine: poll the
#: safety status register, report it over the UART, and if the safe-mode
#: latch is set, service it by kicking the safety watchdog — then report
#: the cleared status so the host sees the recovery.
SAFETY_FIRMWARE_SOURCE = """
; -------------------------------------------------------------------
; Gyro platform safe-mode service firmware
;   - read safety_status over the bridge (MOVX @ 0x8200)
;   - send the raw status byte over the UART
;   - if the safe-mode latch (bit 0) is set, kick the safety watchdog
;     (write 1 to 0x8204) to clear it
;   - re-read and send the status byte, then halt
; -------------------------------------------------------------------
SBUF        EQU 0x99

START:
    MOV DPTR, #0x8200       ; safety_status, low byte
    MOVX A, @DPTR
    MOV SBUF, A             ; report status as seen
    ANL A, #0x01            ; isolate the safe-mode latch
    JZ DONE

    MOV A, #0x01            ; kick = 1
    MOV DPTR, #0x8204       ; safety_watchdog, low byte
    MOVX @DPTR, A

DONE:
    MOV DPTR, #0x8200
    MOVX A, @DPTR
    MOV SBUF, A             ; report status after service
HALT:
    SJMP HALT
"""


class McuSubsystem:
    """8051 subsystem with buses, peripherals, JTAG and firmware support."""

    def __init__(self, code_size: int = 16 * 1024,
                 code_writable: bool = False):
        self.xdata = ExternalBus()
        self.core = Mcs51Core(code=CodeMemory(code_size, writable=code_writable),
                              xdata=self.xdata)
        self.uart = Uart()
        self.uart.attach(self.core.sfr)
        self.spi = SpiController()
        self.eeprom = SpiEeprom()
        self.timer = Timer()
        self.watchdog = Watchdog()
        self.sram_logger = SramController()
        self.bridge = BusBridge(BRIDGE_BASE)
        self.bridge.connect(self.xdata)
        self.jtag = JtagTap()

    # -- platform integration ---------------------------------------------------------

    def connect_dsp_registers(self, registers: RegisterFile) -> None:
        """Expose the DSP monitor registers through the bridge."""
        self.bridge.attach_register_file(registers)

    def connect_trim_bank(self, trim_registers: RegisterFile) -> None:
        """Expose the analog trim bank through the bridge and the JTAG chain."""
        self.bridge.attach_register_file(trim_registers)
        self.jtag.trim_registers = trim_registers

    def connect_safety_registers(self, registers: RegisterFile) -> None:
        """Expose the safe-mode monitor's registers through the bridge.

        Pass ``platform.safety.registers``; firmware can then poll
        ``safety_status`` at MOVX 0x8200 and clear the latch by writing
        the ``safety_watchdog`` kick bit at 0x8204.
        """
        self.bridge.attach_register_file(registers)

    # -- firmware ----------------------------------------------------------------------

    def load_firmware_source(self, source: str, origin: int = 0) -> bytes:
        """Assemble and load firmware; returns the binary image."""
        image = assemble(source)
        self.core.load_program(image, origin)
        return image

    def load_monitor_firmware(self) -> bytes:
        """Load the built-in monitoring/communication firmware."""
        return self.load_firmware_source(MONITOR_FIRMWARE_SOURCE)

    def load_safety_firmware(self) -> bytes:
        """Load the built-in safe-mode service firmware."""
        return self.load_firmware_source(SAFETY_FIRMWARE_SOURCE)

    def download_firmware_via_uart(self, image: bytes, origin: int = 0) -> None:
        """Model the prototype boot path: program download over the UART.

        Requires RAM-backed (writable) program storage, as in the paper's
        'prototype' memory configuration.
        """
        if not self.core.code.writable:
            raise ConfigurationError(
                "program storage is ROM; use the 'prototype' configuration "
                "(code_writable=True) for UART download")
        self.uart.host_send(image)
        self.core.code.load(image, origin)

    def store_firmware_in_eeprom(self, image: bytes, address: int = 0) -> None:
        """Store a firmware image in the external SPI EEPROM."""
        self.eeprom.write_block(address, image)

    def boot_from_eeprom(self, length: int, address: int = 0) -> None:
        """Reboot using an image previously stored in the EEPROM."""
        image = self.eeprom.read_block(address, length)
        self.core.reset()
        self.core.load_program(image, 0)

    # -- execution ----------------------------------------------------------------------

    def run(self, max_instructions: int = 100_000) -> int:
        """Run the firmware; peripherals are ticked with the consumed cycles."""
        executed = 0
        while executed < max_instructions and not self.core.halted:
            before = self.core.pc
            cycles = self.core.step()
            self.timer.tick(cycles)
            self.watchdog.tick(cycles)
            executed += 1
            # an SJMP that targets itself is the firmware's halt idiom
            if self.core.pc == before and before + 1 < self.core.code.size \
                    and self.core.code.read(before) == 0x80 \
                    and self.core.code.read(before + 1) == 0xFE:
                self.core.halted = True
        return executed
