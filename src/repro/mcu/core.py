"""MCS-51 (8051) instruction-set simulator.

The programmable section of the platform is built around the Oregano
MC8051 IP core; its job in the gyro chip is monitoring, control and
communication — firmware that polls DSP status registers over MOVX,
talks to the UART/SPI peripherals through SFRs and services the
watchdog.  This ISS executes the instruction subset that kind of
firmware uses (data movement, arithmetic/logic, bit operations,
branches, calls, MOVX/MOVC), with SFR accesses delegated to an
:class:`SfrBus` so peripherals can hook their registers.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..common.exceptions import BusError, IllegalOpcodeError
from .memory import CodeMemory, ExternalBus, InternalRam

# SFR addresses used by the core itself
SFR_ACC = 0xE0
SFR_B = 0xF0
SFR_PSW = 0xD0
SFR_SP = 0x81
SFR_DPL = 0x82
SFR_DPH = 0x83
SFR_P0 = 0x80
SFR_P1 = 0x90
SFR_P2 = 0xA0
SFR_P3 = 0xB0

PSW_CY = 0x80
PSW_AC = 0x40
PSW_OV = 0x04


class SfrBus:
    """Special-function-register bus (the 8-bit SFR bus of Fig. 4)."""

    def __init__(self):
        self._read_handlers: Dict[int, Callable[[], int]] = {}
        self._write_handlers: Dict[int, Callable[[int], None]] = {}
        self._storage: Dict[int, int] = {}

    def attach(self, address: int, read: Optional[Callable[[], int]] = None,
               write: Optional[Callable[[int], None]] = None) -> None:
        """Attach peripheral callbacks to an SFR address."""
        if not 0x80 <= address <= 0xFF:
            raise BusError(f"SFR address out of range: 0x{address:02X}")
        if read is not None:
            self._read_handlers[address] = read
        if write is not None:
            self._write_handlers[address] = write

    def read(self, address: int) -> int:
        if address in self._read_handlers:
            return self._read_handlers[address]() & 0xFF
        return self._storage.get(address, 0)

    def write(self, address: int, value: int) -> None:
        value &= 0xFF
        self._storage[address] = value
        if address in self._write_handlers:
            self._write_handlers[address](value)

    def reset(self) -> None:
        """Clear plain-storage SFRs (peripheral-owned ones reset themselves)."""
        self._storage.clear()


class Mcs51Core:
    """Functional MCS-51 CPU model."""

    def __init__(self, code: Optional[CodeMemory] = None,
                 xdata: Optional[ExternalBus] = None):
        self.code = code or CodeMemory()
        self.iram = InternalRam()
        self.xdata = xdata or ExternalBus()
        self.sfr = SfrBus()
        self.pc = 0
        self.cycles = 0
        self.halted = False
        self.sfr.write(SFR_SP, 0x07)

    # -- register helpers -------------------------------------------------------

    @property
    def acc(self) -> int:
        return self.sfr.read(SFR_ACC)

    @acc.setter
    def acc(self, value: int) -> None:
        self.sfr.write(SFR_ACC, value & 0xFF)

    @property
    def psw(self) -> int:
        return self.sfr.read(SFR_PSW)

    @psw.setter
    def psw(self, value: int) -> None:
        self.sfr.write(SFR_PSW, value & 0xFF)

    @property
    def carry(self) -> int:
        return 1 if self.psw & PSW_CY else 0

    @carry.setter
    def carry(self, value: int) -> None:
        self.psw = (self.psw | PSW_CY) if value else (self.psw & ~PSW_CY)

    @property
    def dptr(self) -> int:
        return (self.sfr.read(SFR_DPH) << 8) | self.sfr.read(SFR_DPL)

    @dptr.setter
    def dptr(self, value: int) -> None:
        self.sfr.write(SFR_DPH, (value >> 8) & 0xFF)
        self.sfr.write(SFR_DPL, value & 0xFF)

    @property
    def sp(self) -> int:
        return self.sfr.read(SFR_SP)

    @sp.setter
    def sp(self, value: int) -> None:
        self.sfr.write(SFR_SP, value & 0xFF)

    def _register_bank_base(self) -> int:
        return (self.psw >> 3) & 0x03 and ((self.psw >> 3) & 0x03) * 8 or \
            ((self.psw >> 3) & 0x03) * 8

    def reg(self, index: int) -> int:
        """Read working register R0..R7 of the active bank."""
        return self.iram.read(((self.psw >> 3) & 0x03) * 8 + index)

    def set_reg(self, index: int, value: int) -> None:
        """Write working register R0..R7 of the active bank."""
        self.iram.write(((self.psw >> 3) & 0x03) * 8 + index, value & 0xFF)

    # -- direct / bit address spaces ----------------------------------------------

    def read_direct(self, address: int) -> int:
        """Direct-address read: IRAM below 0x80, SFR at/above 0x80."""
        if address < 0x80:
            return self.iram.read(address)
        return self.sfr.read(address)

    def write_direct(self, address: int, value: int) -> None:
        """Direct-address write."""
        if address < 0x80:
            self.iram.write(address, value)
        else:
            self.sfr.write(address, value)

    def _bit_location(self, bit_address: int):
        if bit_address < 0x80:
            byte_address = 0x20 + (bit_address >> 3)
            direct = False
        else:
            byte_address = bit_address & 0xF8
            direct = True
        mask = 1 << (bit_address & 0x07)
        return byte_address, mask, direct

    def read_bit(self, bit_address: int) -> int:
        byte_address, mask, direct = self._bit_location(bit_address)
        value = self.sfr.read(byte_address) if direct else self.iram.read(byte_address)
        return 1 if value & mask else 0

    def write_bit(self, bit_address: int, value: int) -> None:
        byte_address, mask, direct = self._bit_location(bit_address)
        current = self.sfr.read(byte_address) if direct else self.iram.read(byte_address)
        current = (current | mask) if value else (current & ~mask & 0xFF)
        if direct:
            self.sfr.write(byte_address, current)
        else:
            self.iram.write(byte_address, current)

    # -- stack ----------------------------------------------------------------------

    def push(self, value: int) -> None:
        self.sp = (self.sp + 1) & 0xFF
        self.iram.write(self.sp, value & 0xFF)

    def pop(self) -> int:
        value = self.iram.read(self.sp)
        self.sp = (self.sp - 1) & 0xFF
        return value

    # -- execution --------------------------------------------------------------------

    def reset(self) -> None:
        """Hardware reset: PC to 0, SP to 0x07, IRAM cleared."""
        self.pc = 0
        self.cycles = 0
        self.halted = False
        self.iram.clear()
        self.sfr.reset()
        self.sfr.write(SFR_SP, 0x07)

    def load_program(self, image: bytes, origin: int = 0) -> None:
        """Load a program image and reset the PC to its origin."""
        self.code.load(image, origin)
        self.pc = origin

    def _fetch(self) -> int:
        value = self.code.read(self.pc)
        self.pc = (self.pc + 1) & 0xFFFF
        return value

    def _rel_jump(self, offset: int) -> None:
        if offset >= 0x80:
            offset -= 0x100
        self.pc = (self.pc + offset) & 0xFFFF

    def _add(self, value: int, with_carry: bool) -> None:
        a = self.acc
        carry_in = self.carry if with_carry else 0
        total = a + value + carry_in
        result = total & 0xFF
        self.carry = 1 if total > 0xFF else 0
        half = (a & 0x0F) + (value & 0x0F) + carry_in
        psw = self.psw
        psw = (psw | PSW_AC) if half > 0x0F else (psw & ~PSW_AC)
        signed_overflow = ((a ^ result) & (value ^ result) & 0x80) != 0
        psw = (psw | PSW_OV) if signed_overflow else (psw & ~PSW_OV)
        self.psw = psw
        self.carry = 1 if total > 0xFF else 0
        self.acc = result

    def _subb(self, value: int) -> None:
        a = self.acc
        borrow = self.carry
        total = a - value - borrow
        result = total & 0xFF
        self.carry = 1 if total < 0 else 0
        psw = self.psw
        psw = (psw | PSW_AC) if ((a & 0x0F) - (value & 0x0F) - borrow) < 0 else (psw & ~PSW_AC)
        signed_overflow = ((a ^ value) & (a ^ result) & 0x80) != 0
        psw = (psw | PSW_OV) if signed_overflow else (psw & ~PSW_OV)
        self.psw = psw
        self.acc = result

    def step(self) -> int:
        """Execute one instruction; returns the number of machine cycles."""
        if self.halted:
            return 0
        opcode = self._fetch()
        cycles = self._execute(opcode)
        self.cycles += cycles
        return cycles

    def run(self, max_instructions: int = 100_000,
            until_pc: Optional[int] = None) -> int:
        """Run until HALT (SJMP to itself), ``until_pc`` or the instruction cap.

        Returns the number of instructions executed.
        """
        executed = 0
        while executed < max_instructions and not self.halted:
            if until_pc is not None and self.pc == until_pc:
                break
            before = self.pc
            self.step()
            executed += 1
            # an SJMP that targets itself is treated as intentional halt
            if self.pc == before and self.code.read(before) == 0x80 \
                    and self.code.read((before + 1) & 0xFFFF) == 0xFE:
                self.halted = True
        return executed

    # -- opcode dispatch ---------------------------------------------------------------

    def _execute(self, opcode: int) -> int:
        # NOP
        if opcode == 0x00:
            return 1
        # AJMP / ACALL (page 0..7): aaa0 0001 / aaa1 0001
        if opcode & 0x1F == 0x01 or opcode & 0x1F == 0x11:
            low = self._fetch()
            page = (opcode >> 5) & 0x07
            target = (self.pc & 0xF800) | (page << 8) | low
            if opcode & 0x10:  # ACALL
                self.push(self.pc & 0xFF)
                self.push((self.pc >> 8) & 0xFF)
            self.pc = target
            return 2
        # LJMP addr16
        if opcode == 0x02:
            high, low = self._fetch(), self._fetch()
            self.pc = (high << 8) | low
            return 2
        # LCALL addr16
        if opcode == 0x12:
            high, low = self._fetch(), self._fetch()
            self.push(self.pc & 0xFF)
            self.push((self.pc >> 8) & 0xFF)
            self.pc = (high << 8) | low
            return 2
        # RET / RETI
        if opcode in (0x22, 0x32):
            high = self.pop()
            low = self.pop()
            self.pc = (high << 8) | low
            return 2
        # SJMP rel
        if opcode == 0x80:
            self._rel_jump(self._fetch())
            return 2
        # JMP @A+DPTR
        if opcode == 0x73:
            self.pc = (self.dptr + self.acc) & 0xFFFF
            return 2

        # conditional jumps
        if opcode == 0x60:  # JZ
            rel = self._fetch()
            if self.acc == 0:
                self._rel_jump(rel)
            return 2
        if opcode == 0x70:  # JNZ
            rel = self._fetch()
            if self.acc != 0:
                self._rel_jump(rel)
            return 2
        if opcode == 0x40:  # JC
            rel = self._fetch()
            if self.carry:
                self._rel_jump(rel)
            return 2
        if opcode == 0x50:  # JNC
            rel = self._fetch()
            if not self.carry:
                self._rel_jump(rel)
            return 2
        if opcode == 0x20:  # JB bit, rel
            bit, rel = self._fetch(), self._fetch()
            if self.read_bit(bit):
                self._rel_jump(rel)
            return 2
        if opcode == 0x30:  # JNB bit, rel
            bit, rel = self._fetch(), self._fetch()
            if not self.read_bit(bit):
                self._rel_jump(rel)
            return 2
        if opcode == 0x10:  # JBC bit, rel
            bit, rel = self._fetch(), self._fetch()
            if self.read_bit(bit):
                self.write_bit(bit, 0)
                self._rel_jump(rel)
            return 2

        # DJNZ
        if opcode == 0xD5:  # DJNZ direct, rel
            direct, rel = self._fetch(), self._fetch()
            value = (self.read_direct(direct) - 1) & 0xFF
            self.write_direct(direct, value)
            if value:
                self._rel_jump(rel)
            return 2
        if 0xD8 <= opcode <= 0xDF:  # DJNZ Rn, rel
            rel = self._fetch()
            index = opcode - 0xD8
            value = (self.reg(index) - 1) & 0xFF
            self.set_reg(index, value)
            if value:
                self._rel_jump(rel)
            return 2

        # CJNE
        if opcode == 0xB4:  # CJNE A, #imm, rel
            imm, rel = self._fetch(), self._fetch()
            self.carry = 1 if self.acc < imm else 0
            if self.acc != imm:
                self._rel_jump(rel)
            return 2
        if opcode == 0xB5:  # CJNE A, direct, rel
            direct, rel = self._fetch(), self._fetch()
            value = self.read_direct(direct)
            self.carry = 1 if self.acc < value else 0
            if self.acc != value:
                self._rel_jump(rel)
            return 2
        if 0xB8 <= opcode <= 0xBF:  # CJNE Rn, #imm, rel
            imm, rel = self._fetch(), self._fetch()
            value = self.reg(opcode - 0xB8)
            self.carry = 1 if value < imm else 0
            if value != imm:
                self._rel_jump(rel)
            return 2

        # MOV immediate / direct / register
        if opcode == 0x74:  # MOV A, #imm
            self.acc = self._fetch()
            return 1
        if opcode == 0x75:  # MOV direct, #imm
            direct, imm = self._fetch(), self._fetch()
            self.write_direct(direct, imm)
            return 2
        if 0x78 <= opcode <= 0x7F:  # MOV Rn, #imm
            self.set_reg(opcode - 0x78, self._fetch())
            return 1
        if opcode == 0xE5:  # MOV A, direct
            self.acc = self.read_direct(self._fetch())
            return 1
        if opcode == 0xF5:  # MOV direct, A
            self.write_direct(self._fetch(), self.acc)
            return 1
        if 0xE8 <= opcode <= 0xEF:  # MOV A, Rn
            self.acc = self.reg(opcode - 0xE8)
            return 1
        if 0xF8 <= opcode <= 0xFF:  # MOV Rn, A
            self.set_reg(opcode - 0xF8, self.acc)
            return 1
        if 0xA8 <= opcode <= 0xAF:  # MOV Rn, direct
            self.set_reg(opcode - 0xA8, self.read_direct(self._fetch()))
            return 2
        if 0x88 <= opcode <= 0x8F:  # MOV direct, Rn
            self.write_direct(self._fetch(), self.reg(opcode - 0x88))
            return 2
        if opcode == 0x85:  # MOV direct, direct (src, dst order in encoding)
            src, dst = self._fetch(), self._fetch()
            self.write_direct(dst, self.read_direct(src))
            return 2
        if opcode in (0xE6, 0xE7):  # MOV A, @Ri
            self.acc = self.iram.read(self.reg(opcode - 0xE6))
            return 1
        if opcode in (0xF6, 0xF7):  # MOV @Ri, A
            self.iram.write(self.reg(opcode - 0xF6), self.acc)
            return 1
        if opcode in (0x76, 0x77):  # MOV @Ri, #imm
            self.iram.write(self.reg(opcode - 0x76), self._fetch())
            return 1
        if opcode == 0x90:  # MOV DPTR, #imm16
            high, low = self._fetch(), self._fetch()
            self.dptr = (high << 8) | low
            return 2

        # MOVX / MOVC
        if opcode == 0xE0:  # MOVX A, @DPTR
            self.acc = self.xdata.read(self.dptr)
            return 2
        if opcode == 0xF0:  # MOVX @DPTR, A
            self.xdata.write(self.dptr, self.acc)
            return 2
        if opcode in (0xE2, 0xE3):  # MOVX A, @Ri
            self.acc = self.xdata.read(self.reg(opcode - 0xE2))
            return 2
        if opcode in (0xF2, 0xF3):  # MOVX @Ri, A
            self.xdata.write(self.reg(opcode - 0xF2), self.acc)
            return 2
        if opcode == 0x93:  # MOVC A, @A+DPTR
            self.acc = self.code.read((self.dptr + self.acc) & 0xFFFF)
            return 2
        if opcode == 0x83:  # MOVC A, @A+PC
            self.acc = self.code.read((self.pc + self.acc) & 0xFFFF)
            return 2

        # arithmetic
        if opcode == 0x24:  # ADD A, #imm
            self._add(self._fetch(), False)
            return 1
        if opcode == 0x25:  # ADD A, direct
            self._add(self.read_direct(self._fetch()), False)
            return 1
        if 0x28 <= opcode <= 0x2F:  # ADD A, Rn
            self._add(self.reg(opcode - 0x28), False)
            return 1
        if opcode == 0x34:  # ADDC A, #imm
            self._add(self._fetch(), True)
            return 1
        if 0x38 <= opcode <= 0x3F:  # ADDC A, Rn
            self._add(self.reg(opcode - 0x38), True)
            return 1
        if opcode == 0x94:  # SUBB A, #imm
            self._subb(self._fetch())
            return 1
        if opcode == 0x95:  # SUBB A, direct
            self._subb(self.read_direct(self._fetch()))
            return 1
        if 0x98 <= opcode <= 0x9F:  # SUBB A, Rn
            self._subb(self.reg(opcode - 0x98))
            return 1
        if opcode == 0x04:  # INC A
            self.acc = (self.acc + 1) & 0xFF
            return 1
        if opcode == 0x05:  # INC direct
            direct = self._fetch()
            self.write_direct(direct, (self.read_direct(direct) + 1) & 0xFF)
            return 1
        if 0x08 <= opcode <= 0x0F:  # INC Rn
            index = opcode - 0x08
            self.set_reg(index, (self.reg(index) + 1) & 0xFF)
            return 1
        if opcode == 0xA3:  # INC DPTR
            self.dptr = (self.dptr + 1) & 0xFFFF
            return 2
        if opcode == 0x14:  # DEC A
            self.acc = (self.acc - 1) & 0xFF
            return 1
        if opcode == 0x15:  # DEC direct
            direct = self._fetch()
            self.write_direct(direct, (self.read_direct(direct) - 1) & 0xFF)
            return 1
        if 0x18 <= opcode <= 0x1F:  # DEC Rn
            index = opcode - 0x18
            self.set_reg(index, (self.reg(index) - 1) & 0xFF)
            return 1
        if opcode == 0xA4:  # MUL AB
            product = self.acc * self.sfr.read(SFR_B)
            self.acc = product & 0xFF
            self.sfr.write(SFR_B, (product >> 8) & 0xFF)
            self.carry = 0
            psw = self.psw
            self.psw = (psw | PSW_OV) if product > 0xFF else (psw & ~PSW_OV)
            return 4
        if opcode == 0x84:  # DIV AB
            divisor = self.sfr.read(SFR_B)
            psw = self.psw & ~PSW_CY
            if divisor == 0:
                self.psw = psw | PSW_OV
            else:
                quotient, remainder = divmod(self.acc, divisor)
                self.acc = quotient
                self.sfr.write(SFR_B, remainder)
                self.psw = psw & ~PSW_OV
            return 4

        # logic
        if opcode == 0x54:  # ANL A, #imm
            self.acc &= self._fetch()
            return 1
        if opcode == 0x55:  # ANL A, direct
            self.acc &= self.read_direct(self._fetch())
            return 1
        if 0x58 <= opcode <= 0x5F:  # ANL A, Rn
            self.acc &= self.reg(opcode - 0x58)
            return 1
        if opcode == 0x44:  # ORL A, #imm
            self.acc |= self._fetch()
            return 1
        if opcode == 0x45:  # ORL A, direct
            self.acc |= self.read_direct(self._fetch())
            return 1
        if 0x48 <= opcode <= 0x4F:  # ORL A, Rn
            self.acc |= self.reg(opcode - 0x48)
            return 1
        if opcode == 0x64:  # XRL A, #imm
            self.acc ^= self._fetch()
            return 1
        if opcode == 0x65:  # XRL A, direct
            self.acc ^= self.read_direct(self._fetch())
            return 1
        if 0x68 <= opcode <= 0x6F:  # XRL A, Rn
            self.acc ^= self.reg(opcode - 0x68)
            return 1
        if opcode == 0x42:  # ORL direct, A
            direct = self._fetch()
            self.write_direct(direct, self.read_direct(direct) | self.acc)
            return 1
        if opcode == 0x52:  # ANL direct, A
            direct = self._fetch()
            self.write_direct(direct, self.read_direct(direct) & self.acc)
            return 1

        # accumulator / bit operations
        if opcode == 0xE4:  # CLR A
            self.acc = 0
            return 1
        if opcode == 0xF4:  # CPL A
            self.acc = (~self.acc) & 0xFF
            return 1
        if opcode == 0x23:  # RL A
            a = self.acc
            self.acc = ((a << 1) | (a >> 7)) & 0xFF
            return 1
        if opcode == 0x03:  # RR A
            a = self.acc
            self.acc = ((a >> 1) | ((a & 1) << 7)) & 0xFF
            return 1
        if opcode == 0x33:  # RLC A
            a = self.acc
            new_carry = (a >> 7) & 1
            self.acc = ((a << 1) | self.carry) & 0xFF
            self.carry = new_carry
            return 1
        if opcode == 0x13:  # RRC A
            a = self.acc
            new_carry = a & 1
            self.acc = ((a >> 1) | (self.carry << 7)) & 0xFF
            self.carry = new_carry
            return 1
        if opcode == 0xC4:  # SWAP A
            a = self.acc
            self.acc = ((a << 4) | (a >> 4)) & 0xFF
            return 1
        if opcode == 0xC3:  # CLR C
            self.carry = 0
            return 1
        if opcode == 0xD3:  # SETB C
            self.carry = 1
            return 1
        if opcode == 0xB3:  # CPL C
            self.carry = 0 if self.carry else 1
            return 1
        if opcode == 0xC2:  # CLR bit
            self.write_bit(self._fetch(), 0)
            return 1
        if opcode == 0xD2:  # SETB bit
            self.write_bit(self._fetch(), 1)
            return 1
        if opcode == 0xB2:  # CPL bit
            bit = self._fetch()
            self.write_bit(bit, 0 if self.read_bit(bit) else 1)
            return 1

        # exchange / stack
        if opcode == 0xC5:  # XCH A, direct
            direct = self._fetch()
            value = self.read_direct(direct)
            self.write_direct(direct, self.acc)
            self.acc = value
            return 1
        if 0xC8 <= opcode <= 0xCF:  # XCH A, Rn
            index = opcode - 0xC8
            value = self.reg(index)
            self.set_reg(index, self.acc)
            self.acc = value
            return 1
        if opcode == 0xC0:  # PUSH direct
            self.push(self.read_direct(self._fetch()))
            return 2
        if opcode == 0xD0:  # POP direct
            self.write_direct(self._fetch(), self.pop())
            return 2

        raise IllegalOpcodeError(
            f"unsupported opcode 0x{opcode:02X} at PC=0x{(self.pc - 1) & 0xFFFF:04X}")
