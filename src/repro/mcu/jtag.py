"""JTAG TAP controller and the analog trim access chain.

The paper selects JTAG as the interface between the digital section and
the analog front end because it is standard, asynchronous, uses only
four wires and gives "full read-back capability".  The model implements
the 16-state IEEE 1149.1 TAP state machine plus a data-register chain
that reads and writes any register of an attached
:class:`~repro.common.registers.RegisterFile` (the analog trim bank).

The chain format is ``address (8 bits, LSB first) + data (16 bits, LSB
first) + write flag (1 bit)``.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from ..common.exceptions import JtagError
from ..common.registers import RegisterFile


class TapState(Enum):
    """IEEE 1149.1 TAP controller states."""

    TEST_LOGIC_RESET = "test-logic-reset"
    RUN_TEST_IDLE = "run-test-idle"
    SELECT_DR = "select-dr"
    CAPTURE_DR = "capture-dr"
    SHIFT_DR = "shift-dr"
    EXIT1_DR = "exit1-dr"
    PAUSE_DR = "pause-dr"
    EXIT2_DR = "exit2-dr"
    UPDATE_DR = "update-dr"
    SELECT_IR = "select-ir"
    CAPTURE_IR = "capture-ir"
    SHIFT_IR = "shift-ir"
    EXIT1_IR = "exit1-ir"
    PAUSE_IR = "pause-ir"
    EXIT2_IR = "exit2-ir"
    UPDATE_IR = "update-ir"


#: TAP state transition table: state -> (next if TMS=0, next if TMS=1)
_TRANSITIONS = {
    TapState.TEST_LOGIC_RESET: (TapState.RUN_TEST_IDLE, TapState.TEST_LOGIC_RESET),
    TapState.RUN_TEST_IDLE: (TapState.RUN_TEST_IDLE, TapState.SELECT_DR),
    TapState.SELECT_DR: (TapState.CAPTURE_DR, TapState.SELECT_IR),
    TapState.CAPTURE_DR: (TapState.SHIFT_DR, TapState.EXIT1_DR),
    TapState.SHIFT_DR: (TapState.SHIFT_DR, TapState.EXIT1_DR),
    TapState.EXIT1_DR: (TapState.PAUSE_DR, TapState.UPDATE_DR),
    TapState.PAUSE_DR: (TapState.PAUSE_DR, TapState.EXIT2_DR),
    TapState.EXIT2_DR: (TapState.SHIFT_DR, TapState.UPDATE_DR),
    TapState.UPDATE_DR: (TapState.RUN_TEST_IDLE, TapState.SELECT_DR),
    TapState.SELECT_IR: (TapState.CAPTURE_IR, TapState.TEST_LOGIC_RESET),
    TapState.CAPTURE_IR: (TapState.SHIFT_IR, TapState.EXIT1_IR),
    TapState.SHIFT_IR: (TapState.SHIFT_IR, TapState.EXIT1_IR),
    TapState.EXIT1_IR: (TapState.PAUSE_IR, TapState.UPDATE_IR),
    TapState.PAUSE_IR: (TapState.PAUSE_IR, TapState.EXIT2_IR),
    TapState.EXIT2_IR: (TapState.SHIFT_IR, TapState.UPDATE_IR),
    TapState.UPDATE_IR: (TapState.RUN_TEST_IDLE, TapState.SELECT_DR),
}

#: Instruction register opcodes.
INSTRUCTION_IDCODE = 0x1
INSTRUCTION_TRIM_ACCESS = 0x2
INSTRUCTION_BYPASS = 0xF

#: Device identification code returned by the IDCODE instruction.
IDCODE_VALUE = 0x1A05D001


class JtagTap:
    """JTAG TAP with an analog-trim access data register."""

    IR_LENGTH = 4
    TRIM_DR_LENGTH = 8 + 16 + 1

    def __init__(self, trim_registers: Optional[RegisterFile] = None):
        self.trim_registers = trim_registers
        self.state = TapState.TEST_LOGIC_RESET
        self._ir_shift = 0
        self.instruction = INSTRUCTION_IDCODE
        self._dr_shift = 0
        self._dr_length = 32
        self._tdo = 0

    # -- pin-level interface ------------------------------------------------------

    def clock(self, tms: int, tdi: int = 0) -> int:
        """Apply one TCK rising edge with the given TMS/TDI values.

        Returns the TDO value shifted out on this clock.
        """
        tdo = 0
        if self.state is TapState.SHIFT_IR:
            tdo = self._ir_shift & 1
            self._ir_shift = (self._ir_shift >> 1) | ((tdi & 1) << (self.IR_LENGTH - 1))
        elif self.state is TapState.SHIFT_DR:
            tdo = self._dr_shift & 1
            self._dr_shift = (self._dr_shift >> 1) | ((tdi & 1) << (self._dr_length - 1))

        previous = self.state
        self.state = _TRANSITIONS[self.state][1 if tms else 0]

        if previous is TapState.CAPTURE_IR:
            pass
        if self.state is TapState.CAPTURE_IR:
            self._ir_shift = 0b0101  # capture pattern per IEEE 1149.1
        elif self.state is TapState.UPDATE_IR:
            self.instruction = self._ir_shift & ((1 << self.IR_LENGTH) - 1)
        elif self.state is TapState.CAPTURE_DR:
            self._capture_dr()
        elif self.state is TapState.UPDATE_DR:
            self._update_dr()
        elif self.state is TapState.TEST_LOGIC_RESET:
            self.instruction = INSTRUCTION_IDCODE
        self._tdo = tdo
        return tdo

    def _capture_dr(self) -> None:
        if self.instruction == INSTRUCTION_IDCODE:
            self._dr_length = 32
            self._dr_shift = IDCODE_VALUE
        elif self.instruction == INSTRUCTION_TRIM_ACCESS:
            self._dr_length = self.TRIM_DR_LENGTH
            # capture keeps the previously loaded address so a read returns
            # the addressed register's current value in the data field
            address = self._dr_shift & 0xFF
            data = self._read_trim(address)
            self._dr_shift = (self._dr_shift & 0x1) << (self.TRIM_DR_LENGTH - 1) \
                | (data << 8) | address
        else:  # BYPASS and unknown instructions: single-bit register
            self._dr_length = 1
            self._dr_shift = 0

    def _update_dr(self) -> None:
        if self.instruction != INSTRUCTION_TRIM_ACCESS:
            return
        address = self._dr_shift & 0xFF
        data = (self._dr_shift >> 8) & 0xFFFF
        write_flag = (self._dr_shift >> 24) & 0x1
        if write_flag:
            self._write_trim(address, data)

    def _read_trim(self, address: int) -> int:
        if self.trim_registers is None:
            return 0
        try:
            return self.trim_registers.bus_read(address)
        except Exception:
            return 0

    def _write_trim(self, address: int, value: int) -> None:
        if self.trim_registers is None:
            raise JtagError("no trim register file attached to the TAP")
        self.trim_registers.bus_write(address, value)

    # -- host-level convenience operations ---------------------------------------------

    def reset(self) -> None:
        """Drive five TMS=1 clocks: guaranteed Test-Logic-Reset."""
        for _ in range(5):
            self.clock(tms=1)

    def _goto_shift_ir(self) -> None:
        for tms in (0, 1, 1, 0, 0):
            self.clock(tms=tms)
        if self.state is not TapState.SHIFT_IR:
            raise JtagError(f"TAP navigation error, state={self.state}")

    def _goto_shift_dr(self) -> None:
        for tms in (0, 1, 0, 0):
            self.clock(tms=tms)
        if self.state is not TapState.SHIFT_DR:
            raise JtagError(f"TAP navigation error, state={self.state}")

    def load_instruction(self, instruction: int) -> None:
        """Shift a new instruction into the IR."""
        self.reset()
        self._goto_shift_ir()
        for i in range(self.IR_LENGTH):
            last = i == self.IR_LENGTH - 1
            self.clock(tms=1 if last else 0, tdi=(instruction >> i) & 1)
        self.clock(tms=1)  # update-IR
        self.clock(tms=0)  # run-test/idle

    def shift_data(self, value: int, length: int) -> int:
        """Shift ``length`` bits through the selected DR and return the output."""
        self._goto_shift_dr()
        out = 0
        for i in range(length):
            last = i == length - 1
            tdo = self.clock(tms=1 if last else 0, tdi=(value >> i) & 1)
            out |= tdo << i
        self.clock(tms=1)  # update-DR
        self.clock(tms=0)  # run-test/idle
        return out

    def read_idcode(self) -> int:
        """Read the 32-bit device identification code."""
        self.load_instruction(INSTRUCTION_IDCODE)
        return self.shift_data(0, 32)

    def write_trim_register(self, address: int, value: int) -> None:
        """Write a 16-bit trim register over the chain."""
        self.load_instruction(INSTRUCTION_TRIM_ACCESS)
        word = (1 << 24) | ((value & 0xFFFF) << 8) | (address & 0xFF)
        self.shift_data(word, self.TRIM_DR_LENGTH)

    def read_trim_register(self, address: int) -> int:
        """Read a 16-bit trim register over the chain (full read-back)."""
        self.load_instruction(INSTRUCTION_TRIM_ACCESS)
        # first pass loads the address (no write); the capture of the second
        # pass then returns the addressed register's value
        self.shift_data(address & 0xFF, self.TRIM_DR_LENGTH)
        result = self.shift_data(address & 0xFF, self.TRIM_DR_LENGTH)
        return (result >> 8) & 0xFFFF
