"""8051 microcontroller subsystem: ISS, assembler, buses, peripherals, JTAG."""

from .memory import CodeMemory, ExternalBus, InternalRam
from .core import Mcs51Core, SfrBus
from .assembler import Assembler, assemble
from .peripherals import (
    BusBridge,
    SpiController,
    SpiEeprom,
    SramController,
    Timer,
    Uart,
    Watchdog,
)
from .jtag import (
    IDCODE_VALUE,
    INSTRUCTION_BYPASS,
    INSTRUCTION_IDCODE,
    INSTRUCTION_TRIM_ACCESS,
    JtagTap,
    TapState,
)
from .subsystem import (
    BRIDGE_BASE,
    FRAME_HEADER_LOCKED,
    FRAME_HEADER_UNLOCKED,
    MONITOR_FIRMWARE_SOURCE,
    McuSubsystem,
)

__all__ = [
    "CodeMemory",
    "ExternalBus",
    "InternalRam",
    "Mcs51Core",
    "SfrBus",
    "Assembler",
    "assemble",
    "BusBridge",
    "SpiController",
    "SpiEeprom",
    "SramController",
    "Timer",
    "Uart",
    "Watchdog",
    "IDCODE_VALUE",
    "INSTRUCTION_BYPASS",
    "INSTRUCTION_IDCODE",
    "INSTRUCTION_TRIM_ACCESS",
    "JtagTap",
    "TapState",
    "BRIDGE_BASE",
    "FRAME_HEADER_LOCKED",
    "FRAME_HEADER_UNLOCKED",
    "MONITOR_FIRMWARE_SOURCE",
    "McuSubsystem",
]
