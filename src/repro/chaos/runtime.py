"""Chaos activation and the ``fire`` hook the production code calls.

The production code never imports chaos *models*; it only calls
:func:`fire` at its injection sites, which is a no-op unless a
:class:`~repro.chaos.models.ChaosPlan` is active in this process.  The
campaign runner activates the plan around a run (:func:`active`), and
shard workers activate the plan they received in their pickled task
(:func:`activate`) for the lifetime of the worker process.

Activation is a stack, so a store-level chaos test can activate its own
plan inside a campaign-level activation; only the innermost plan sees
events.  Per-activation *state* — how many times each model has fired —
lives here, not on the (frozen, shared, picklable) models.

Seeded determinism: a model with ``probability < 1`` fires iff a stable
SHA-256 hash of ``(seed, model index, site, shard, attempt, occurrence
count)`` lands under the probability — a pure function of the plan and
the event stream, never of wall-clock randomness, so the same seed
replays the same failure schedule.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Dict, List, Optional

from .models import ChaosEvent, ChaosPlan


class _Activation:
    __slots__ = ("plan", "fired", "seen")

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self.fired: Dict[int, int] = {}   # model index -> times fired
        self.seen: Dict[int, int] = {}    # model index -> events matched


_STACK: List[_Activation] = []


def activate(plan: ChaosPlan) -> None:
    """Push a plan; every ``fire`` consults it until :func:`deactivate`.

    Worker processes call this once at startup and never pop — the
    activation dies with the process.
    """
    _STACK.append(_Activation(plan))


def deactivate() -> None:
    """Pop the innermost activation."""
    _STACK.pop()


@contextmanager
def active(plan: Optional[ChaosPlan]):
    """Context-manager activation; a ``None`` plan is a no-op."""
    if plan is None:
        yield
        return
    activate(plan)
    try:
        yield
    finally:
        deactivate()


def current() -> Optional[ChaosPlan]:
    """The innermost active plan, or None."""
    return _STACK[-1].plan if _STACK else None


def fired_counts() -> Dict[int, int]:
    """Firing counts (by model index) of the innermost activation."""
    return dict(_STACK[-1].fired) if _STACK else {}


def fire(site: str, *, shard: Optional[int] = None,
         attempt: Optional[int] = None, path: Optional[str] = None,
         heartbeat: Optional[object] = None) -> None:
    """Offer one event at an injection site to the active plan (if any).

    Models fire in declaration order; a model that raises or kills the
    process naturally pre-empts the rest.  Without an active plan this
    is a near-free early return, so the hooks can live permanently in
    the production write paths.
    """
    if not _STACK:
        return
    activation = _STACK[-1]
    event = ChaosEvent(site=site, shard=shard, attempt=attempt, path=path,
                       heartbeat=heartbeat)
    for index, model in enumerate(activation.plan.models):
        if not model.matches(event):
            continue
        occurrence = activation.seen.get(index, 0)
        activation.seen[index] = occurrence + 1
        if (model.times is not None
                and activation.fired.get(index, 0) >= model.times):
            continue
        if model.probability < 1.0 and not _decides_to_fire(
                activation.plan.seed, index, event, occurrence,
                model.probability):
            continue
        activation.fired[index] = activation.fired.get(index, 0) + 1
        model.fire(event)


def _decides_to_fire(seed: int, index: int, event: ChaosEvent,
                     occurrence: int, probability: float) -> bool:
    """Deterministic pseudo-Bernoulli draw for probabilistic models."""
    token = (f"{seed}:{index}:{event.site}:{event.shard}:{event.attempt}:"
             f"{occurrence}")
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return draw < probability
