"""Picklable chaos models fired at executor/manifest/store boundaries.

``repro.faults`` breaks the *device* on purpose; this module breaks the
*execution substrate* on purpose — worker processes, result-file writes,
manifest writes and store writes — so the orchestration layer can be
chaos-tested the same way the gyro platform is fault-tested.  Every
model is a small frozen (picklable) dataclass declaring *what breaks*
and *where*, collected into a :class:`ChaosPlan` that the campaign
runner activates around a run and ships to every shard worker.

Injection **sites** are named strings fired by the production code via
:func:`repro.chaos.runtime.fire` (a no-op when no plan is active):

=====================  ====================================================
``worker.start``       inside a shard worker, before it simulates
``shard.write``        inside a worker's result publish, after the temp
                       bytes are written and before the atomic rename
``manifest.write``     in the parent, before a batch-manifest write
``store.write``        before a result-store durable write begins
``store.rename``       between the store's fsync and its atomic rename
=====================  ====================================================

Determinism: a model fires exactly when its declared trigger matches —
site, optionally shard and attempt, an optional ``times`` budget, and an
optional ``probability`` resolved by a stable hash of the plan's seed
and the event coordinates (never by wall-clock randomness) — so a chaos
campaign replays the same failure schedule on every run with the same
seed.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass, field
from typing import ClassVar, Optional, Tuple

from ..common.exceptions import ConfigurationError, ReproError


class InjectedCrash(ReproError):
    """A chaos model simulating a process death *in the calling process*.

    Worker-side models really do die (``os._exit``); parent-side models
    (the store's kill-mid-rename) must not take the test runner down
    with them, so they raise this instead — deliberately outside
    ``OSError`` so no retry loop mistakes a simulated crash for a
    transient I/O failure.
    """


@dataclass(frozen=True)
class ChaosEvent:
    """One firing opportunity at an injection site."""

    site: str
    shard: Optional[int] = None
    attempt: Optional[int] = None
    path: Optional[str] = None
    heartbeat: Optional[object] = None


@dataclass(frozen=True)
class ChaosModel:
    """Base chaos model: a site trigger plus the failure to inject.

    Attributes:
        shard: only fire for this shard id (``None`` = any).
        attempt: only fire for this attempt number (``None`` = every
            attempt; most models default to 1 so "fail once, then
            recover" is the out-of-the-box behaviour).
        times: total firings allowed per activation (``None`` =
            unlimited) — an ENOSPC that clears after two writes is
            ``times=2``.
        probability: chance of firing per matching event, resolved
            deterministically from the plan seed (1.0 always fires).
    """

    site: ClassVar[str] = "?"

    shard: Optional[int] = None
    attempt: Optional[int] = None
    times: Optional[int] = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("probability must be within [0, 1]")
        if self.times is not None and self.times < 1:
            raise ConfigurationError("times must be >= 1 (or None)")

    def matches(self, event: ChaosEvent) -> bool:
        """Whether this model's declared trigger covers ``event``."""
        if self.site != event.site:
            return False
        if self.shard is not None and event.shard != self.shard:
            return False
        if self.attempt is not None and event.attempt != self.attempt:
            return False
        return True

    def fire(self, event: ChaosEvent) -> None:
        """Inject the failure (raise, sleep, corrupt or die)."""
        raise NotImplementedError

    def digest_token(self) -> str:
        """Stable textual identity (frozen-dataclass repr)."""
        return repr(self)


# ---------------------------------------------------------------------------
# worker-process failures
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkerCrash(ChaosModel):
    """Kill the shard worker outright before it simulates.

    ``os._exit`` skips every handler — no error report, no result file,
    heartbeats stop mid-beat — exactly what an OOM kill or a segfault
    looks like from the parent.  The scheduler must notice the death
    (exit code / missed heartbeats) and reschedule immediately instead
    of burning the shard timeout.
    """

    site: ClassVar[str] = "worker.start"

    attempt: Optional[int] = 1
    exit_code: int = 86

    def fire(self, event: ChaosEvent) -> None:
        os._exit(self.exit_code)


@dataclass(frozen=True)
class WorkerHang(ChaosModel):
    """Stall the worker's main thread for ``hang_s`` before simulating.

    The heartbeat thread keeps beating, so the parent sees a *live but
    slow* worker — the straggler case: it must keep waiting (up to the
    shard deadline) or launch a speculative backup, never declare the
    worker dead.
    """

    site: ClassVar[str] = "worker.start"

    attempt: Optional[int] = 1
    hang_s: float = 30.0

    def fire(self, event: ChaosEvent) -> None:
        time.sleep(self.hang_s)


@dataclass(frozen=True)
class HeartbeatLoss(ChaosModel):
    """Silence the worker's heartbeat, then stall its main thread.

    Models a frozen process (SIGSTOP, D-state I/O wait): still alive by
    ``is_alive()`` yet publishing nothing.  Only the heartbeat staleness
    check can tell this apart from a healthy slow worker, so the parent
    must declare it dead and reschedule well before the shard timeout.
    """

    site: ClassVar[str] = "worker.start"

    attempt: Optional[int] = 1
    hang_s: float = 30.0

    def fire(self, event: ChaosEvent) -> None:
        if event.heartbeat is not None:
            event.heartbeat.stop()
        time.sleep(self.hang_s)


# ---------------------------------------------------------------------------
# result-file write failures (fired inside write_shard_payload)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SlowWrite(ChaosModel):
    """Stall the shard result publish for ``delay_s`` before the rename."""

    site: ClassVar[str] = "shard.write"

    attempt: Optional[int] = 1
    delay_s: float = 1.0

    def fire(self, event: ChaosEvent) -> None:
        time.sleep(self.delay_s)


@dataclass(frozen=True)
class TornWrite(ChaosModel):
    """Kill the worker mid-write: truncate the temp file, then die.

    The atomic-rename discipline must turn this into *no result file at
    all* — the parent sees a dead worker without a published result and
    reschedules; it must never read a partial payload.
    """

    site: ClassVar[str] = "shard.write"

    attempt: Optional[int] = 1
    exit_code: int = 87

    def fire(self, event: ChaosEvent) -> None:
        if event.path and os.path.exists(event.path):
            size = os.path.getsize(event.path)
            with open(event.path, "r+b") as fh:
                fh.truncate(size // 2)
        os._exit(self.exit_code)


@dataclass(frozen=True)
class CorruptShardPayload(ChaosModel):
    """Flip one byte in the shard result pickle before it is published.

    The corrupted file *is* renamed into place — a complete-looking
    result that fails digest verification.  The parent must treat it as
    not-done and retry, never credit it.
    """

    site: ClassVar[str] = "shard.write"

    attempt: Optional[int] = 1

    def fire(self, event: ChaosEvent) -> None:
        with open(event.path, "r+b") as fh:
            blob = bytearray(fh.read())
            blob[len(blob) // 2] ^= 0x01
            fh.seek(0)
            fh.write(bytes(blob))
            fh.truncate()


# ---------------------------------------------------------------------------
# filesystem failures (manifest and store write paths)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Enospc(ChaosModel):
    """Raise ENOSPC at a write site (``times`` bounds make it transient).

    ``site`` is an instance field here: the same model class covers the
    store's durable writes (``"store.write"``), the batch manifest
    (``"manifest.write"``) and shard result publishes
    (``"shard.write"``).
    """

    site: str = "store.write"          # type: ignore[misc]

    def fire(self, event: ChaosEvent) -> None:
        raise OSError(errno.ENOSPC,
                      f"chaos: no space left on device (site {self.site!r})")


@dataclass(frozen=True)
class KillMidRename(ChaosModel):
    """Simulated crash between the store's fsync and its atomic rename.

    The durable-write promise under test: the entry directory must hold
    either the previous state or nothing — never a readable-but-wrong
    file — and the next run must heal the missing entry bit-identically.
    """

    site: str = "store.rename"         # type: ignore[misc]

    def fire(self, event: ChaosEvent) -> None:
        raise InjectedCrash(
            f"chaos: writer killed before renaming {event.path!r}")


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, declarative failure schedule for one campaign run.

    Attributes:
        models: the chaos models to arm, fired in declaration order
            when their triggers match.
        seed: resolves every ``probability < 1`` decision through a
            stable hash — the same seed replays the same failure
            schedule on every run.
    """

    models: Tuple[ChaosModel, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "models", tuple(self.models))
        for model in self.models:
            for attr in ("site", "matches", "fire", "digest_token"):
                if not hasattr(model, attr):
                    raise ConfigurationError(
                        f"{model!r} is not a chaos model (missing {attr!r}); "
                        "use the models in repro.chaos or implement the "
                        "same protocol")

    def digest_token(self) -> str:
        tokens = ", ".join(m.digest_token() for m in self.models)
        return f"ChaosPlan(seed={self.seed}, models=({tokens}))"
