"""Deterministic infrastructure fault injection for campaign execution.

``repro.faults`` chaos-tests the *gyro platform*; this package
chaos-tests the *execution substrate* underneath it — worker processes,
shard result publishes, batch-manifest writes and result-store durable
writes.  Declare a seeded :class:`ChaosPlan` of failures (worker
crashes, hangs, heartbeat loss, torn/slow/corrupted writes, ENOSPC,
kill-mid-rename), pass it to ``Campaign.run(chaos=...)`` (or activate it
with :func:`repro.chaos.runtime.active` around store operations), and
the hardened executor/manifest/store paths must ride every injected
failure out to results bit-identical to an uninjected run.
"""

from .models import (
    ChaosEvent,
    ChaosModel,
    ChaosPlan,
    CorruptShardPayload,
    Enospc,
    HeartbeatLoss,
    InjectedCrash,
    KillMidRename,
    SlowWrite,
    TornWrite,
    WorkerCrash,
    WorkerHang,
)
from .runtime import activate, active, current, deactivate, fire, fired_counts

__all__ = [
    "ChaosEvent",
    "ChaosModel",
    "ChaosPlan",
    "CorruptShardPayload",
    "Enospc",
    "HeartbeatLoss",
    "InjectedCrash",
    "KillMidRename",
    "SlowWrite",
    "TornWrite",
    "WorkerCrash",
    "WorkerHang",
    "activate",
    "active",
    "current",
    "deactivate",
    "fire",
    "fired_counts",
]
