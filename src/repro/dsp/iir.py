"""IIR filter IPs (biquad sections and design helpers).

IIR sections implement the narrow low-pass filters of the rate channel
(the paper's 3 dB bandwidth row: 25–75 Hz) and the loop filters inside
the PLL and AGC, where an FIR of equivalent selectivity would be far too
long for the hardwired datapath.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import signal as sps

from ..common.block import Block
from ..common.exceptions import ConfigurationError
from ..common.fixedpoint import QFormat, quantize


class BiquadFilter(Block):
    """Transposed direct-form-II biquad with optional output quantisation."""

    def __init__(self, b: Sequence[float], a: Sequence[float],
                 output_format: Optional[QFormat] = None,
                 name: Optional[str] = None):
        super().__init__(name)
        b = list(b)
        a = list(a)
        if len(b) != 3 or len(a) != 3:
            raise ConfigurationError("biquad needs exactly 3 numerator and 3 denominator coefficients")
        if a[0] == 0:
            raise ConfigurationError("a[0] must be non-zero")
        self.b = [bi / a[0] for bi in b]
        self.a = [ai / a[0] for ai in a]
        self.output_format = output_format
        self._z1 = 0.0
        self._z2 = 0.0

    def step(self, x: float) -> float:
        y = self.b[0] * x + self._z1
        self._z1 = self.b[1] * x - self.a[1] * y + self._z2
        self._z2 = self.b[2] * x - self.a[2] * y
        if self.output_format is not None:
            y = quantize(y, self.output_format)
        return y

    def reset(self) -> None:
        self._z1 = 0.0
        self._z2 = 0.0

    def frequency_response(self, freqs_hz: np.ndarray,
                           sample_rate_hz: float) -> np.ndarray:
        """Complex response of the section at the given frequencies."""
        w = 2.0 * np.pi * np.asarray(freqs_hz) / sample_rate_hz
        _, h = sps.freqz(self.b, self.a, worN=w)
        return h


class IirFilter(Block):
    """Cascade of biquad sections designed from a classic prototype."""

    def __init__(self, sections: Sequence[BiquadFilter], name: Optional[str] = None):
        super().__init__(name)
        if not sections:
            raise ConfigurationError("need at least one biquad section")
        self.sections = list(sections)

    def step(self, x: float) -> float:
        for section in self.sections:
            x = section.step(x)
        return x

    def reset(self) -> None:
        for section in self.sections:
            section.reset()

    def process(self, samples: Iterable[float]) -> np.ndarray:
        """Vectorised filtering for long records (state preserved per section)."""
        x = np.asarray(list(samples), dtype=np.float64)
        for section in self.sections:
            # stream through each section using scipy with initial conditions
            zi = np.array([section._z1, section._z2])
            y, zf = sps.lfilter(section.b, section.a, x, zi=zi)
            section._z1, section._z2 = float(zf[0]), float(zf[1])
            if section.output_format is not None:
                y = np.asarray(quantize(y, section.output_format))
            x = y
        return x

    def frequency_response(self, freqs_hz: np.ndarray,
                           sample_rate_hz: float) -> np.ndarray:
        """Complex response of the cascade."""
        h = np.ones(len(np.asarray(freqs_hz)), dtype=complex)
        for section in self.sections:
            h = h * section.frequency_response(freqs_hz, sample_rate_hz)
        return h

    def three_db_bandwidth_hz(self, sample_rate_hz: float,
                              max_freq_hz: Optional[float] = None) -> float:
        """-3 dB frequency of the cascade's low-pass response."""
        max_freq = max_freq_hz or sample_rate_hz / 2.0
        freqs = np.linspace(0.01, max_freq, 4096)
        mag = np.abs(self.frequency_response(freqs, sample_rate_hz))
        ref = mag[0]
        below = np.nonzero(mag < ref / np.sqrt(2.0))[0]
        if below.size == 0:
            return float(max_freq)
        return float(freqs[below[0]])

    @classmethod
    def butterworth_low_pass(cls, order: int, cutoff_hz: float,
                             sample_rate_hz: float,
                             output_format: Optional[QFormat] = None,
                             name: Optional[str] = None) -> "IirFilter":
        """Design a Butterworth low-pass as a cascade of biquads."""
        if order < 1:
            raise ConfigurationError("order must be >= 1")
        if not 0 < cutoff_hz < sample_rate_hz / 2:
            raise ConfigurationError("cutoff must be between 0 and Nyquist")
        sos = sps.butter(order, cutoff_hz, btype="low", fs=sample_rate_hz,
                         output="sos")
        sections = [BiquadFilter(section[:3], section[3:],
                                 output_format=output_format)
                    for section in sos]
        return cls(sections, name=name)

    @classmethod
    def butterworth_high_pass(cls, order: int, cutoff_hz: float,
                              sample_rate_hz: float,
                              output_format: Optional[QFormat] = None,
                              name: Optional[str] = None) -> "IirFilter":
        """Design a Butterworth high-pass as a cascade of biquads."""
        if order < 1:
            raise ConfigurationError("order must be >= 1")
        if not 0 < cutoff_hz < sample_rate_hz / 2:
            raise ConfigurationError("cutoff must be between 0 and Nyquist")
        sos = sps.butter(order, cutoff_hz, btype="high", fs=sample_rate_hz,
                         output="sos")
        sections = [BiquadFilter(section[:3], section[3:],
                                 output_format=output_format)
                    for section in sos]
        return cls(sections, name=name)


class OnePoleLowPass(Block):
    """Single-pole IIR low-pass ``y += alpha * (x - y)``.

    The cheapest smoothing element in the DSP portfolio; used inside the
    AGC amplitude detector and the PLL phase-detector post-filter.
    """

    def __init__(self, cutoff_hz: float, sample_rate_hz: float,
                 output_format: Optional[QFormat] = None,
                 name: Optional[str] = None):
        super().__init__(name)
        if cutoff_hz <= 0 or cutoff_hz >= sample_rate_hz / 2:
            raise ConfigurationError("cutoff must be between 0 and Nyquist")
        self.cutoff_hz = float(cutoff_hz)
        self.sample_rate_hz = float(sample_rate_hz)
        self.alpha = 1.0 - np.exp(-2.0 * np.pi * cutoff_hz / sample_rate_hz)
        self.output_format = output_format
        self._state = 0.0

    def step(self, x: float) -> float:
        self._state += self.alpha * (x - self._state)
        if self.output_format is not None:
            self._state = quantize(self._state, self.output_format)
        return self._state

    def reset(self) -> None:
        self._state = 0.0
