"""Offset, temperature and scale compensation IPs of the rate channel.

The paper's sense chain includes "demodulators, filters,
temperature/offset compensation and modulators".  After demodulation and
low-pass filtering the rate signal still contains the zero-rate offset,
its temperature drift, the residual quadrature leakage and the raw
(uncalibrated) scale factor; these blocks remove them:

* :class:`OffsetCompensation` — subtracts a programmable static offset.
* :class:`TemperatureCompensation` — polynomial offset and sensitivity
  correction against the measured die temperature.
* :class:`QuadratureCancellation` — subtracts a programmable fraction of
  the quadrature channel from the rate channel.
* :class:`RateScaler` — converts the compensated channel value into °/s
  and into the normalised output word driving the rate-output DAC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..common.exceptions import ConfigurationError
from ..common.fixedpoint import QFormat, quantize
from ..common.units import ROOM_TEMPERATURE_C


class OffsetCompensation:
    """Programmable static offset subtraction."""

    def __init__(self, offset: float = 0.0,
                 output_format: Optional[QFormat] = None):
        self.offset = float(offset)
        self.output_format = output_format

    def step(self, x: float) -> float:
        """Subtract the programmed offset from one sample."""
        y = x - self.offset
        if self.output_format is not None:
            y = quantize(y, self.output_format)
        return y


@dataclass
class TemperatureCompensationConfig:
    """Polynomial temperature-compensation coefficients.

    The correction uses the temperature deviation ``dT = T - 25 °C``:

    * offset correction: ``offset_poly[0] + offset_poly[1]*dT + ...``
      is subtracted from the signal;
    * sensitivity correction: the signal is divided by
      ``1 + sens_poly[0]*dT + sens_poly[1]*dT**2 + ...``.
    """

    offset_poly: Sequence[float] = (0.0, 0.0)
    sensitivity_poly: Sequence[float] = (0.0,)

    def __post_init__(self) -> None:
        if len(self.offset_poly) == 0:
            raise ConfigurationError("offset polynomial needs at least one coefficient")


class TemperatureCompensation:
    """Polynomial offset/sensitivity correction vs measured temperature."""

    def __init__(self, config: Optional[TemperatureCompensationConfig] = None,
                 output_format: Optional[QFormat] = None):
        self.config = config or TemperatureCompensationConfig()
        self.output_format = output_format

    def offset_correction(self, temperature_c: float) -> float:
        """Offset predicted by the polynomial at the given temperature."""
        dt_c = temperature_c - ROOM_TEMPERATURE_C
        return float(sum(c * dt_c ** i for i, c in enumerate(self.config.offset_poly)))

    def sensitivity_correction(self, temperature_c: float) -> float:
        """Multiplicative sensitivity deviation at the given temperature."""
        dt_c = temperature_c - ROOM_TEMPERATURE_C
        return float(1.0 + sum(c * dt_c ** (i + 1)
                               for i, c in enumerate(self.config.sensitivity_poly)))

    def step(self, x: float, temperature_c: float = ROOM_TEMPERATURE_C) -> float:
        """Apply both corrections to one sample."""
        corrected = (x - self.offset_correction(temperature_c))
        divisor = self.sensitivity_correction(temperature_c)
        if divisor == 0.0:
            raise ConfigurationError("sensitivity correction factor reached zero")
        y = corrected / divisor
        if self.output_format is not None:
            y = quantize(y, self.output_format)
        return y


class QuadratureCancellation:
    """Subtract a programmable fraction of the quadrature channel."""

    def __init__(self, coefficient: float = 0.0,
                 output_format: Optional[QFormat] = None):
        self.coefficient = float(coefficient)
        self.output_format = output_format

    def step(self, rate_channel: float, quadrature_channel: float) -> float:
        """Remove quadrature leakage from one rate-channel sample."""
        y = rate_channel - self.coefficient * quadrature_channel
        if self.output_format is not None:
            y = quantize(y, self.output_format)
        return y


@dataclass
class RateScalerConfig:
    """Calibration of the rate output.

    Attributes:
        volts_per_dps: target analog sensitivity (Table 1: 5 mV/°/s).
        full_scale_dps: rate mapped to a full-scale output word (±).
        scale_dps_per_unit: demodulated-channel units to °/s conversion,
            set by calibration.
    """

    volts_per_dps: float = 0.005
    full_scale_dps: float = 300.0
    scale_dps_per_unit: float = 1.0

    def __post_init__(self) -> None:
        if self.volts_per_dps <= 0:
            raise ConfigurationError("sensitivity must be > 0")
        if self.full_scale_dps <= 0:
            raise ConfigurationError("full-scale rate must be > 0")


class RateScaler:
    """Convert the compensated channel value to °/s and to the output word."""

    def __init__(self, config: Optional[RateScalerConfig] = None,
                 output_format: Optional[QFormat] = None):
        self.config = config or RateScalerConfig()
        self.output_format = output_format

    def to_dps(self, channel_value: float) -> float:
        """Convert a compensated channel sample to °/s."""
        return channel_value * self.config.scale_dps_per_unit

    def to_output_word(self, rate_dps: float) -> float:
        """Convert a rate in °/s to a normalised ±1 output word (clipped)."""
        word = rate_dps / self.config.full_scale_dps
        word = float(np.clip(word, -1.0, 1.0))
        if self.output_format is not None:
            word = quantize(word, self.output_format)
        return word

    def step(self, channel_value: float) -> float:
        """Channel sample → normalised output word in one call."""
        return self.to_output_word(self.to_dps(channel_value))

    def calibrate(self, measured_channel_per_dps: float) -> None:
        """Set the channel→°/s factor from a measured response slope."""
        if measured_channel_per_dps == 0:
            raise ConfigurationError("measured response slope cannot be zero")
        self.config.scale_dps_per_unit = 1.0 / measured_channel_per_dps

    def output_volts_per_dps(self, output_span_v: float) -> float:
        """Analog sensitivity implied by an output-DAC span (V per FS word)."""
        return output_span_v / self.config.full_scale_dps
