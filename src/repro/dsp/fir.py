"""FIR filter IPs for the hardwired DSP block.

The DSP block of Fig. 2 "contains a chain of IPs for signal elaboration"
including FIR/IIR filters.  The FIR model is bit-true capable: when a
:class:`~repro.common.fixedpoint.QFormat` is supplied, coefficients and
the output are quantised, reproducing the word-length effects the RTL
implementation adds over the floating-point (MATLAB-level) model.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence

import numpy as np
from scipy import signal as sps

from ..common.block import Block
from ..common.exceptions import ConfigurationError
from ..common.fixedpoint import QFormat, quantize


class FirFilter(Block):
    """Direct-form FIR filter with optional fixed-point quantisation."""

    def __init__(self, coefficients: Sequence[float],
                 output_format: Optional[QFormat] = None,
                 coefficient_format: Optional[QFormat] = None,
                 name: Optional[str] = None):
        super().__init__(name)
        coeffs = np.asarray(list(coefficients), dtype=np.float64)
        if coeffs.size == 0:
            raise ConfigurationError("FIR filter needs at least one coefficient")
        if coefficient_format is not None:
            coeffs = np.asarray(quantize(coeffs, coefficient_format))
        self.coefficients = coeffs
        self.output_format = output_format
        self._delay_line = deque([0.0] * coeffs.size, maxlen=coeffs.size)

    @property
    def order(self) -> int:
        """Filter order (number of taps minus one)."""
        return self.coefficients.size - 1

    def step(self, x: float) -> float:
        self._delay_line.appendleft(x)
        acc = float(np.dot(self.coefficients, np.asarray(self._delay_line)))
        if self.output_format is not None:
            acc = quantize(acc, self.output_format)
        return acc

    def reset(self) -> None:
        self._delay_line = deque([0.0] * self.coefficients.size,
                                 maxlen=self.coefficients.size)

    def process(self, samples: Iterable[float]) -> np.ndarray:
        """Vectorised convolution path for long records (state preserved)."""
        x = np.asarray(list(samples), dtype=np.float64)
        if x.size == 0:
            return np.zeros(0)
        history = np.asarray(self._delay_line)[:-1][::-1] if self.coefficients.size > 1 \
            else np.zeros(0)
        padded = np.concatenate([history, x])
        y = sps.lfilter(self.coefficients, [1.0], padded)[history.size:]
        # update the delay line with the tail of the input
        tail = padded[-self.coefficients.size:][::-1]
        self._delay_line = deque(tail.tolist(), maxlen=self.coefficients.size)
        if self.output_format is not None:
            y = np.asarray(quantize(y, self.output_format))
        return y

    def frequency_response(self, freqs_hz: np.ndarray,
                           sample_rate_hz: float) -> np.ndarray:
        """Complex frequency response at the given frequencies."""
        w = 2.0 * np.pi * np.asarray(freqs_hz) / sample_rate_hz
        _, h = sps.freqz(self.coefficients, worN=w)
        return h

    @classmethod
    def low_pass(cls, num_taps: int, cutoff_hz: float, sample_rate_hz: float,
                 **kwargs) -> "FirFilter":
        """Design a windowed-sinc low-pass FIR (Hamming window)."""
        if num_taps < 3:
            raise ConfigurationError("need at least 3 taps")
        if not 0 < cutoff_hz < sample_rate_hz / 2:
            raise ConfigurationError("cutoff must be between 0 and Nyquist")
        taps = sps.firwin(num_taps, cutoff_hz, fs=sample_rate_hz)
        return cls(taps, **kwargs)

    @classmethod
    def moving_average(cls, length: int, **kwargs) -> "FirFilter":
        """Boxcar moving-average filter of the given length."""
        if length < 1:
            raise ConfigurationError("length must be >= 1")
        return cls(np.full(length, 1.0 / length), **kwargs)
