"""Automatic gain control for the primary drive amplitude.

The gyro needs "an AGC (to control the amplitude of this vibration)":
the drive force must be regulated so the ring vibrates with a constant,
known amplitude, because the Coriolis coupling — and hence the rate
sensitivity — is proportional to the primary velocity.  The AGC compares
the measured pick-off amplitude (estimated by the PLL's quadrature arm)
with a reference and adjusts the drive gain with a PI law, producing the
"amplitude control" and "amplitude error" traces of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.exceptions import ConfigurationError
from ..common.fixedpoint import QFormat, quantize


@dataclass
class AgcConfig:
    """Configuration of the drive AGC.

    Attributes:
        target_amplitude: desired pick-off amplitude (normalised ±1 FS).
        kp: proportional gain.
        ki: integral gain per sample.
        max_gain: maximum drive gain (normalised DAC full scale).
        min_gain: minimum drive gain.
        startup_gain: gain applied while the amplitude estimate is still
            essentially zero — kicks the resonator into motion.
        settle_threshold: |amplitude error| below which the AGC reports
            the amplitude as settled.
        output_format: optional fixed-point format for the gain word.
    """

    target_amplitude: float = 0.5
    kp: float = 0.4
    ki: float = 1.0e-4
    max_gain: float = 1.0
    min_gain: float = 0.0
    startup_gain: float = 0.62
    settle_threshold: float = 0.03
    output_format: Optional[QFormat] = None

    def __post_init__(self) -> None:
        if not 0 < self.target_amplitude <= 1.0:
            raise ConfigurationError("target amplitude must be in (0, 1]")
        if self.kp < 0 or self.ki < 0:
            raise ConfigurationError("loop gains must be >= 0")
        if not self.min_gain <= self.startup_gain <= self.max_gain:
            raise ConfigurationError("startup gain must lie between min and max gain")
        if self.min_gain < 0 or self.max_gain <= self.min_gain:
            raise ConfigurationError("require 0 <= min_gain < max_gain")


class DriveAgc:
    """PI automatic gain control for the primary drive."""

    def __init__(self, config: Optional[AgcConfig] = None):
        self.config = config or AgcConfig()
        self._integrator = self.config.startup_gain
        self._gain = self.config.startup_gain
        self._error = self.config.target_amplitude

    @property
    def gain(self) -> float:
        """Current drive gain (the Fig. 5 "amplitude control" trace)."""
        return self._gain

    @property
    def amplitude_error(self) -> float:
        """Latest amplitude error (the Fig. 5 "amplitude error" trace)."""
        return self._error

    @property
    def settled(self) -> bool:
        """True when the amplitude error magnitude is within the threshold."""
        return abs(self._error) < self.config.settle_threshold

    def reset(self) -> None:
        """Return to the start-up state."""
        self._integrator = self.config.startup_gain
        self._gain = self.config.startup_gain
        self._error = self.config.target_amplitude

    def step(self, amplitude_estimate: float) -> float:
        """Update the drive gain from the latest amplitude estimate.

        Args:
            amplitude_estimate: measured primary pick-off amplitude
                (normalised full scale), e.g. from
                :attr:`~repro.dsp.pll.DigitalPll.amplitude_estimate`.

        Returns:
            The new drive gain in normalised DAC units.
        """
        cfg = self.config
        self._error = cfg.target_amplitude - float(amplitude_estimate)
        self._integrator += cfg.ki * self._error
        self._integrator = max(cfg.min_gain, min(cfg.max_gain, self._integrator))
        gain = cfg.kp * self._error + self._integrator
        gain = max(cfg.min_gain, min(cfg.max_gain, gain))
        if cfg.output_format is not None:
            gain = quantize(gain, cfg.output_format)
        self._gain = gain
        return gain
