"""Numerically controlled oscillator (NCO / DDS).

The NCO generates the in-phase and quadrature references used by the
drive PLL, the modulators that synthesise the electrode drive waveforms
and the demodulators of the sense chain.  It is a classic phase
accumulator: the tuning word sets the per-sample phase increment, and an
optional output format quantises the sin/cos outputs as the RTL
implementation's sine table would.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..common.exceptions import ConfigurationError
from ..common.fixedpoint import QFormat, quantize

TWO_PI = 2.0 * math.pi


class Nco:
    """Phase-accumulator oscillator with programmable centre frequency.

    The instantaneous frequency is ``center_frequency_hz + tuning_hz``
    where ``tuning_hz`` is the (bounded) frequency-control input — in the
    drive PLL the loop filter drives it; in open-loop modulator use it
    simply stays at zero.
    """

    def __init__(self, center_frequency_hz: float, sample_rate_hz: float,
                 tuning_range_hz: float = 1000.0,
                 output_format: Optional[QFormat] = None,
                 initial_phase_rad: float = 0.0):
        if center_frequency_hz <= 0:
            raise ConfigurationError("centre frequency must be > 0")
        if sample_rate_hz <= 2.0 * center_frequency_hz:
            raise ConfigurationError(
                "sample rate must be more than twice the centre frequency")
        if tuning_range_hz < 0:
            raise ConfigurationError("tuning range must be >= 0")
        self.center_frequency_hz = float(center_frequency_hz)
        self.sample_rate_hz = float(sample_rate_hz)
        self.tuning_range_hz = float(tuning_range_hz)
        self.output_format = output_format
        self._initial_phase = float(initial_phase_rad)
        self._phase = float(initial_phase_rad)
        self._tuning_hz = 0.0

    # -- control --------------------------------------------------------------

    @property
    def tuning_hz(self) -> float:
        """Current frequency-control input (bounded to ±tuning_range_hz)."""
        return self._tuning_hz

    @tuning_hz.setter
    def tuning_hz(self, value: float) -> None:
        limit = self.tuning_range_hz
        self._tuning_hz = max(-limit, min(limit, float(value)))

    @property
    def frequency_hz(self) -> float:
        """Instantaneous output frequency."""
        return self.center_frequency_hz + self._tuning_hz

    @property
    def phase(self) -> float:
        """Current accumulator phase in radians, wrapped to [0, 2π)."""
        return self._phase

    def reset(self) -> None:
        """Reset the phase accumulator and the tuning input."""
        self._phase = self._initial_phase
        self._tuning_hz = 0.0

    # -- generation -------------------------------------------------------------

    def step(self) -> Tuple[float, float]:
        """Advance one sample and return ``(sin, cos)`` of the new phase."""
        increment = TWO_PI * self.frequency_hz / self.sample_rate_hz
        self._phase = (self._phase + increment) % TWO_PI
        s = math.sin(self._phase)
        c = math.cos(self._phase)
        if self.output_format is not None:
            s = quantize(s, self.output_format)
            c = quantize(c, self.output_format)
        return s, c
