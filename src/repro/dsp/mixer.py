"""Modulator / demodulator IPs.

The sense chain demodulates the secondary pick-off with the drive
reference to move the rate information from the ~15 kHz carrier down to
base band (and to separate the in-phase Coriolis signal from the
quadrature error); the modulators do the reverse for the secondary
control electrode in the closed-loop (force-rebalance) configuration.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..common.block import Block
from ..common.exceptions import ConfigurationError
from ..common.fixedpoint import QFormat, quantize
from .iir import OnePoleLowPass


class Mixer(Block):
    """Multiplying mixer ``y = x * reference`` with optional quantisation."""

    def __init__(self, output_format: Optional[QFormat] = None,
                 name: Optional[str] = None):
        super().__init__(name)
        self.output_format = output_format
        self._reference = 0.0

    def set_reference(self, reference: float) -> None:
        """Update the local-oscillator sample used by the next :meth:`step`."""
        self._reference = float(reference)

    def step(self, x: float) -> float:
        y = x * self._reference
        if self.output_format is not None:
            y = quantize(y, self.output_format)
        return y

    def mix(self, x: float, reference: float) -> float:
        """One-call form: set the reference and mix one sample."""
        self.set_reference(reference)
        return self.step(x)


class SynchronousDemodulator(Block):
    """Coherent demodulator: mixer followed by a low-pass smoothing filter.

    The output is scaled by 2 so that an input ``A*ref(t)`` (with a
    unit-amplitude reference) demodulates to ``A``.
    """

    def __init__(self, cutoff_hz: float, sample_rate_hz: float,
                 output_format: Optional[QFormat] = None,
                 name: Optional[str] = None):
        super().__init__(name)
        if cutoff_hz <= 0 or sample_rate_hz <= 0:
            raise ConfigurationError("cutoff and sample rate must be > 0")
        self._mixer = Mixer(output_format=None)
        self._filter = OnePoleLowPass(cutoff_hz, sample_rate_hz)
        self.output_format = output_format

    def step(self, x: float) -> float:
        y = 2.0 * self._filter.step(self._mixer.step(x))
        if self.output_format is not None:
            y = quantize(y, self.output_format)
        return y

    def demodulate(self, x: float, reference: float) -> float:
        """Demodulate one sample against the given reference sample."""
        self._mixer.set_reference(reference)
        return self.step(x)

    def reset(self) -> None:
        self._filter.reset()


class QuadratureDemodulator:
    """I/Q demodulator producing both in-phase and quadrature outputs.

    Feeding the drive-locked NCO's cos as the in-phase reference and sin
    as the quadrature reference separates the Coriolis (rate) channel
    from the quadrature-error channel.
    """

    def __init__(self, cutoff_hz: float, sample_rate_hz: float,
                 output_format: Optional[QFormat] = None):
        self.in_phase = SynchronousDemodulator(cutoff_hz, sample_rate_hz,
                                               output_format, name="demod_i")
        self.quadrature = SynchronousDemodulator(cutoff_hz, sample_rate_hz,
                                                 output_format, name="demod_q")

    def step(self, x: float, ref_i: float, ref_q: float) -> Tuple[float, float]:
        """Demodulate one sample against the I and Q references."""
        return (self.in_phase.demodulate(x, ref_i),
                self.quadrature.demodulate(x, ref_q))

    def reset(self) -> None:
        self.in_phase.reset()
        self.quadrature.reset()


class Modulator(Block):
    """Amplitude modulator ``y = x * carrier`` (same core as the mixer).

    Used to re-modulate the force-rebalance command onto the drive
    carrier for the secondary control electrode.
    """

    def __init__(self, output_format: Optional[QFormat] = None,
                 name: Optional[str] = None):
        super().__init__(name)
        self._mixer = Mixer(output_format)

    def set_carrier(self, carrier: float) -> None:
        """Update the carrier sample used by the next :meth:`step`."""
        self._mixer.set_reference(carrier)

    def step(self, x: float) -> float:
        return self._mixer.step(x)

    def modulate(self, x: float, carrier: float) -> float:
        """One-call form: set the carrier and modulate one sample."""
        self._mixer.set_reference(carrier)
        return self._mixer.step(x)
