"""Digital PLL for the primary (drive) loop.

The gyro "basically requires a PLL (for primary drive), which has to
keep the ring in resonance (at a frequency of approximately 15 kHz)".
This IP implements that PLL entirely in the digital domain:

* a phase detector that multiplies the primary pick-off samples by the
  NCO in-phase (cosine) reference and low-pass filters the product —
  when the ring is driven exactly at resonance the pick-off lags the
  drive by 90°, so the filtered product is zero;
* a proportional–integral loop filter whose output is the VCO/NCO
  frequency-control word ("VCO control" trace of Fig. 5);
* the NCO itself, which supplies the drive reference (cosine) and the
  demodulation references for the sense chain.

The PLL also estimates the pick-off amplitude (quadrature arm) because
the phase-detector gain is proportional to it; the estimate is shared
with the AGC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..common.exceptions import ConfigurationError
from ..common.fixedpoint import QFormat
from .iir import OnePoleLowPass
from .nco import Nco


@dataclass
class PllConfig:
    """Configuration of the drive PLL.

    Attributes:
        center_frequency_hz: NCO centre (free-running) frequency.
        sample_rate_hz: DSP sample rate.
        tuning_range_hz: maximum NCO frequency pull (±).
        detector_cutoff_hz: phase-detector post-filter cutoff.
        kp: proportional gain [Hz per unit normalised phase error].
        ki: integral gain per sample [Hz per unit error per sample].
        amplitude_threshold: minimum pick-off amplitude (normalised) before
            the loop filter is allowed to act — below it the NCO free-runs.
        lock_threshold: normalised phase-error magnitude below which the
            loop is considered phase-locked.
        lock_count: number of consecutive in-threshold samples required to
            declare lock.
        output_format: optional fixed-point format for the NCO references
            (prototype / RTL mode).
    """

    center_frequency_hz: float = 15_000.0
    sample_rate_hz: float = 120_000.0
    tuning_range_hz: float = 750.0
    detector_cutoff_hz: float = 400.0
    kp: float = 8.0
    ki: float = 1.5e-3
    amplitude_threshold: float = 0.01
    lock_threshold: float = 0.05
    lock_count: int = 2_000
    output_format: Optional[QFormat] = None

    def __post_init__(self) -> None:
        if self.center_frequency_hz <= 0 or self.sample_rate_hz <= 0:
            raise ConfigurationError("frequencies must be > 0")
        if self.sample_rate_hz <= 2.0 * self.center_frequency_hz:
            raise ConfigurationError("sample rate must exceed twice the centre frequency")
        if self.kp < 0 or self.ki < 0:
            raise ConfigurationError("loop gains must be >= 0")
        if self.lock_count < 1:
            raise ConfigurationError("lock_count must be >= 1")


class DigitalPll:
    """Drive PLL: phase detector, PI loop filter and NCO."""

    def __init__(self, config: Optional[PllConfig] = None):
        self.config = config or PllConfig()
        cfg = self.config
        self.nco = Nco(cfg.center_frequency_hz, cfg.sample_rate_hz,
                       tuning_range_hz=cfg.tuning_range_hz,
                       output_format=cfg.output_format)
        self._pd_filter = OnePoleLowPass(cfg.detector_cutoff_hz, cfg.sample_rate_hz)
        self._amp_filter = OnePoleLowPass(cfg.detector_cutoff_hz, cfg.sample_rate_hz)
        self._integrator = 0.0
        self._phase_error = 0.0
        self._amplitude = 0.0
        self._lock_counter = 0
        self._locked = False
        self._sin_ref = 0.0
        self._cos_ref = 1.0

    # -- observables -----------------------------------------------------------

    @property
    def phase_error(self) -> float:
        """Normalised phase error (the Fig. 5 "phase error" trace)."""
        return self._phase_error

    @property
    def vco_control_hz(self) -> float:
        """Frequency-control word applied to the NCO ("VCO control")."""
        return self._integrator

    @property
    def frequency_hz(self) -> float:
        """Instantaneous NCO output frequency."""
        return self.nco.frequency_hz

    @property
    def amplitude_estimate(self) -> float:
        """Estimated pick-off amplitude (normalised full scale)."""
        return self._amplitude

    @property
    def locked(self) -> bool:
        """True once phase lock has been continuously held for lock_count samples."""
        return self._locked

    @property
    def references(self) -> Tuple[float, float]:
        """Latest ``(sin, cos)`` NCO reference samples."""
        return self._sin_ref, self._cos_ref

    # -- operation --------------------------------------------------------------

    def reset(self) -> None:
        """Return the PLL to the free-running state."""
        self.nco.reset()
        self._pd_filter.reset()
        self._amp_filter.reset()
        self._integrator = 0.0
        self._phase_error = 0.0
        self._amplitude = 0.0
        self._lock_counter = 0
        self._locked = False
        self._sin_ref = 0.0
        self._cos_ref = 1.0

    def step(self, pickoff_sample: float) -> Tuple[float, float]:
        """Process one primary pick-off sample.

        Returns:
            ``(sin_ref, cos_ref)`` — the NCO references for this sample
            (cos is the drive/in-phase reference, sin the quadrature).
        """
        cfg = self.config
        sin_ref, cos_ref = self._sin_ref, self._cos_ref

        # phase detector: in-phase product -> LPF
        pd = self._pd_filter.step(pickoff_sample * cos_ref)
        # amplitude estimate from the quadrature product (x ~ A*sin(phase))
        amp = self._amp_filter.step(pickoff_sample * sin_ref)
        self._amplitude = max(0.0, 2.0 * amp)

        if self._amplitude > cfg.amplitude_threshold:
            # normalise the detector output by the signal amplitude so the
            # loop gain does not depend on the AGC operating point
            error = 2.0 * pd / max(self._amplitude, cfg.amplitude_threshold)
            self._integrator += cfg.ki * error
            limit = cfg.tuning_range_hz
            self._integrator = max(-limit, min(limit, self._integrator))
            self.nco.tuning_hz = cfg.kp * error + self._integrator
            self._phase_error = error
            if abs(error) < cfg.lock_threshold:
                self._lock_counter = min(self._lock_counter + 1, cfg.lock_count)
            else:
                self._lock_counter = 0
        else:
            # no signal yet: free-run at the centre frequency (drop any
            # stale tuning word so the NCO really returns to the centre)
            self.nco.tuning_hz = 0.0
            self._phase_error = 0.0
            self._lock_counter = 0

        self._locked = self._lock_counter >= cfg.lock_count
        self._sin_ref, self._cos_ref = self.nco.step()
        return self._sin_ref, self._cos_ref
