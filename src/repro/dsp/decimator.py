"""Sample-rate reduction IPs: CIC and generic decimators.

The sense chain runs at the full acquisition rate (~120 kHz) but the
rate output only needs a few hundred hertz of update rate, so the
filtered rate signal is decimated before compensation, the SRAM data
logger and the CPU status registers.  The CIC structure is the standard
hardware-friendly way of doing that without multipliers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..common.exceptions import ConfigurationError
from ..common.fixedpoint import QFormat, quantize


class CicDecimator:
    """Cascaded integrator–comb decimator.

    Args:
        decimation: integer rate-change factor R.
        order: number of integrator/comb stages N.
        output_format: optional fixed-point output format.

    The DC gain ``R**N`` is normalised out so a constant input produces
    the same constant output.
    """

    def __init__(self, decimation: int, order: int = 2,
                 output_format: Optional[QFormat] = None):
        if decimation < 1 or int(decimation) != decimation:
            raise ConfigurationError("decimation factor must be a positive integer")
        if order < 1:
            raise ConfigurationError("order must be >= 1")
        self.decimation = int(decimation)
        self.order = int(order)
        self.output_format = output_format
        self._integrators = [0.0] * self.order
        self._combs = [0.0] * self.order
        self._phase = 0
        self._gain = float(self.decimation ** self.order)

    def step(self, x: float) -> Optional[float]:
        """Push one input sample; returns an output sample every R inputs."""
        acc = x
        for i in range(self.order):
            self._integrators[i] += acc
            acc = self._integrators[i]
        self._phase += 1
        if self._phase < self.decimation:
            return None
        self._phase = 0
        value = acc
        for i in range(self.order):
            value, self._combs[i] = value - self._combs[i], value
        y = value / self._gain
        if self.output_format is not None:
            y = quantize(y, self.output_format)
        return y

    def reset(self) -> None:
        """Clear all integrator and comb state."""
        self._integrators = [0.0] * self.order
        self._combs = [0.0] * self.order
        self._phase = 0

    def process(self, samples) -> np.ndarray:
        """Stream an array through the decimator, returning output samples.

        Vectorised equivalent of repeated :meth:`step` calls: each
        integrator stage is a running sum (computed with ``np.cumsum``
        seeded by the carried state, so the accumulation order — and
        therefore every rounding — matches the scalar loop), the
        decimation keeps the samples :meth:`step` would have emitted, and
        each comb stage is a first-order difference against the carried
        comb state.  The streaming state is updated so ``step`` and
        ``process`` calls can be interleaved freely.
        """
        x = np.asarray(samples, dtype=np.float64)
        if x.size == 0:
            return np.zeros(0)
        # integrator cascade: cumsum seeded with the carried accumulator
        acc = x
        for i in range(self.order):
            acc = np.cumsum(np.concatenate(([self._integrators[i]], acc)))[1:]
            self._integrators[i] = float(acc[-1])
        # decimation: step() emits when the phase counter reaches R
        first = self.decimation - 1 - self._phase
        self._phase = (self._phase + x.size) % self.decimation
        kept = acc[first::self.decimation]
        if kept.size == 0:
            return np.zeros(0)
        # comb cascade at the decimated rate: y[k] = v[k] - v[k-1] with the
        # carried comb state standing in for v[-1]
        value = kept
        for i in range(self.order):
            delayed = np.concatenate(([self._combs[i]], value[:-1]))
            self._combs[i] = float(value[-1])
            value = value - delayed
        y = value / self._gain
        if self.output_format is not None:
            y = np.asarray(quantize(y, self.output_format))
        return y


class Downsampler:
    """Plain keep-one-in-N downsampler (no filtering).

    Used after a filter that already provides the anti-alias rejection,
    e.g. the narrow output low-pass of the rate channel.
    """

    def __init__(self, factor: int):
        if factor < 1 or int(factor) != factor:
            raise ConfigurationError("downsampling factor must be a positive integer")
        self.factor = int(factor)
        self._phase = 0

    def step(self, x: float) -> Optional[float]:
        """Push one sample; returns it on every N-th call, otherwise None."""
        self._phase += 1
        if self._phase < self.factor:
            return None
        self._phase = 0
        return x

    def reset(self) -> None:
        """Restart the decimation phase."""
        self._phase = 0
