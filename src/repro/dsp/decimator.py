"""Sample-rate reduction IPs: CIC and generic decimators.

The sense chain runs at the full acquisition rate (~120 kHz) but the
rate output only needs a few hundred hertz of update rate, so the
filtered rate signal is decimated before compensation, the SRAM data
logger and the CPU status registers.  The CIC structure is the standard
hardware-friendly way of doing that without multipliers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..common.exceptions import ConfigurationError
from ..common.fixedpoint import QFormat, quantize


class CicDecimator:
    """Cascaded integrator–comb decimator.

    Args:
        decimation: integer rate-change factor R.
        order: number of integrator/comb stages N.
        output_format: optional fixed-point output format.

    The DC gain ``R**N`` is normalised out so a constant input produces
    the same constant output.
    """

    def __init__(self, decimation: int, order: int = 2,
                 output_format: Optional[QFormat] = None):
        if decimation < 1 or int(decimation) != decimation:
            raise ConfigurationError("decimation factor must be a positive integer")
        if order < 1:
            raise ConfigurationError("order must be >= 1")
        self.decimation = int(decimation)
        self.order = int(order)
        self.output_format = output_format
        self._integrators = [0.0] * self.order
        self._combs = [0.0] * self.order
        self._phase = 0
        self._gain = float(self.decimation ** self.order)

    def step(self, x: float) -> Optional[float]:
        """Push one input sample; returns an output sample every R inputs."""
        acc = x
        for i in range(self.order):
            self._integrators[i] += acc
            acc = self._integrators[i]
        self._phase += 1
        if self._phase < self.decimation:
            return None
        self._phase = 0
        value = acc
        for i in range(self.order):
            value, self._combs[i] = value - self._combs[i], value
        y = value / self._gain
        if self.output_format is not None:
            y = quantize(y, self.output_format)
        return y

    def reset(self) -> None:
        """Clear all integrator and comb state."""
        self._integrators = [0.0] * self.order
        self._combs = [0.0] * self.order
        self._phase = 0

    def process(self, samples) -> np.ndarray:
        """Stream an array through the decimator, returning output samples."""
        outputs = []
        for x in np.asarray(samples, dtype=np.float64):
            y = self.step(float(x))
            if y is not None:
                outputs.append(y)
        return np.asarray(outputs)


class Downsampler:
    """Plain keep-one-in-N downsampler (no filtering).

    Used after a filter that already provides the anti-alias rejection,
    e.g. the narrow output low-pass of the rate channel.
    """

    def __init__(self, factor: int):
        if factor < 1 or int(factor) != factor:
            raise ConfigurationError("downsampling factor must be a positive integer")
        self.factor = int(factor)
        self._phase = 0

    def step(self, x: float) -> Optional[float]:
        """Push one sample; returns it on every N-th call, otherwise None."""
        self._phase += 1
        if self._phase < self.factor:
            return None
        self._phase = 0
        return x

    def reset(self) -> None:
        """Restart the decimation phase."""
        self._phase = 0
