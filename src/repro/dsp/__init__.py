"""Hardwired DSP block IPs: filters, NCO, mixers, PLL, AGC, compensation."""

from .fir import FirFilter
from .iir import BiquadFilter, IirFilter, OnePoleLowPass
from .nco import Nco
from .mixer import Mixer, Modulator, QuadratureDemodulator, SynchronousDemodulator
from .pll import DigitalPll, PllConfig
from .agc import AgcConfig, DriveAgc
from .compensation import (
    OffsetCompensation,
    QuadratureCancellation,
    RateScaler,
    RateScalerConfig,
    TemperatureCompensation,
    TemperatureCompensationConfig,
)
from .decimator import CicDecimator, Downsampler

__all__ = [
    "FirFilter",
    "BiquadFilter",
    "IirFilter",
    "OnePoleLowPass",
    "Nco",
    "Mixer",
    "Modulator",
    "QuadratureDemodulator",
    "SynchronousDemodulator",
    "DigitalPll",
    "PllConfig",
    "AgcConfig",
    "DriveAgc",
    "OffsetCompensation",
    "QuadratureCancellation",
    "RateScaler",
    "RateScalerConfig",
    "TemperatureCompensation",
    "TemperatureCompensationConfig",
    "CicDecimator",
    "Downsampler",
]
