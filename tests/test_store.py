"""Tests for the durable result store (``repro.store``).

The store's promise is three-fold and every class here locks one face
of it: **durability** (entries survive exactly or not at all — a
truncated or flipped-byte file is never readable-but-wrong),
**self-healing** (damaged entries quarantine, re-simulate and come back
bit-identical), and **serving** (a warm store answers repeated
campaigns and characterisations with zero fleet simulation).  The
content-addressed keys are property-tested for the invariances the
design claims: stable across process restarts and pickle round-trips,
insensitive to fault and extractor declaration order, insensitive to
the executor (executors are bit-identity-locked, so they are
provenance, not identity).
"""

import copy
import dataclasses
import json
import os
import pickle
import shutil
import subprocess
import sys
import tempfile

import numpy as np
import pytest
from hypothesis import given, strategies as st

from strategies.settings import SLOW_SETTINGS, STANDARD_SETTINGS

import repro
from repro.chaos import ChaosPlan, Enospc, InjectedCrash, KillMidRename
from repro.chaos import runtime as chaos_runtime
from repro.common import (
    ConfigurationError,
    StoreError,
    StoreIntegrityError,
)
from repro.common.retry import RetryPolicy
from repro.eval.metrics import CharacterizationConfig, GyroCharacterization
from repro.faults import AfeSaturation, SensorDropout, StuckAdcCode
from repro.platform import GyroPlatform, content_digest
from repro.scenarios import (
    Campaign,
    Scenario,
    rate_table_scenarios,
    settled_output_scenario,
)
from repro.scenarios.executor import LaneSource
from repro.sensors import Environment
from repro.store import (
    STORE_SCHEMA,
    ResultStore,
    lane_key,
    miss_set_digest,
)

TRACE_FIELDS = (
    "time_s", "true_rate_dps", "temperature_c", "rate_output_dps",
    "rate_output_v", "amplitude_control", "amplitude_error", "phase_error",
    "vco_control", "pll_locked", "running")


def assert_campaigns_identical(a, b):
    """Bit-identical traces, metrics and bookkeeping (platforms aside)."""
    assert len(a.lanes) == len(b.lanes)
    for lane_a, lane_b in zip(a.lanes, b.lanes):
        assert len(lane_a.outcomes) == len(lane_b.outcomes)
        for oa, ob in zip(lane_a.outcomes, lane_b.outcomes):
            assert oa.metrics == ob.metrics
            assert oa.stopped_early == ob.stopped_early
            assert oa.elapsed_s == ob.elapsed_s
            for field in TRACE_FIELDS:
                assert np.array_equal(getattr(oa.result, field),
                                      getattr(ob.result, field)), field


@pytest.fixture(scope="module")
def started_platform():
    platform = GyroPlatform()
    platform.start()
    return platform


def make_campaign():
    return Campaign(rate_table_scenarios([0.0, 30.0], settle_s=0.02),
                    name="store-camp")


def forbid_simulation(monkeypatch):
    """Make any in-process lane execution fail the test loudly."""
    def boom(*args, **kwargs):
        raise AssertionError("simulated despite a warm store")
    monkeypatch.setattr("repro.scenarios.executor._execute_lanes", boom)


# ---------------------------------------------------------------------------
# cold / warm serving
# ---------------------------------------------------------------------------

class TestServing:
    def test_cold_run_matches_plain_and_populates(self, started_platform,
                                                  tmp_path):
        camp = make_campaign()
        plain = camp.run(copy.deepcopy(started_platform))
        store = ResultStore(str(tmp_path / "store"))
        cold = camp.run(copy.deepcopy(started_platform), store=store)
        assert_campaigns_identical(plain, cold)
        assert cold.complete
        assert store.stats.misses == 2 and store.stats.puts == 2
        assert len(store) == 2

    def test_warm_run_serves_with_zero_simulation(self, started_platform,
                                                  tmp_path, monkeypatch):
        camp = make_campaign()
        store = ResultStore(str(tmp_path / "store"))
        cold = camp.run(copy.deepcopy(started_platform), store=store)
        forbid_simulation(monkeypatch)
        warm = camp.run(copy.deepcopy(started_platform), store=store)
        assert_campaigns_identical(cold, warm)
        assert store.stats.hits == 2 and store.stats.puts == 2
        # served lanes carry no platform: the store persists results,
        # not live simulator objects
        assert all(lane.platform is None for lane in warm.lanes)

    def test_warm_run_on_sharded_executor_hits(self, started_platform,
                                               tmp_path, monkeypatch):
        # the executor is provenance, not identity: a store populated by
        # the local executor serves a sharded run of the same campaign
        camp = make_campaign()
        store = ResultStore(str(tmp_path / "store"))
        local = camp.run(copy.deepcopy(started_platform), store=store)
        forbid_simulation(monkeypatch)
        warm = camp.run(copy.deepcopy(started_platform), store=store,
                        workers=2, manifest_dir=str(tmp_path / "manifest"))
        assert_campaigns_identical(local, warm)
        assert store.stats.hits == 2
        # all lanes hit, so no miss-set manifest directory was created
        assert not os.path.exists(str(tmp_path / "manifest"))

    def test_partial_miss_simulates_only_missing_lane(self, started_platform,
                                                      tmp_path):
        camp = make_campaign()
        store = ResultStore(str(tmp_path / "store"))
        cold = camp.run(copy.deepcopy(started_platform), store=store)
        key = store.keys()[0]
        os.remove(store.entry_path(key))
        again = camp.run(copy.deepcopy(started_platform), store=store)
        assert_campaigns_identical(cold, again)
        assert store.stats.hits == 1          # the surviving lane
        assert store.stats.puts == 3          # 2 cold + 1 refill
        assert key in store

    def test_changed_scenario_is_a_miss(self, started_platform, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        make_campaign().run(copy.deepcopy(started_platform), store=store)
        changed = Campaign(rate_table_scenarios([0.0, 31.0], settle_s=0.02),
                           name="store-camp")
        changed.run(copy.deepcopy(started_platform), store=store)
        assert store.stats.hits == 1          # the unchanged 0.0 lane
        assert store.stats.puts == 3
        assert len(store) == 3

    def test_mutate_with_store_rejected(self, started_platform, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        camp = Campaign([settled_output_scenario(0.0, settle_s=0.01)])
        with pytest.raises(ConfigurationError, match="mutate"):
            camp.run(copy.deepcopy(started_platform), mutate=True,
                     store=store)

    def test_schema_mismatch_refused(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(str(root))
        with open(root / "store.json", "w") as fh:
            json.dump({"schema": 99}, fh)
        with pytest.raises(StoreError, match="schema"):
            ResultStore(str(root))


class TestWarmFleet:
    """``Campaign.run(fleet=...)``: store misses borrow pre-built warm
    lanes (rewound to the base platform's state from one shared pickle)
    instead of deep-copying the base once per miss."""

    def _fleet(self, platform, n):
        blob = pickle.dumps(platform, protocol=pickle.HIGHEST_PROTOCOL)
        return [pickle.loads(blob) for _ in range(n)]

    def test_fleet_run_bit_identical_to_cold(self, started_platform,
                                             tmp_path):
        camp = make_campaign()
        cold_store = ResultStore(str(tmp_path / "cold"))
        cold = camp.run(copy.deepcopy(started_platform), store=cold_store)

        fleet = self._fleet(started_platform, len(camp))
        warm_store = ResultStore(str(tmp_path / "warm"))
        warm = camp.run(copy.deepcopy(started_platform), store=warm_store,
                        fleet=fleet)
        assert_campaigns_identical(cold, warm)
        # a warm-fleet run keys and stores exactly what a cold run does
        assert sorted(warm_store.keys()) == sorted(cold_store.keys())
        assert warm_store.stats.misses == 2 and warm_store.stats.puts == 2

    def test_fleet_misses_never_deepcopy(self, started_platform, tmp_path,
                                         monkeypatch):
        camp = make_campaign()
        store = ResultStore(str(tmp_path / "store"))
        fleet = self._fleet(started_platform, len(camp))
        base = copy.deepcopy(started_platform)

        def boom(*args, **kwargs):
            raise AssertionError("cache miss deep-copied a platform "
                                 "despite a warm fleet")
        monkeypatch.setattr(copy, "deepcopy", boom)
        result = camp.run(base, store=store, fleet=fleet)
        assert result.complete
        assert store.stats.misses == 2 and store.stats.puts == 2

    def test_fleet_is_reusable_across_campaigns(self, started_platform,
                                                tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        fleet = self._fleet(started_platform, 2)
        first = make_campaign().run(copy.deepcopy(started_platform),
                                    store=store, fleet=fleet)
        changed = Campaign(rate_table_scenarios([0.0, 31.0], settle_s=0.02),
                           name="store-camp")
        second = changed.run(copy.deepcopy(started_platform), store=store,
                             fleet=fleet)
        assert first.complete and second.complete
        # second campaign: the 0.0 lane hits, the 31.0 lane reuses a
        # rewound fleet lane for its miss
        assert store.stats.hits == 1 and store.stats.puts == 3

    def test_fleet_serves_hits_without_touching_lanes(self, started_platform,
                                                      tmp_path, monkeypatch):
        camp = make_campaign()
        store = ResultStore(str(tmp_path / "store"))
        camp.run(copy.deepcopy(started_platform), store=store)
        forbid_simulation(monkeypatch)
        fleet = self._fleet(started_platform, len(camp))
        warm = camp.run(copy.deepcopy(started_platform), store=store,
                        fleet=fleet)
        assert warm.complete and store.stats.hits == 2

    def test_fleet_without_store_rejected(self, started_platform):
        camp = make_campaign()
        fleet = self._fleet(started_platform, len(camp))
        with pytest.raises(ConfigurationError, match="store"):
            camp.run(copy.deepcopy(started_platform), fleet=fleet)

    def test_fleet_requires_platform_source(self, started_platform,
                                            tmp_path):
        camp = make_campaign()
        store = ResultStore(str(tmp_path / "store"))
        fleet = self._fleet(started_platform, len(camp))
        with pytest.raises(ConfigurationError, match="platform="):
            camp.run(platforms=self._fleet(started_platform, len(camp)),
                     store=store, fleet=fleet)

    def test_fleet_on_sharded_executor_rejected(self, started_platform,
                                                tmp_path):
        camp = make_campaign()
        store = ResultStore(str(tmp_path / "store"))
        fleet = self._fleet(started_platform, len(camp))
        with pytest.raises(ConfigurationError, match="local"):
            camp.run(copy.deepcopy(started_platform), store=store,
                     fleet=fleet, workers=2,
                     manifest_dir=str(tmp_path / "manifest"))

    def test_too_small_fleet_rejected(self, started_platform, tmp_path):
        camp = make_campaign()
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(ConfigurationError, match="fleet"):
            camp.run(copy.deepcopy(started_platform), store=store,
                     fleet=self._fleet(started_platform, 1))


# ---------------------------------------------------------------------------
# quarantine: corruption degrades to a miss, never to a wrong result
# ---------------------------------------------------------------------------

class TestQuarantine:
    def _cold_store(self, started_platform, root):
        camp = make_campaign()
        store = ResultStore(str(root))
        cold = camp.run(copy.deepcopy(started_platform), store=store)
        return camp, store, cold

    def test_flipped_byte_in_every_entry_heals_bit_identically(
            self, started_platform, tmp_path):
        # the acceptance lock: flip one byte in each stored entry (at
        # different offsets, so different envelope fields take the hit);
        # every entry quarantines and transparently re-simulates to a
        # bit-identical result
        camp, store, cold = self._cold_store(started_platform,
                                             tmp_path / "store")
        for n, key in enumerate(store.keys()):
            path = store.entry_path(key)
            with open(path, "rb") as fh:
                blob = bytearray(fh.read())
            blob[(len(blob) * (n + 1)) // 3] ^= 0x01
            with open(path, "wb") as fh:
                fh.write(bytes(blob))
        healed = camp.run(copy.deepcopy(started_platform), store=store)
        assert_campaigns_identical(cold, healed)
        assert store.stats.quarantined == 2
        assert store.stats.puts == 4          # both lanes re-simulated
        assert len(store.quarantined()) == 2
        # the healed entries now verify again
        for key in store.keys():
            assert store.get(key) is not None

    def test_truncated_entry_is_quarantined_miss(self, started_platform,
                                                 tmp_path):
        _, store, _ = self._cold_store(started_platform, tmp_path / "store")
        key = store.keys()[0]
        path = store.entry_path(key)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        assert store.get(key) is None
        records = store.quarantined()
        assert len(records) == 1
        assert records[0]["key"] == key
        assert records[0]["reason"] == "unreadable"
        assert not os.path.exists(path)       # moved aside, not left behind

    def test_metadata_tamper_is_entry_checksum(self, started_platform,
                                               tmp_path):
        # provenance fields are not covered by the payload/config
        # checksums; the whole-envelope checksum catches them
        _, store, _ = self._cold_store(started_platform, tmp_path / "store")
        key = store.keys()[0]
        path = store.entry_path(key)
        with open(path) as fh:
            data = json.load(fh)
        data["created_unix"] += 1.0
        with open(path, "w") as fh:
            json.dump(data, fh)
        assert store.get(key) is None
        assert store.quarantined()[0]["reason"] == "entry-checksum"

    def test_payload_tamper_is_payload_checksum(self, started_platform,
                                                tmp_path):
        _, store, _ = self._cold_store(started_platform, tmp_path / "store")
        key = store.keys()[0]
        path = store.entry_path(key)
        with open(path) as fh:
            data = json.load(fh)
        outcome = data["payload"]["outcomes"][0]
        name = sorted(outcome["metrics"])[0]
        outcome["metrics"][name] += 1.0
        with open(path, "w") as fh:
            json.dump(data, fh)
        assert store.get(key) is None
        assert store.quarantined()[0]["reason"] == "payload-checksum"

    def test_schema_version_entry_quarantined(self, started_platform,
                                              tmp_path):
        _, store, _ = self._cold_store(started_platform, tmp_path / "store")
        key = store.keys()[0]
        path = store.entry_path(key)
        with open(path) as fh:
            data = json.load(fh)
        data["schema"] = STORE_SCHEMA + 1
        with open(path, "w") as fh:
            json.dump(data, fh)
        assert store.get(key) is None
        assert store.quarantined()[0]["reason"] == "schema-version"

    def test_key_mismatch_quarantined(self, started_platform, tmp_path):
        _, store, _ = self._cold_store(started_platform, tmp_path / "store")
        key_a, key_b = store.keys()
        shutil.copy(store.entry_path(key_a), store.entry_path(key_b))
        assert store.get(key_b) is None
        assert store.quarantined()[0]["reason"] == "key-mismatch"

    def test_quarantine_never_overwrites(self, started_platform, tmp_path):
        camp, store, _ = self._cold_store(started_platform,
                                          tmp_path / "store")
        key = store.keys()[0]
        for _ in range(2):
            with open(store.entry_path(key), "w") as fh:
                fh.write("not json")
            assert store.get(key) is None
            camp.run(copy.deepcopy(started_platform), store=store)
        names = sorted(os.listdir(store.quarantine_dir))
        assert names == [f"{key}.json.unreadable-0",
                         f"{key}.json.unreadable-1"]

    def test_stray_tmp_file_is_invisible(self, started_platform, tmp_path):
        # a writer killed before the atomic rename leaves only a temp
        # file; readers never see it and the next put replaces it cleanly
        _, store, _ = self._cold_store(started_platform, tmp_path / "store")
        key = store.keys()[0]
        path = store.entry_path(key)
        with open(f"{path}.tmp-99999", "wb") as fh:
            fh.write(b'{"half": ')
        assert store.get(key) is not None
        assert store.stats.quarantined == 0


# ---------------------------------------------------------------------------
# the equivalence audit
# ---------------------------------------------------------------------------

class TestAudit:
    def test_audit_verifies_sound_store(self, started_platform, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        make_campaign().run(copy.deepcopy(started_platform), store=store)
        report = store.audit()
        assert report.ok
        assert report.checked == 2
        assert sorted(report.verified_keys) == store.keys()
        assert store.stats.audited == 2

    def test_audit_sample_checks_subset(self, started_platform, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        make_campaign().run(copy.deepcopy(started_platform), store=store)
        report = store.audit(sample=1)
        assert report.ok and report.checked == 1

    def test_audit_catches_consistent_tamper_as_drift(self, started_platform,
                                                      tmp_path):
        # tamper a metric AND recompute every checksum: the envelope
        # verifies, so only re-simulation can catch it — that is
        # exactly what the audit is for
        store = ResultStore(str(tmp_path / "store"))
        make_campaign().run(copy.deepcopy(started_platform), store=store)
        key = store.keys()[0]
        path = store.entry_path(key)
        with open(path) as fh:
            data = json.load(fh)
        outcome = data["payload"]["outcomes"][0]
        name = sorted(outcome["metrics"])[0]
        outcome["metrics"][name] += 1.0
        data["payload_sha256"] = content_digest(data["payload"])
        data["entry_sha256"] = content_digest(
            {k: v for k, v in data.items() if k != "entry_sha256"})
        with open(path, "w") as fh:
            json.dump(data, fh)
        assert store.get(key) is not None     # envelope looks sound
        with pytest.raises(StoreIntegrityError, match="drifted"):
            store.audit()
        reasons = {r["key"]: r["reason"] for r in store.quarantined()}
        assert reasons[key] == "drift"
        # the untampered entry still audits clean
        assert store.audit().ok

    def test_audit_quarantines_unreplayable_config(self, started_platform,
                                                   tmp_path):
        import base64
        store = ResultStore(str(tmp_path / "store"))
        make_campaign().run(copy.deepcopy(started_platform), store=store)
        key = store.keys()[0]
        path = store.entry_path(key)
        with open(path) as fh:
            data = json.load(fh)
        data["config_b64"] = base64.b64encode(b"not a pickle").decode()
        data["config_sha256"] = content_digest(
            {"pickle": data["config_b64"]})
        data["entry_sha256"] = content_digest(
            {k: v for k, v in data.items() if k != "entry_sha256"})
        with open(path, "w") as fh:
            json.dump(data, fh)
        report = store.audit()                # reported, not raised
        assert not report.ok
        assert report.quarantined_keys == [key]
        reasons = {r["key"]: r["reason"] for r in store.quarantined()}
        assert reasons[key] == "replay-failed"


# ---------------------------------------------------------------------------
# key properties: stability and declared invariances
# ---------------------------------------------------------------------------

SCENARIO_FAULTS = [
    AfeSaturation(t_start=0.005, t_stop=0.01),
    SensorDropout(t_start=0.01, t_stop=0.02),
    StuckAdcCode(t_start=0.012, t_stop=0.018, channel="primary", code=3),
]

def _metric_mean(platform, result):
    return float(np.mean(result.rate_output_dps))

def _metric_last(platform, result):
    return float(result.rate_output_dps[-1])

def _metric_peak(platform, result):
    return float(np.max(np.abs(result.rate_output_dps)))

EXTRACTORS = [("mean", _metric_mean), ("last", _metric_last),
              ("peak", _metric_peak)]


def _faulted_scenario(faults):
    return Scenario(name="faulted", environment=Environment.still(),
                    duration_s=0.03, faults=tuple(faults))


class TestKeyProperties:
    def test_lane_key_is_content_sensitive(self):
        digests = ["d1", "d2"]
        base = lane_key("src", "batched", digests)
        assert lane_key("src", "batched", digests) == base
        assert lane_key("other", "batched", digests) != base
        assert lane_key("src", "fused", digests) != base
        assert lane_key("src", "batched", ["d2", "d1"]) != base
        assert lane_key("src", "batched", ["d1"]) != base

    def test_miss_set_digest_order_insensitive(self):
        assert miss_set_digest(["a", "b"]) == miss_set_digest(["b", "a"])
        assert miss_set_digest(["a"]) != miss_set_digest(["a", "b"])

    @STANDARD_SETTINGS
    @given(perm=st.permutations(SCENARIO_FAULTS))
    def test_key_insensitive_to_fault_order(self, perm):
        base = _faulted_scenario(SCENARIO_FAULTS)
        other = _faulted_scenario(perm)
        assert other.digest() == base.digest()
        assert (lane_key("src", "batched", [other.digest()])
                == lane_key("src", "batched", [base.digest()]))

    @STANDARD_SETTINGS
    @given(perm=st.permutations(EXTRACTORS))
    def test_key_insensitive_to_extractor_insertion_order(self, perm):
        base = Scenario(name="metrics", environment=Environment.still(),
                        duration_s=0.02, extractors=dict(EXTRACTORS))
        other = Scenario(name="metrics", environment=Environment.still(),
                         duration_s=0.02, extractors=dict(perm))
        assert other.digest() == base.digest()

    @SLOW_SETTINGS
    @given(rate=st.floats(-300.0, 300.0, allow_nan=False),
           settle=st.floats(0.01, 0.5))
    def test_scenario_digest_survives_pickle(self, rate, settle):
        scenario = settled_output_scenario(rate, settle_s=settle)
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone.digest() == scenario.digest()

    def test_source_digest_survives_pickle_round_trip(self):
        platform = GyroPlatform()
        source = LaneSource.resolve(platform, None, None, False, 1)
        clone = pickle.loads(pickle.dumps(source))
        assert clone.lane_digests(1) == source.lane_digests(1)

    def test_lane_key_stable_across_process_restart(self):
        scenario = settled_output_scenario(25.0, settle_s=0.05)
        source = LaneSource.resolve(GyroPlatform(), None, None, False, 1)
        key = lane_key(source.lane_digests(1)[0], "batched",
                       [scenario.digest()])
        script = (
            "from repro.platform import GyroPlatform\n"
            "from repro.scenarios import settled_output_scenario\n"
            "from repro.scenarios.executor import LaneSource\n"
            "from repro.store import lane_key\n"
            "source = LaneSource.resolve(GyroPlatform(), None, None,"
            " False, 1)\n"
            "scenario = settled_output_scenario(25.0, settle_s=0.05)\n"
            "print(lane_key(source.lane_digests(1)[0], 'batched',"
            " [scenario.digest()]))\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.dirname(os.path.dirname(repro.__file__)),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == key


# ---------------------------------------------------------------------------
# kill-during-write: truncation at every offset (satellite property)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sealed_entry(started_platform, tmp_path_factory):
    """One valid on-disk entry: (key, file bytes, expected payload)."""
    root = tmp_path_factory.mktemp("sealed")
    store = ResultStore(str(root / "store"))
    camp = Campaign([settled_output_scenario(20.0, settle_s=0.02)],
                    name="sealed")
    camp.run(GyroPlatform(), store=store)
    [key] = store.keys()
    with open(store.entry_path(key), "rb") as fh:
        blob = fh.read()
    lane = store.get(key)
    return key, blob, lane.to_dict()


class TestKillDuringWrite:
    @SLOW_SETTINGS
    @given(frac=st.floats(0.0, 1.0))
    def test_truncation_never_readable_but_wrong(self, sealed_entry, frac):
        # a kill at any instant of a non-atomic write would leave a
        # prefix of the entry; whatever the cut point, the store must
        # return either the exact stored result or a miss — never a
        # readable-but-wrong entry
        key, blob, payload = sealed_entry
        cut = min(len(blob), int(frac * (len(blob) + 1)))
        root = tempfile.mkdtemp(prefix="repro-store-trunc-")
        try:
            store = ResultStore(root)
            path = store.entry_path(key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "wb") as fh:
                fh.write(blob[:cut])
            lane = store.get(key)
            if cut == len(blob):
                assert lane is not None
                assert lane.to_dict() == payload
            else:
                assert lane is None
        finally:
            shutil.rmtree(root, ignore_errors=True)

    @SLOW_SETTINGS
    @given(index=st.integers(0, 10_000), flip=st.integers(1, 255))
    def test_flipped_byte_never_readable_but_wrong(self, sealed_entry,
                                                   index, flip):
        # bitrot anywhere in the file — payload, config, provenance
        # metadata, even insignificant whitespace — must degrade to a
        # miss or leave the entry bit-identical, never corrupt a read
        key, blob, payload = sealed_entry
        damaged = bytearray(blob)
        damaged[index % len(blob)] ^= flip
        root = tempfile.mkdtemp(prefix="repro-store-flip-")
        try:
            store = ResultStore(root)
            path = store.entry_path(key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "wb") as fh:
                fh.write(bytes(damaged))
            lane = store.get(key)
            assert lane is None or lane.to_dict() == payload
        finally:
            shutil.rmtree(root, ignore_errors=True)


# ---------------------------------------------------------------------------
# store + sharded executor: failure quarantine and self-healing resume
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class FailShard:
    """Picklable fault hook: one shard fails on every attempt."""

    shard_id: int

    def __call__(self, shard_id: int, attempt: int) -> None:
        if shard_id == self.shard_id:
            raise RuntimeError("injected persistent fault")


class TestStoreBackedResume:
    def test_failed_shard_reported_then_healed(self, started_platform,
                                               tmp_path):
        camp = make_campaign()
        store = ResultStore(str(tmp_path / "store"))
        manifest_dir = str(tmp_path / "manifest")
        partial = camp.run(copy.deepcopy(started_platform), store=store,
                           workers=2, shard_size=1,
                           manifest_dir=manifest_dir, max_retries=0,
                           fault_hook=FailShard(1))
        # the healthy lane was stored; the poisoned one is reported
        # against its ORIGINAL campaign lane index
        assert not partial.complete
        assert partial.failed_lane_indices() == [1]
        assert len(partial.failed_shards) == 1
        assert partial.failed_shards[0]["lane_indices"] == [1]
        assert len(store) == 1
        # the miss-set manifest landed in a subdirectory named after
        # exactly which lanes missed
        subdirs = os.listdir(manifest_dir)
        assert len(subdirs) == 1 and subdirs[0].startswith("miss-")

        # resume without the fault: the stored lane is a hit, only the
        # failed lane simulates, and the result matches a plain run
        healed = camp.run(copy.deepcopy(started_platform), store=store,
                          workers=2, shard_size=1,
                          manifest_dir=manifest_dir)
        assert healed.complete
        plain = camp.run(copy.deepcopy(started_platform))
        assert_campaigns_identical(plain, healed)
        assert store.stats.hits == 1 and len(store) == 2
        # the second miss set (lane 1 only) got its own manifest dir
        assert len(os.listdir(manifest_dir)) == 2


# ---------------------------------------------------------------------------
# chaos-injected durability: ENOSPC and kill-mid-rename on the write path
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def store_put_args(started_platform, tmp_path_factory):
    """A verified entry's put() arguments, harvested from a cold run."""
    import base64
    root = tmp_path_factory.mktemp("chaos-seed")
    store = ResultStore(str(root / "store"))
    camp = Campaign([settled_output_scenario(10.0, settle_s=0.02)],
                    name="chaos-store")
    camp.run(copy.deepcopy(started_platform), store=store)
    [key] = store.keys()
    entry = store.load_entry(key)
    provenance = dict(campaign=entry.campaign, engine=entry.engine,
                      executor=entry.executor,
                      source_digest=entry.source_digest)
    return (key, entry.lane_outcome(),
            base64.b64decode(entry.config_b64), provenance)


class TestChaosDurability:
    @staticmethod
    def _put(store, args):
        key, lane, config_blob, provenance = args
        return store.put(key, lane, config_blob=config_blob, **provenance)

    def test_transient_enospc_rides_retry_policy(self, store_put_args,
                                                 tmp_path):
        # ENOSPC that clears after two writes: the store's default
        # three-attempt policy rides it out and the entry verifies
        store = ResultStore(str(tmp_path / "s"))
        plan = ChaosPlan([Enospc(site="store.write", times=2)])
        with chaos_runtime.active(plan):
            self._put(store, store_put_args)
        key, lane = store_put_args[0], store_put_args[1]
        assert store.get(key).to_dict() == lane.to_dict()
        assert store.stats.quarantined == 0

    def test_persistent_enospc_surfaces_with_no_entry(self, store_put_args,
                                                      tmp_path):
        store = ResultStore(str(tmp_path / "s"),
                            retry=RetryPolicy(max_attempts=2))
        plan = ChaosPlan([Enospc(site="store.write")])
        with chaos_runtime.active(plan):
            with pytest.raises(OSError, match="no space left"):
                self._put(store, store_put_args)
        key, lane = store_put_args[0], store_put_args[1]
        # the failed put left nothing readable — not a partial entry
        assert key not in store
        assert store.get(key) is None
        assert store.stats.quarantined == 0
        # once the disk clears, the same put heals bit-identically
        self._put(store, store_put_args)
        assert store.get(key).to_dict() == lane.to_dict()

    def test_kill_mid_rename_never_readable_but_wrong(self, store_put_args,
                                                      tmp_path):
        # the writer dies between the fsync and the atomic rename — the
        # most dangerous instant of the durable-write dance.  The
        # canonical entry must be absent (a stray tmp file is fine:
        # readers never look at it), never readable-but-wrong, and the
        # crash must not be mistaken for a retryable I/O error.
        store = ResultStore(str(tmp_path / "s"))
        key, lane = store_put_args[0], store_put_args[1]
        with chaos_runtime.active(ChaosPlan([KillMidRename(times=1)])):
            with pytest.raises(InjectedCrash):
                self._put(store, store_put_args)
        assert key not in store
        assert store.get(key) is None
        assert store.stats.quarantined == 0
        # the "next run" re-puts and the entry comes back bit-identical
        self._put(store, store_put_args)
        assert store.get(key).to_dict() == lane.to_dict()

    def test_campaign_resume_heals_store_crash_bit_identically(
            self, started_platform, tmp_path, monkeypatch):
        camp = make_campaign()
        plain = camp.run(copy.deepcopy(started_platform))
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(InjectedCrash):
            camp.run(copy.deepcopy(started_platform), store=store,
                     chaos=ChaosPlan([KillMidRename(times=1)]))
        healed = camp.run(copy.deepcopy(started_platform), store=store)
        assert_campaigns_identical(plain, healed)
        # the store is warm now: a third run serves with zero simulation
        forbid_simulation(monkeypatch)
        warm = camp.run(copy.deepcopy(started_platform), store=store)
        assert_campaigns_identical(plain, warm)


# ---------------------------------------------------------------------------
# warm characterisation: the serving acceptance lock
# ---------------------------------------------------------------------------

class TestWarmCharacterization:
    def test_repeat_rate_response_zero_fleet_simulation(
            self, started_platform, tmp_path, monkeypatch):
        platform = copy.deepcopy(started_platform)
        config = CharacterizationConfig(
            rate_points_dps=(-50.0, 0.0, 50.0), settle_s=0.02)
        store = ResultStore(str(tmp_path / "store"))
        char = GyroCharacterization(platform, config, store=store)
        rates, volts, dps = char.measure_rate_response()
        assert store.stats.puts == 3

        # the platform did not advance (rate-response campaigns branch),
        # so the repeat run is key-identical: every lane must be served
        # from the store without touching the fleet
        forbid_simulation(monkeypatch)
        rates2, volts2, dps2 = char.measure_rate_response()
        assert np.array_equal(rates, rates2)
        assert np.array_equal(volts, volts2)
        assert np.array_equal(dps, dps2)
        assert store.stats.hits == 3 and store.stats.puts == 3
        # and the cached sweep passes the equivalence audit
        assert store.audit(sample=2).ok
