"""Tests for the sensor models (resonator, gyro, generic elements, environment)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.sensors import (
    CapacitivePressureSensor,
    ConstantProfile,
    Environment,
    GyroParameters,
    InductivePositionSensor,
    PiecewiseProfile,
    RampProfile,
    ResistiveBridgeSensor,
    ResonatorMode,
    SensingElementSpec,
    SineProfile,
    StepProfile,
    VibratingRingGyro,
)

FS = 120_000.0


class TestProfiles:
    def test_constant(self):
        p = ConstantProfile(3.0)
        assert p.value(0.0) == 3.0
        assert np.all(p.sample(np.linspace(0, 1, 5)) == 3.0)

    def test_step(self):
        p = StepProfile(before=0.0, after=2.0, step_time=0.5)
        assert p.value(0.49) == 0.0
        assert p.value(0.5) == 2.0
        sampled = p.sample(np.array([0.0, 0.5, 1.0]))
        assert np.allclose(sampled, [0.0, 2.0, 2.0])

    def test_ramp(self):
        p = RampProfile(start=0.0, stop=10.0, t0=0.0, t1=1.0)
        assert p.value(-1.0) == 0.0
        assert p.value(0.5) == pytest.approx(5.0)
        assert p.value(2.0) == 10.0
        assert np.allclose(p.sample(np.array([0.25, 0.75])), [2.5, 7.5])

    def test_ramp_rejects_bad_times(self):
        with pytest.raises(ConfigurationError):
            RampProfile(t0=1.0, t1=1.0)

    def test_sine(self):
        p = SineProfile(amplitude=2.0, frequency_hz=1.0, offset=1.0)
        assert p.value(0.25) == pytest.approx(3.0)
        assert p.value(0.0) == pytest.approx(1.0)

    def test_sine_rejects_negative_freq(self):
        with pytest.raises(ConfigurationError):
            SineProfile(frequency_hz=-1.0)

    def test_piecewise(self):
        p = PiecewiseProfile(breakpoints=[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)])
        assert p.value(-0.5) == 1.0
        assert p.value(0.5) == 1.0
        assert p.value(1.5) == 2.0
        assert p.value(5.0) == 3.0

    def test_piecewise_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            PiecewiseProfile(breakpoints=[(1.0, 1.0), (0.5, 2.0)])

    def test_piecewise_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            PiecewiseProfile(breakpoints=[])

    def test_environment_factories(self):
        env = Environment.still(temperature_c=85.0)
        rate, temp = env.at(1.0)
        assert rate == 0.0 and temp == 85.0

        env = Environment.constant_rate(100.0)
        assert env.at(0.0)[0] == 100.0

        env = Environment.rate_step(50.0, step_time=0.1)
        assert env.at(0.05)[0] == 0.0
        assert env.at(0.15)[0] == 50.0

        env = Environment.sinusoidal_rate(10.0, 5.0)
        assert abs(env.at(0.05)[0]) <= 10.0 + 1e-9


class TestResonatorMode:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ResonatorMode(0.0, 100.0, 1e-5)
        with pytest.raises(ConfigurationError):
            ResonatorMode(1000.0, 0.0, 1e-5)
        with pytest.raises(ConfigurationError):
            ResonatorMode(1000.0, 100.0, 0.0)

    def test_rest_stays_at_rest(self):
        mode = ResonatorMode(15000.0, 1000.0, 1.0 / FS)
        for _ in range(100):
            mode.step(0.0)
        assert mode.displacement == 0.0
        assert mode.velocity == 0.0

    def test_resonant_drive_builds_up(self):
        mode = ResonatorMode(15000.0, 500.0, 1.0 / FS)
        dt = 1.0 / FS
        w = 2 * math.pi * 15000.0
        n = int(0.05 * FS)
        amps = []
        for i in range(n):
            mode.step(math.sin(w * i * dt))
        assert abs(mode.displacement) + abs(mode.velocity) > 0.0
        # amplitude approaches the steady-state prediction
        predicted = mode.steady_state_amplitude(1.0)
        peak = 0.0
        for i in range(n, n + int(FS / 15000.0 * 4)):
            mode.step(math.sin(w * i * dt))
            peak = max(peak, abs(mode.displacement))
        assert peak == pytest.approx(predicted, rel=0.2)

    def test_decay_without_drive(self):
        mode = ResonatorMode(15000.0, 200.0, 1.0 / FS)
        dt = 1.0 / FS
        w = 2 * math.pi * 15000.0
        for i in range(int(0.05 * FS)):
            mode.step(math.sin(w * i * dt))
        energy_before = mode.displacement ** 2 + (mode.velocity / w) ** 2
        for _ in range(int(3 * mode.envelope_time_constant() * FS)):
            mode.step(0.0)
        energy_after = mode.displacement ** 2 + (mode.velocity / w) ** 2
        assert energy_after < 0.01 * energy_before

    def test_steady_state_amplitude_at_resonance(self):
        mode = ResonatorMode(1000.0, 100.0, 1e-5)
        w0 = 2 * math.pi * 1000.0
        expected = 1.0 * 100.0 / w0 ** 2
        assert mode.steady_state_amplitude(1.0) == pytest.approx(expected, rel=1e-6)

    def test_steady_state_amplitude_off_resonance_smaller(self):
        mode = ResonatorMode(1000.0, 100.0, 1e-5)
        at_res = mode.steady_state_amplitude(1.0)
        off_res = mode.steady_state_amplitude(1.0, drive_freq_hz=1200.0)
        assert off_res < at_res

    def test_envelope_time_constant(self):
        mode = ResonatorMode(15000.0, 4000.0, 1.0 / FS)
        assert mode.envelope_time_constant() == pytest.approx(
            2 * 4000.0 / (2 * math.pi * 15000.0))

    def test_half_power_bandwidth(self):
        mode = ResonatorMode(15000.0, 1500.0, 1.0 / FS)
        assert mode.half_power_bandwidth_hz() == pytest.approx(10.0)

    def test_retune_changes_resonance(self):
        mode = ResonatorMode(15000.0, 1000.0, 1.0 / FS)
        mode.retune(resonance_hz=14000.0)
        assert mode.resonance_hz == 14000.0
        mode.retune(quality_factor=2000.0)
        assert mode.quality_factor == 2000.0

    def test_retune_rejects_bad_values(self):
        mode = ResonatorMode(15000.0, 1000.0, 1.0 / FS)
        with pytest.raises(ConfigurationError):
            mode.retune(resonance_hz=-1.0)

    def test_reset(self):
        mode = ResonatorMode(15000.0, 1000.0, 1.0 / FS)
        mode.step(1.0)
        mode.reset()
        assert mode.displacement == 0.0
        assert mode.velocity == 0.0

    @given(st.floats(min_value=5000.0, max_value=20000.0),
           st.floats(min_value=10.0, max_value=5000.0))
    @settings(max_examples=20, deadline=None)
    def test_unforced_motion_never_grows(self, f0, q):
        mode = ResonatorMode(f0, q, 1.0 / 480000.0)
        # start from a displaced state
        mode._displacement = 1.0
        mode._velocity = 0.0
        peak = 0.0
        for _ in range(2000):
            mode.step(0.0)
            peak = max(peak, abs(mode.displacement))
        assert peak <= 1.0 + 1e-9


class TestGyroParameters:
    def test_defaults_valid(self):
        params = GyroParameters()
        assert params.primary_resonance_hz == pytest.approx(15000.0)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            GyroParameters(primary_resonance_hz=-1.0)
        with pytest.raises(ConfigurationError):
            GyroParameters(primary_q=0.0)
        with pytest.raises(ConfigurationError):
            GyroParameters(pickoff_gain_v_per_m=0.0)
        with pytest.raises(ConfigurationError):
            GyroParameters(rate_noise_density_dps_rthz=-0.1)

    def test_part_variation_changes_parameters(self):
        rng = np.random.default_rng(0)
        base = GyroParameters()
        varied = base.with_part_variation(rng)
        assert varied.pickoff_gain_v_per_m != base.pickoff_gain_v_per_m
        assert varied.noise_seed != base.noise_seed

    def test_part_variation_is_bounded(self):
        rng = np.random.default_rng(1)
        base = GyroParameters()
        for _ in range(20):
            varied = base.with_part_variation(rng)
            assert 0.8 * base.pickoff_gain_v_per_m < varied.pickoff_gain_v_per_m \
                < 1.2 * base.pickoff_gain_v_per_m


class TestVibratingRingGyro:
    def test_rejects_undersampled_simulation(self):
        with pytest.raises(ConfigurationError):
            VibratingRingGyro(GyroParameters(), sample_rate_hz=20000.0)

    def test_at_rest_outputs_are_zero_without_noise(self):
        params = GyroParameters(rate_noise_density_dps_rthz=0.0)
        gyro = VibratingRingGyro(params, FS)
        for _ in range(100):
            primary, secondary = gyro.step(0.0, 0.0, 0.0)
        assert primary == 0.0
        assert secondary == 0.0

    def test_drive_excites_primary(self):
        params = GyroParameters(rate_noise_density_dps_rthz=0.0)
        gyro = VibratingRingGyro(params, FS)
        w = 2 * math.pi * params.primary_resonance_hz
        dt = 1.0 / FS
        peak = 0.0
        for i in range(int(0.02 * FS)):
            primary, _ = gyro.step(0.5 * math.sin(w * i * dt), 0.0, 0.0)
            peak = max(peak, abs(primary))
        assert peak > 1e-3  # pick-off volts

    def test_rate_produces_secondary_signal(self):
        params = GyroParameters(rate_noise_density_dps_rthz=0.0,
                                quadrature_error_dps=0.0, offset_rate_dps=0.0)
        gyro = VibratingRingGyro(params, FS)
        w = 2 * math.pi * params.primary_resonance_hz
        dt = 1.0 / FS
        # spin up the primary first
        for i in range(int(0.05 * FS)):
            gyro.step(0.5 * math.sin(w * i * dt), 0.0, 0.0)
        sec_zero_rate = []
        for i in range(int(0.05 * FS), int(0.06 * FS)):
            _, s = gyro.step(0.5 * math.sin(w * i * dt), 0.0, 0.0)
            sec_zero_rate.append(s)
        sec_with_rate = []
        for i in range(int(0.06 * FS), int(0.08 * FS)):
            _, s = gyro.step(0.5 * math.sin(w * i * dt), 0.0, 100.0)
            sec_with_rate.append(s)
        assert np.std(sec_with_rate[len(sec_with_rate) // 2:]) > 3 * (
            np.std(sec_zero_rate) + 1e-12)

    def test_secondary_scales_with_rate(self):
        params = GyroParameters(rate_noise_density_dps_rthz=0.0,
                                quadrature_error_dps=0.0, offset_rate_dps=0.0)
        gyro = VibratingRingGyro(params, FS)
        amp_small = gyro.mechanical_sensitivity_v_per_dps(1e-6) * 50.0
        amp_large = gyro.mechanical_sensitivity_v_per_dps(1e-6) * 200.0
        assert amp_large == pytest.approx(4 * amp_small, rel=1e-9)

    def test_temperature_changes_offset(self):
        params = GyroParameters(rate_noise_density_dps_rthz=0.0)
        gyro = VibratingRingGyro(params, FS)
        gyro.step(0.0, 0.0, 0.0, temperature_c=25.0)
        offset_25 = gyro._offset_rate_dps
        gyro.step(0.0, 0.0, 0.0, temperature_c=85.0)
        offset_85 = gyro._offset_rate_dps
        assert offset_85 != pytest.approx(offset_25)

    def test_temperature_changes_resonance(self):
        gyro = VibratingRingGyro(GyroParameters(), FS)
        f_room = gyro.primary.resonance_hz
        gyro.step(0.0, 0.0, 0.0, temperature_c=125.0)
        assert gyro.primary.resonance_hz != pytest.approx(f_room)

    def test_reset_restores_rest(self):
        gyro = VibratingRingGyro(GyroParameters(), FS)
        w = 2 * math.pi * 15000.0
        for i in range(1000):
            gyro.step(math.sin(w * i / FS), 0.0, 10.0)
        gyro.reset()
        assert gyro.primary.displacement == 0.0
        assert gyro.secondary.displacement == 0.0

    def test_noise_is_reproducible_with_seed(self):
        params = GyroParameters(noise_seed=99)
        g1 = VibratingRingGyro(params, FS)
        g2 = VibratingRingGyro(params, FS)
        w = 2 * math.pi * 15000.0
        out1 = [g1.step(math.sin(w * i / FS), 0.0, 0.0)[1] for i in range(200)]
        out2 = [g2.step(math.sin(w * i / FS), 0.0, 0.0)[1] for i in range(200)]
        assert out1 == out2

    def test_turn_on_estimate_reasonable(self):
        gyro = VibratingRingGyro(GyroParameters(), FS)
        estimate = gyro.turn_on_time_estimate_s()
        assert 0.1 < estimate < 1.0  # hundreds of milliseconds, per Table 1


class TestGenericElements:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            SensingElementSpec(full_scale=0.0, sensitivity=1.0)
        with pytest.raises(ConfigurationError):
            SensingElementSpec(full_scale=1.0, sensitivity=0.0)
        with pytest.raises(ConfigurationError):
            SensingElementSpec(full_scale=1.0, sensitivity=1.0,
                               noise_density_v_rthz=-1.0)

    def test_capacitive_pressure_sensitivity(self):
        sensor = CapacitivePressureSensor(sample_rate_hz=10000.0)
        v100 = sensor.output_voltage(100.0)
        v200 = sensor.output_voltage(200.0)
        assert v200 > v100
        assert sensor.transduction == "capacitive"

    def test_resistive_bridge_output_is_small(self):
        sensor = ResistiveBridgeSensor(sample_rate_hz=10000.0)
        assert abs(sensor.output_voltage(sensor.spec.full_scale)) < 0.1
        assert sensor.transduction == "resistive"

    def test_inductive_position(self):
        sensor = InductivePositionSensor(sample_rate_hz=10000.0)
        assert sensor.output_voltage(5.0) > sensor.output_voltage(1.0)
        assert sensor.transduction == "inductive"

    def test_temperature_drift_shifts_output(self):
        sensor = CapacitivePressureSensor(sample_rate_hz=10000.0)
        assert sensor.output_voltage(100.0, temperature_c=125.0) != pytest.approx(
            sensor.output_voltage(100.0, temperature_c=25.0))

    def test_noisy_step_differs_from_ideal(self):
        sensor = CapacitivePressureSensor(sample_rate_hz=10000.0, seed=5)
        ideal = sensor.output_voltage(100.0)
        samples = np.array([sensor.step(100.0) for _ in range(200)])
        assert np.std(samples) > 0.0
        assert np.mean(samples) == pytest.approx(ideal, abs=5e-4)

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ConfigurationError):
            CapacitivePressureSensor(sample_rate_hz=0.0)

    @given(st.floats(min_value=-300.0, max_value=300.0))
    @settings(max_examples=50, deadline=None)
    def test_output_monotone_in_input(self, value):
        sensor = CapacitivePressureSensor(sample_rate_hz=10000.0)
        lower = sensor.output_voltage(value - 1.0)
        upper = sensor.output_voltage(value + 1.0)
        assert upper > lower
