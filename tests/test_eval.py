"""Tests for the evaluation package: datasheets, baselines, comparisons, metrics."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.eval import (
    BaselineGyroDevice,
    BaselineGyroSpec,
    CharacterizationConfig,
    DatasheetEntry,
    DeviceDatasheet,
    GyroCharacterization,
    MeasuredPerformance,
    P_NOISE_DENSITY,
    P_SENS_INITIAL,
    adxrs300_spec,
    characterize_baseline,
    compare_devices,
    murata_gyrostar_spec,
    paper_shape_checks,
    paper_table1_sensordynamics,
    paper_table2_adxrs300,
    paper_table3_murata_gyrostar,
)


class TestDatasheet:
    def test_entry_best_prefers_typical(self):
        entry = DatasheetEntry("x", "V", 1.0, 2.0, 3.0)
        assert entry.best() == 2.0

    def test_entry_best_falls_back_to_mean(self):
        entry = DatasheetEntry("x", "V", minimum=1.0, maximum=3.0)
        assert entry.best() == 2.0
        assert DatasheetEntry("x", "V").best() is None

    def test_entry_format_row(self):
        row = DatasheetEntry("Sensitivity", "mV/deg/s", 4.85, 5.0, 5.15).format_row()
        assert "Sensitivity" in row and "mV/deg/s" in row

    def test_device_datasheet_lookup(self):
        sheet = paper_table1_sensordynamics()
        assert P_SENS_INITIAL in sheet
        assert sheet.entry(P_SENS_INITIAL).typical == pytest.approx(5.0)
        with pytest.raises(ConfigurationError):
            sheet.entry("bogus")

    def test_paper_tables_have_key_rows(self):
        for sheet in (paper_table1_sensordynamics(), paper_table2_adxrs300(),
                      paper_table3_murata_gyrostar()):
            assert P_SENS_INITIAL in sheet
            assert P_NOISE_DENSITY in sheet
            assert len(sheet.format_table()) > 100

    def test_paper_values_match_publication(self):
        t1 = paper_table1_sensordynamics()
        assert t1.entry("Turn On Time").maximum == 500.0
        assert t1.entry(P_NOISE_DENSITY).typical == pytest.approx(0.09)
        t2 = paper_table2_adxrs300()
        assert t2.entry("Turn On Time").typical == 35.0
        t3 = paper_table3_murata_gyrostar()
        assert t3.entry(P_SENS_INITIAL).typical == pytest.approx(0.67)


class TestBaselines:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            BaselineGyroSpec("bad", full_scale_dps=0.0,
                             sensitivity_v_per_dps=0.005, null_v=2.5)
        with pytest.raises(ConfigurationError):
            BaselineGyroSpec("bad", full_scale_dps=300.0,
                             sensitivity_v_per_dps=0.005, null_v=2.5,
                             bandwidth_hz=0.0)

    def test_device_rejects_undersampling(self):
        with pytest.raises(ConfigurationError):
            BaselineGyroDevice(adxrs300_spec(), sample_rate_hz=50.0)

    def test_ideal_output_sensitivity(self):
        device = BaselineGyroDevice(adxrs300_spec())
        v0 = device.ideal_output(0.0)
        v100 = device.ideal_output(100.0)
        assert v0 == pytest.approx(2.5, abs=0.01)
        assert (v100 - v0) / 100.0 == pytest.approx(0.005, rel=0.02)

    def test_output_clipped_to_supply(self):
        device = BaselineGyroDevice(adxrs300_spec())
        assert 0.0 <= device.ideal_output(10000.0) <= 5.0

    def test_simulate_settles_to_ideal(self):
        device = BaselineGyroDevice(adxrs300_spec(), seed=1)
        record = device.simulate(150.0, 1.0)
        assert np.mean(record[-500:]) == pytest.approx(
            device.ideal_output(150.0), abs=0.01)

    def test_temperature_drift(self):
        device = BaselineGyroDevice(murata_gyrostar_spec())
        assert device.ideal_output(0.0, 75.0) != pytest.approx(
            device.ideal_output(0.0, 25.0), abs=1e-6)

    def test_characterize_baseline_adxrs300(self):
        device = BaselineGyroDevice(adxrs300_spec(), seed=3)
        perf = characterize_baseline(device, noise_duration_s=3.0, settle_s=0.3)
        assert perf.sensitivity_mv_per_dps == pytest.approx(5.0, rel=0.05)
        assert perf.null_v == pytest.approx(2.5, abs=0.05)
        assert perf.noise_density_dps_rthz == pytest.approx(0.1, rel=0.4)
        assert perf.turn_on_time_ms == pytest.approx(35.0)
        assert perf.bandwidth_hz == pytest.approx(40.0)

    def test_characterize_baseline_murata(self):
        device = BaselineGyroDevice(murata_gyrostar_spec(), seed=4)
        perf = characterize_baseline(device, noise_duration_s=2.0, settle_s=0.3)
        assert perf.sensitivity_mv_per_dps == pytest.approx(0.67, rel=0.1)
        assert perf.operating_temp_c == (-5.0, 75.0)


class TestComparison:
    def _fake_perf(self, name, noise, bandwidth, turn_on):
        return MeasuredPerformance(
            device=name, dynamic_range_dps=300.0, sensitivity_mv_per_dps=5.0,
            sensitivity_over_temp_mv=(4.9, 5.1), nonlinearity_pct_fs=0.1,
            null_v=2.5, null_over_temp_v=(2.48, 2.53), turn_on_time_ms=turn_on,
            noise_density_dps_rthz=noise, bandwidth_hz=bandwidth)

    def test_requires_two_devices(self):
        with pytest.raises(ConfigurationError):
            compare_devices([self._fake_perf("only", 0.1, 50.0, 100.0)])

    def test_winners(self):
        platform = self._fake_perf("SensorDynamics platform", 0.09, 55.0, 450.0)
        adxrs = self._fake_perf("ADXRS300", 0.1, 40.0, 35.0)
        report = compare_devices([platform, adxrs])
        assert report.winner_of("noise_density_dps_rthz") == platform.device
        assert report.winner_of("bandwidth_hz") == platform.device
        assert report.winner_of("turn_on_time_ms") == adxrs.device
        with pytest.raises(ConfigurationError):
            report.winner_of("not_a_metric")

    def test_format_table(self):
        platform = self._fake_perf("SensorDynamics platform", 0.09, 55.0, 450.0)
        adxrs = self._fake_perf("ADXRS300", 0.1, 40.0, 35.0)
        table = compare_devices([platform, adxrs]).format_table()
        assert "noise_density" in table
        assert "best:" in table

    def test_paper_shape_checks(self):
        platform = self._fake_perf("SensorDynamics platform", 0.09, 55.0, 450.0)
        adxrs = self._fake_perf("ADXRS300 (model)", 0.1, 40.0, 35.0)
        murata = self._fake_perf("Murata Gyrostar (model)", 0.4, 50.0, 200.0)
        checks = paper_shape_checks(compare_devices([platform, adxrs, murata]))
        assert checks["noise_beats_adxrs300"]
        assert checks["bandwidth_beats_baselines"]
        assert checks["turn_on_slower_than_adxrs300"]
        assert checks["sensitivity_matches_5mv"]

    def test_measured_performance_to_datasheet(self):
        perf = self._fake_perf("Device", 0.09, 55.0, 450.0)
        sheet = perf.to_datasheet()
        assert sheet.entry(P_SENS_INITIAL).typical == pytest.approx(5.0)
        assert sheet.entry(P_NOISE_DENSITY).typical == pytest.approx(0.09)


class TestCharacterizationHarness:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CharacterizationConfig(rate_points_dps=(0.0,))
        with pytest.raises(ConfigurationError):
            CharacterizationConfig(settle_s=0.0)

    def test_bandwidth_method_validation(self, calibrated_platform_eval):
        char = GyroCharacterization(calibrated_platform_eval)
        with pytest.raises(ConfigurationError):
            char.measure_bandwidth("wrong")

    def test_analytic_bandwidth_in_table_range(self, calibrated_platform_eval):
        char = GyroCharacterization(calibrated_platform_eval)
        bw = char.measure_bandwidth("analytic")
        assert 25.0 <= bw <= 75.0

    def test_sensitivity_measurement(self, calibrated_platform_eval):
        char = GyroCharacterization(calibrated_platform_eval,
                                    CharacterizationConfig(
                                        rate_points_dps=(-200.0, 0.0, 200.0),
                                        settle_s=0.15))
        sens_mv, null_v, nonlin = char.measure_sensitivity()
        assert abs(sens_mv) == pytest.approx(5.0, rel=0.1)
        assert null_v == pytest.approx(2.5, abs=0.05)
        assert nonlin < 1.0

    def test_noise_measurement(self, calibrated_platform_eval):
        char = GyroCharacterization(calibrated_platform_eval,
                                    CharacterizationConfig(
                                        rate_points_dps=(-100.0, 0.0, 100.0),
                                        noise_duration_s=0.8))
        noise = char.measure_noise_density()
        # Table 1 range is 0.04 - 0.13 deg/s/rtHz; allow headroom for the
        # short record used in the unit test
        assert 0.02 < noise < 0.2


@pytest.fixture(scope="session")
def calibrated_platform_eval():
    from repro.platform import GyroPlatform
    platform = GyroPlatform()
    platform.calibrate(settle_s=0.2)
    return platform
