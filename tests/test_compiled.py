"""Tests for the compiled (generated-kernel) engine (``repro.engine.compiled``).

The cross-engine bit-identity suites in ``test_engine.py`` and
``test_faults.py`` already run the ``"compiled"`` engine against the
reference loop; this module locks the pieces that make that possible:

* the inline quantiser snippets emitted into generated kernels are
  bit-exact against :func:`repro.common.fixedpoint.quantize` (Hypothesis
  property over formats, rounding and overflow modes);
* packed scalar-state vectors round-trip through pack/unpack;
* the fleet entry point handles heterogeneous lanes, broadcasts scalar
  environments, validates length mismatches and stays chunk-invariant on
  fleets large enough to take the small-chunk path;
* plans with ``overflow="error"`` sites delegate to the fused engine;
* backend provenance reports whichever of numba / generated-Python is
  actually active (numba-specific assertions carry a skip marker so the
  suite is green either way).
"""

import copy
import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.common.fixedpoint import QFormat, quantize
from repro.engine import backend_info, compiled_backend, run_compiled, \
    run_compiled_fleet
from repro.engine.compiled import (
    HAVE_NUMBA,
    LANE_CHUNK,
    _compile_kernel,
    _fmt_spec,
    kernel_plan,
    quantizer_lines,
)
from repro.engine.state import pack_scalar_state, unpack_scalar_state
from repro.platform import GyroPlatform, GyroPlatformConfig
from repro.sensors import Environment

requires_numba = pytest.mark.skipif(not HAVE_NUMBA,
                                    reason="numba not installed")


def _exec_quantizer(fmt: QFormat):
    """Build a callable from the exact snippet the codegen would inline."""
    spec = _fmt_spec(fmt)
    lines = ["def q(x):"] + quantizer_lines("x", spec, 4, [0]) + \
        ["    return x"]
    namespace = {"floor": math.floor, "trunc": math.trunc}
    exec("\n".join(lines), namespace)
    return namespace["q"]


_formats = st.tuples(
    st.integers(min_value=0, max_value=12),
    st.integers(min_value=0, max_value=16),
    st.booleans(),
    st.sampled_from(("nearest", "floor", "truncate")),
    st.sampled_from(("saturate", "wrap")),
).filter(lambda t: t[0] + t[1] > 0).map(lambda t: QFormat(*t))


class TestQuantizerCodegen:
    @settings(max_examples=300, deadline=None)
    @given(fmt=_formats,
           value=st.floats(min_value=-1e5, max_value=1e5,
                           allow_nan=False, allow_infinity=False))
    def test_inline_quantizer_matches_fixedpoint(self, fmt, value):
        q = _exec_quantizer(fmt)
        expected = quantize(value, fmt)
        got = q(value)
        # Bit-exact for every non-zero result.  The one tolerated
        # deviation is the sign of zero: math.floor/math.trunc return
        # ints, so the inline form maps -0.0 to +0.0 where the numpy
        # path keeps -0.0.  The two are ``==``-equal, and generated
        # kernels never route quantised signals into sign-of-zero
        # sensitive operations, so traces stay array_equal-identical.
        assert got == expected
        if expected != 0.0:
            assert math.copysign(1.0, got) == math.copysign(1.0, expected)

    def test_none_spec_emits_nothing(self):
        assert quantizer_lines("x", None, 4, [0]) == []

    def test_temporaries_are_unique_per_site(self):
        fmt = QFormat(3, 8)
        counter = [0]
        a = "\n".join(quantizer_lines("x", _fmt_spec(fmt), 0, counter))
        b = "\n".join(quantizer_lines("y", _fmt_spec(fmt), 0, counter))
        assert "_s0" in a and "_s1" in b
        assert counter[0] == 2


class TestPlanAndBackend:
    def test_plan_is_structural(self):
        a = GyroPlatform(GyroPlatformConfig())
        b = GyroPlatform(GyroPlatformConfig())
        plan = kernel_plan(a)
        assert plan is not None
        assert plan == kernel_plan(b)

    def test_kernel_cache_reuse(self):
        plan = kernel_plan(GyroPlatform(GyroPlatformConfig()))
        assert _compile_kernel(plan) is _compile_kernel(plan)

    def test_backend_provenance(self):
        assert compiled_backend() == ("numba" if HAVE_NUMBA else "python")
        info = backend_info()
        assert info["backend"] == compiled_backend()
        assert isinstance(info["numba_available"], bool)

    @requires_numba
    def test_numba_backend_active_when_installed(self):
        assert compiled_backend() == "numba"
        assert backend_info()["numba_version"]

    def test_error_overflow_plan_delegates_to_fused(self):
        cfg = GyroPlatformConfig()
        cfg.conditioner.fixed_point = True
        com = GyroPlatform(copy.deepcopy(cfg))
        ref = GyroPlatform(copy.deepcopy(cfg))
        for platform in (com, ref):
            scaler = platform.conditioner.sense_chain.scaler
            scaler.output_format = dataclasses.replace(
                scaler.output_format, overflow="error")
        assert kernel_plan(com) is None
        env = Environment.still()
        r_com = run_compiled(com, env, 0.05)
        r_ref = ref.run(env, 0.05, engine="reference")
        np.testing.assert_array_equal(r_com.rate_output_dps,
                                      r_ref.rate_output_dps)
        np.testing.assert_array_equal(r_com.amplitude_control,
                                      r_ref.amplitude_control)


class TestPackedState:
    def test_pack_unpack_round_trip(self):
        source = GyroPlatform(GyroPlatformConfig())
        source.run(Environment.constant_rate(60.0), 0.04, engine="reference")
        packed = pack_scalar_state(source)

        target = GyroPlatform(GyroPlatformConfig())
        unpack_scalar_state(target, packed)
        np.testing.assert_array_equal(pack_scalar_state(target), packed)

    def test_chunk_size_invariance(self):
        env = Environment.constant_rate(75.0)
        a = GyroPlatform(GyroPlatformConfig())
        b = GyroPlatform(GyroPlatformConfig())
        r_a = run_compiled(a, env, 0.06)
        r_b = run_compiled(b, env, 0.06, chunk_samples=997)
        np.testing.assert_array_equal(r_a.rate_output_dps,
                                      r_b.rate_output_dps)
        np.testing.assert_array_equal(pack_scalar_state(a),
                                      pack_scalar_state(b))


class TestCompiledFleet:
    def test_heterogeneous_lanes_match_reference(self):
        open_cfg = GyroPlatformConfig()
        closed_cfg = GyroPlatformConfig()
        closed_cfg.conditioner.closed_loop = True
        fixed_cfg = GyroPlatformConfig()
        fixed_cfg.conditioner.fixed_point = True
        configs = [open_cfg, closed_cfg, fixed_cfg]
        envs = [Environment.still(),
                Environment.constant_rate(120.0),
                Environment.constant_rate(-40.0)]

        lanes = [GyroPlatform(copy.deepcopy(cfg)) for cfg in configs]
        results = run_compiled_fleet(lanes, envs, [0.05] * 3)
        for cfg, env, result in zip(configs, envs, results):
            ref = GyroPlatform(copy.deepcopy(cfg))
            r_ref = ref.run(env, 0.05, engine="reference")
            np.testing.assert_array_equal(result.rate_output_dps,
                                          r_ref.rate_output_dps)
            np.testing.assert_array_equal(result.pll_locked,
                                          r_ref.pll_locked)

    def test_scalar_environment_and_duration_broadcast(self):
        lanes = [GyroPlatform(GyroPlatformConfig()) for _ in range(3)]
        results = run_compiled_fleet(lanes, Environment.still(), 0.02)
        assert len(results) == 3
        np.testing.assert_array_equal(results[0].rate_output_dps,
                                      results[1].rate_output_dps)
        np.testing.assert_array_equal(results[0].rate_output_dps,
                                      results[2].rate_output_dps)

    def test_length_mismatch_rejected(self):
        lanes = [GyroPlatform(GyroPlatformConfig()) for _ in range(2)]
        with pytest.raises(ConfigurationError):
            run_compiled_fleet(lanes, [Environment.still()] * 3, 0.02)
        with pytest.raises(ConfigurationError):
            run_compiled_fleet(lanes, Environment.still(), [0.02] * 3)

    def test_big_fleet_chunk_path_is_bit_identical(self):
        # LANE_CHUNK+1 lanes flips the fleet runner onto the small
        # per-chunk sample count; lane 0 must still match a solo run.
        n_lanes = LANE_CHUNK + 1
        cfg = GyroPlatformConfig()
        lanes = [GyroPlatform(copy.deepcopy(cfg)) for _ in range(n_lanes)]
        results = run_compiled_fleet(lanes, Environment.still(), 0.01)
        assert len(results) == n_lanes

        solo = GyroPlatform(copy.deepcopy(cfg))
        r_solo = run_compiled(solo, Environment.still(), 0.01)
        np.testing.assert_array_equal(results[0].rate_output_dps,
                                      r_solo.rate_output_dps)
        np.testing.assert_array_equal(pack_scalar_state(lanes[0]),
                                      pack_scalar_state(solo))
