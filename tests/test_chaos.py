"""Tests for chaos-hardened execution (``repro.chaos`` + the scheduler).

The acceptance bar mirrors the engine-equivalence locks: a campaign run
under any supported infrastructure failure — worker crashes, hangs,
heartbeat loss, torn/corrupted/slow result writes, ENOSPC on manifest
writes — must complete with results *bit-identical* to an uninjected
local run, with zero quarantined shards whenever the retry budget
suffices.  These tests also pin the hardening mechanics themselves:
crashed workers reschedule immediately off missed heartbeats (no
backoff, no waiting out the shard timeout), stragglers get speculative
backups that are only credited after digest verification, retry
backoffs respect the deadline budget, and every attempt's outcome
(failure class and truncated traceback included) lands in the batch
manifest's shard history.
"""

import copy
import errno
import os
import pickle
import time

import pytest

from repro.chaos import (
    ChaosEvent,
    ChaosPlan,
    CorruptShardPayload,
    Enospc,
    HeartbeatLoss,
    InjectedCrash,
    KillMidRename,
    SlowWrite,
    TornWrite,
    WorkerCrash,
    WorkerHang,
)
from repro.chaos import runtime as chaos_runtime
from repro.common import ConfigurationError
from repro.common.retry import RetryPolicy
from repro.platform import GyroPlatform
from repro.scenarios import Campaign, CampaignManifest, settled_output_scenario
from repro.scenarios.manifest import (
    ATTEMPT_CRASH,
    ATTEMPT_HEARTBEAT_LOST,
    ATTEMPT_OK,
    ATTEMPT_SUPERSEDED,
    write_error_report,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def started_platform():
    platform = GyroPlatform()
    platform.start()
    return platform


@pytest.fixture(scope="module")
def two_lane_campaign():
    return Campaign([settled_output_scenario(0.0, settle_s=0.01),
                     settled_output_scenario(5.0, settle_s=0.01)],
                    name="chaos-two-lane")


@pytest.fixture(scope="module")
def baseline(two_lane_campaign, started_platform):
    return two_lane_campaign.run(copy.deepcopy(started_platform))


def assert_identical(expected, actual):
    assert len(expected.lanes) == len(actual.lanes)
    for lane_a, lane_b in zip(expected.lanes, actual.lanes):
        for oa, ob in zip(lane_a.outcomes, lane_b.outcomes):
            assert oa.metrics == ob.metrics
            assert oa.digest() == ob.digest()


def run_chaos(campaign, platform, plan, tmp_path=None, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("heartbeat_interval_s", 0.1)
    kwargs.setdefault("heartbeat_grace", 4.0)
    if tmp_path is not None:
        kwargs.setdefault("manifest_dir", str(tmp_path))
    return campaign.run(copy.deepcopy(platform), chaos=plan, **kwargs)


# ---------------------------------------------------------------------------
# the retry policy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_s=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline_s=-1)

    def test_delay_progression_and_cap(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_factor=2.0,
                             max_backoff_s=5.0)
        assert [policy.delay_for(n) for n in (1, 2, 3, 4)] == \
            [1.0, 2.0, 4.0, 5.0]
        assert RetryPolicy(backoff_s=0.0).delay_for(3) == 0.0
        with pytest.raises(ConfigurationError):
            policy.delay_for(0)

    def test_from_legacy_mapping(self):
        policy = RetryPolicy.from_legacy(max_retries=1, retry_backoff_s=0.25)
        assert policy.max_attempts == 2
        assert policy.backoff_s == 0.25
        with pytest.raises(ConfigurationError):
            RetryPolicy.from_legacy(max_retries=-1)

    def test_dict_round_trip(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.1, deadline_s=9.0)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_call_retries_transient_failure(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.ENOSPC, "full")
            return "done"

        policy = RetryPolicy(max_attempts=3, backoff_s=0.0)
        assert policy.call(flaky) == "done"
        assert len(calls) == 3

    def test_call_exhausts_and_reraises(self):
        def always():
            raise OSError(errno.EIO, "bad disk")

        with pytest.raises(OSError, match="bad disk"):
            RetryPolicy(max_attempts=2).call(always)

    def test_call_non_retryable_propagates_immediately(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(boom)
        assert len(calls) == 1

    def test_call_caps_sleep_by_deadline(self):
        sleeps = []
        clock = [0.0]

        def monotonic():
            return clock[0]

        def sleep(s):
            sleeps.append(s)
            clock[0] += s

        def always():
            clock[0] += 0.3
            raise OSError("transient")

        policy = RetryPolicy(max_attempts=10, backoff_s=5.0, deadline_s=1.0)
        with pytest.raises(OSError):
            policy.call(always, sleep=sleep, monotonic=monotonic)
        # each sleep was capped by the remaining budget, never 5 s
        assert sleeps and all(s <= 1.0 for s in sleeps)


# ---------------------------------------------------------------------------
# chaos models and runtime (no simulation)
# ---------------------------------------------------------------------------

class TestChaosModels:
    def test_plan_rejects_non_models(self):
        with pytest.raises(ConfigurationError, match="not a chaos model"):
            ChaosPlan([object()])

    def test_trigger_matching(self):
        model = Enospc(site="store.write", shard=2, attempt=1)
        assert model.matches(ChaosEvent("store.write", shard=2, attempt=1))
        assert not model.matches(ChaosEvent("store.write", shard=1,
                                            attempt=1))
        assert not model.matches(ChaosEvent("store.write", shard=2,
                                            attempt=2))
        assert not model.matches(ChaosEvent("store.rename", shard=2,
                                            attempt=1))

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerCrash(probability=1.5)
        with pytest.raises(ConfigurationError):
            WorkerCrash(times=0)

    def test_plan_is_picklable_and_digestible(self):
        plan = ChaosPlan([WorkerCrash(shard=0), Enospc(times=2)], seed=7)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert "seed=7" in plan.digest_token()
        assert "WorkerCrash" in plan.digest_token()

    def test_times_budget_bounds_firings(self):
        plan = ChaosPlan([Enospc(site="store.write", times=2)])
        fired = 0
        with chaos_runtime.active(plan):
            for _ in range(5):
                try:
                    chaos_runtime.fire("store.write")
                except OSError:
                    fired += 1
        assert fired == 2

    def test_fire_without_plan_is_noop(self):
        chaos_runtime.fire("store.write")     # must not raise

    def test_active_none_is_noop(self):
        with chaos_runtime.active(None):
            assert chaos_runtime.current() is None

    def test_nested_activation_innermost_wins(self):
        outer = ChaosPlan([Enospc(site="store.write")])
        inner = ChaosPlan([])                 # nothing armed
        with chaos_runtime.active(outer):
            with chaos_runtime.active(inner):
                chaos_runtime.fire("store.write")   # inner: no firing
            with pytest.raises(OSError):
                chaos_runtime.fire("store.write")   # outer again

    def test_probability_draws_are_seed_deterministic(self):
        def schedule(seed):
            plan = ChaosPlan([Enospc(site="store.write", probability=0.5)],
                             seed=seed)
            outcomes = []
            with chaos_runtime.active(plan):
                for n in range(32):
                    try:
                        chaos_runtime.fire("store.write", shard=n)
                        outcomes.append(0)
                    except OSError:
                        outcomes.append(1)
            return outcomes

        first = schedule(3)
        assert first == schedule(3)           # same seed, same schedule
        assert 0 < sum(first) < 32            # actually probabilistic
        assert first != schedule(4)           # another seed, another one

    def test_error_report_truncates_traceback(self, tmp_path):
        path = str(tmp_path / "err.json")
        try:
            raise RuntimeError("x" * 10)
        except RuntimeError as exc:
            write_error_report(path, exc)
        import json
        with open(path) as fh:
            report = json.load(fh)
        assert report["type"] == "RuntimeError"
        assert len(report["traceback"]) <= 2000


# ---------------------------------------------------------------------------
# chaos-hardened sharded execution (the acceptance matrix)
# ---------------------------------------------------------------------------

class TestChaosExecution:
    def test_worker_crash_rescheduled_bit_identical(
            self, two_lane_campaign, started_platform, baseline, tmp_path):
        started = time.monotonic()
        result = run_chaos(two_lane_campaign, started_platform,
                           ChaosPlan([WorkerCrash(shard=0)]), tmp_path,
                           shard_timeout_s=120.0)
        elapsed = time.monotonic() - started
        assert not result.failed_shards
        assert_identical(baseline, result)
        manifest = CampaignManifest.load(str(tmp_path))
        outcomes = [e["outcome"] for e in manifest.shards[0].history]
        assert outcomes == [ATTEMPT_CRASH, ATTEMPT_OK]
        # the crash was noticed and rescheduled off the dead process /
        # stale heartbeat — nowhere near the 120 s shard timeout
        assert elapsed < 60.0
        assert manifest.shards[0].attempts == 2
        assert manifest.shards[1].attempts == 1

    def test_heartbeat_loss_detected_before_shard_timeout(
            self, two_lane_campaign, started_platform, baseline, tmp_path):
        # the worker freezes (alive by is_alive(), heartbeat silenced):
        # only heartbeat staleness can unmask it before the 120 s budget
        started = time.monotonic()
        result = run_chaos(two_lane_campaign, started_platform,
                           ChaosPlan([HeartbeatLoss(shard=0, hang_s=90.0)]),
                           tmp_path, shard_timeout_s=120.0)
        elapsed = time.monotonic() - started
        assert not result.failed_shards
        assert_identical(baseline, result)
        manifest = CampaignManifest.load(str(tmp_path))
        outcomes = [e["outcome"] for e in manifest.shards[0].history]
        assert outcomes == [ATTEMPT_HEARTBEAT_LOST, ATTEMPT_OK]
        assert elapsed < 60.0
        assert manifest.shards[0].error is None   # healed on credit

    def test_torn_write_never_reads_partial_payload(
            self, two_lane_campaign, started_platform, baseline, tmp_path):
        result = run_chaos(two_lane_campaign, started_platform,
                           ChaosPlan([TornWrite(shard=1)]), tmp_path)
        assert not result.failed_shards
        assert_identical(baseline, result)

    def test_corrupt_payload_fails_verification_and_retries(
            self, two_lane_campaign, started_platform, baseline, tmp_path):
        result = run_chaos(two_lane_campaign, started_platform,
                           ChaosPlan([CorruptShardPayload(shard=0)]),
                           tmp_path)
        assert not result.failed_shards
        assert_identical(baseline, result)
        manifest = CampaignManifest.load(str(tmp_path))
        assert manifest.shards[0].history[0]["outcome"] == "verify-failed"

    def test_slow_write_is_waited_out(
            self, two_lane_campaign, started_platform, baseline, tmp_path):
        result = run_chaos(two_lane_campaign, started_platform,
                           ChaosPlan([SlowWrite(shard=0, delay_s=1.0)]),
                           tmp_path)
        assert not result.failed_shards
        assert_identical(baseline, result)
        manifest = CampaignManifest.load(str(tmp_path))
        # slow, not dead: one attempt sufficed
        assert manifest.shards[0].attempts == 1

    def test_manifest_enospc_rides_retry_policy(
            self, two_lane_campaign, started_platform, baseline, tmp_path):
        result = run_chaos(two_lane_campaign, started_platform,
                           ChaosPlan([Enospc(site="manifest.write",
                                             times=2)]), tmp_path)
        assert not result.failed_shards
        assert_identical(baseline, result)

    def test_straggler_gets_verified_speculative_backup(
            self, started_platform, tmp_path):
        camp = Campaign([settled_output_scenario(0.0, settle_s=0.01),
                         settled_output_scenario(2.0, settle_s=0.01),
                         settled_output_scenario(5.0, settle_s=0.01)],
                        name="chaos-straggler")
        expected = camp.run(copy.deepcopy(started_platform))
        started = time.monotonic()
        result = run_chaos(camp, started_platform,
                           ChaosPlan([WorkerHang(shard=2, hang_s=90.0)]),
                           tmp_path, shard_size=1, speculation_factor=3.0)
        elapsed = time.monotonic() - started
        assert not result.failed_shards
        assert_identical(expected, result)
        manifest = CampaignManifest.load(str(tmp_path))
        history = manifest.shards[2].history
        # the hung primary was superseded by the speculative backup,
        # which was credited only after digest verification
        assert [(e["speculative"], e["outcome"]) for e in history] == \
            [(False, ATTEMPT_SUPERSEDED), (True, ATTEMPT_OK)]
        assert elapsed < 60.0

    def test_persistent_crash_quarantines_with_history(
            self, two_lane_campaign, started_platform, baseline, tmp_path):
        # crash on every attempt: the shard exhausts its budget and is
        # quarantined with a full per-attempt history — then a chaos-free
        # resume heals it bit-identically
        started = time.monotonic()
        result = run_chaos(
            two_lane_campaign, started_platform,
            ChaosPlan([WorkerCrash(shard=1, attempt=None)]), tmp_path,
            retry=RetryPolicy(max_attempts=3, backoff_s=30.0))
        elapsed = time.monotonic() - started
        assert not result.complete
        assert len(result.failed_shards) == 1
        report = result.failed_shards[0]
        assert report["shard_id"] == 1
        assert report["attempts"] == 3
        assert [e["outcome"] for e in report["history"]] == \
            [ATTEMPT_CRASH] * 3
        assert result.lanes[1] is None
        # known-dead reschedules skip the 30 s backoff entirely
        assert elapsed < 30.0

        resumed = two_lane_campaign.run(copy.deepcopy(started_platform),
                                        workers=2,
                                        manifest_dir=str(tmp_path))
        assert resumed.complete
        assert_identical(baseline, resumed)

    def test_failure_reason_recorded_in_history(
            self, two_lane_campaign, started_platform, tmp_path):
        result = two_lane_campaign.run(
            copy.deepcopy(started_platform), workers=2,
            manifest_dir=str(tmp_path), max_retries=0,
            fault_hook=_FailShard(0))
        assert len(result.failed_shards) == 1
        entry = result.failed_shards[0]["history"][0]
        assert entry["outcome"] == "error"
        assert entry["error"]["type"] == "RuntimeError"
        assert "injected shard fault" in entry["error"]["message"]
        assert "RuntimeError" in entry["error"]["traceback"]
        manifest = CampaignManifest.load(str(tmp_path))
        assert manifest.shards[0].history[0]["error"]["type"] == \
            "RuntimeError"

    def test_deadline_budget_quarantines_instead_of_sleeping(
            self, two_lane_campaign, started_platform, tmp_path):
        started = time.monotonic()
        result = two_lane_campaign.run(
            copy.deepcopy(started_platform), workers=2,
            manifest_dir=str(tmp_path), fault_hook=_FailShard(0),
            retry=RetryPolicy(max_attempts=10, backoff_s=60.0,
                              deadline_s=2.0))
        elapsed = time.monotonic() - started
        assert len(result.failed_shards) == 1
        assert "deadline budget" in result.failed_shards[0]["error"]
        # never slept out the 60 s backoff: the deadline capped it
        assert elapsed < 30.0

    def test_chaos_plan_must_be_picklable(self, two_lane_campaign,
                                          started_platform):
        with pytest.raises(ConfigurationError, match="picklable"):
            two_lane_campaign.run(copy.deepcopy(started_platform),
                                  workers=2, chaos=lambda: None)

    def test_retry_policy_and_legacy_scalars_are_exclusive(
            self, two_lane_campaign, started_platform):
        with pytest.raises(ConfigurationError, match="not both"):
            two_lane_campaign.run(copy.deepcopy(started_platform),
                                  workers=2, retry=RetryPolicy(),
                                  max_retries=1)

    def test_heartbeat_files_published(self, two_lane_campaign,
                                       started_platform, tmp_path):
        run_chaos(two_lane_campaign, started_platform, None, tmp_path)
        heartbeat_dir = os.path.join(str(tmp_path), "heartbeats")
        beats = os.listdir(heartbeat_dir)
        assert len(beats) == 2
        import json
        with open(os.path.join(heartbeat_dir, sorted(beats)[0])) as fh:
            beat = json.load(fh)
        assert beat["shard_id"] == 0
        assert beat["sequence"] >= 1
        assert beat["pid"] != os.getpid()


class _FailShard:
    """Picklable fault hook failing one shard on every attempt."""

    def __init__(self, shard_id):
        self.shard_id = shard_id

    def __call__(self, shard_id, attempt):
        if shard_id == self.shard_id:
            raise RuntimeError(
                f"injected shard fault (shard {shard_id}, "
                f"attempt {attempt})")


# ---------------------------------------------------------------------------
# kill-and-resume under chaos (self-healing bit-identity)
# ---------------------------------------------------------------------------

class TestChaosResume:
    def test_salvaged_attempt_file_credits_without_resimulation(
            self, two_lane_campaign, started_platform, baseline, tmp_path):
        # simulate a run killed between a worker's publish and the
        # parent's promotion: the attempt file survives; the resume scan
        # must credit it rather than re-simulate
        first = run_chaos(two_lane_campaign, started_platform, None,
                          tmp_path)
        assert first.complete
        manifest = CampaignManifest.load(str(tmp_path))
        shard = manifest.shards[0]
        os.replace(manifest.shard_result_path(0),
                   manifest.attempt_result_path(0, 1))
        shard.status = "pending"
        shard.error = None
        manifest.write()

        resumed = two_lane_campaign.run(copy.deepcopy(started_platform),
                                        workers=2,
                                        manifest_dir=str(tmp_path))
        assert resumed.complete
        assert_identical(baseline, resumed)
        healed = CampaignManifest.load(str(tmp_path))
        # salvage credited the surviving attempt file: no new attempt ran
        assert healed.shards[0].attempts == shard.attempts
        assert os.path.exists(healed.shard_result_path(0))
