"""Unit and property tests for repro.common.fixedpoint."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies.settings import DETERMINISM_SETTINGS, STANDARD_SETTINGS

from repro.common import (
    ConfigurationError,
    FixedPointOverflowError,
    FixedPointValue,
    QFormat,
    format_for_bits,
    quantization_noise_power,
    quantize,
)


class TestQFormat:
    def test_word_length_signed(self):
        fmt = QFormat(int_bits=1, frac_bits=14, signed=True)
        assert fmt.word_length == 16

    def test_word_length_unsigned(self):
        fmt = QFormat(int_bits=4, frac_bits=4, signed=False)
        assert fmt.word_length == 8

    def test_lsb(self):
        fmt = QFormat(int_bits=0, frac_bits=3)
        assert fmt.lsb == pytest.approx(0.125)

    def test_max_min_signed(self):
        fmt = QFormat(int_bits=1, frac_bits=2)
        assert fmt.max_value == pytest.approx(2.0 - 0.25)
        assert fmt.min_value == pytest.approx(-2.0)

    def test_min_unsigned_is_zero(self):
        fmt = QFormat(int_bits=2, frac_bits=2, signed=False)
        assert fmt.min_value == 0.0

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            QFormat(int_bits=-1, frac_bits=4)

    def test_zero_magnitude_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            QFormat(int_bits=0, frac_bits=0)

    def test_invalid_rounding_rejected(self):
        with pytest.raises(ConfigurationError):
            QFormat(int_bits=1, frac_bits=4, rounding="banker")

    def test_invalid_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            QFormat(int_bits=1, frac_bits=4, overflow="explode")

    def test_describe_mentions_bits(self):
        fmt = QFormat(int_bits=2, frac_bits=13)
        assert "sQ2.13" in fmt.describe()
        assert "16" in fmt.describe()

    def test_from_word_length(self):
        fmt = QFormat.from_word_length(16, frac_bits=14)
        assert fmt.int_bits == 1
        assert fmt.word_length == 16

    def test_from_word_length_too_small(self):
        with pytest.raises(ConfigurationError):
            QFormat.from_word_length(4, frac_bits=10)

    def test_raw_round_trip(self):
        fmt = QFormat(int_bits=1, frac_bits=8)
        raw = fmt.to_raw(0.5)
        assert raw == 128
        assert fmt.from_raw(raw) == pytest.approx(0.5)

    def test_raw_round_trip_array(self):
        fmt = QFormat(int_bits=1, frac_bits=8)
        values = np.array([0.25, -0.5, 1.0])
        raw = fmt.to_raw(values)
        back = fmt.from_raw(raw)
        assert np.allclose(back, values)


class TestQuantize:
    def test_exact_representable_value_unchanged(self):
        fmt = QFormat(int_bits=1, frac_bits=4)
        assert quantize(0.5, fmt) == 0.5

    def test_rounding_nearest(self):
        fmt = QFormat(int_bits=1, frac_bits=2)  # lsb = 0.25
        assert quantize(0.3, fmt) == pytest.approx(0.25)
        assert quantize(0.4, fmt) == pytest.approx(0.5)

    def test_rounding_floor(self):
        fmt = QFormat(int_bits=1, frac_bits=2, rounding="floor")
        assert quantize(0.49, fmt) == pytest.approx(0.25)
        assert quantize(-0.01, fmt) == pytest.approx(-0.25)

    def test_rounding_truncate_toward_zero(self):
        fmt = QFormat(int_bits=1, frac_bits=2, rounding="truncate")
        assert quantize(-0.49, fmt) == pytest.approx(-0.25)
        assert quantize(0.49, fmt) == pytest.approx(0.25)

    def test_saturation_positive(self):
        fmt = QFormat(int_bits=1, frac_bits=3)
        assert quantize(10.0, fmt) == pytest.approx(fmt.max_value)

    def test_saturation_negative(self):
        fmt = QFormat(int_bits=1, frac_bits=3)
        assert quantize(-10.0, fmt) == pytest.approx(fmt.min_value)

    def test_overflow_error_mode(self):
        fmt = QFormat(int_bits=1, frac_bits=3, overflow="error")
        with pytest.raises(FixedPointOverflowError):
            quantize(5.0, fmt)

    def test_wrap_mode_wraps(self):
        fmt = QFormat(int_bits=1, frac_bits=3, overflow="wrap")
        # max + lsb wraps to min
        wrapped = quantize(fmt.max_value + fmt.lsb, fmt)
        assert wrapped == pytest.approx(fmt.min_value)

    def test_array_in_array_out(self):
        fmt = QFormat(int_bits=1, frac_bits=8)
        arr = np.linspace(-1, 1, 11)
        out = quantize(arr, fmt)
        assert isinstance(out, np.ndarray)
        assert out.shape == arr.shape

    def test_scalar_in_scalar_out(self):
        fmt = QFormat(int_bits=1, frac_bits=8)
        out = quantize(0.1, fmt)
        assert isinstance(out, float)

    def test_quantization_noise_power(self):
        fmt = QFormat(int_bits=0, frac_bits=11)
        assert quantization_noise_power(fmt) == pytest.approx(fmt.lsb ** 2 / 12.0)

    @given(st.floats(min_value=-1.9, max_value=1.9),
           st.integers(min_value=2, max_value=20))
    @settings(max_examples=200, deadline=None)
    def test_quantization_error_bounded_by_half_lsb(self, value, frac_bits):
        # int_bits=2 keeps every generated value inside the representable
        # range, so the error bound is pure rounding (no saturation).
        fmt = QFormat(int_bits=2, frac_bits=frac_bits)
        q = quantize(value, fmt)
        assert abs(q - value) <= fmt.lsb / 2 + 1e-12

    @given(st.floats(min_value=-100, max_value=100),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=200, deadline=None)
    def test_quantize_is_idempotent(self, value, frac_bits):
        fmt = QFormat(int_bits=4, frac_bits=frac_bits)
        once = quantize(value, fmt)
        twice = quantize(once, fmt)
        assert once == twice

    @given(st.floats(min_value=-1000, max_value=1000))
    @settings(max_examples=100, deadline=None)
    def test_saturated_value_always_in_range(self, value):
        fmt = QFormat(int_bits=2, frac_bits=10)
        q = quantize(value, fmt)
        assert fmt.min_value <= q <= fmt.max_value

    @given(st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_quantize_monotone(self, values):
        fmt = QFormat(int_bits=1, frac_bits=10)
        ordered = np.sort(np.asarray(values))
        q = quantize(ordered, fmt)
        assert np.all(np.diff(q) >= -1e-15)


class TestFixedPointProperties:
    """Property tests for the fixed-point corner cases: wrap overflow,
    raw-code round-trips and idempotence across rounding modes."""

    @DETERMINISM_SETTINGS
    @given(st.floats(min_value=-64.0, max_value=64.0),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=1, max_value=12),
           st.sampled_from(("nearest", "floor", "truncate")))
    def test_wrap_always_lands_in_range(self, value, int_bits, frac_bits,
                                        rounding):
        fmt = QFormat(int_bits=int_bits, frac_bits=frac_bits,
                      rounding=rounding, overflow="wrap")
        q = quantize(value, fmt)
        assert fmt.min_value <= q <= fmt.max_value

    @DETERMINISM_SETTINGS
    @given(st.floats(min_value=-64.0, max_value=64.0),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=1, max_value=12))
    def test_wrap_is_congruent_modulo_word(self, value, int_bits, frac_bits):
        # two's-complement wrap: the wrapped code differs from the
        # unwrapped rounded code by an exact multiple of 2**word_length
        fmt = QFormat(int_bits=int_bits, frac_bits=frac_bits, overflow="wrap")
        q = quantize(value, fmt)
        unwrapped_code = math.floor(value / fmt.lsb + 0.5)
        wrapped_code = round(q / fmt.lsb)
        span = 2 ** fmt.word_length
        assert (unwrapped_code - wrapped_code) % span == 0

    def test_wrap_exact_overflow_boundaries(self):
        fmt = QFormat(int_bits=1, frac_bits=3, overflow="wrap")
        # one LSB above max wraps to min; one LSB below min wraps to max
        assert quantize(fmt.max_value + fmt.lsb, fmt) == fmt.min_value
        assert quantize(fmt.min_value - fmt.lsb, fmt) == fmt.max_value
        # a full span away maps back onto itself
        span = fmt.range_span + fmt.lsb
        assert quantize(0.25 + span, fmt) == 0.25

    @DETERMINISM_SETTINGS
    @given(st.floats(min_value=-1e4, max_value=1e4),
           st.integers(min_value=0, max_value=4),
           st.integers(min_value=1, max_value=20),
           st.booleans())
    def test_to_raw_from_raw_round_trip(self, value, int_bits, frac_bits,
                                        signed):
        if int_bits + frac_bits == 0:
            return
        fmt = QFormat(int_bits=int_bits, frac_bits=frac_bits, signed=signed)
        raw = fmt.to_raw(value)
        assert isinstance(raw, int)
        # the raw code is exactly the quantised value in LSB units
        assert fmt.from_raw(raw) == quantize(value, fmt)
        # re-encoding a decoded value is the identity on raw codes
        assert fmt.to_raw(fmt.from_raw(raw)) == raw

    @DETERMINISM_SETTINGS
    @given(st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1))
    def test_from_raw_covers_every_code(self, code):
        fmt = QFormat(int_bits=1, frac_bits=14)
        value = fmt.from_raw(code)
        assert fmt.min_value <= value <= fmt.max_value
        assert fmt.to_raw(value) == code

    @STANDARD_SETTINGS
    @given(st.lists(st.floats(min_value=-10.0, max_value=10.0),
                    min_size=1, max_size=32))
    def test_to_raw_array_matches_scalar(self, values):
        fmt = QFormat(int_bits=2, frac_bits=9)
        arr = np.asarray(values)
        raw = fmt.to_raw(arr)
        assert raw.dtype == np.int64
        assert list(raw) == [fmt.to_raw(float(v)) for v in values]
        np.testing.assert_array_equal(fmt.from_raw(raw), quantize(arr, fmt))

    @DETERMINISM_SETTINGS
    @given(st.floats(min_value=-100.0, max_value=100.0),
           st.sampled_from(("nearest", "floor", "truncate")),
           st.sampled_from(("saturate", "wrap")))
    def test_idempotent_across_modes(self, value, rounding, overflow):
        fmt = QFormat(int_bits=2, frac_bits=8, rounding=rounding,
                      overflow=overflow)
        once = quantize(value, fmt)
        assert quantize(once, fmt) == once


class TestFixedPointValue:
    def test_construction_quantizes(self):
        fmt = QFormat(int_bits=1, frac_bits=2)
        fp = FixedPointValue(0.3, fmt)
        assert fp.value == pytest.approx(0.25)

    def test_addition_stays_in_format(self):
        fmt = QFormat(int_bits=1, frac_bits=4)
        a = FixedPointValue(0.5, fmt)
        b = FixedPointValue(0.25, fmt)
        assert (a + b).value == pytest.approx(0.75)

    def test_addition_saturates(self):
        fmt = QFormat(int_bits=1, frac_bits=4)
        a = FixedPointValue(1.5, fmt)
        b = FixedPointValue(1.5, fmt)
        assert (a + b).value == pytest.approx(fmt.max_value)

    def test_multiplication(self):
        fmt = QFormat(int_bits=1, frac_bits=8)
        a = FixedPointValue(0.5, fmt)
        assert (a * 0.5).value == pytest.approx(0.25)

    def test_subtraction_and_negation(self):
        fmt = QFormat(int_bits=1, frac_bits=8)
        a = FixedPointValue(0.75, fmt)
        b = FixedPointValue(0.25, fmt)
        assert (a - b).value == pytest.approx(0.5)
        assert (-a).value == pytest.approx(-0.75)

    def test_reflected_ops(self):
        fmt = QFormat(int_bits=1, frac_bits=8)
        a = FixedPointValue(0.25, fmt)
        assert (1.0 - a).value == pytest.approx(0.75)
        assert (2 * a).value == pytest.approx(0.5)
        assert (0.5 + a).value == pytest.approx(0.75)

    def test_float_conversion(self):
        fmt = QFormat(int_bits=1, frac_bits=8)
        assert float(FixedPointValue(0.5, fmt)) == 0.5

    def test_equality(self):
        fmt = QFormat(int_bits=1, frac_bits=8)
        assert FixedPointValue(0.5, fmt) == FixedPointValue(0.5, fmt)
        assert FixedPointValue(0.5, fmt) == 0.5
        assert FixedPointValue(0.5, fmt) != 0.25

    def test_raw_code(self):
        fmt = QFormat(int_bits=1, frac_bits=8)
        assert FixedPointValue(0.5, fmt).raw == 128


class TestFormatForBits:
    def test_unit_full_scale(self):
        fmt = format_for_bits(16, full_scale=1.0)
        assert fmt.word_length == 16
        assert fmt.max_value >= 0.99

    def test_larger_full_scale(self):
        fmt = format_for_bits(16, full_scale=4.0)
        assert fmt.max_value >= 3.9

    def test_rejects_impossible(self):
        with pytest.raises(ConfigurationError):
            format_for_bits(2, full_scale=1024.0)

    def test_rejects_nonpositive_full_scale(self):
        with pytest.raises(ConfigurationError):
            format_for_bits(8, full_scale=0.0)
