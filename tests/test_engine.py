"""Tests for the fast co-simulation engines (``repro.engine``).

The fused scalar kernel, the compiled (generated, optionally numba-JIT)
kernel and the batched fleet engine all promise *bit-identical* traces
and final platform state relative to the object-oriented reference
loop.  These tests hold them to it on short runs covering lock-in,
temperature ramps, fixed-point (prototype) mode, closed-loop rebalance
and waveform recording, and check the supporting vectorised helpers
(``Environment.sample``, ``BufferedGaussianNoise.take``) against their
scalar counterparts.
"""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.common.noise import BufferedGaussianNoise
from repro.engine import FleetSimulator, run_fused
from repro.platform import GyroPlatform, GyroPlatformConfig
from repro.sensors import Environment
from repro.sensors.environment import (
    ConstantProfile,
    PiecewiseProfile,
    RampProfile,
    SineProfile,
    StepProfile,
)

TRACE_FIELDS = (
    "time_s", "true_rate_dps", "temperature_c", "rate_output_dps",
    "rate_output_v", "amplitude_control", "amplitude_error", "phase_error",
    "vco_control", "pll_locked", "running",
)


def _assert_results_identical(a, b, waveforms=False):
    for name in TRACE_FIELDS:
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name),
                                      err_msg=name)
    if waveforms:
        np.testing.assert_array_equal(a.primary_pickoff_norm,
                                      b.primary_pickoff_norm)
        np.testing.assert_array_equal(a.drive_word, b.drive_word)
    assert a.turn_on_time_s == b.turn_on_time_s
    assert a.sample_rate_hz == b.sample_rate_hz


def _assert_platform_state_identical(a, b):
    assert a.now == b.now
    assert a._drive_v == b._drive_v
    assert a._control_v == b._control_v
    pa, pb = a.conditioner.drive_loop.pll, b.conditioner.drive_loop.pll
    assert pa.frequency_hz == pb.frequency_hz
    assert pa.amplitude_estimate == pb.amplitude_estimate
    assert pa.locked == pb.locked
    sa, sb = a.conditioner.sense_chain, b.conditioner.sense_chain
    assert sa.rate_channel == sb.rate_channel
    assert sa.rate_dps == sb.rate_dps
    assert a.conditioner.running == b.conditioner.running
    assert (a.sensor.primary._displacement == b.sensor.primary._displacement)
    assert (a.sensor.secondary._velocity == b.sensor.secondary._velocity)


def _pair(config=None):
    cfg = config or GyroPlatformConfig()
    import copy
    return (GyroPlatform(copy.deepcopy(cfg)), GyroPlatform(copy.deepcopy(cfg)))


@pytest.mark.parametrize("engine", ["fused", "compiled"])
class TestScalarEngineEquivalence:
    """Every scalar fast engine must match the reference loop bit for bit
    (the ``compiled`` rows run on whichever backend is active — numba
    when installed, the generated-Python fallback otherwise)."""

    def test_lockin_traces_bit_identical(self, engine):
        ref, fast = _pair()
        env = Environment.still()
        r_ref = ref.run(env, 0.1, engine="reference")
        r_fast = fast.run(env, 0.1, engine=engine)
        _assert_results_identical(r_ref, r_fast)
        _assert_platform_state_identical(ref, fast)

    def test_rate_and_temperature_ramp(self, engine):
        # exercises the sensor temperature-retune plan and the
        # temperature-compensation paths
        env = Environment(
            rate_dps=RampProfile(start=-100.0, stop=100.0, t0=0.0, t1=0.06),
            temperature_c=RampProfile(start=25.0, stop=65.0, t0=0.0, t1=0.06))
        ref, fast = _pair()
        r_ref = ref.run(env, 0.08, engine="reference")
        r_fast = fast.run(env, 0.08, engine=engine)
        _assert_results_identical(r_ref, r_fast)
        _assert_platform_state_identical(ref, fast)

    def test_fixed_point_mode(self, engine):
        cfg = GyroPlatformConfig()
        cfg.conditioner.fixed_point = True
        ref, fast = _pair(cfg)
        env = Environment.constant_rate(50.0)
        r_ref = ref.run(env, 0.06, engine="reference")
        r_fast = fast.run(env, 0.06, engine=engine)
        _assert_results_identical(r_ref, r_fast)

    def test_closed_loop_mode(self, engine):
        cfg = GyroPlatformConfig()
        cfg.conditioner.closed_loop = True
        ref, fast = _pair(cfg)
        env = Environment.constant_rate(80.0)
        r_ref = ref.run(env, 0.06, engine="reference")
        r_fast = fast.run(env, 0.06, engine=engine)
        _assert_results_identical(r_ref, r_fast)
        _assert_platform_state_identical(ref, fast)

    def test_waveform_recording(self, engine):
        ref, fast = _pair()
        env = Environment.still()
        r_ref = ref.run(env, 0.04, engine="reference", record_waveforms=True)
        r_fast = fast.run(env, 0.04, engine=engine, record_waveforms=True)
        _assert_results_identical(r_ref, r_fast, waveforms=True)

    def test_engines_interleave_on_one_platform(self, engine):
        # a fast-engine segment must leave the platform exactly where a
        # reference segment would, so segments can be mixed freely
        ref, mixed = _pair()
        env = Environment.rate_step(120.0, step_time=0.03)
        a = ref.run(env, 0.03, engine="reference")
        b = ref.run(env, 0.03, engine="reference")
        c = mixed.run(env, 0.03, engine=engine)
        d = mixed.run(env, 0.03, engine="reference")
        _assert_results_identical(a, c)
        _assert_results_identical(b, d)
        _assert_platform_state_identical(ref, mixed)


class TestFusedEquivalence:
    def test_run_fused_entrypoint_matches_run(self):
        ref, fus = _pair()
        env = Environment.still()
        r1 = ref.run(env, 0.02, engine="fused")
        r2 = run_fused(fus, env, 0.02)
        _assert_results_identical(r1, r2)

    def test_bad_engine_rejected(self):
        platform = GyroPlatform()
        with pytest.raises(ConfigurationError):
            platform.run(Environment.still(), 0.01, engine="warp")
        with pytest.raises(ConfigurationError):
            GyroPlatformConfig(engine="warp")

    def test_bad_engine_rejected_before_reset(self):
        # a typo'd engine name must not wipe the platform state even with
        # reset=True: validation happens before the power cycle
        platform = GyroPlatform()
        platform.run(Environment.still(), 0.02)
        with pytest.raises(ConfigurationError):
            platform.run(Environment.still(), 0.01, reset=True, engine="fuse")
        assert platform.now == pytest.approx(0.02)

    def test_run_batch_waveforms_passthrough(self):
        platform = GyroPlatform()
        results = platform.run_batch([Environment.still()], 0.02,
                                     record_waveforms=True)
        assert results[0].primary_pickoff_norm is not None
        assert results[0].drive_word is not None


class TestLockingScenarioAcceptance:
    """The ISSUE acceptance run: fused/compiled/batched match the
    reference on lock time, amplitude and rate output for the Fig. 5
    locking case."""

    def test_all_engines_agree_on_locking_run(self):
        env = Environment.still()
        import copy
        cfg = GyroPlatformConfig()
        ref = GyroPlatform(copy.deepcopy(cfg))
        fus = GyroPlatform(copy.deepcopy(cfg))
        com = GyroPlatform(copy.deepcopy(cfg))
        r_ref = ref.run(env, 0.4, engine="reference", reset=True)
        r_fus = fus.run(env, 0.4, engine="fused", reset=True)
        r_com = com.run(env, 0.4, engine="compiled", reset=True)
        fleet = FleetSimulator.from_config(cfg, 2)
        r_bat = fleet.run(env, 0.4, reset=True)[0]

        assert r_ref.pll_locked[-1]
        for other in (r_fus, r_com, r_bat):
            assert abs(other.lock_time_s() - r_ref.lock_time_s()) <= 1e-9
            assert np.max(np.abs(other.amplitude_control
                                 - r_ref.amplitude_control)) <= 1e-9
            assert np.max(np.abs(other.rate_output_dps
                                 - r_ref.rate_output_dps)) <= 1e-9


class TestBatchEquivalence:
    def test_heterogeneous_lanes_match_reference(self):
        cfg = GyroPlatformConfig()
        envs = [Environment.still(),
                Environment.constant_rate(150.0),
                Environment(rate_dps=SineProfile(amplitude=80.0,
                                                 frequency_hz=30.0),
                            temperature_c=ConstantProfile(40.0))]
        fleet = FleetSimulator.from_config(cfg, len(envs))
        batch = fleet.run(envs, 0.06)
        for env, lane_result, lane_platform in zip(envs, batch,
                                                   fleet.platforms):
            import copy
            ref = GyroPlatform(copy.deepcopy(cfg))
            r_ref = ref.run(env, 0.06, engine="reference")
            _assert_results_identical(r_ref, lane_result)
            _assert_platform_state_identical(ref, lane_platform)

    def test_single_environment_broadcasts(self):
        fleet = FleetSimulator.from_config(GyroPlatformConfig(), 3)
        results = fleet.run(Environment.still(), 0.02)
        assert len(results) == 3
        _assert_results_identical(results[0], results[1])
        _assert_results_identical(results[0], results[2])

    def test_run_batch_platform_method(self):
        platform = GyroPlatform()
        envs = [Environment.constant_rate(r) for r in (-50.0, 0.0, 50.0)]
        results = platform.run_batch(envs, 0.02)
        assert len(results) == len(envs)
        import copy
        ref = GyroPlatform(copy.deepcopy(platform.config))
        r_ref = ref.run(envs[1], 0.02, engine="reference", reset=True)
        _assert_results_identical(r_ref, results[1])

    @pytest.mark.parametrize("mode", ["fixed_point", "closed_loop"])
    def test_batch_matches_reference_in_special_modes(self, mode):
        # the quantised and rebalance branches are reimplemented in the
        # batch engine; hold them to the reference like the default path
        import copy
        cfg = GyroPlatformConfig()
        setattr(cfg.conditioner, mode, True)
        env = Environment.constant_rate(60.0)
        fleet = FleetSimulator.from_config(cfg, 2)
        batch = fleet.run(env, 0.05)
        ref = GyroPlatform(copy.deepcopy(cfg))
        r_ref = ref.run(env, 0.05, engine="reference")
        _assert_results_identical(r_ref, batch[0])
        _assert_platform_state_identical(ref, fleet.platforms[0])

    def test_run_batch_continues_from_platform_state(self):
        # regression: run_batch must carry the platform's calibration and
        # runtime state into the lanes, not restart from the bare config
        import copy
        warm = GyroPlatform()
        warm.run(Environment.still(), 0.04)  # advance filters, PLL, startup
        warm.conditioner.sense_chain.calibrate_scale(3.0e-5)
        dedicated = copy.deepcopy(warm)
        env = Environment.constant_rate(75.0)
        batch = warm.run_batch([env, Environment.still()], 0.03)
        r_ref = dedicated.run(env, 0.03, engine="reference")
        _assert_results_identical(r_ref, batch[0])
        # the source platform itself is not advanced by run_batch
        assert warm.now == pytest.approx(0.04)

    def test_environment_count_mismatch_rejected(self):
        fleet = FleetSimulator.from_config(GyroPlatformConfig(), 2)
        with pytest.raises(ConfigurationError):
            fleet.run([Environment.still()], 0.01)

    def test_waveform_recording(self):
        cfg = GyroPlatformConfig()
        fleet = FleetSimulator.from_config(cfg, 2)
        results = fleet.run(Environment.still(), 0.02, record_waveforms=True)
        import copy
        ref = GyroPlatform(copy.deepcopy(cfg))
        r_ref = ref.run(Environment.still(), 0.02, engine="reference",
                        record_waveforms=True)
        _assert_results_identical(r_ref, results[0], waveforms=True)

    def test_incompatible_structures_rejected(self):
        import copy
        a = GyroPlatform(GyroPlatformConfig())
        b = GyroPlatform(GyroPlatformConfig(sample_rate_hz=240_000.0))
        with pytest.raises(ConfigurationError):
            FleetSimulator([a, b])
        cfg_c = copy.deepcopy(a.config)
        cfg_c.conditioner.closed_loop = True
        c = GyroPlatform(cfg_c)
        with pytest.raises(ConfigurationError):
            FleetSimulator([a, c])
        with pytest.raises(ConfigurationError):
            FleetSimulator([])

    def test_monte_carlo_fleet_lanes_differ(self):
        rng = np.random.default_rng(7)
        fleet = FleetSimulator.with_part_variation(GyroPlatformConfig(), 3,
                                                   rng=rng)
        gains = {p.sensor.params.pickoff_gain_v_per_m
                 for p in fleet.platforms}
        assert len(gains) == 3
        results = fleet.run(Environment.still(), 0.02)
        assert len(results) == 3
        # different devices, different traces
        assert not np.array_equal(results[0].amplitude_control,
                                  results[1].amplitude_control)


class TestVectorisedHelpers:
    def test_environment_sample_matches_value(self):
        profiles = [
            ConstantProfile(3.5),
            StepProfile(before=0.0, after=20.0, step_time=0.4),
            RampProfile(start=-5.0, stop=5.0, t0=0.1, t1=0.7),
            SineProfile(amplitude=10.0, frequency_hz=3.0, offset=1.0),
            PiecewiseProfile(breakpoints=((0.0, 1.0), (0.3, -2.0),
                                          (0.6, 4.0))),
        ]
        t = np.linspace(-0.1, 1.1, 257)
        for profile in profiles:
            sampled = profile.sample(t)
            scalar = np.array([profile.value(float(ti)) for ti in t])
            np.testing.assert_array_equal(sampled, scalar, err_msg=repr(profile))

    def test_environment_sample_tuple(self):
        env = Environment(rate_dps=RampProfile(start=0.0, stop=90.0,
                                               t0=0.0, t1=1.0),
                          temperature_c=ConstantProfile(30.0))
        t = np.linspace(0.0, 1.0, 11)
        rate, temp = env.sample(t)
        np.testing.assert_array_equal(
            rate, [env.rate_dps.value(float(ti)) for ti in t])
        np.testing.assert_array_equal(temp, np.full(11, 30.0))

    def test_noise_take_matches_next(self):
        a = BufferedGaussianNoise(sigma=0.3, seed=99, block_size=64)
        b = BufferedGaussianNoise(sigma=0.3, seed=99, block_size=64)
        scalar = np.array([a.next() for _ in range(200)])
        np.testing.assert_array_equal(b.take(200), scalar)

    def test_noise_take_interleaves_with_next(self):
        a = BufferedGaussianNoise(sigma=1.0, seed=5, block_size=32)
        b = BufferedGaussianNoise(sigma=1.0, seed=5, block_size=32)
        scalar = np.array([a.next() for _ in range(100)])
        mixed = np.concatenate([
            b.take(10),
            [b.next() for _ in range(7)],
            b.take(83),
        ])
        np.testing.assert_array_equal(mixed, scalar)

    def test_noise_take_zero_sigma_and_empty(self):
        g = BufferedGaussianNoise(sigma=0.0, seed=1)
        np.testing.assert_array_equal(g.take(5), np.zeros(5))
        g2 = BufferedGaussianNoise(sigma=1.0, seed=1)
        assert g2.take(0).size == 0
        with pytest.raises(ConfigurationError):
            g2.take(-1)
