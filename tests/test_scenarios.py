"""Tests for the scenario / campaign subsystem (``repro.scenarios``).

The campaign runner promises that a scenario program replayed through
any engine — reference loop, fused kernel or batched fleet lanes — from
the same platform state produces bit-identical traces, metrics and
final state, early-stop chunking included.  These tests hold it to
that, lock the batched-vs-sequential calibration equivalence the
refactor depends on, and cover the engine registry and the fleet-reuse
path of ``run_batch``.
"""

import copy

import numpy as np
import pytest

from repro.common import ConfigurationError, SimulationError
from repro.platform import GyroPlatform, GyroPlatformConfig
from repro.platform.result import concatenate_results
from repro.scenarios import (
    Campaign,
    Scenario,
    engine_names,
    get_engine,
    noise_floor_scenario,
    rate_table_scenarios,
    settled_output_scenario,
    tail_mean,
    validate_engine,
)
from repro.sensors import Environment
from repro.sensors.environment import (
    ConstantProfile,
    RampProfile,
    SineProfile,
    TimeShiftedProfile,
)

TRACE_FIELDS = (
    "time_s", "true_rate_dps", "temperature_c", "rate_output_dps",
    "rate_output_v", "amplitude_control", "phase_error", "pll_locked",
    "running",
)


def _assert_outcomes_identical(a, b):
    assert a.name == b.name
    assert a.stopped_early == b.stopped_early
    assert a.elapsed_s == b.elapsed_s
    for field in TRACE_FIELDS:
        np.testing.assert_array_equal(getattr(a.result, field),
                                      getattr(b.result, field),
                                      err_msg=f"{a.name}:{field}")
    assert a.metrics == b.metrics


class TestEngineRegistry:
    def test_registry_names(self):
        assert set(engine_names()) == {"reference", "fused", "batched",
                                       "compiled"}
        assert set(engine_names(scalar_only=True)) == {"reference", "fused",
                                                       "compiled"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            get_engine("warp")
        with pytest.raises(ConfigurationError):
            validate_engine("warp")

    def test_batched_rejected_where_scalar_required(self):
        get_engine("batched")
        with pytest.raises(ConfigurationError):
            get_engine("batched", scalar_only=True)
        with pytest.raises(ConfigurationError):
            GyroPlatformConfig(engine="batched")
        platform = GyroPlatform()
        with pytest.raises(ConfigurationError):
            platform.run(Environment.still(), 0.01, engine="batched")

    def test_batched_spec_has_no_scalar_runner(self):
        with pytest.raises(ConfigurationError):
            get_engine("batched").run(GyroPlatform(), Environment.still(),
                                      0.01)


class TestScenarioValidation:
    def test_duration_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Scenario("bad", Environment.still(), 0.0)

    def test_stop_check_needs_stop(self):
        with pytest.raises(ConfigurationError):
            Scenario("bad", Environment.still(), 0.1, stop_check_s=0.05)
        with pytest.raises(ConfigurationError):
            Scenario("bad", Environment.still(), 0.1, require_stop=True)

    def test_stop_check_range(self):
        with pytest.raises(ConfigurationError):
            Scenario("bad", Environment.still(), 0.1,
                     stop=lambda p: True, stop_check_s=0.2)

    def test_default_stop_check_is_duration(self):
        scenario = Scenario("s", Environment.still(), 0.1,
                            stop=lambda p: True)
        assert scenario.stop_check_s == 0.1


class TestCampaignValidation:
    def test_needs_programs(self):
        with pytest.raises(ConfigurationError):
            Campaign([])
        with pytest.raises(ConfigurationError):
            Campaign([[]])
        with pytest.raises(ConfigurationError):
            Campaign(["not a scenario"])

    def test_engine_validated_at_construction(self):
        with pytest.raises(ConfigurationError):
            Campaign([settled_output_scenario(0.0)], engine="warp")

    def test_exactly_one_base(self):
        campaign = Campaign([settled_output_scenario(0.0, settle_s=0.01)])
        with pytest.raises(ConfigurationError):
            campaign.run()
        with pytest.raises(ConfigurationError):
            campaign.run(GyroPlatform(), config=GyroPlatformConfig())

    def test_mutate_requires_single_lane(self):
        campaign = Campaign([settled_output_scenario(0.0, settle_s=0.01),
                             settled_output_scenario(10.0, settle_s=0.01)])
        with pytest.raises(ConfigurationError):
            campaign.run(GyroPlatform(), mutate=True)

    def test_platforms_count_must_match(self):
        campaign = Campaign([settled_output_scenario(0.0, settle_s=0.01)])
        with pytest.raises(ConfigurationError):
            campaign.run(platforms=[GyroPlatform(), GyroPlatform()])


def _locked(platform):
    return platform.conditioner.drive_loop.pll.locked


def _mixed_programs():
    """A heterogeneous campaign: early stop, multi-scenario lane,
    plain settled lane with a time-varying stimulus."""
    lock = Scenario("lock-in", Environment.still(), 0.4,
                    reset=True, stop=_locked, stop_check_s=0.05,
                    require_stop=True,
                    extractors={"now": lambda p, r: p.now})
    after = settled_output_scenario(50.0, settle_s=0.07)
    ramp = Scenario("ramp", Environment(
        rate_dps=RampProfile(start=0.0, stop=80.0, t0=0.0, t1=0.1),
        temperature_c=ConstantProfile(30.0)), 0.12,
        extractors={"tail": lambda p, r: tail_mean(r.rate_output_dps, 0.5)})
    return [[lock, after], [ramp]]


class TestCampaignEquivalence:
    def test_batched_matches_sequential_with_early_stop(self):
        base = GyroPlatform()
        campaign = Campaign(_mixed_programs())
        batched = campaign.run(base, engine="batched")
        fused = campaign.run(base, engine="fused")
        reference = campaign.run(base, engine="reference")
        for res in (fused, reference):
            for lane_a, lane_b in zip(batched.lanes, res.lanes):
                assert len(lane_a.outcomes) == len(lane_b.outcomes)
                for a, b in zip(lane_a.outcomes, lane_b.outcomes):
                    _assert_outcomes_identical(a, b)
        # the early stop actually fired before the duration limit
        lock = batched.outcome("lock-in")
        assert lock.stopped_early
        assert lock.elapsed_s < 0.4
        # branching campaigns leave the base platform untouched
        assert base.now == 0.0

    def test_start_matches_legacy_chunked_loop(self):
        a, b = GyroPlatform(), GyroPlatform()
        res_new = a.start()
        env = Environment.still(25.0)
        segments = [b.run(env, 0.1, reset=True)]
        while not b.conditioner.running and b.now < 1.5:
            segments.append(b.run(env, 0.1))
        assert b.conditioner.running
        res_old = concatenate_results(segments)
        for field in TRACE_FIELDS:
            np.testing.assert_array_equal(getattr(res_new, field),
                                          getattr(res_old, field),
                                          err_msg=field)
        assert res_new.turn_on_time_s == res_old.turn_on_time_s
        assert a.now == b.now

    def test_startup_timeout_raises(self):
        platform = GyroPlatform()
        with pytest.raises(SimulationError):
            # far too short for the sequencer to reach RUNNING
            platform.start(max_duration_s=0.05, chunk_s=0.05)

    def test_waveforms_only_where_requested(self):
        want = Scenario("wave", Environment.still(), 0.02, reset=True,
                        record_waveforms=True)
        plain = Scenario("plain", Environment.still(), 0.02, reset=True)
        result = Campaign([want, plain]).run(GyroPlatform(),
                                             engine="batched")
        wave = result.outcome("wave").result
        assert wave.primary_pickoff_norm is not None
        assert wave.drive_word is not None
        assert result.outcome("plain").result.primary_pickoff_norm is None

    def test_metric_and_outcome_lookup(self):
        campaign = Campaign(rate_table_scenarios((-50.0, 50.0),
                                                 settle_s=0.02))
        result = campaign.run(GyroPlatform(), engine="fused")
        assert len(result.metric("raw_channel")) == 2
        assert result.outcome("settled[+50dps@25C]").metrics["raw_channel"] \
            == result.lanes[1].outcomes[0].metrics["raw_channel"]
        with pytest.raises(ConfigurationError):
            result.metric("bogus")
        with pytest.raises(ConfigurationError):
            result.outcome("bogus")


class TestCalibrationEquivalence:
    """ISSUE lock: batched calibration programs bit-identical words."""

    def test_fleet_and_sequential_calibration_identical(self):
        batched = GyroPlatform()
        sequential = GyroPlatform()
        batched.calibrate(settle_s=0.1)                    # fleet sweep
        sequential.calibrate(settle_s=0.1, engine="fused")  # legacy loop
        chain_b = batched.conditioner.sense_chain
        chain_s = sequential.conditioner.sense_chain
        assert chain_b.scaler.config == chain_s.scaler.config
        assert chain_b.offset_comp.offset == chain_s.offset_comp.offset
        assert batched.calibrated and sequential.calibrated

    def test_temperature_calibration_identical(self):
        base = GyroPlatform()
        base.calibrate(settle_s=0.1, engine="fused")
        other = copy.deepcopy(base)
        base.calibrate_temperature(temperatures_c=(0.0, 25.0, 60.0),
                                   settle_s=0.06)
        other.calibrate_temperature(temperatures_c=(0.0, 25.0, 60.0),
                                    settle_s=0.06, engine="fused")
        assert (base.conditioner.sense_chain.temperature_comp.config
                == other.conditioner.sense_chain.temperature_comp.config)


class TestFleetReuse:
    def test_run_batch_accepts_existing_fleet(self):
        platform = GyroPlatform()
        fleet = platform.make_fleet(2)
        lanes = list(fleet.platforms)
        envs = [Environment.still(), Environment.constant_rate(80.0)]
        first = platform.run_batch(envs, 0.02, fleet=fleet)
        # the same lane objects are reused, carrying their state forward
        assert fleet.platforms == lanes
        assert all(lane.now == pytest.approx(0.02) for lane in lanes)
        second = platform.run_batch(envs, 0.02, fleet=fleet)
        assert all(lane.now == pytest.approx(0.04) for lane in lanes)
        # continuing the fleet is exactly one longer dedicated run
        dedicated = GyroPlatform(copy.deepcopy(platform.config))
        long = dedicated.run(envs[1], 0.04, engine="reference")
        np.testing.assert_array_equal(
            long.rate_output_dps,
            np.concatenate([first[1].rate_output_dps,
                            second[1].rate_output_dps]))

    def test_run_batch_fleet_size_mismatch_rejected(self):
        platform = GyroPlatform()
        fleet = platform.make_fleet(2)
        with pytest.raises(ConfigurationError):
            platform.run_batch([Environment.still()], 0.01, fleet=fleet)

    def test_make_fleet_validates_size(self):
        with pytest.raises(ConfigurationError):
            GyroPlatform().make_fleet(0)


class TestTimeShiftedProfiles:
    def test_shift_matches_offset_evaluation(self):
        profile = SineProfile(amplitude=10.0, frequency_hz=3.0)
        shifted = TimeShiftedProfile(profile, 0.25)
        t = np.linspace(0.0, 0.5, 64)
        np.testing.assert_array_equal(shifted.sample(t),
                                      profile.sample(t + 0.25))
        assert shifted.value(0.1) == profile.value(0.1 + 0.25)

    def test_constant_profiles_not_wrapped(self):
        env = Environment.still(30.0)
        assert env.shifted(0.5).rate_dps is env.rate_dps
        assert env.shifted(0.5).temperature_c is env.temperature_c

    def test_nested_shifts_collapse(self):
        env = Environment.sinusoidal_rate(5.0, 2.0)
        twice = env.shifted(0.1).shifted(0.2)
        assert isinstance(twice.rate_dps, TimeShiftedProfile)
        assert twice.rate_dps.offset_s == pytest.approx(0.3)
        assert not isinstance(twice.rate_dps.base, TimeShiftedProfile)

    def test_negative_shift_rejected(self):
        with pytest.raises(ConfigurationError):
            Environment.still().shifted(-0.1)


class TestNoiseFloorScenario:
    def test_matches_direct_measurement(self):
        platform = GyroPlatform()
        platform.start()
        clone = copy.deepcopy(platform)
        scenario = noise_floor_scenario(duration_s=0.8)
        result = Campaign([scenario]).run(platform, mutate=True)
        density = result.lanes[0].outcomes[0].metrics["noise_density"]
        record = clone.run(Environment.still(), 0.8).rate_output_dps
        from repro.scenarios import noise_density_from_record
        expected = noise_density_from_record(
            record, platform.config.sample_rate_hz /
            platform.config.record_decimation, (2.0, 20.0))
        assert density == expected
