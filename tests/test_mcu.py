"""Tests for the 8051 subsystem: memories, core, assembler, peripherals, JTAG."""

import pytest

from repro.common import AssemblerError, BusError, ConfigurationError, IllegalOpcodeError
from repro.common.registers import Register, RegisterFile
from repro.gyro import GyroConditioner, GyroConditionerConfig
from repro.mcu import (
    Assembler,
    BRIDGE_BASE,
    BusBridge,
    CodeMemory,
    ExternalBus,
    FRAME_HEADER_LOCKED,
    FRAME_HEADER_UNLOCKED,
    IDCODE_VALUE,
    InternalRam,
    JtagTap,
    Mcs51Core,
    McuSubsystem,
    SpiController,
    SpiEeprom,
    SramController,
    TapState,
    Timer,
    Uart,
    Watchdog,
    assemble,
)
from repro.afe import build_trim_bank


class TestMemories:
    def test_code_memory_load_and_read(self):
        mem = CodeMemory(1024)
        mem.load(b"\x01\x02\x03", origin=0x10)
        assert mem.read(0x10) == 1
        assert mem.read(0x12) == 3

    def test_code_memory_bounds(self):
        mem = CodeMemory(16)
        with pytest.raises(BusError):
            mem.load(b"\x00" * 32)
        with pytest.raises(BusError):
            mem.read(100)
        with pytest.raises(ConfigurationError):
            CodeMemory(0)

    def test_code_memory_write_protection(self):
        rom = CodeMemory(16, writable=False)
        with pytest.raises(BusError):
            rom.write(0, 0xAA)
        ram = CodeMemory(16, writable=True)
        ram.write(0, 0xAA)
        assert ram.read(0) == 0xAA

    def test_internal_ram(self):
        ram = InternalRam()
        ram.write(0x30, 0x55)
        assert ram.read(0x30) == 0x55
        ram.clear()
        assert ram.read(0x30) == 0
        with pytest.raises(BusError):
            ram.read(300)

    def test_external_bus_ram_and_regions(self):
        bus = ExternalBus(ram_size=256)
        bus.write(0x10, 0x42)
        assert bus.read(0x10) == 0x42
        store = {}
        bus.map_region(0x1000, 0x1010,
                       read=lambda a: store.get(a, 0),
                       write=lambda a, v: store.__setitem__(a, v))
        bus.write(0x1004, 0x77)
        assert bus.read(0x1004) == 0x77
        with pytest.raises(BusError):
            bus.read(0x5000)
        with pytest.raises(ConfigurationError):
            bus.map_region(0x1008, 0x1020, lambda a: 0, lambda a, v: None)


class TestCoreExecution:
    def _run(self, source, max_instructions=10000):
        core = Mcs51Core()
        core.load_program(assemble(source))
        core.run(max_instructions)
        return core

    def test_mov_immediate_and_direct(self):
        core = self._run("MOV A, #0x42\nMOV 0x30, A\nHALT: SJMP HALT")
        assert core.acc == 0x42
        assert core.iram.read(0x30) == 0x42

    def test_mov_registers(self):
        core = self._run("MOV R0, #0x11\nMOV A, R0\nMOV R5, A\nHALT: SJMP HALT")
        assert core.reg(5) == 0x11

    def test_add_sets_carry(self):
        core = self._run("MOV A, #0xF0\nADD A, #0x20\nHALT: SJMP HALT")
        assert core.acc == 0x10
        assert core.carry == 1

    def test_subb(self):
        core = self._run("CLR C\nMOV A, #0x10\nSUBB A, #0x01\nHALT: SJMP HALT")
        assert core.acc == 0x0F
        assert core.carry == 0

    def test_logic_operations(self):
        core = self._run("MOV A, #0xF0\nANL A, #0x3C\nORL A, #0x01\nXRL A, #0xFF\n"
                         "HALT: SJMP HALT")
        assert core.acc == (((0xF0 & 0x3C) | 0x01) ^ 0xFF)

    def test_djnz_loop_counts(self):
        source = """
            MOV R2, #5
            MOV A, #0
        LOOP:
            INC A
            DJNZ R2, LOOP
        HALT: SJMP HALT
        """
        core = self._run(source)
        assert core.acc == 5

    def test_cjne_branch(self):
        source = """
            MOV A, #3
            CJNE A, #4, NOTEQ
            MOV R0, #1
            SJMP HALT
        NOTEQ:
            MOV R0, #2
        HALT: SJMP HALT
        """
        core = self._run(source)
        assert core.reg(0) == 2

    def test_lcall_and_ret(self):
        source = """
            LCALL SUB
            MOV R1, #0x99
        HALT: SJMP HALT
        SUB:
            MOV R0, #0x55
            RET
        """
        core = self._run(source)
        assert core.reg(0) == 0x55
        assert core.reg(1) == 0x99

    def test_bit_operations(self):
        core = self._run("SETB 0x00\nCLR 0x01\nHALT: SJMP HALT")
        # bit 0x00 lives in IRAM byte 0x20
        assert core.iram.read(0x20) & 0x01 == 1

    def test_jb_jnb(self):
        source = """
            SETB 0x07
            JB 0x07, TAKEN
            MOV R0, #1
            SJMP HALT
        TAKEN:
            MOV R0, #2
        HALT: SJMP HALT
        """
        assert self._run(source).reg(0) == 2

    def test_movx_roundtrip(self):
        source = """
            MOV DPTR, #0x0040
            MOV A, #0xAB
            MOVX @DPTR, A
            CLR A
            MOVX A, @DPTR
        HALT: SJMP HALT
        """
        core = self._run(source)
        assert core.acc == 0xAB

    def test_movc_table_lookup(self):
        source = """
            MOV DPTR, #TABLE
            MOV A, #2
            MOVC A, @A+DPTR
        HALT: SJMP HALT
        TABLE:
            DB 0x10, 0x20, 0x30, 0x40
        """
        assert self._run(source).acc == 0x30

    def test_mul_div(self):
        core = self._run("MOV A, #7\nMOV 0xF0, #6\nMUL AB\nHALT: SJMP HALT")
        assert core.acc == 42
        core = self._run("MOV A, #43\nMOV 0xF0, #6\nDIV AB\nHALT: SJMP HALT")
        assert core.acc == 7
        assert core.sfr.read(0xF0) == 1

    def test_swap_and_rotates(self):
        assert self._run("MOV A, #0x12\nSWAP A\nHALT: SJMP HALT").acc == 0x21
        assert self._run("MOV A, #0x81\nRL A\nHALT: SJMP HALT").acc == 0x03
        assert self._run("MOV A, #0x81\nRR A\nHALT: SJMP HALT").acc == 0xC0

    def test_push_pop(self):
        core = self._run("MOV A, #0x5A\nPUSH 0xE0\nCLR A\nPOP 0xE0\nHALT: SJMP HALT")
        assert core.acc == 0x5A

    def test_stack_depth(self):
        core = Mcs51Core()
        sp_before = core.sp
        core.push(0x12)
        assert core.sp == sp_before + 1
        assert core.pop() == 0x12
        assert core.sp == sp_before

    def test_illegal_opcode_raises(self):
        core = Mcs51Core()
        core.load_program(bytes([0xA5]))  # 0xA5 is unused in MCS-51
        with pytest.raises(IllegalOpcodeError):
            core.step()

    def test_reset(self):
        core = self._run("MOV A, #1\nHALT: SJMP HALT")
        core.reset()
        assert core.pc == 0
        assert core.acc == 0
        assert not core.halted

    def test_run_instruction_cap(self):
        core = Mcs51Core()
        core.load_program(assemble("LOOP: SJMP LOOP2\nLOOP2: SJMP LOOP"))
        executed = core.run(max_instructions=50)
        assert executed == 50


class TestAssembler:
    def test_org_and_db(self):
        image = assemble("ORG 0x03\nDB 0xAA, 0xBB")
        assert image[0:3] == b"\x00\x00\x00"
        assert image[3] == 0xAA

    def test_equ_symbols(self):
        image = assemble("VALUE EQU 0x42\nMOV A, #VALUE\nHALT: SJMP HALT")
        assert image[1] == 0x42

    def test_labels_resolve_forward_and_backward(self):
        image = assemble("START: MOV A, #1\nSJMP START")
        assert image[-1] == 0xFC  # -4 relative

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("FLY A, #1")

    def test_out_of_range_sjmp_rejected(self):
        source = "SJMP FAR\n" + "NOP\n" * 200 + "FAR: NOP"
        with pytest.raises(AssemblerError):
            assemble(source)

    def test_case_insensitive_mnemonics(self):
        assert assemble("mov a, #1\nhalt: sjmp halt")[0] == 0x74

    def test_hex_suffix_notation(self):
        assert assemble("MOV A, #42h")[1] == 0x42


class TestPeripherals:
    def test_uart_tx(self):
        uart = Uart()
        uart._write_sbuf(0x41)
        uart._write_sbuf(0x42)
        assert uart.transmitted_bytes() == b"AB"
        assert uart.transmitted_text() == "AB"

    def test_uart_rx(self):
        uart = Uart()
        uart.host_send(b"\x10\x20")
        assert uart._read_scon() & 0x01
        assert uart._read_sbuf() == 0x10
        assert uart._read_sbuf() == 0x20
        assert uart._read_scon() & 0x01 == 0

    def test_uart_validation(self):
        with pytest.raises(ConfigurationError):
            Uart(baud_rate=0)

    def test_spi_transfer(self):
        spi = SpiController()
        spi.queue_miso(b"\x55")
        assert spi.transfer(0xAA) == 0x55
        assert spi.mosi_log == [0xAA]
        assert spi.transfer(0x01) == 0xFF

    def test_eeprom_round_trip(self):
        eeprom = SpiEeprom(size=128)
        eeprom.write_block(8, b"hello")
        assert eeprom.read_block(8, 5) == b"hello"
        with pytest.raises(BusError):
            eeprom.write_block(126, b"xyz")

    def test_timer_overflow(self):
        timer = Timer(reload=0xFFF0)
        timer.tick(0x10)
        assert timer.overflows == 1
        timer.tick(0x10)
        assert timer.overflows == 2

    def test_watchdog_expiry_and_service(self):
        wdt = Watchdog(timeout_cycles=100)
        wdt.tick(50)
        wdt.service()
        wdt.tick(99)
        assert not wdt.expired
        wdt.tick(1)
        assert wdt.expired

    def test_sram_logger(self):
        sram = SramController(size_bytes=64)
        for i in range(10):
            sram.log_sample(0x1000 + i)
        assert sram.read_sample(3) == 0x1003
        assert sram.samples_logged == 10

    def test_bridge_maps_register_file(self):
        bus = ExternalBus()
        bridge = BusBridge(0x8000)
        bridge.connect(bus)
        regs = RegisterFile("test")
        regs.add(Register("value", 0x10, width=16, reset=0xBEEF))
        bridge.attach_register_file(regs)
        assert bus.read(0x8010) == 0xEF
        assert bus.read(0x8011) == 0xBE
        bus.write(0x8010, 0x34)
        bus.write(0x8011, 0x12)
        assert regs.read("value") == 0x1234

    def test_bridge_unmapped_offset(self):
        bus = ExternalBus()
        bridge = BusBridge(0x8000)
        bridge.connect(bus)
        with pytest.raises(BusError):
            bus.read(0x8500)


class TestJtag:
    def test_reset_state(self):
        tap = JtagTap()
        tap.reset()
        assert tap.state is TapState.TEST_LOGIC_RESET

    def test_idcode_read(self):
        tap = JtagTap()
        assert tap.read_idcode() == IDCODE_VALUE

    def test_trim_write_and_readback(self):
        trim = build_trim_bank()
        tap = JtagTap(trim)
        tap.write_trim_register(0x04, 14)  # afe_adc_bits
        assert trim.read("afe_adc_bits") == 14
        assert tap.read_trim_register(0x04) == 14

    def test_full_readback_of_every_trim_register(self):
        trim = build_trim_bank()
        tap = JtagTap(trim)
        for address, name, value in trim.address_map():
            assert tap.read_trim_register(address) == value

    def test_bypass_instruction(self):
        tap = JtagTap()
        tap.load_instruction(0xF)
        assert tap.shift_data(0b1, 1) in (0, 1)

    def test_tap_navigation_error_free(self):
        tap = JtagTap()
        tap.reset()
        tap.clock(0)
        assert tap.state is TapState.RUN_TEST_IDLE


class TestMcuSubsystem:
    def test_monitor_firmware_reports_unlocked(self):
        mcu = McuSubsystem()
        conditioner = GyroConditioner(GyroConditionerConfig(status_update_interval=1))
        conditioner.step(0.0, 0.0)  # status registers now valid, PLL unlocked
        mcu.connect_dsp_registers(conditioner.registers)
        mcu.load_monitor_firmware()
        mcu.run()
        tx = mcu.uart.transmitted_bytes()
        assert tx.count(bytes([FRAME_HEADER_UNLOCKED])) >= 1
        assert FRAME_HEADER_LOCKED not in tx

    def test_monitor_firmware_reports_locked_rate(self):
        mcu = McuSubsystem()
        conditioner = GyroConditioner(GyroConditionerConfig(status_update_interval=1))
        conditioner.step(0.0, 0.0)
        # force the status/rate registers as the DSP hardware would
        conditioner.registers.register("dsp_status").hw_write(0x0007)
        conditioner.registers.register("dsp_rate_out").hw_write(0x1234)
        mcu.connect_dsp_registers(conditioner.registers)
        mcu.load_monitor_firmware()
        mcu.run()
        tx = mcu.uart.transmitted_bytes()
        assert tx[0] == FRAME_HEADER_LOCKED
        assert tx[1] == 0x34 and tx[2] == 0x12

    def test_firmware_can_trim_afe_via_bridge(self):
        mcu = McuSubsystem()
        trim = build_trim_bank()
        mcu.connect_trim_bank(trim)
        source = """
            MOV DPTR, #0x8004   ; afe_adc_bits low byte
            MOV A, #14
            MOVX @DPTR, A
        HALT: SJMP HALT
        """
        mcu.load_firmware_source(source)
        mcu.run()
        assert trim.read("afe_adc_bits") == 14

    def test_uart_download_requires_writable_code(self):
        rom_system = McuSubsystem(code_writable=False)
        with pytest.raises(ConfigurationError):
            rom_system.download_firmware_via_uart(b"\x00")
        proto = McuSubsystem(code_writable=True)
        image = assemble("MOV A, #7\nHALT: SJMP HALT")
        proto.download_firmware_via_uart(image)
        proto.run()
        assert proto.core.acc == 7

    def test_eeprom_boot_path(self):
        mcu = McuSubsystem()
        image = assemble("MOV R0, #0x77\nHALT: SJMP HALT")
        mcu.store_firmware_in_eeprom(image)
        mcu.boot_from_eeprom(len(image))
        mcu.run()
        assert mcu.core.reg(0) == 0x77

    def test_watchdog_ticks_during_run(self):
        mcu = McuSubsystem()
        mcu.watchdog.timeout_cycles = 10
        mcu.load_firmware_source("LOOP: NOP\nSJMP LOOP")
        mcu.run(max_instructions=100)
        assert mcu.watchdog.expired

    def test_jtag_and_bridge_see_same_trim_bank(self):
        mcu = McuSubsystem()
        trim = build_trim_bank()
        mcu.connect_trim_bank(trim)
        mcu.jtag.write_trim_register(0x02, 5)
        assert mcu.xdata.read(BRIDGE_BASE + 0x02) == 5
