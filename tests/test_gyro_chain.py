"""Tests for the gyro conditioning chain blocks (drive, sense, closed loop,
start-up, calibration, conditioner registers)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from strategies.settings import DETERMINISM_SETTINGS

from repro.common import ConfigurationError, CalibrationError
from repro.dsp import PllConfig, AgcConfig, TemperatureCompensationConfig
from repro.gyro import (
    DriveLoop,
    DriveLoopConfig,
    ForceRebalanceConfig,
    ForceRebalanceController,
    GyroConditioner,
    GyroConditionerConfig,
    ScaleCalibration,
    SenseChain,
    SenseChainConfig,
    StartupConfig,
    StartupSequencer,
    StartupState,
    fit_scale_factor,
    fit_temperature_compensation,
    null_voltage_error,
    q114_to_float,
    sensitivity_error_percent,
)

FS = 120_000.0


class TestDriveLoop:
    def test_config_consistency_check(self):
        with pytest.raises(ConfigurationError):
            DriveLoopConfig(pll=PllConfig(amplitude_threshold=0.6),
                            agc=AgcConfig(target_amplitude=0.5))

    def test_initial_state(self):
        loop = DriveLoop()
        assert not loop.locked
        assert loop.drive_word == 0.0
        assert loop.amplitude_control == pytest.approx(
            loop.config.agc.startup_gain)

    def test_drive_word_is_carrier_scaled_by_gain(self):
        loop = DriveLoop()
        word = loop.step(0.0)
        sin_ref, cos_ref = loop.references
        assert word == pytest.approx(loop.amplitude_control * cos_ref)

    def test_reset(self):
        loop = DriveLoop()
        for _ in range(100):
            loop.step(0.1)
        loop.reset()
        assert loop.drive_word == 0.0
        assert not loop.locked

    def test_fig5_traces_exposed(self):
        loop = DriveLoop()
        loop.step(0.0)
        assert isinstance(loop.amplitude_control, float)
        assert isinstance(loop.phase_error, float)
        assert isinstance(loop.amplitude_error, float)
        assert isinstance(loop.vco_control, float)


class TestSenseChain:
    def _drive_chain(self, chain, signal_amp, quad_amp=0.0, n=None,
                     temperature_c=25.0):
        w = 2 * math.pi * 15000.0
        n = n or int(FS * 0.1)
        rate = word = 0.0
        for i in range(n):
            cos_ref = math.cos(w * i / FS)
            sin_ref = math.sin(w * i / FS)
            signal = signal_amp * cos_ref + quad_amp * sin_ref
            rate, word = chain.step(signal, sin_ref, cos_ref, temperature_c)
        return rate, word

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SenseChainConfig(sample_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            SenseChainConfig(output_bandwidth_hz=0.0)
        with pytest.raises(ConfigurationError):
            SenseChainConfig(output_filter_order=0)

    def test_recovers_in_phase_amplitude(self):
        chain = SenseChain(SenseChainConfig())
        self._drive_chain(chain, signal_amp=0.1)
        assert chain.rate_channel == pytest.approx(0.1, rel=0.05)

    def test_rejects_quadrature_component(self):
        chain = SenseChain(SenseChainConfig())
        self._drive_chain(chain, signal_amp=0.0, quad_amp=0.2)
        assert abs(chain.rate_channel) < 0.01
        assert chain.quadrature_channel == pytest.approx(0.2, rel=0.1)

    def test_scale_calibration_changes_rate(self):
        chain = SenseChain(SenseChainConfig())
        chain.calibrate_scale(channel_per_dps=0.001)
        rate, _ = self._drive_chain(chain, signal_amp=0.1)
        assert rate == pytest.approx(100.0, rel=0.05)

    def test_offset_calibration(self):
        chain = SenseChain(SenseChainConfig())
        chain.calibrate_scale(channel_per_dps=0.001)
        chain.calibrate_offset(0.1)
        rate, _ = self._drive_chain(chain, signal_amp=0.1)
        assert rate == pytest.approx(0.0, abs=2.0)

    def test_temperature_compensation_applied(self):
        chain = SenseChain(SenseChainConfig())
        chain.calibrate_scale(channel_per_dps=0.001)
        chain.calibrate_temperature(TemperatureCompensationConfig(
            offset_poly=(0.0, 0.001), sensitivity_poly=(0.0,)))
        rate_25, _ = self._drive_chain(chain, signal_amp=0.1, temperature_c=25.0)
        chain.reset()
        rate_85, _ = self._drive_chain(chain, signal_amp=0.1, temperature_c=85.0)
        # at 85 C the compensation removes 0.001*60 channel units = 60 dps
        assert rate_25 - rate_85 == pytest.approx(60.0, rel=0.05)

    def test_rate_word_clipped(self):
        chain = SenseChain(SenseChainConfig())
        chain.calibrate_scale(channel_per_dps=1e-5)
        _, word = self._drive_chain(chain, signal_amp=0.5)
        assert -1.0 <= word <= 1.0

    def test_reset_clears_state(self):
        chain = SenseChain(SenseChainConfig())
        self._drive_chain(chain, signal_amp=0.3, n=1000)
        chain.reset()
        assert chain.rate_channel == 0.0
        assert chain.rate_dps == 0.0


class TestForceRebalance:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ForceRebalanceConfig(sample_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            ForceRebalanceConfig(kp=-1.0)
        with pytest.raises(ConfigurationError):
            ForceRebalanceConfig(max_command=0.0)

    def test_command_opposes_persistent_motion(self):
        ctrl = ForceRebalanceController(ForceRebalanceConfig())
        w = 2 * math.pi * 15000.0
        out = 0.0
        for i in range(int(FS * 0.05)):
            cos_ref = math.cos(w * i / FS)
            out = ctrl.step(0.2 * cos_ref, cos_ref)
        # persistent in-phase motion => integrator builds a positive command
        assert ctrl.command > 0.05
        # and the emitted control word opposes the motion (negative carrier)
        assert out * ctrl.command <= 0.0 or abs(out) < 1.0

    def test_command_saturates(self):
        ctrl = ForceRebalanceController(ForceRebalanceConfig(max_command=0.3))
        w = 2 * math.pi * 15000.0
        for i in range(int(FS * 0.2)):
            cos_ref = math.cos(w * i / FS)
            ctrl.step(0.9 * cos_ref, cos_ref)
        assert abs(ctrl.command) <= 0.3 + 1e-9

    def test_reset(self):
        ctrl = ForceRebalanceController()
        w = 2 * math.pi * 15000.0
        for i in range(1000):
            ctrl.step(0.5 * math.cos(w * i / FS), math.cos(w * i / FS))
        ctrl.reset()
        assert ctrl.command == 0.0
        assert ctrl.residual_motion == 0.0


class TestStartupSequencer:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            StartupConfig(sample_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            StartupConfig(watchdog_time_s=0.0)

    def test_progression_to_running(self):
        seq = StartupSequencer(StartupConfig(sample_rate_hz=1000.0,
                                             settling_time_s=0.01))
        assert seq.state is StartupState.POWER_ON
        seq.step(False, False)
        assert seq.state is StartupState.DRIVE_SPINUP
        for _ in range(5):
            seq.step(False, False)
        assert seq.state is StartupState.DRIVE_SPINUP
        seq.step(True, False)
        assert seq.state is StartupState.PLL_LOCKED
        seq.step(True, True)
        assert seq.state is StartupState.OUTPUT_SETTLING
        for _ in range(20):
            seq.step(True, True)
        assert seq.running
        assert seq.turn_on_time_s is not None

    def test_settling_restarts_on_excursion(self):
        seq = StartupSequencer(StartupConfig(sample_rate_hz=1000.0,
                                             settling_time_s=0.01))
        seq.step(False, False)
        seq.step(True, False)
        seq.step(True, True)
        for _ in range(5):
            seq.step(True, True)
        seq.step(True, False)  # amplitude excursion restarts the wait
        for _ in range(9):
            seq.step(True, True)
        assert not seq.running
        for _ in range(2):
            seq.step(True, True)
        assert seq.running

    def test_unlock_falls_back_to_spinup(self):
        seq = StartupSequencer(StartupConfig(sample_rate_hz=1000.0))
        seq.step(False, False)
        seq.step(True, False)
        assert seq.state is StartupState.PLL_LOCKED
        seq.step(False, False)
        assert seq.state is StartupState.DRIVE_SPINUP

    def test_watchdog_failure(self):
        seq = StartupSequencer(StartupConfig(sample_rate_hz=1000.0,
                                             watchdog_time_s=0.05))
        for _ in range(100):
            seq.step(False, False)
        assert seq.failed
        assert not seq.running

    def test_reset(self):
        seq = StartupSequencer(StartupConfig(sample_rate_hz=1000.0))
        seq.step(True, True)
        seq.reset()
        assert seq.state is StartupState.POWER_ON
        assert seq.turn_on_time_s is None


class TestCalibrationMath:
    def test_fit_scale_factor(self):
        rates = [-200.0, 0.0, 200.0]
        channel = [-0.4 + 0.05, 0.05, 0.4 + 0.05]
        cal = fit_scale_factor(rates, channel)
        assert cal.channel_per_dps == pytest.approx(0.002)
        assert cal.channel_offset == pytest.approx(0.05)
        assert cal.residual_percent_fs == pytest.approx(0.0, abs=1e-9)

    def test_fit_scale_factor_validation(self):
        with pytest.raises(CalibrationError):
            fit_scale_factor([0.0], [0.0])
        with pytest.raises(CalibrationError):
            fit_scale_factor([0.0, 1.0], [0.5, 0.5])

    def test_select_reference_slope_prefers_room_temperature(self):
        from repro.gyro import select_reference_slope

        assert select_reference_slope((-40.0, 25.0, 85.0),
                                      (2.0, 3.0, 4.0)) == 3.0
        # sweep without the reference temperature: first slope wins
        assert select_reference_slope((0.0, 60.0), (2.0, 4.0)) == 2.0

    def test_select_reference_slope_rejects_zero(self):
        # regression: the old `reference_slope or ratios[0]` fallback
        # silently replaced a measured-zero reference slope
        from repro.common.exceptions import CalibrationError
        from repro.gyro import select_reference_slope

        with pytest.raises(CalibrationError):
            select_reference_slope((-40.0, 25.0, 85.0), (2.0, 0.0, 4.0))
        with pytest.raises(CalibrationError):
            select_reference_slope((25.0,), ())

    def test_fit_temperature_compensation(self):
        temps = [-40.0, 25.0, 85.0]
        offsets = [(-65.0) * 0.01, 0.0, 60.0 * 0.01]
        ratios = [1.0 - (-65.0) * 1e-4, 1.0, 1.0 - 60.0 * 1e-4]
        cfg = fit_temperature_compensation(temps, offsets, ratios)
        assert cfg.offset_poly[1] == pytest.approx(0.01, rel=1e-6)
        assert cfg.sensitivity_poly[0] == pytest.approx(-1e-4, rel=1e-6)

    def test_fit_temperature_validation(self):
        with pytest.raises(CalibrationError):
            fit_temperature_compensation([25.0], [0.0], [1.0])

    def test_null_and_sensitivity_errors(self):
        assert null_voltage_error(2.53) == pytest.approx(0.03)
        assert sensitivity_error_percent(0.00525) == pytest.approx(5.0)
        with pytest.raises(CalibrationError):
            sensitivity_error_percent(0.005, target_v_per_dps=0.0)


class TestGyroConditioner:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GyroConditionerConfig(status_update_interval=0)

    def test_q114_round_trip(self):
        from repro.gyro.conditioning import _to_q114
        for value in (-1.5, -0.25, 0.0, 0.33, 1.2):
            clipped = max(-2.0, min(2.0 - 1 / 16384, value))
            assert q114_to_float(_to_q114(value)) == pytest.approx(clipped, abs=1e-4)

    @DETERMINISM_SETTINGS
    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_q114_every_word_round_trips(self, word):
        # decode -> encode is the identity on all 16-bit register words
        from repro.gyro.conditioning import _to_q114
        value = q114_to_float(word)
        assert -2.0 <= value <= 2.0 - 1.0 / 16384.0
        assert _to_q114(value) == word

    @DETERMINISM_SETTINGS
    @given(st.floats(min_value=-4.0, max_value=4.0))
    def test_q114_encode_quantises_and_saturates(self, value):
        from repro.gyro.conditioning import _to_q114
        decoded = q114_to_float(_to_q114(value))
        expected = max(-32768, min(32767, round(value * 16384.0))) / 16384.0
        assert decoded == expected
        # quantisation error bounded by half an LSB inside the range
        if -2.0 < value < 2.0 - 1.0 / 16384.0:
            assert abs(decoded - value) <= 0.5 / 16384.0

    @DETERMINISM_SETTINGS
    @given(st.floats(min_value=-2.0, max_value=2.0 - 1.0 / 16384.0))
    def test_q114_encode_decode_idempotent(self, value):
        from repro.gyro.conditioning import _to_q114
        once = q114_to_float(_to_q114(value))
        assert q114_to_float(_to_q114(once)) == once

    def test_step_returns_three_words(self):
        cond = GyroConditioner()
        drive, control, rate = cond.step(0.0, 0.0)
        assert control == 0.0  # open loop by default
        assert -1.0 <= drive <= 1.0
        assert -1.0 <= rate <= 1.0

    def test_closed_loop_produces_control_word(self):
        cond = GyroConditioner(GyroConditionerConfig(closed_loop=True))
        w = 2 * math.pi * 15000.0
        control = 0.0
        for i in range(2000):
            ref = math.sin(w * i / FS)
            _, control, _ = cond.step(0.5 * ref, 0.1 * ref)
        assert cond.config.closed_loop
        # the control word is exercised (non-trivially zero over the run)
        assert isinstance(control, float)

    def test_status_registers_update(self):
        cond = GyroConditioner(GyroConditionerConfig(status_update_interval=4))
        for _ in range(16):
            cond.step(0.0, 0.0)
        status = cond.registers.register("dsp_status")
        assert status.read_field("pll_locked") == 0
        assert status.read_field("closed_loop") == 0
        # drive gain register reflects the AGC start-up gain
        gain = q114_to_float(cond.registers.read("dsp_drive_gain"))
        assert gain == pytest.approx(cond.drive_loop.amplitude_control, abs=0.01)

    def test_fixed_point_mode_sets_formats(self):
        cond = GyroConditioner(GyroConditionerConfig(fixed_point=True))
        assert cond.config.drive.output_format is not None
        assert cond.config.sense.output_format is not None

    def test_reset(self):
        cond = GyroConditioner()
        for _ in range(200):
            cond.step(0.1, 0.05)
        cond.reset()
        assert cond.rate_dps == 0.0
        assert not cond.running
