"""Tests for the fault-injection subsystem (``repro.faults``).

The contract under test: every fault model is declarative and picklable,
arms and disarms exactly at the campaign's chunk boundaries, produces
bit-identical traces on the reference, fused, batched and compiled
engines and on both executors, never leaks into a neighbouring fleet
lane, and is fully
restored when its scenario completes.  On top of that, the platform's
graceful-degradation path — overload observation, the safe-mode latch,
the firmware-visible safety registers and the resilience extractors —
is locked down here.
"""

import copy
import pickle
import random

import numpy as np
import pytest
from hypothesis import given, strategies as st

from strategies.settings import STANDARD_SETTINGS

from repro.common import ConfigurationError
from repro.common.registers import BitField, Register, RegisterFile
from repro.eval.metrics import (
    DetectionLatency,
    PostFaultBiasShift,
    SurvivedVerdict,
    TimeInSaturation,
)
from repro.faults import (
    AfeSaturation,
    FaultModel,
    SensorDropout,
    StuckAdcCode,
    StuckRegisterField,
    SupplyDroop,
)
from repro.mcu.subsystem import McuSubsystem
from repro.platform import GyroPlatform
from repro.platform.result import GyroSimulationResult
from repro.scenarios import Campaign, Scenario, fault_scenario
from repro.scenarios.library import settled_output_scenario
from repro.sensors import Environment

TRACE_FIELDS = (
    "time_s", "true_rate_dps", "temperature_c", "rate_output_dps",
    "rate_output_v", "amplitude_control", "amplitude_error", "phase_error",
    "vco_control", "pll_locked", "running")

SAFETY_FIELDS = ("safe_mode", "safe_mode_events", "safe_mode_entry_s",
                 "overload_time_s")

#: The fault grid every cross-engine test sweeps (window 10..20 ms of a
#: 30 ms scenario, except the permanent saturation).
FAULT_GRID = {
    "afe_saturation": AfeSaturation(t_start=0.01, t_stop=0.02),
    "supply_droop": SupplyDroop(t_start=0.01, t_stop=0.02, scale=0.85,
                                profile=((0.0, 0.85), (0.004, 0.7))),
    "sensor_dropout": SensorDropout(t_start=0.01, t_stop=0.02),
    "stuck_adc": StuckAdcCode(t_start=0.01, t_stop=0.02,
                              channel="secondary", code=150),
    "stuck_trim": StuckRegisterField(t_start=0.01, t_stop=0.02,
                                     register="afe_secondary_gain", value=0),
    "permanent_saturation": AfeSaturation(t_start=0.015),
}


def assert_results_identical(a, b, fields=TRACE_FIELDS):
    for field in fields:
        assert np.array_equal(getattr(a, field), getattr(b, field)), field
    for field in SAFETY_FIELDS:
        assert getattr(a, field) == getattr(b, field), field


def assert_metrics_identical(a: dict, b: dict):
    assert set(a) == set(b)
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, float) and isinstance(vb, float) \
                and np.isnan(va) and np.isnan(vb):
            continue
        assert va == vb, key


@pytest.fixture(scope="module")
def started_platform():
    platform = GyroPlatform()
    platform.start()
    return platform


def clean_scenario(settle_s: float = 0.03) -> Scenario:
    return settled_output_scenario(80.0, settle_s=settle_s, name="clean")


# ---------------------------------------------------------------------------
# register fabric: force / release / write hooks
# ---------------------------------------------------------------------------

class TestRegisterForce:
    def build(self, access="rw"):
        bank = RegisterFile("t")
        bank.define("reg", 0x00, access=access,
                    fields=[BitField("lo", 0, 8, reset=0x0F),
                            BitField("hi", 8, 8, reset=0x0F)])
        return bank

    def test_force_overlays_reads_on_rw_register(self):
        bank = self.build()
        reg = bank.register("reg")
        reg.force(0x00FF, 0x00AA)
        assert reg.forced
        assert reg.read() == 0x0FAA
        assert reg.read_field("lo") == 0xAA
        assert reg.read_field("hi") == 0x0F

    def test_writes_keep_updating_storage_underneath(self):
        bank = self.build()
        reg = bank.register("reg")
        reg.force(0xFFFF, 0x1234)
        bank.write("reg", 0xBEEF)
        assert reg.read() == 0x1234      # stuck-at wins on reads
        reg.release()
        assert reg.read() == 0xBEEF      # maintained state shows through

    def test_force_applies_to_ro_and_w1c_paths(self):
        ro = self.build(access="ro").register("reg")
        ro.force(0x0001, 0x0000)
        assert ro.read() & 0x1 == 0      # stuck-at-0 on a status bit
        w1c = self.build(access="w1c").register("reg")
        w1c.force(0x0001, 0x0001)
        w1c.write(0x0001)                # the clear is absorbed
        assert w1c.read() & 0x1 == 1

    def test_force_mask_is_clamped_to_width(self):
        reg = Register("r", 0x0, width=8)
        reg.force(0xFFFF, 0xFFFF)
        assert reg.read() == 0xFF

    def test_per_register_write_hook_fires_on_any_write_path(self):
        bank = self.build()
        seen = []
        bank.register("reg").on_write(seen.append)
        bank.write("reg", 0x0001)            # RegisterFile path
        bank.register("reg").write(0x0002)   # direct path (bus bridge)
        assert seen == [0x0001, 0x0002]

    def test_hw_write_does_not_fire_hooks(self):
        bank = self.build()
        seen = []
        bank.register("reg").on_write(seen.append)
        bank.register("reg").hw_write(0x55)
        assert seen == []

    def test_refresh_refires_callbacks_without_a_write(self):
        bank = self.build()
        seen = []
        bank.on_write("reg", seen.append)
        bank.register("reg").force(0x00FF, 0x0042)
        bank.refresh("reg")
        assert seen == [0x0F42]

    def test_old_pickles_gain_force_defaults(self):
        reg = Register("r", 0x0)
        state = reg.__dict__.copy()
        # simulate a pickle from before the fault fabric existed
        state.pop("_force_mask", None)
        restored = Register.__new__(Register)
        restored.__dict__.update(state)
        assert not restored.forced
        assert restored._write_hooks == ()


# ---------------------------------------------------------------------------
# fault model validation
# ---------------------------------------------------------------------------

class TestFaultValidation:
    def test_bad_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            AfeSaturation(t_start=-0.1)
        with pytest.raises(ConfigurationError):
            AfeSaturation(t_start=0.02, t_stop=0.01)

    def test_supply_droop_profile_validated(self):
        with pytest.raises(ConfigurationError):
            SupplyDroop(scale=0.0)
        with pytest.raises(ConfigurationError):
            SupplyDroop(profile=((0.01, 0.9), (0.005, 0.8)))
        with pytest.raises(ConfigurationError):
            SupplyDroop(profile=((0.0, -0.5),))

    def test_stuck_adc_channel_validated(self):
        with pytest.raises(ConfigurationError):
            StuckAdcCode(channel="tertiary")

    def test_stuck_register_needs_a_name(self, started_platform):
        with pytest.raises(ConfigurationError):
            StuckRegisterField().inject(copy.deepcopy(started_platform))

    def test_scenario_rejects_non_fault_objects(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="bad", environment=Environment.still(),
                     duration_s=0.01, faults=(object(),))

    def test_fault_models_pickle(self):
        for fault in FAULT_GRID.values():
            assert pickle.loads(pickle.dumps(fault)) == fault


# ---------------------------------------------------------------------------
# cross-engine / cross-executor bit-identity
# ---------------------------------------------------------------------------

class TestFaultBitIdentity:
    @pytest.mark.parametrize("fault_name", sorted(FAULT_GRID))
    def test_engines_identical_and_fault_perturbs(self, started_platform,
                                                  fault_name):
        fault = FAULT_GRID[fault_name]
        program = [fault_scenario(fault, duration_s=0.03,
                                  name=f"f-{fault_name}"),
                   clean_scenario()]
        runs = {engine: Campaign(program, name="x").run(started_platform,
                                                        engine=engine)
                for engine in ("reference", "fused", "batched", "compiled")}
        ref = runs["reference"]
        for engine in ("fused", "batched", "compiled"):
            for lane_ref, lane_eng in zip(ref.lanes, runs[engine].lanes):
                for a, b in zip(lane_ref.outcomes, lane_eng.outcomes):
                    assert_results_identical(a.result, b.result)
                    assert_metrics_identical(a.metrics, b.metrics)
        # the fault must actually do something: the faulted lane's trace
        # diverges from the clean lane's after activation
        faulted = ref.lanes[0].outcomes[0].result.rate_output_dps
        clean = ref.lanes[1].outcomes[0].result.rate_output_dps
        tail = slice(faulted.size // 3, None)
        assert not np.array_equal(faulted[tail], clean[tail])

    def test_sharded_identical_and_no_cross_lane_leakage(self,
                                                         started_platform,
                                                         tmp_path):
        program = [fault_scenario(FAULT_GRID["stuck_adc"], duration_s=0.03,
                                  name="f-shard"),
                   clean_scenario()]
        local = Campaign(program, name="s").run(started_platform,
                                                engine="fused")
        sharded = Campaign(program, name="s").run(
            started_platform, engine="fused", executor="sharded", workers=2,
            manifest_dir=str(tmp_path))
        assert sharded.complete
        for lane_a, lane_b in zip(local.lanes, sharded.lanes):
            for a, b in zip(lane_a.outcomes, lane_b.outcomes):
                assert_results_identical(a.result, b.result)
                assert_metrics_identical(a.metrics, b.metrics)
        # the clean lane next to a faulted one equals a solo clean run
        solo = Campaign([clean_scenario()], name="solo").run(
            started_platform, engine="fused")
        assert_results_identical(solo.lanes[0].outcomes[0].result,
                                 local.lanes[1].outcomes[0].result)

    def test_fault_restored_after_scenario(self, started_platform):
        platform = copy.deepcopy(started_platform)
        before = {
            "offset_v": platform.frontend.config.charge_amplifier.offset_v,
            "gain": platform.sensor._pickoff_gain,
            "adc": (platform.frontend.secondary_adc._code_min,
                    platform.frontend.secondary_adc._code_max),
            "trim": platform.frontend.trim.register(
                "afe_secondary_gain").value,
        }
        program = [[fault_scenario(FAULT_GRID[name], duration_s=0.02,
                                   name=f"seq-{name}")
                    for name in ("afe_saturation", "sensor_dropout",
                                 "stuck_adc", "stuck_trim",
                                 "permanent_saturation")]]
        Campaign(program, name="restore").run(platforms=[platform])
        assert platform.frontend.config.charge_amplifier.offset_v \
            == before["offset_v"]
        assert platform.sensor._pickoff_gain == before["gain"]
        assert (platform.frontend.secondary_adc._code_min,
                platform.frontend.secondary_adc._code_max) == before["adc"]
        trim = platform.frontend.trim.register("afe_secondary_gain")
        assert not trim.forced
        assert trim.value == before["trim"]


# ---------------------------------------------------------------------------
# scenario digests (Hypothesis)
# ---------------------------------------------------------------------------

def _grid_faults(indices):
    names = sorted(FAULT_GRID)
    return tuple(FAULT_GRID[names[i]] for i in indices)


class TestFaultDigests:
    @STANDARD_SETTINGS
    @given(st.lists(st.integers(0, len(FAULT_GRID) - 1), min_size=1,
                    max_size=4, unique=True),
           st.randoms(use_true_random=False))
    def test_digest_stable_and_order_insensitive(self, indices, rng):
        faults = _grid_faults(indices)
        shuffled = list(faults)
        rng.shuffle(shuffled)
        base = Scenario(name="d", environment=Environment.still(),
                        duration_s=0.01, faults=faults)
        again = Scenario(name="d", environment=Environment.still(),
                         duration_s=0.01, faults=faults)
        reordered = Scenario(name="d", environment=Environment.still(),
                             duration_s=0.01, faults=tuple(shuffled))
        assert base.digest() == again.digest() == reordered.digest()

    @STANDARD_SETTINGS
    @given(st.floats(0.0, 0.01, allow_nan=False),
           st.floats(0.011, 0.02, allow_nan=False),
           st.floats(1.0, 20.0, allow_nan=False))
    def test_digest_tracks_fault_parameters(self, t_start, t_stop, drive_v):
        def digest(fault):
            return Scenario(name="d", environment=Environment.still(),
                            duration_s=0.05, faults=(fault,)).digest()
        plain = Scenario(name="d", environment=Environment.still(),
                         duration_s=0.05)
        fault = AfeSaturation(t_start=t_start, t_stop=t_stop,
                              drive_v=drive_v)
        assert digest(fault) != plain.digest()
        nudged = AfeSaturation(t_start=t_start, t_stop=t_stop,
                               drive_v=drive_v + 1.0)
        assert digest(fault) != digest(nudged)
        assert digest(fault) == digest(AfeSaturation(
            t_start=t_start, t_stop=t_stop, drive_v=drive_v))


# ---------------------------------------------------------------------------
# safe-mode latch and graceful degradation
# ---------------------------------------------------------------------------

class TestSafeModeLatch:
    def run_windows(self, started_platform, windows, duration_s=0.03):
        platform = copy.deepcopy(started_platform)
        faults = tuple(AfeSaturation(t_start=a, t_stop=b)
                       for a, b in windows)
        scenario = Scenario(name="latch",
                            environment=Environment.constant_rate(80.0),
                            duration_s=duration_s, faults=faults)
        result = Campaign([scenario], name="latch").run(platforms=[platform])
        return platform, result.lanes[0].outcomes[0].result

    def test_latches_exactly_once_per_saturation_window(self,
                                                        started_platform):
        platform, result = self.run_windows(started_platform,
                                            [(0.01, 0.02)])
        assert result.safe_mode is True          # sticky past the window
        assert result.safe_mode_events == 1      # exactly one episode
        assert result.safe_mode_entry_s is not None
        assert result.overload_time_s == pytest.approx(0.01)
        assert platform.safety.safe_mode

    def test_two_windows_latch_two_events(self, started_platform):
        _, result = self.run_windows(started_platform,
                                     [(0.005, 0.01), (0.02, 0.025)])
        assert result.safe_mode is True
        assert result.safe_mode_events == 2
        assert result.overload_time_s == pytest.approx(0.01)

    def test_watchdog_service_clears_latch_not_count(self, started_platform):
        platform, _ = self.run_windows(started_platform, [(0.01, 0.02)])
        monitor = platform.safety
        assert monitor.safe_mode and monitor.event_count == 1
        monitor.service()
        assert not monitor.safe_mode
        assert monitor.event_count == 1          # history survives service
        status = monitor.registers.register("safety_status")
        assert status.read_field("safe_mode") == 0

    def test_platform_reset_clears_monitor(self, started_platform):
        platform, _ = self.run_windows(started_platform, [(0.01, 0.02)])
        platform.reset()
        monitor = platform.safety
        assert not monitor.safe_mode
        assert monitor.event_count == 0
        assert monitor.first_latch_s is None
        assert monitor.overload_time_s == 0.0

    def test_frontend_reset_clears_overload_flag(self, started_platform):
        platform = copy.deepcopy(started_platform)
        Campaign([Scenario(name="sat",
                           environment=Environment.constant_rate(80.0),
                           duration_s=0.01,
                           faults=(AfeSaturation(),))],
                 name="ov").run(platforms=[platform])
        # force the flag on, then power-cycle the front end
        platform.frontend._overload = True
        platform.frontend.trim.register("afe_status").hw_write_field(
            "overload", 1)
        platform.frontend.reset()
        assert platform.frontend.overload is False
        assert platform.frontend.trim.register("afe_status").read_field(
            "overload") == 0

    def test_direct_run_stamps_safety_fields(self, started_platform):
        platform = copy.deepcopy(started_platform)
        result = platform.run(Environment.still(), 0.005)
        assert result.safe_mode is False
        assert result.safe_mode_events == 0
        assert result.overload_time_s == 0.0

    def test_safety_fields_serialise(self, started_platform):
        _, result = self.run_windows(started_platform, [(0.01, 0.02)])
        restored = GyroSimulationResult.from_dict(result.to_dict())
        for field in SAFETY_FIELDS:
            assert getattr(restored, field) == getattr(result, field)


# ---------------------------------------------------------------------------
# firmware closes the loop over the bridge
# ---------------------------------------------------------------------------

class TestFirmwareService:
    def test_firmware_polls_and_clears_the_latch(self, started_platform):
        platform = copy.deepcopy(started_platform)
        Campaign([fault_scenario(AfeSaturation(t_start=0.005, t_stop=0.01),
                                 duration_s=0.02)],
                 name="fw").run(platforms=[platform])
        assert platform.safety.safe_mode

        mcu = McuSubsystem()
        mcu.connect_safety_registers(platform.safety.registers)
        mcu.load_safety_firmware()
        mcu.run()
        rx = mcu.uart.transmitted_bytes()
        assert len(rx) == 2
        assert rx[0] & 0x1 == 1      # latched when polled
        assert rx[1] & 0x1 == 0      # cleared after the watchdog kick
        assert platform.safety.safe_mode is False
        assert platform.safety.event_count == 1
        # the kick bit self-clears
        assert platform.safety.registers.read("safety_watchdog") == 0

    def test_firmware_reports_clean_device_without_kicking(self):
        platform = GyroPlatform()
        mcu = McuSubsystem()
        mcu.connect_safety_registers(platform.safety.registers)
        mcu.load_safety_firmware()
        mcu.run()
        rx = mcu.uart.transmitted_bytes()
        assert len(rx) == 2 and rx[0] & 0x1 == 0 and rx[1] & 0x1 == 0


# ---------------------------------------------------------------------------
# resilience extractors
# ---------------------------------------------------------------------------

class TestResilienceExtractors:
    @pytest.fixture(scope="class")
    def saturated_outcome(self, started_platform):
        scenario = fault_scenario(AfeSaturation(t_start=0.01, t_stop=0.02),
                                  duration_s=0.03)
        result = Campaign([scenario], name="rx").run(started_platform,
                                                     engine="fused")
        return result.lanes[0].outcomes[0]

    def test_standard_metrics_present(self, saturated_outcome):
        metrics = saturated_outcome.metrics
        assert set(metrics) == {"detection_latency_s", "time_in_saturation_s",
                                "post_fault_bias_shift_dps", "survived"}
        assert metrics["time_in_saturation_s"] == pytest.approx(0.01)
        # latched at the first boundary after onset: one window's worth
        assert 0.0 <= metrics["detection_latency_s"] <= 0.011
        assert metrics["survived"] is True
        assert abs(metrics["post_fault_bias_shift_dps"]) < 1.0

    def test_detection_latency_none_without_latch(self, started_platform):
        result = Campaign([clean_scenario(0.02)], name="nl").run(
            started_platform, engine="fused")
        outcome = result.lanes[0].outcomes[0]
        assert DetectionLatency(0.0)(None, outcome.result) is None
        assert TimeInSaturation()(None, outcome.result) == 0.0

    def test_verdict_fails_when_chain_stops_running(self, saturated_outcome):
        import dataclasses as dc
        result = saturated_outcome.result
        dead = dc.replace(result, running=np.zeros_like(result.running))
        assert SurvivedVerdict(0.01, 0.02)(None, dead) is False

    def test_bias_shift_nan_when_window_covers_record(self,
                                                      saturated_outcome):
        result = saturated_outcome.result
        shift = PostFaultBiasShift(0.0, 1e9)(None, result)
        assert np.isnan(shift)

    def test_extractors_pickle(self):
        for extractor in (DetectionLatency(0.01), TimeInSaturation(),
                          PostFaultBiasShift(0.01, 0.02),
                          SurvivedVerdict(0.01, 0.02)):
            assert pickle.loads(pickle.dumps(extractor)) == extractor
